// Random beacon service (Appendix H): periodic common randomness with a
// verifiable log, surviving active byzantine omission nodes.
#include <cstdio>

#include "apps/beacon.hpp"

using namespace sgxp2p;

int main() {
  std::printf("=== random beacon: 8 epochs over an 11-node deployment ===\n");
  std::printf("3 nodes run a random-omission byzantine OS throughout\n\n");

  apps::BeaconLog log = apps::run_beacon(/*n=*/11, /*epochs=*/8,
                                         /*byzantine_omitters=*/3,
                                         /*seed=*/2026);

  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& e = log.entry(i);
    std::printf("  epoch %llu: %s…  (%zu contributions)\n",
                static_cast<unsigned long long>(e.epoch),
                hex_encode(ByteView(e.value.data(), 12)).c_str(),
                e.contributors);
  }

  Bytes root = log.root();
  std::printf("\nbeacon log Merkle root: %s\n", hex_encode(root).c_str());
  std::printf("hash-chain audit: %s\n", log.audit_chain() ? "OK" : "BROKEN");

  // A light client verifies epoch 5 with an inclusion proof only.
  auto proof = log.proof(5);
  bool ok = apps::BeaconLog::verify(root, log.entry(5), 5, log.size(), proof);
  std::printf("light-client proof for epoch 5 (%zu siblings): %s\n",
              proof.size(), ok ? "VALID" : "INVALID");

  // Tampered entry must fail.
  apps::BeaconEntry forged = log.entry(5);
  forged.value[0] ^= 1;
  bool bad = apps::BeaconLog::verify(root, forged, 5, log.size(), proof);
  std::printf("tampered-entry proof rejected: %s\n", bad ? "NO (!)" : "yes");
  return 0;
}
