// Threshold group keys via verifiable DKG (Appendix H, "Shared Key
// Generation"): six enclaves jointly create a key that never exists in one
// place — each acts as a dealer, commitments make every dealt share
// checkable, and any 3 members rebuild the key on demand.
#include <cstdio>

#include "apps/dkg.hpp"
#include "apps/group_key.hpp"
#include "crypto/drbg.hpp"

using namespace sgxp2p;
using namespace sgxp2p::apps;

int main() {
  constexpr std::uint8_t kMembers = 6, kThreshold = 3;
  std::printf("=== verifiable DKG: %u members, threshold %u ===\n\n",
              kMembers, kThreshold);

  crypto::Drbg drbg(to_bytes("threshold-key-example"));

  // Every member deals a contribution (in a deployment the shares travel
  // over the blinded channel; commitments are ERB-broadcast).
  std::vector<DealerPackage> dealers;
  for (int d = 0; d < kMembers; ++d) {
    dealers.push_back(dkg_deal(kMembers, kThreshold, 32, drbg));
  }
  std::printf("6 dealers published 32-byte commitments, e.g. dealer 0: %s…\n",
              hex_encode(ByteView(dealers[0].commitment.data(), 8)).c_str());

  // A byzantine dealer trying to hand member 4 a bad share is caught.
  DealtShare forged = dealers[2].shares[4];
  forged.share.y[7] ^= 0x80;
  std::printf("forged share from dealer 2 verifies: %s\n",
              dkg_verify_share(dealers[2].commitment, forged, kMembers)
                  ? "YES (!)"
                  : "no — complaint raised, dealer disqualified");

  // Members verify and fold their shares.
  std::vector<crypto::Share> member_shares(kMembers);
  for (std::uint8_t i = 0; i < kMembers; ++i) {
    std::vector<crypto::Share> mine;
    for (const auto& pkg : dealers) {
      if (!dkg_verify_share(pkg.commitment, pkg.shares[i], kMembers)) {
        std::printf("member %u rejected a share!\n", i);
        return 1;
      }
      mine.push_back(pkg.shares[i].share);
    }
    member_shares[i] = *dkg_combine_shares(mine);
  }
  std::printf("every member holds one combined share; the group secret "
              "exists nowhere.\n\n");

  // Two disjoint quorums recover the same key and exchange a sealed note.
  auto secret_a =
      dkg_reconstruct({member_shares[0], member_shares[3], member_shares[5]},
                      kThreshold);
  auto secret_b =
      dkg_reconstruct({member_shares[1], member_shares[2], member_shares[4]},
                      kThreshold);
  std::printf("quorum {0,3,5} and quorum {1,2,4} agree: %s\n",
              (secret_a && secret_b && *secret_a == *secret_b) ? "yes"
                                                               : "NO (!)");

  Bytes key = derive_group_key(*secret_a, to_bytes("escrow"));
  Bytes sealed = group_seal(key, 0, to_bytes("release the funds"));
  Bytes key_b = derive_group_key(*secret_b, to_bytes("escrow"));
  auto opened = group_open(key_b, sealed);
  std::printf("sealed under quorum A's key, opened with quorum B's: \"%s\"\n",
              opened ? to_string(*opened).c_str() : "FAILED");

  // Two members alone get nothing.
  auto too_few =
      dkg_reconstruct({member_shares[0], member_shares[1]}, kThreshold);
  std::printf("2 members alone reconstruct: %s\n",
              too_few ? "YES (!)" : "nothing — below threshold");
  return 0;
}
