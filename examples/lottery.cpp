// Decentralized lottery — common coins where bias means money.
//
// N participants run ERNG; the winner is (output mod N). A byzantine
// participant who could peek at others' contributions and then withhold its
// own (attack A4) would win at will — the demo runs an active delaying
// adversary and shows (1) all honest nodes agree on the winner, (2) the
// delayed contribution is excluded rather than applied late, and (3) across
// many independent lotteries the win distribution stays flat. Derived group
// keys (Appendix H "Shared Key Generation") then encrypt the payout note.
#include <cstdio>
#include <memory>
#include <vector>

#include "adversary/strategies.hpp"
#include "apps/group_key.hpp"
#include "net/testbed.hpp"
#include "protocol/erng_basic.hpp"

using namespace sgxp2p;

namespace {

struct LotteryResult {
  std::uint32_t winner = 0;
  Bytes common_value;
  std::size_t contributions = 0;
};

LotteryResult run_lottery(std::uint32_t n, std::uint64_t seed,
                          bool with_cheater) {
  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.net.base_delay = milliseconds(100);
  cfg.net.max_jitter = milliseconds(100);
  sim::Testbed bed(cfg);
  SimDuration hold = 2 * cfg.effective_round();
  bed.build(
      [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
         protocol::PeerConfig pc,
         const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErngBasicNode>(platform, id, host,
                                                         pc, ias);
      },
      [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
        if (with_cheater && id == n - 1) {
          // "Look ahead, then release" — held past the round, so P5 rejects.
          return std::make_unique<adversary::DelayStrategy>(hold);
        }
        return nullptr;
      });
  bed.start();
  bed.run_rounds(cfg.effective_t() + 4, [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<protocol::ErngBasicNode>(id).result().done) {
        return false;
      }
    }
    return true;
  });
  const auto& r =
      bed.enclave_as<protocol::ErngBasicNode>(bed.honest_nodes().front())
          .result();
  LotteryResult out;
  out.common_value = r.value;
  out.contributions = r.set_size;
  out.winner = static_cast<std::uint32_t>(load_le64(r.value.data()) % n);
  return out;
}

}  // namespace

int main() {
  const std::uint32_t n = 9;

  std::printf("=== decentralized lottery (N=%u) ===\n\n", n);
  std::printf("--- one draw with a delaying cheater (node %u) ---\n", n - 1);
  auto result = run_lottery(n, 777, /*with_cheater=*/true);
  std::printf("  contributions counted: %zu of %u (the cheater's late value "
              "was excluded by lockstep)\n",
              result.contributions, n);
  std::printf("  winner: participant %u\n", result.winner);

  Bytes key = apps::derive_group_key(result.common_value, to_bytes("payout"));
  Bytes note = apps::group_seal(key, 0, to_bytes("pay 100 to the winner"));
  auto opened = apps::group_open(key, note);
  std::printf("  payout note sealed under the draw-derived group key "
              "(%zu B) and reopened: %s\n\n",
              note.size(), opened ? to_string(*opened).c_str() : "FAILED");

  std::printf("--- fairness across 45 independent draws (no cheater) ---\n");
  std::vector<std::uint32_t> wins(n, 0);
  const int kDraws = 45;
  for (int d = 0; d < kDraws; ++d) {
    ++wins[run_lottery(n, 10000 + d, false).winner];
  }
  for (std::uint32_t id = 0; id < n; ++id) {
    std::printf("  participant %u: %2u wins %s\n", id, wins[id],
                std::string(wins[id], '#').c_str());
  }
  std::printf("  expected %.1f wins each; no participant can do better —\n"
              "  the enclave generates the contribution (A1), hides it (A3),\n"
              "  and the round clock forbids lookahead (A4).\n",
              static_cast<double>(kDraws) / n);
  return 0;
}
