// Real-sockets deployment: ERB and ERNG over a localhost TCP mesh.
//
// Same enclave code as the simulator examples, but frames travel on genuine
// TCP connections and rounds are wall-clock (2Δ = 250 ms). This is the
// in-process analogue of the paper's DeterLab deployment: to split across
// machines, only the port-map exchange in TcpBus changes.
#include <cstdio>
#include <memory>

#include "net/tcp_testbed.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"

using namespace sgxp2p;

int main() {
  std::printf("=== TCP cluster: 7 nodes on localhost, 250 ms rounds ===\n\n");

  {
    std::printf("--- ERB over TCP ---\n");
    net::TcpTestbedConfig cfg;
    cfg.n = 7;
    cfg.round_ms = 250;
    net::TcpTestbed bed(cfg);
    Bytes msg = to_bytes("broadcast over real sockets");
    bool ok = bed.build(
        [&](NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
            protocol::PeerConfig pc,
            const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
          return std::make_unique<protocol::ErbNode>(
              platform, id, host, pc, ias, NodeId{0}, id == 0 ? msg : Bytes{});
        });
    if (!ok) {
      std::printf("  socket mesh failed to start\n");
      return 1;
    }
    bed.start();
    bed.run_rounds(cfg.t == 0 ? 6 : cfg.t + 3, [&]() {
      for (NodeId id = 0; id < cfg.n; ++id) {
        if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
          return false;
        }
      }
      return true;
    });
    bed.locked([&] {
      for (NodeId id = 0; id < cfg.n; ++id) {
        const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
        std::printf("  node %u (port %u): \"%s\" in round %u\n", id,
                    bed.bus().port_of(id),
                    r.value ? to_string(*r.value).c_str() : "⊥", r.round);
      }
      return 0;
    });
    std::printf("  TCP frames sent: %llu (%llu bytes)\n\n",
                static_cast<unsigned long long>(bed.bus().messages_sent()),
                static_cast<unsigned long long>(bed.bus().bytes_sent()));
  }

  {
    std::printf("--- ERNG over TCP ---\n");
    net::TcpTestbedConfig cfg;
    cfg.n = 5;
    cfg.round_ms = 250;
    net::TcpTestbed bed(cfg);
    bool ok = bed.build(
        [](NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
           protocol::PeerConfig pc,
           const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
          return std::make_unique<protocol::ErngBasicNode>(platform, id, host,
                                                           pc, ias);
        });
    if (!ok) {
      std::printf("  socket mesh failed to start\n");
      return 1;
    }
    bed.start();
    bed.run_rounds(8, [&]() {
      for (NodeId id = 0; id < cfg.n; ++id) {
        if (!bed.enclave_as<protocol::ErngBasicNode>(id).result().done) {
          return false;
        }
      }
      return true;
    });
    bed.locked([&] {
      for (NodeId id = 0; id < cfg.n; ++id) {
        const auto& r = bed.enclave_as<protocol::ErngBasicNode>(id).result();
        std::printf("  node %u: r = %s… (%zu contributions)\n", id,
                    r.done ? hex_encode(ByteView(r.value.data(), 8)).c_str()
                           : "undecided",
                    r.set_size);
      }
      return 0;
    });
  }
  return 0;
}
