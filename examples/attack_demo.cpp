// Attack demo — the paper's Section 2.3 story, executable.
//
// Launches the same byzantine behaviors against (a) the strawman protocol
// of Algorithm 1 and (b) ERB, and prints what happened:
//   A2 equivocation  → splits the strawman; impossible against ERB (the
//                      enclave is the only signer of its channel).
//   A3 omission      → the strawman can be starved silently; ERB's
//                      halt-on-divergence churns the omitter out.
//   A4 delay         → stale rounds are rejected by lockstep execution.
//   A5 replay        → duplicate ciphertexts die in the channel's window.
#include <cstdio>
#include <memory>
#include <set>

#include "adversary/strategies.hpp"
#include "net/testbed.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/strawman.hpp"

using namespace sgxp2p;

namespace {

sim::NetworkConfig net_cfg() {
  sim::NetworkConfig cfg;
  cfg.base_delay = milliseconds(100);
  cfg.max_jitter = milliseconds(100);
  return cfg;
}

void demo_equivocation_strawman() {
  std::printf("--- A2 (equivocation) vs strawman ---\n");
  const std::uint32_t n = 9, t = 4;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) -> std::unique_ptr<protocol::PlainNode> {
    if (id == 0) {
      return std::make_unique<protocol::EquivocatingStrawmanInitiator>(
          id, n, t, to_bytes("ALPHA"), to_bytes("BRAVO"));
    }
    return std::make_unique<protocol::StrawmanNode>(id, n, t, false);
  });
  bed.start();
  bed.run_rounds(t + 2);
  std::set<std::string> outcomes;
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.node_as<protocol::StrawmanNode>(id).result();
    std::string v = r.value ? to_string(*r.value) : "⊥";
    outcomes.insert(v);
    std::printf("  node %u decided %s\n", id, v.c_str());
  }
  std::printf("  => %zu distinct outcomes — agreement BROKEN\n\n",
              outcomes.size());
}

void demo_erb_under_attack() {
  std::printf("--- A2+A5 (forgery, replay) vs ERB ---\n");
  const std::uint32_t n = 9;
  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.net = net_cfg();
  cfg.seed = 99;
  sim::Testbed bed(cfg);
  Bytes msg = to_bytes("the only possible value");
  bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
          protocol::PeerConfig pc,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, pc, ias, NodeId{0}, id == 0 ? msg : Bytes{});
      },
      [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
        // Hosts 1,2 flip bits & inject junk; hosts 3,4 replay everything.
        if (id == 1 || id == 2) {
          return std::make_unique<adversary::CorruptStrategy>(0.6, n);
        }
        if (id == 3 || id == 4) {
          return std::make_unique<adversary::ReplayStrategy>(milliseconds(60));
        }
        return nullptr;
      });
  bed.start();
  bed.run_rounds(cfg.effective_t() + 4, [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });
  std::set<std::string> outcomes;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
    outcomes.insert(r.value ? to_string(*r.value) : "⊥");
  }
  std::printf("  honest outcomes: %zu distinct value(s): \"%s\"\n",
              outcomes.size(), outcomes.begin()->c_str());
  std::printf("  => forged blobs failed the MAC, replays died in the replay\n"
              "     window — agreement HELD\n\n");
}

void demo_halt_on_divergence() {
  std::printf("--- A3 (selective omission) vs ERB: P4 sanitization ---\n");
  const std::uint32_t n = 9;
  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.net = net_cfg();
  cfg.seed = 7;
  sim::Testbed bed(cfg);
  Bytes msg = to_bytes("m");
  std::set<NodeId> victims = {3, 4, 5, 6, 7, 8};  // initiator omits to these
  bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
          protocol::PeerConfig pc,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, pc, ias, NodeId{0}, id == 0 ? msg : Bytes{});
      },
      [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
        if (id == 0) {
          return std::make_unique<adversary::SelectiveOmissionStrategy>(
              victims);
        }
        return nullptr;
      });
  bed.start();
  bed.run_rounds(cfg.effective_t() + 4);
  std::printf("  initiator omitted INIT to %zu of %u peers → got < t ACKs\n",
              victims.size(), n - 1);
  std::printf("  initiator halted itself: %s; still attached to network: %s\n",
              bed.enclave(0).halted() ? "yes" : "no",
              bed.network().attached(0) ? "yes" : "no");
  std::set<std::string> outcomes;
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
    outcomes.insert(r.value ? to_string(*r.value) : "⊥");
  }
  std::printf("  honest outcomes agree: %s (%zu distinct)\n\n",
              outcomes.begin()->c_str(), outcomes.size());
}

}  // namespace

int main() {
  std::printf("=== byzantine attack demo: strawman vs ERB ===\n\n");
  demo_equivocation_strawman();
  demo_erb_under_attack();
  demo_halt_on_divergence();
  std::printf("summary: the attacks that break Algorithm 1 reduce to plain\n"
              "omissions against the enclaved protocol — the paper's R1.\n");
  return 0;
}
