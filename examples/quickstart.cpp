// Quickstart — the two primitives in ~60 lines each.
//
//   1. ERB: node 0 reliably broadcasts a message to a 7-node network; every
//      node decides the same value within two rounds.
//   2. ERNG: the same deployment generates a common unbiased 256-bit random
//      number nobody (host OSes included) could predict or bias.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "net/testbed.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"

using namespace sgxp2p;

namespace {

void run_erb_quickstart() {
  std::printf("--- ERB: enclaved reliable broadcast (N=7, t=3) ---\n");

  sim::TestbedConfig cfg;
  cfg.n = 7;                                // N = 2t+1 with t = 3
  cfg.net.base_delay = milliseconds(100);   // Δ covers base+jitter
  cfg.net.max_jitter = milliseconds(100);
  cfg.seed = 2020;

  sim::Testbed bed(cfg);
  Bytes message = to_bytes("hello, robust world");
  // One factory call per node: node 0 is the broadcast initiator.
  bed.build([&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                protocol::PeerConfig pc, const sgx::SimIAS& ias)
                -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErbNode>(platform, id, host, pc, ias,
                                               NodeId{0},
                                               id == 0 ? message : Bytes{});
  });
  bed.start();
  bed.run_rounds(cfg.effective_t() + 4, [&]() {
    for (NodeId id = 0; id < cfg.n; ++id) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });

  for (NodeId id = 0; id < cfg.n; ++id) {
    const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
    std::printf("  node %u: accepted \"%s\" in round %u (t+2 deadline: %u)\n",
                id, r.value ? to_string(*r.value).c_str() : "⊥", r.round,
                cfg.effective_t() + 2);
  }
  std::printf("  wire traffic: %llu messages, %.1f KiB\n\n",
              static_cast<unsigned long long>(bed.network().meter().messages()),
              static_cast<double>(bed.network().meter().bytes()) / 1024.0);
}

void run_erng_quickstart() {
  std::printf("--- ERNG: common unbiased random number (N=7) ---\n");

  sim::TestbedConfig cfg;
  cfg.n = 7;
  cfg.net.base_delay = milliseconds(100);
  cfg.net.max_jitter = milliseconds(100);
  cfg.seed = 4040;

  sim::Testbed bed(cfg);
  bed.build([](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
               protocol::PeerConfig pc, const sgx::SimIAS& ias)
                -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErngBasicNode>(platform, id, host, pc,
                                                     ias);
  });
  bed.start();
  bed.run_rounds(cfg.effective_t() + 4, [&]() {
    for (NodeId id = 0; id < cfg.n; ++id) {
      if (!bed.enclave_as<protocol::ErngBasicNode>(id).result().done) {
        return false;
      }
    }
    return true;
  });

  for (NodeId id = 0; id < cfg.n; ++id) {
    const auto& r = bed.enclave_as<protocol::ErngBasicNode>(id).result();
    std::printf("  node %u: r = %s… (%zu contributions, round %u)\n", id,
                hex_encode(ByteView(r.value.data(), 8)).c_str(), r.set_size,
                r.round);
  }
  std::printf("  every node holds the same 256-bit value — XOR of all %u\n"
              "  enclave-generated contributions, none of which any host OS\n"
              "  could read (P3) or withhold after seeing the others (P5).\n",
              cfg.n);
}

}  // namespace

int main() {
  std::printf("=== sgxp2p quickstart ===\n\n");
  run_erb_quickstart();
  run_erng_quickstart();
  return 0;
}
