// Dynamic membership (Appendix G, S1): nodes join a running network through
// ERB-broadcast admission, one join per window, with the roster provably
// identical at every member after each window.
#include <cstdio>
#include <memory>

#include "net/testbed.hpp"
#include "protocol/membership.hpp"

using namespace sgxp2p;

int main() {
  std::printf("=== dynamic membership: 5-node network admits 3 joiners ===\n\n");

  const std::uint32_t n = 8;
  std::vector<NodeId> initial = {0, 1, 2, 3, 4};
  std::vector<protocol::JoinPlanEntry> plan = {{5, 0}, {6, 2}, {7, 5}};
  // Note the last join: node 7 is sponsored by node 5, itself admitted two
  // windows earlier — growth compounds.

  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 2027;
  cfg.net.base_delay = milliseconds(100);
  cfg.net.max_jitter = milliseconds(100);
  sim::Testbed bed(cfg);
  bed.build([&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                protocol::PeerConfig pc, const sgx::SimIAS& ias)
                -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::RosterNode>(platform, id, host, pc, ias,
                                                  initial, plan);
  });
  bed.start();

  std::uint32_t window = bed.config().effective_t() + 2;
  for (std::size_t w = 0; w < plan.size() + 1; ++w) {
    bed.run_rounds(window);
    std::printf("after window %zu:", w);
    for (NodeId id = 0; id < n; ++id) {
      auto& node = bed.enclave_as<protocol::RosterNode>(id);
      std::printf(" %u:%zu%s", id, node.roster().size(),
                  node.is_member() ? "M" : "-");
    }
    std::printf("\n");
  }

  std::printf("\nfinal roster at node 3: ");
  for (NodeId id : bed.enclave_as<protocol::RosterNode>(3).roster()) {
    std::printf("%u ", id);
  }
  std::printf("\nadmission order: ");
  for (NodeId id : bed.enclave_as<protocol::RosterNode>(3).admitted()) {
    std::printf("%u ", id);
  }
  std::printf("\nevery member saw the identical sequence of admissions —\n"
              "each join is an ERB decision, so the roster cannot split.\n");
  return 0;
}
