// Byzantine-robust random walks for overlay maintenance (Appendix H).
//
// Structured overlays place joining nodes via random walks; a byzantine node
// that can predict or steer the walk can eclipse its victims. Here every
// walk is keyed by a beacon epoch: (1) all honest nodes recompute the same
// walk (agreement), (2) endpoints spread near-uniformly (placement quality),
// and (3) the walk for epoch e+1 is unpredictable before epoch e+1 closes.
// Also demonstrates the common-coin load balancer on the same beacon.
#include <algorithm>
#include <cstdio>

#include "apps/beacon.hpp"
#include "apps/load_balancer.hpp"
#include "apps/random_walk.hpp"

using namespace sgxp2p;

int main() {
  std::printf("=== overlay random walks keyed by the beacon ===\n\n");

  // One beacon epoch over a small byzantine-afflicted deployment.
  apps::BeaconLog log =
      apps::run_beacon(/*n=*/9, /*epochs=*/2, /*byzantine_omitters=*/2,
                       /*seed=*/31);
  const Bytes& coin = log.entry(1).value;
  std::printf("beacon epoch 1: %s…\n\n",
              hex_encode(ByteView(coin.data(), 12)).c_str());

  apps::Overlay overlay(/*n=*/64, /*chords=*/5);
  std::printf("overlay: 64 nodes, ring + 2^j chords, degree %zu, "
              "eccentricity(0) = %u hops\n\n",
              overlay.neighbors(0).size(), overlay.eccentricity(0));

  // Two parties independently derive walk #7 — identical paths.
  auto walk_a = apps::common_coin_walk(overlay, 0, 10, coin, 7);
  auto walk_b = apps::common_coin_walk(overlay, 0, 10, coin, 7);
  std::printf("walk #7 from node 0: ");
  for (NodeId hop : walk_a.path) std::printf("%u ", hop);
  std::printf("\nindependently recomputed: %s\n\n",
              walk_a.path == walk_b.path ? "identical" : "DIVERGED (!)");

  // Placement spread over 2048 walks.
  auto hist = apps::endpoint_histogram(overlay, 0, 12, coin, 2048);
  std::uint32_t min_v = *std::min_element(hist.begin(), hist.end());
  std::uint32_t max_v = *std::max_element(hist.begin(), hist.end());
  std::printf("2048 walk endpoints over 64 nodes: min %u, max %u per node "
              "(uniform would be 32)\n\n",
              min_v, max_v);

  // Same coin drives task placement with decider quorums.
  apps::LoadBalancer balancer(coin, /*workers=*/8);
  auto counts = balancer.histogram(4000);
  std::printf("load balancer, 4000 tasks over 8 workers:");
  for (std::uint32_t c : counts) std::printf(" %u", c);
  std::printf("\n");

  apps::PlacementQuorum quorum(/*quorum=*/3);
  std::uint32_t placed = balancer.assign(123);
  (void)quorum.vote(0, 123, placed);
  (void)quorum.vote(1, 123, placed ^ 1);  // a lying decider
  (void)quorum.vote(2, 123, placed);
  auto confirmed = quorum.vote(3, 123, placed);
  std::printf("task 123: quorum of 3 matching deciders reached despite one "
              "liar: worker %d\n",
              confirmed ? static_cast<int>(*confirmed) : -1);
  return 0;
}
