// Committee voting (Appendix H, "voting schemes"): N members each submit a
// ballot; Enclaved Byzantine Agreement delivers the identical ballot vector
// everywhere, the majority wins, and a beacon coin breaks exact ties — so
// even the tie-break is unbiased and common.
//
// Byzantine members can only withhold their ballots (the usual reduction);
// they cannot forge others' ballots, vote twice, or show different ballots
// to different counters.
#include <cstdio>
#include <map>
#include <memory>

#include "adversary/strategies.hpp"
#include "apps/beacon.hpp"
#include "net/testbed.hpp"
#include "protocol/eba.hpp"

using namespace sgxp2p;

namespace {

struct Election {
  std::optional<Bytes> decision;
  std::size_t support = 0;
  std::size_t delivered = 0;
  bool unanimous_across_nodes = true;
};

Election run_election(const std::vector<std::string>& ballots,
                      std::uint32_t byzantine, std::uint64_t seed) {
  const auto n = static_cast<std::uint32_t>(ballots.size());
  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.net.base_delay = milliseconds(100);
  cfg.net.max_jitter = milliseconds(100);
  sim::Testbed bed(cfg);
  bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
          protocol::PeerConfig pc,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::EbaNode>(platform, id, host, pc, ias,
                                                   to_bytes(ballots[id]));
      },
      [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
        if (id >= n - byzantine) {
          return std::make_unique<adversary::RandomOmissionStrategy>(0.6, 0.4);
        }
        return nullptr;
      });
  bed.start();
  bed.run_rounds(cfg.effective_t() + 4, [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<protocol::EbaNode>(id).result().done) return false;
    }
    return true;
  });

  Election out;
  bool first = true;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<protocol::EbaNode>(id).result();
    if (first) {
      out.decision = r.decision;
      out.support = r.support;
      out.delivered = r.delivered;
      first = false;
    } else if (r.decision != out.decision) {
      out.unanimous_across_nodes = false;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== committee vote over EBA (9 members, 2 byzantine) ===\n\n");

  std::vector<std::string> ballots = {"approve", "approve", "reject",
                                      "approve", "reject", "approve",
                                      "approve", "reject", "reject"};
  Election e = run_election(ballots, /*byzantine=*/2, /*seed=*/11);
  std::printf("ballots: 5x approve, 4x reject (two byzantine members "
              "randomly withhold traffic)\n");
  std::printf("result : %s with %zu of %zu delivered ballots — counters "
              "agree: %s\n\n",
              e.decision ? to_string(*e.decision).c_str() : "⊥", e.support,
              e.delivered, e.unanimous_across_nodes ? "yes" : "NO (!)");

  // Exact tie: deterministic lexicographic tie-break would always favor the
  // same side, so stake the tie on a beacon coin instead — common and
  // unbiased by Theorem 5.1.
  std::vector<std::string> tied = {"blue", "blue", "blue", "blue",
                                   "gold", "gold", "gold", "gold"};
  Election t = run_election(tied, 0, 13);
  std::printf("tie election: 4x blue vs 4x gold → EBA majority support = "
              "%zu (a tie)\n",
              t.support);
  apps::BeaconLog log = apps::run_beacon(/*n=*/7, /*epochs=*/1,
                                         /*byzantine_omitters=*/1,
                                         /*seed=*/13);
  bool blue_wins = (log.entry(0).value[0] & 1) == 0;
  std::printf("beacon coin %02x… → tie broken for: %s\n",
              log.entry(0).value[0], blue_wins ? "blue" : "gold");
  std::printf("(every member derives the same winner from the same epoch "
              "value; no member could bias or predict it)\n");
  return 0;
}
