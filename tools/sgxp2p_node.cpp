// sgxp2p-node — one protocol node as a standalone process.
//
// N instances of this binary form a real multi-process deployment (one per
// terminal, container, or machine): each owns a MeshTransport endpoint,
// performs the attested setup over the wire, synchronizes the start time
// through node 0 (assumption S2), and then runs ERB or ERNG with wall-clock
// rounds. This is the closest in-repo analogue to the paper's 40-machine
// DeterLab run.
//
//   for i in $(seq 0 6); do
//     ./sgxp2p-node --id $i --n 7 --base-port 45100 &
//   done; wait
//
// Control messages ride the mesh with a tag byte: H handshake, Q sequence
// blob, R ready, S start(t0), D protocol data.
//
// Flags: --id K --n N --base-port P [--t T] [--protocol erb|erng]
//        [--initiator I] [--payload STR] [--round-ms MS] [--seed S]
//        [--out FILE]
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/mesh_transport.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"
#include "sgx/platform.hpp"

using namespace sgxp2p;

namespace {

const char* arg_value(int argc, char** argv, const char* name,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

class MeshHost final : public sgx::EnclaveHostIface {
 public:
  explicit MeshHost(net::MeshTransport& mesh) : mesh_(&mesh) {}
  void transfer(NodeId to, Bytes blob) override {
    Bytes framed;
    framed.reserve(blob.size() + 1);
    framed.push_back('D');
    append(framed, blob);
    mesh_->send(to, framed);
  }

 private:
  net::MeshTransport* mesh_;
};

struct Coordinator {
  std::mutex mu;
  std::condition_variable cv;
  std::uint32_t hellos = 0;
  std::uint32_t seqs = 0;
  std::uint32_t readies = 0;
  SimTime t0 = 0;

  template <typename Pred>
  bool wait_for(Pred pred, int timeout_ms) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       std::move(pred));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const NodeId id = std::atoi(arg_value(argc, argv, "--id", "0"));
  const std::uint32_t n = std::atoi(arg_value(argc, argv, "--n", "4"));
  const int base_port = std::atoi(arg_value(argc, argv, "--base-port", "45100"));
  std::uint32_t t = std::atoi(arg_value(argc, argv, "--t", "0"));
  const std::string protocol = arg_value(argc, argv, "--protocol", "erb");
  const NodeId initiator = std::atoi(arg_value(argc, argv, "--initiator", "0"));
  const std::string payload_str =
      arg_value(argc, argv, "--payload", "multi-process broadcast");
  const SimDuration round_ms =
      std::atoi(arg_value(argc, argv, "--round-ms", "300"));
  const std::uint64_t seed = std::atoll(arg_value(argc, argv, "--seed", "7"));
  const char* out_path = arg_value(argc, argv, "--out", nullptr);
  if (t == 0) t = (n - 1) / 2;
  if (id >= n || 2 * t >= n) {
    std::fprintf(stderr, "bad --id/--n/--t\n");
    return 2;
  }

  std::vector<net::PeerAddress> peers(n);
  for (NodeId i = 0; i < n; ++i) {
    peers[i] = {"127.0.0.1", static_cast<std::uint16_t>(base_port + i)};
  }
  net::MeshTransport mesh(id, std::move(peers));

  // The platform seed is deployment-wide so every process trusts the same
  // attestation root (in production: Intel's actual root).
  static net::RealtimeClock clock;
  std::uint8_t seed_bytes[16];
  store_le64(seed_bytes, seed);
  store_le64(seed_bytes + 8, 0x73677870ULL);
  sgx::SgxPlatform platform(clock, ByteView(seed_bytes, sizeof seed_bytes));
  sgx::SimIAS ias(platform);

  MeshHost host(mesh);
  protocol::PeerConfig pc;
  pc.self = id;
  pc.n = n;
  pc.t = t;
  pc.round_ms = round_ms;
  pc.mode = protocol::ChannelMode::kAttested;

  std::unique_ptr<protocol::PeerEnclave> enclave;
  if (protocol == "erb") {
    enclave = std::make_unique<protocol::ErbNode>(
        platform, id, host, pc, ias, initiator,
        id == initiator ? to_bytes(payload_str) : Bytes{});
  } else if (protocol == "erng") {
    enclave =
        std::make_unique<protocol::ErngBasicNode>(platform, id, host, pc, ias);
  } else {
    std::fprintf(stderr, "unknown --protocol\n");
    return 2;
  }

  Coordinator coord;
  std::mutex state_mu;  // serializes all enclave access
  Bytes my_hello;

  mesh.set_receiver([&](NodeId from, Bytes blob) {
    if (blob.empty()) return;
    std::uint8_t tag = blob[0];
    ByteView body(blob.data() + 1, blob.size() - 1);
    switch (tag) {
      case 'H': {
        std::lock_guard<std::mutex> lock(state_mu);
        if (enclave->accept_handshake(body)) {
          std::lock_guard<std::mutex> coord_lock(coord.mu);
          ++coord.hellos;
          coord.cv.notify_all();
        }
        break;
      }
      case 'Q': {
        std::lock_guard<std::mutex> lock(state_mu);
        if (enclave->accept_seq_blob(from, body)) {
          std::lock_guard<std::mutex> clock_lock(coord.mu);
          ++coord.seqs;
          coord.cv.notify_all();
        }
        break;
      }
      case 'R': {
        std::lock_guard<std::mutex> lock(coord.mu);
        ++coord.readies;
        coord.cv.notify_all();
        break;
      }
      case 'S': {
        if (body.size() == 8) {
          std::lock_guard<std::mutex> lock(coord.mu);
          coord.t0 = static_cast<SimTime>(load_le64(body.data()));
          coord.cv.notify_all();
        }
        break;
      }
      case 'D': {
        std::lock_guard<std::mutex> lock(state_mu);
        enclave->deliver(from, body);
        break;
      }
      default:
        break;
    }
  });

  if (!mesh.start()) {
    std::fprintf(stderr, "node %u: mesh failed\n", id);
    return 1;
  }

  // --- setup phase over the wire ---
  {
    std::lock_guard<std::mutex> lock(state_mu);
    my_hello = enclave->handshake_blob();
  }
  for (NodeId j = 0; j < n; ++j) {
    if (j == id) continue;
    Bytes h;
    h.push_back('H');
    append(h, my_hello);
    mesh.send(j, h);
  }
  // Once every peer's handshake is in, our links exist — ship the sequence
  // blobs. Per-connection TCP FIFO guarantees each peer sees our H before
  // our Q, so its link exists by the time the Q arrives.
  if (!coord.wait_for([&] { return coord.hellos >= n - 1; }, 20000)) {
    std::fprintf(stderr, "node %u: handshake phase timed out\n", id);
    return 1;
  }
  for (NodeId j = 0; j < n; ++j) {
    if (j == id) continue;
    Bytes q;
    q.push_back('Q');
    {
      std::lock_guard<std::mutex> lock(state_mu);
      append(q, enclave->make_seq_blob(j));
    }
    mesh.send(j, q);
  }
  if (!coord.wait_for([&] { return coord.seqs >= n - 1; }, 20000)) {
    std::fprintf(stderr, "node %u: sequence phase timed out\n", id);
    return 1;
  }

  // --- synchronized start (S2): node 0 fixes T0 on the shared clock ---
  if (id != 0) {
    mesh.send(0, Bytes{'R'});
  }
  if (id == 0) {
    if (!coord.wait_for([&] { return coord.readies >= n - 1; }, 20000)) {
      std::fprintf(stderr, "node 0: barrier timed out\n");
      return 1;
    }
    SimTime t0 = clock.now() + 4 * round_ms;
    Bytes s;
    s.push_back('S');
    std::uint8_t body[8];
    store_le64(body, static_cast<std::uint64_t>(t0));
    s.insert(s.end(), body, body + 8);
    for (NodeId j = 1; j < n; ++j) mesh.send(j, s);
    std::lock_guard<std::mutex> lock(coord.mu);
    coord.t0 = t0;
  } else if (!coord.wait_for([&] { return coord.t0 != 0; }, 20000)) {
    std::fprintf(stderr, "node %u: start signal timed out\n", id);
    return 1;
  }

  {
    std::lock_guard<std::mutex> lock(state_mu);
    enclave->start_protocol(coord.t0);
  }

  // --- lockstep round loop on the shared wall clock ---
  const std::uint32_t max_rounds = t + 4;
  for (std::uint32_t r = 1; r <= max_rounds; ++r) {
    SimTime boundary = coord.t0 + static_cast<SimTime>(r - 1) * round_ms;
    SimTime wait = boundary - clock.now();
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    bool done = false;
    {
      std::lock_guard<std::mutex> lock(state_mu);
      enclave->on_tick();
      if (protocol == "erb") {
        done = static_cast<protocol::ErbNode*>(enclave.get())
                   ->result()
                   .decided;
      } else {
        done = static_cast<protocol::ErngBasicNode*>(enclave.get())
                   ->result()
                   .done;
      }
    }
    if (done) {
      // Stay online one extra round so peers still get our ACKs/echoes.
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * round_ms));
      break;
    }
  }

  // --- report ---
  std::string line;
  {
    std::lock_guard<std::mutex> lock(state_mu);
    if (protocol == "erb") {
      const auto& res =
          static_cast<protocol::ErbNode*>(enclave.get())->result();
      line = "id=" + std::to_string(id) +
             " decided=" + (res.decided ? "1" : "0") + " value=" +
             (res.value ? to_string(*res.value) : std::string("BOTTOM")) +
             " round=" + std::to_string(res.round);
    } else {
      const auto& res =
          static_cast<protocol::ErngBasicNode*>(enclave.get())->result();
      line = "id=" + std::to_string(id) + " decided=" +
             (res.done ? "1" : "0") + " value=" + hex_encode(res.value) +
             " set=" + std::to_string(res.set_size);
    }
  }
  std::printf("%s\n", line.c_str());
  if (out_path != nullptr) {
    if (FILE* f = std::fopen(out_path, "w")) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }
  mesh.stop();
  return 0;
}
