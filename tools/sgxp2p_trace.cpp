// sgxp2p-trace — offline analyzer for JSONL traces emitted by the benches
// (`--trace`) and sgxp2p-sim.
//
// Reads one trace file and reconstructs, from the raw event stream:
//   * a per-round table of protocol sends by message type (INIT/ECHO/ACK/…),
//     whose grand total matches the bench's reported message count in honest
//     runs (setup-phase traffic bypasses the simulated network and is not
//     traced either, so the two totals line up);
//   * the honest-decision latency distribution (per-node protocol_start →
//     decide, virtual ms);
//   * a byzantine-chain stall heuristic: maximal runs of rounds that tick
//     (round_begin) but carry no protocol traffic and produce no decision —
//     the signature of the Section 6.3 chain adversary delaying release.
//
//   sgxp2p-trace BENCH_fig2a.trace.jsonl
//
// Exit status: 0 on success, 1 on unreadable input, 2 on malformed lines.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"

using sgxp2p::obs::JsonValue;
using sgxp2p::obs::json_parse;

namespace {

bool is_protocol_component(const std::string& c) {
  // Everything that isn't infrastructure (net/sim/channel/sgx) is a protocol
  // namespace: erb, erng, eba, peer.
  return c != "net" && c != "sim" && c != "channel" && c != "sgx";
}

struct RoundRow {
  std::map<std::string, std::uint64_t> by_type;  // INIT → count
  std::uint64_t sends = 0;
  std::uint64_t begins = 0;   // round_begin events seen for this round
  std::uint64_t decides = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: sgxp2p-trace <trace.jsonl>\n");
    return argc == 2 ? 0 : 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }

  std::map<std::int64_t, RoundRow> rounds;
  std::set<std::string> types_seen;
  std::map<std::uint32_t, std::int64_t> start_vt;   // node → protocol_start vt
  std::vector<std::int64_t> decide_latency_ms;      // one per decide event
  std::uint64_t total_events = 0;
  std::uint64_t bad_lines = 0;
  std::uint64_t net_sends = 0;
  std::uint64_t net_drops = 0;
  std::uint64_t halts = 0;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto doc = json_parse(line);
    if (!doc || !doc->is_object()) {
      if (++bad_lines <= 3) {
        std::fprintf(stderr, "malformed JSON on line %zu\n", lineno);
      }
      continue;
    }
    ++total_events;
    const JsonValue* comp = doc->get("component");
    const JsonValue* event = doc->get("event");
    const JsonValue* vt = doc->get("vt");
    const JsonValue* node = doc->get("node");
    if (comp == nullptr || event == nullptr || vt == nullptr ||
        node == nullptr) {
      ++bad_lines;
      continue;
    }
    const std::string& c = comp->string;
    const std::string& e = event->string;

    if (c == "net") {
      if (e == "send") ++net_sends;
      if (e == "drop") ++net_drops;
      continue;
    }
    if (!is_protocol_component(c)) continue;

    if (e == "protocol_start") {
      start_vt.emplace(static_cast<std::uint32_t>(node->as_int()),
                       vt->as_int());
    } else if (e == "round_begin") {
      const JsonValue* r = doc->get("round");
      if (r != nullptr) ++rounds[r->as_int()].begins;
    } else if (e == "send") {
      const JsonValue* r = doc->get("round");
      const JsonValue* t = doc->get("type");
      std::int64_t rd = r != nullptr ? r->as_int() : 0;
      RoundRow& row = rounds[rd];
      ++row.sends;
      std::string type = t != nullptr && t->is_string() ? t->string : "?";
      ++row.by_type[type];
      types_seen.insert(type);
    } else if (e == "decide") {
      const JsonValue* r = doc->get("round");
      if (r != nullptr) ++rounds[r->as_int()].decides;
      auto it = start_vt.find(static_cast<std::uint32_t>(node->as_int()));
      std::int64_t t0 = it != start_vt.end() ? it->second : 0;
      decide_latency_ms.push_back(vt->as_int() - t0);
    } else if (e == "halt") {
      ++halts;
    }
  }

  if (total_events == 0) {
    std::fprintf(stderr, "no events in %s\n", argv[1]);
    return 2;
  }

  // --- Per-round message table ---
  std::printf("=== per-round protocol sends (%s) ===\n", argv[1]);
  std::printf("%8s", "round");
  for (const std::string& t : types_seen) std::printf(" %8s", t.c_str());
  std::printf(" %8s %8s\n", "total", "decides");
  std::uint64_t grand_total = 0;
  for (const auto& [round, row] : rounds) {
    std::printf("%8lld", static_cast<long long>(round));
    for (const std::string& t : types_seen) {
      auto it = row.by_type.find(t);
      std::printf(" %8llu", static_cast<unsigned long long>(
                                it != row.by_type.end() ? it->second : 0));
    }
    std::printf(" %8llu %8llu\n", static_cast<unsigned long long>(row.sends),
                static_cast<unsigned long long>(row.decides));
    grand_total += row.sends;
  }
  std::printf("protocol sends total : %llu\n",
              static_cast<unsigned long long>(grand_total));
  std::printf("network sends/drops  : %llu / %llu\n",
              static_cast<unsigned long long>(net_sends),
              static_cast<unsigned long long>(net_drops));
  if (halts > 0) {
    std::printf("halts (P4 divergence): %llu\n",
                static_cast<unsigned long long>(halts));
  }

  // --- Decision latency distribution ---
  if (!decide_latency_ms.empty()) {
    std::sort(decide_latency_ms.begin(), decide_latency_ms.end());
    auto pct = [&](double p) {
      std::size_t idx = static_cast<std::size_t>(
          p * static_cast<double>(decide_latency_ms.size() - 1));
      return decide_latency_ms[idx];
    };
    std::printf("\n=== decision latency (virtual ms, %zu decisions) ===\n",
                decide_latency_ms.size());
    std::printf("min %lld  p50 %lld  p90 %lld  max %lld\n",
                static_cast<long long>(decide_latency_ms.front()),
                static_cast<long long>(pct(0.5)), static_cast<long long>(pct(0.9)),
                static_cast<long long>(decide_latency_ms.back()));
  } else {
    std::printf("\nno decide events — run did not terminate or decisions "
                "were not traced\n");
  }

  // --- Chain-stall heuristic ---
  // A "stalled" round ticks but moves no protocol messages and decides
  // nothing; the Section 6.3 chain adversary produces long runs of these
  // while it withholds the release.
  std::int64_t stall_start = 0;
  std::uint64_t stall_len = 0, best_len = 0;
  std::int64_t best_start = 0;
  for (const auto& [round, row] : rounds) {
    if (row.begins > 0 && row.sends == 0 && row.decides == 0) {
      if (stall_len == 0) stall_start = round;
      ++stall_len;
      if (stall_len > best_len) {
        best_len = stall_len;
        best_start = stall_start;
      }
    } else {
      stall_len = 0;
    }
  }
  if (best_len >= 3) {
    std::printf("\nstall detected: rounds %lld..%lld (%llu quiet rounds) — "
                "consistent with a chain/delay adversary\n",
                static_cast<long long>(best_start),
                static_cast<long long>(best_start +
                                       static_cast<std::int64_t>(best_len) - 1),
                static_cast<unsigned long long>(best_len));
  }

  if (bad_lines > 0) {
    std::fprintf(stderr, "%llu malformed line(s) skipped\n",
                 static_cast<unsigned long long>(bad_lines));
    return 2;
  }
  return 0;
}
