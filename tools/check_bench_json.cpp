// check_bench_json — python-free smoke check for the bench metrics output.
//
// Optionally runs a bench binary (everything after `--` is the command),
// then parses the JSON file it was told to emit and validates the contract
// documented in docs/OBSERVABILITY.md:
//   * top-level object with a "bench" string and a "metrics" object;
//   * "metrics" has "counters", "gauges", and "histograms" objects;
//   * the net.sends counter exists and is a positive integer (every bench
//     moves at least one simulated message);
//   * every histogram carries equal-length-plus-one "bounds"/"buckets"
//     arrays and integral "count"/"sum".
//
//   check_bench_json BENCH_fig2a.json -- ./bench_fig2a --max-exp 3 --metrics-out BENCH_fig2a.json
//   check_bench_json existing.json
//
// Regression-gate mode: `--compare baseline.json` additionally diffs the
// fresh counters against a committed snapshot. Counters selected by
// `--compare-keys p1,p2,…` (name-prefix match; default: every counter in
// the baseline) must satisfy |cur − base| ≤ tolerance · max(|base|, 1),
// with `--tolerance F` defaulting to 0 (exact). Deterministic simulation
// counters (bench_scale) gate at 0; time-boxed microbench counters
// (bench_micro) use a loose tolerance that still catches order-of-magnitude
// throughput collapses. Counters present in the current run but absent from
// the baseline are ignored, so adding metrics never breaks the gate.
//
//   check_bench_json BENCH_scale.json --compare tests/baselines/BENCH_scale.json
//
// Exit status 0 = valid, 1 = invalid or missing, 2 = bench command failed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using sgxp2p::obs::JsonValue;
using sgxp2p::obs::json_parse;

namespace {

int fail(const char* what) {
  std::fprintf(stderr, "check_bench_json: %s\n", what);
  return 1;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::optional<JsonValue> load_json(const char* path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return json_parse(buf.str());
}

/// Appends one markdown line per failing counter to $GITHUB_STEP_SUMMARY
/// (when CI sets it), so a red release-perf job names the drifted key on
/// the run's summary page instead of burying it in the log.
void summarize_failures(const std::vector<std::string>& lines) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || lines.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "### check_bench_json: counter regression\n";
  for (const std::string& line : lines) out << "- " << line << "\n";
}

/// Diffs current counters against the baseline's. Returns the number of
/// counters outside tolerance (0 = gate passes).
int compare_counters(const JsonValue& current, const JsonValue& baseline,
                     const std::vector<std::string>& prefixes,
                     double tolerance) {
  int bad = 0;
  int compared = 0;
  std::vector<std::string> failures;
  for (const auto& [name, base_v] : baseline.object) {
    if (base_v.type != JsonValue::Type::kInt) continue;
    if (!prefixes.empty()) {
      bool match = false;
      for (const std::string& p : prefixes) {
        if (name.rfind(p, 0) == 0) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    ++compared;
    const JsonValue* cur_v = current.get(name);
    if (cur_v == nullptr || cur_v->type != JsonValue::Type::kInt) {
      std::fprintf(stderr,
                   "check_bench_json: counter %s in baseline but missing "
                   "from the current run\n",
                   name.c_str());
      failures.push_back("`" + name + "` missing from the current run");
      ++bad;
      continue;
    }
    const double base = static_cast<double>(base_v.integer);
    const double cur = static_cast<double>(cur_v->integer);
    const double limit = tolerance * std::max(std::fabs(base), 1.0);
    if (std::fabs(cur - base) > limit) {
      std::fprintf(stderr,
                   "check_bench_json: counter %s drifted: baseline %lld, "
                   "current %lld, tolerance %.3f\n",
                   name.c_str(), static_cast<long long>(base_v.integer),
                   static_cast<long long>(cur_v->integer), tolerance);
      failures.push_back("`" + name + "` baseline " +
                         std::to_string(base_v.integer) + ", current " +
                         std::to_string(cur_v->integer));
      ++bad;
    }
  }
  std::printf("compare: %d counter(s) checked, %d outside tolerance\n",
              compared, bad);
  summarize_failures(failures);
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: check_bench_json <json-path> [--compare base.json] "
                 "[--tolerance F] [--compare-keys p1,p2] [-- bench-cmd ...]\n");
    return 1;
  }
  const char* path = argv[1];
  const char* compare_path = nullptr;
  double tolerance = 0.0;
  std::vector<std::string> compare_keys;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) break;
    if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--compare-keys") == 0 && i + 1 < argc) {
      compare_keys = split_csv(argv[++i]);
    } else {
      std::fprintf(stderr, "check_bench_json: unknown option %s\n", argv[i]);
      return 1;
    }
  }

  // Run the bench first when a command follows `--`.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") != 0) continue;
    std::string cmd;
    for (int j = i + 1; j < argc; ++j) {
      if (!cmd.empty()) cmd += ' ';
      cmd += argv[j];
    }
    if (cmd.empty()) return fail("empty bench command after --");
    std::printf("running: %s\n", cmd.c_str());
    int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "check_bench_json: bench exited with %d\n", rc);
      return 2;
    }
    break;
  }

  std::ifstream in(path);
  if (!in) return fail("metrics JSON file missing");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = json_parse(buf.str());
  if (!doc) return fail("file is not valid JSON");
  if (!doc->is_object()) return fail("top level is not an object");

  const JsonValue* bench = doc->get("bench");
  if (bench == nullptr || !bench->is_string() || bench->string.empty()) {
    return fail("missing \"bench\" name");
  }
  const JsonValue* metrics = doc->get("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return fail("missing \"metrics\" object");
  }
  const JsonValue* counters = metrics->get("counters");
  const JsonValue* gauges = metrics->get("gauges");
  const JsonValue* histograms = metrics->get("histograms");
  if (counters == nullptr || !counters->is_object()) {
    return fail("metrics.counters missing");
  }
  if (gauges == nullptr || !gauges->is_object()) {
    return fail("metrics.gauges missing");
  }
  if (histograms == nullptr || !histograms->is_object()) {
    return fail("metrics.histograms missing");
  }

  // Every simulation bench moves at least one message (net.sends); the
  // socket bench moves frames over real TCP (net.tcp.sends); the
  // microbenchmark moves none but must have sealed at least one byte
  // (crypto.seal_bytes). Accept any as proof of real work.
  const JsonValue* net_sends = counters->get("net.sends");
  const JsonValue* tcp_sends = counters->get("net.tcp.sends");
  const JsonValue* seal_bytes = counters->get("crypto.seal_bytes");
  auto positive_int = [](const JsonValue* v) {
    return v != nullptr && v->type == JsonValue::Type::kInt && v->integer > 0;
  };
  if (!positive_int(net_sends) && !positive_int(tcp_sends) &&
      !positive_int(seal_bytes)) {
    return fail(
        "none of counters[\"net.sends\"], counters[\"net.tcp.sends\"], "
        "counters[\"crypto.seal_bytes\"] is a positive integer");
  }

  for (const auto& [name, h] : histograms->object) {
    const JsonValue* bounds = h.get("bounds");
    const JsonValue* buckets = h.get("buckets");
    const JsonValue* count = h.get("count");
    const JsonValue* sum = h.get("sum");
    if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
        !buckets->is_array() ||
        buckets->array.size() != bounds->array.size() + 1) {
      std::fprintf(stderr, "check_bench_json: histogram %s malformed\n",
                   name.c_str());
      return 1;
    }
    if (count == nullptr || count->type != JsonValue::Type::kInt ||
        sum == nullptr || sum->type != JsonValue::Type::kInt) {
      std::fprintf(stderr, "check_bench_json: histogram %s count/sum bad\n",
                   name.c_str());
      return 1;
    }
    std::int64_t bucket_total = 0;
    for (const JsonValue& b : buckets->array) bucket_total += b.as_int();
    if (bucket_total != count->integer) {
      std::fprintf(stderr,
                   "check_bench_json: histogram %s buckets don't sum to "
                   "count\n",
                   name.c_str());
      return 1;
    }
  }

  if (compare_path != nullptr) {
    auto base_doc = load_json(compare_path);
    if (!base_doc || !base_doc->is_object()) {
      return fail("baseline file missing or not valid JSON");
    }
    const JsonValue* base_metrics = base_doc->get("metrics");
    const JsonValue* base_counters =
        base_metrics != nullptr ? base_metrics->get("counters") : nullptr;
    if (base_counters == nullptr || !base_counters->is_object()) {
      return fail("baseline has no metrics.counters object");
    }
    if (compare_counters(*counters, *base_counters, compare_keys, tolerance) >
        0) {
      return fail("counter regression against the committed baseline");
    }
  }

  std::printf("ok: %s (bench=%s, net.sends=%lld, crypto.seal_bytes=%lld, "
              "%zu counters, %zu histograms)\n",
              path, bench->string.c_str(),
              static_cast<long long>(
                  net_sends != nullptr ? net_sends->integer : 0),
              static_cast<long long>(
                  seal_bytes != nullptr ? seal_bytes->integer : 0),
              counters->object.size(), histograms->object.size());
  return 0;
}
