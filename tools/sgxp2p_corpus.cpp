// sgxp2p-corpus — offline coverage-map and corpus maintenance.
//
// The fuzzer's coverage maps (src/fuzz/coverage.hpp) are pure functions of
// their schedules, so everything here works from `.sched` files alone: each
// schedule is re-run deterministically and its bitmap recomputed, which is
// exactly how the nightly job distills a 10k-campaign corpus down to the
// handful of schedules that still light every bit.
//
//   sgxp2p-corpus cover   <dir|file.sched ...> [--map out.map]
//       Run every schedule, print per-schedule novelty against the running
//       aggregate, and the final aggregate bit count. --map writes the
//       aggregate for later diffing.
//
//   sgxp2p-corpus diff    <a.map> <b.map>
//       Compare two coverage maps. Prints shared / only-a / only-b bit
//       counts. Exit 0 iff identical, 1 otherwise (so CI can use it as a
//       drift check).
//
//   sgxp2p-corpus distill <dir> --out <out-dir> [--map campaign.map]
//       Greedy set-cover: walk the directory's schedules in deterministic
//       (sorted-path) order, keep each one whose map adds bits the kept set
//       lacks, and copy the keepers into --out together with a
//       `distilled.map` of their union. With --map, additionally verify the
//       keepers still cover the campaign's recorded aggregate (bits only a
//       since-fixed run produced are reported, not fatal: coverage from
//       crashing/violating runs is not reproducible from the corpus alone).
//
// Exit status: 0 ok, 1 mismatch/violation of the requested property,
// 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/coverage.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/schedule.hpp"

namespace fs = std::filesystem;
using namespace sgxp2p::fuzz;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sgxp2p-corpus cover   <dir|file.sched ...> [--map out.map]\n"
               "       sgxp2p-corpus diff    <a.map> <b.map>\n"
               "       sgxp2p-corpus distill <dir> --out <out-dir> "
               "[--map campaign.map]\n");
  return 2;
}

/// Expands arguments into a sorted list of .sched paths. Directories are
/// scanned one level deep; explicit files are taken as-is. Sorting keeps
/// `cover` and `distill` output independent of directory iteration order.
std::vector<std::string> collect_schedules(
    const std::vector<std::string>& inputs) {
  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::directory_iterator(input, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".sched") {
          paths.push_back(entry.path().string());
        }
      }
    } else {
      paths.push_back(input);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

struct LoadedSchedule {
  std::string path;
  Schedule schedule;
  CoverageMap map;
};

/// Loads and re-runs every schedule, recomputing its coverage map. Parse
/// failures are fatal (a corpus with broken files should not silently
/// shrink); the run itself cannot fail — violating schedules still produce
/// a report and a map.
bool load_and_run(const std::vector<std::string>& paths,
                  std::vector<LoadedSchedule>& out) {
  for (const std::string& path : paths) {
    std::string error;
    auto schedule = Schedule::load_file(path, &error);
    if (!schedule) {
      std::fprintf(stderr, "sgxp2p-corpus: %s: %s\n", path.c_str(),
                   error.c_str());
      return false;
    }
    RunReport report = run_schedule(*schedule);
    out.push_back({path, std::move(*schedule), report.coverage});
  }
  return true;
}

int cmd_cover(const std::vector<std::string>& inputs,
              const std::string& map_out) {
  const std::vector<std::string> paths = collect_schedules(inputs);
  if (paths.empty()) {
    std::fprintf(stderr, "sgxp2p-corpus: no .sched files found\n");
    return 2;
  }
  std::vector<LoadedSchedule> runs;
  if (!load_and_run(paths, runs)) return 2;
  CoverageMap aggregate;
  for (const LoadedSchedule& run : runs) {
    const std::size_t gained = aggregate.merge(run.map);
    std::printf("%s: %zu bit(s), +%zu new\n", run.path.c_str(),
                run.map.count(), gained);
  }
  std::printf("aggregate: %zu schedule(s), %zu bit(s) lit\n", runs.size(),
              aggregate.count());
  if (!map_out.empty()) {
    if (!aggregate.write_file(map_out)) {
      std::fprintf(stderr, "sgxp2p-corpus: cannot write %s\n",
                   map_out.c_str());
      return 2;
    }
    std::printf("wrote %s\n", map_out.c_str());
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  std::string error;
  auto a = CoverageMap::load_file(a_path, &error);
  if (!a) {
    std::fprintf(stderr, "sgxp2p-corpus: %s: %s\n", a_path.c_str(),
                 error.c_str());
    return 2;
  }
  auto b = CoverageMap::load_file(b_path, &error);
  if (!b) {
    std::fprintf(stderr, "sgxp2p-corpus: %s: %s\n", b_path.c_str(),
                 error.c_str());
    return 2;
  }
  const std::size_t only_a = b->novel_bits(*a);  // set in a, missing from b
  const std::size_t only_b = a->novel_bits(*b);
  const std::size_t shared = a->count() - only_a;
  std::printf("shared %zu | only %s %zu | only %s %zu\n", shared,
              a_path.c_str(), only_a, b_path.c_str(), only_b);
  if (*a == *b) {
    std::printf("maps identical\n");
    return 0;
  }
  return 1;
}

int cmd_distill(const std::string& dir, const std::string& out_dir,
                const std::string& campaign_map_path) {
  const std::vector<std::string> paths = collect_schedules({dir});
  if (paths.empty()) {
    std::fprintf(stderr, "sgxp2p-corpus: no .sched files in %s\n",
                 dir.c_str());
    return 2;
  }
  std::vector<LoadedSchedule> runs;
  if (!load_and_run(paths, runs)) return 2;

  // Greedy pass in deterministic order: a schedule survives iff it lights
  // a bit the kept set has not. Order-greedy (not max-gain-first) keeps the
  // pass O(corpus) and reproducible; the corpus was itself built by the
  // same novelty rule, so the result is already near-minimal.
  CoverageMap kept_union;
  std::vector<const LoadedSchedule*> kept;
  for (const LoadedSchedule& run : runs) {
    if (kept_union.merge(run.map) > 0) kept.push_back(&run);
  }

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  for (const LoadedSchedule* run : kept) {
    const std::string dest =
        (fs::path(out_dir) / fs::path(run->path).filename()).string();
    if (!run->schedule.write_file(dest)) {
      std::fprintf(stderr, "sgxp2p-corpus: cannot write %s\n", dest.c_str());
      return 2;
    }
  }
  const std::string map_path = (fs::path(out_dir) / "distilled.map").string();
  if (!kept_union.write_file(map_path)) {
    std::fprintf(stderr, "sgxp2p-corpus: cannot write %s\n", map_path.c_str());
    return 2;
  }
  std::printf("distilled %zu → %zu schedule(s), %zu bit(s) preserved\n",
              runs.size(), kept.size(), kept_union.count());

  if (!campaign_map_path.empty()) {
    std::string error;
    auto campaign = CoverageMap::load_file(campaign_map_path, &error);
    if (!campaign) {
      std::fprintf(stderr, "sgxp2p-corpus: %s: %s\n",
                   campaign_map_path.c_str(), error.c_str());
      return 2;
    }
    const std::size_t missing = kept_union.novel_bits(*campaign);
    if (kept_union.covers(*campaign)) {
      std::printf("campaign map fully covered\n");
    } else {
      // Not fatal: the campaign aggregate includes bits from runs whose
      // schedules the corpus never kept (novelty is judged against the
      // evolving aggregate, so a later duplicate contributes nothing but an
      // earlier one may have carried unique oracle/metric bits).
      std::printf("campaign map: %zu bit(s) not reproducible from corpus\n",
                  missing);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::vector<std::string> positional;
  std::string map_arg;
  std::string out_arg;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--map") == 0 && i + 1 < argc) {
      map_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_arg = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "sgxp2p-corpus: unknown option %s\n", argv[i]);
      return usage();
    } else {
      positional.emplace_back(argv[i]);
    }
  }

  if (cmd == "cover") {
    if (positional.empty()) return usage();
    return cmd_cover(positional, map_arg);
  }
  if (cmd == "diff") {
    if (positional.size() != 2) return usage();
    return cmd_diff(positional[0], positional[1]);
  }
  if (cmd == "distill") {
    if (positional.size() != 1 || out_arg.empty()) return usage();
    return cmd_distill(positional[0], out_arg, map_arg);
  }
  return usage();
}
