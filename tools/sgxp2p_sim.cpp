// sgxp2p-sim — command-line experiment runner.
//
// Runs one protocol execution over the deterministic simulator and reports
// rounds, virtual termination time, message/byte traffic, and per-node
// outcomes. Every figure in EXPERIMENTS.md can be reproduced ad hoc from
// this tool; it is also the quickest way to explore adversary behavior.
//
//   sgxp2p-sim --protocol erb --n 512 --adversary chain --byz 128
//   sgxp2p-sim --protocol erng-opt --n 256 --csv
//   sgxp2p-sim --protocol eba --n 9 --adversary omission --byz 3
//   sgxp2p-sim --protocol recovery --n 6 --crash-at 3 --recover-after 4
//   sgxp2p-sim --protocol recovery --n 6 --stale-replay
//   sgxp2p-sim --protocol shard --n 2000 --epochs 3
//
// Flags:
//   --protocol erb|erng|erng-opt|eba|recovery|shard   (default erb)
//   --n <int>                            network size (default 9)
//   --t <int>                            byzantine bound (default (n-1)/2,
//                                        or n/3 for erng-opt)
//   --adversary none|chain|omission|crash|delay|replay   (default none)
//   --byz <int>                          byzantine node count (default 0)
//   --seed <int>                         determinism seed (default 1)
//   --delta-ms <int>                     one-way delay bound Δ (default 500)
//   --mode attested|accounted            channel mode (default attested for
//                                        n ≤ 128, else accounted)
//   --engine wheel|heap|parallel         simulator event engine (default
//                                        wheel; heap = reference engine;
//                                        parallel = Δ-lockstep worker pool)
//   --jobs <int>                         worker count for --engine parallel
//                                        (default 0 = SGXP2P_SIM_JOBS env or
//                                        hardware concurrency). An active
//                                        --adversary pins jobs to 1: replay
//                                        files and adversarial schedules are
//                                        byte-stable against the serial
//                                        execution they were recorded under.
//   --sgx-costs zero|calibrated|FILE     enclave-transition cost model
//                                        (default zero). calibrated = the
//                                        measured preset (≈3.1 µs ECALL,
//                                        ≈4.0 µs OCALL, EPC paging cliff);
//                                        FILE = JSON with any of ecall_ms,
//                                        ocall_ms, ecall_ns, ocall_ns,
//                                        epc_working_set_kb, epc_resident_kb,
//                                        epc_fault_ns
//   --sgx-working-set <MB>               per-enclave EPC working set; beyond
//                                        the resident EPC every transition
//                                        pays the paging penalty fraction
//   --csv                                one machine-readable line
//   --metrics-out [path]                 write metrics snapshot JSON
//                                        (default sim_metrics.json)
//   --trace [path]                       record + write a JSONL event trace
//                                        (default sim_trace.jsonl)
//   --trace-capacity <int>               trace ring size in events (default
//                                        2^18; raise for big-N runs so the
//                                        causal DAG keeps its roots)
//
// recovery-scenario flags (--protocol recovery): node 1 of an N-member
// roster crashes, its host keeps the sealed checkpoints, the node
// relaunches, restores (or falls back to fresh re-admission), re-attests,
// rejoins through the membership windows, then participates in the roster
// ERB that admits one more fresh node — the post-recovery liveness proof.
//   --crash-at <round>                   kill the victim's enclave (default 6)
//   --recover-after <rounds>             relaunch delay (default 4)
//   --checkpoint-every <rounds>          seal interval (default 2)
//   --stale-replay                       the victim's host answers the
//                                        restore with its OLDEST sealed blob
//                                        (rollback attempt → counter trips →
//                                        fresh re-admission path)
//
// shard-scenario flags (--protocol shard, docs/SHARDING.md): each epoch
// elects K committees of size c from the beacon seed, runs committee-local
// ERB, and stitches the digests through the dissemination tree.
//   --committee-size <int>               members per committee (default 0 =
//                                        auto c(n) ≈ log₂ n + 3)
//   --committees <int>                    alternative: target committee count
//                                        (maps to committee_size n/K; ignored
//                                        when --committee-size is given)
//   --epochs <int>                       chained epochs to run (default 1)
//
// fuzzing (src/fuzz/, docs/ROBUSTNESS.md):
//   sgxp2p-sim --fuzz 500 --protocol all --fuzz-seed 7 --fuzz-out repros/
//   sgxp2p-sim --replay-schedule repros/fuzz-erb-seed7-12.sched
//
//   --fuzz <count>                       run <count> generated adversarial
//                                        schedules per target; shrink and
//                                        write a replay file per failure.
//                                        --protocol picks the target (erb,
//                                        erng, erng-opt, recovery, shard,
//                                        or all)
//   --fuzz-seed <int>                    campaign seed (default 1)
//   --fuzz-out <dir>                     directory for replay files
//   --fuzz-max-failures <int>            stop after this many shrunk
//                                        failures (default 1)
//   --fuzz-canary                        arm the test-only canary oracle
//                                        (proves the find→shrink→replay loop)
//   --fuzz-coverage <file>               coverage-guided campaign: keep a
//                                        corpus of coverage-novel schedules,
//                                        mutate them toward untouched bitmap
//                                        regions, and write the aggregate
//                                        protocol-state CoverageMap to <file>
//                                        (inspect with sgxp2p-corpus)
//   --fuzz-corpus-out <dir>              persist every corpus-retained
//                                        schedule to <dir> (feeds the nightly
//                                        distillation pass)
//   --replay-schedule <file>             re-execute a replay file and check
//                                        its expect_violation/expect_digest
//                                        stamps byte-identically
//
// exhaustive small-scope model checking (src/fuzz/mcheck.hpp):
//   sgxp2p-sim --mcheck --protocol erb --mcheck-n 3 --mcheck-rounds 2
//   sgxp2p-sim --mcheck --protocol all --mcheck-bound 2 --fuzz-out repros/
//
//   --mcheck                             walk EVERY fault combination the
//                                        bounds below admit (DFS, validity +
//                                        symmetry pruning), judge each with
//                                        the fuzz oracles, and shrink any
//                                        violation to a replayable .sched.
//                                        --protocol picks the target(s);
//                                        --seed seeds the base deployment;
//                                        --fuzz-canary / --fuzz-out apply
//   --mcheck-n <int>                     deployment size (default 3;
//                                        recovery clamps to ≥ 5, shard ≥ 4)
//   --mcheck-rounds <int>                fault-action round horizon
//                                        (default 2)
//   --mcheck-bound <int>                 max simultaneous fault actions per
//                                        explored schedule (default 2)
//   --transport sim|tcp                  fuzz/replay data plane (default
//                                        sim). tcp runs each schedule over
//                                        real localhost sockets through
//                                        TcpFaultShim; only erb/erng
//                                        schedules without crash/recover/
//                                        stale_seal are expressible — the
//                                        campaign skips the rest. Replay
//                                        over tcp checks the violated-oracle
//                                        set (wall-clock runs have no
//                                        metrics digest to compare).
//   --tcp-round-ms <int>                 wall-clock round length for
//                                        --transport tcp (default 200)
//
// Exit status: fuzz mode exits 1 when a failure was found, replay mode
// exits 1 on any mismatch — both are CI gates.
//
// SGXP2P_LOG_LEVEL=trace|debug|info|warn|error|off raises/lowers stderr
// logging verbosity.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/log.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/mcheck.hpp"
#include "fuzz/schedule.hpp"
#include "fuzz/tcp_runner.hpp"
#include "net/testbed.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/eba.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"
#include "protocol/erng_opt.hpp"
#include "recovery/coordinator.hpp"
#include "shard/coordinator.hpp"

using namespace sgxp2p;

namespace {

struct Options {
  std::string protocol = "erb";
  std::uint32_t n = 9;
  std::uint32_t t = 0;
  std::string adversary = "none";
  std::uint32_t byz = 0;
  std::uint64_t seed = 1;
  SimDuration delta_ms = 500;
  std::string mode;
  std::string engine;
  std::uint32_t jobs = 0;      // 0 = env/hardware default
  std::string sgx_costs;       // "", "zero", "calibrated", or a JSON path
  std::uint64_t sgx_working_set_mb = 0;
  bool csv = false;
  std::string metrics_path;  // empty → no snapshot written
  std::string trace_path;    // empty → tracing stays off
  std::size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  // recovery scenario
  std::uint32_t crash_at = 6;
  std::uint32_t recover_after = 4;
  std::uint32_t checkpoint_every = 2;
  bool stale_replay = false;
  // shard scenario
  std::uint32_t committee_size = 0;  // 0 = auto c(n)
  std::uint32_t committees = 0;      // 0 = derive from committee_size
  std::uint32_t epochs = 1;
  // fuzzing
  std::uint32_t fuzz = 0;  // schedules per target; 0 = fuzz mode off
  std::uint64_t fuzz_seed = 1;
  std::string fuzz_out;
  std::uint32_t fuzz_max_failures = 1;
  bool fuzz_canary = false;
  std::string fuzz_coverage;    // aggregate CoverageMap path; enables guided
  std::string fuzz_corpus_out;  // directory for corpus-retained schedules
  // model checking
  bool mcheck = false;
  std::uint32_t mcheck_n = 3;
  std::uint32_t mcheck_rounds = 2;
  std::uint32_t mcheck_bound = 2;
  std::string replay_schedule;  // replay mode when non-empty
  std::string transport = "sim";  // fuzz/replay data plane: sim | tcp
  SimDuration tcp_round_ms = 200;
};

const char* flag_value(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

Options parse(int argc, char** argv) {
  Options o;
  if (const char* v = flag_value(argc, argv, "--protocol")) o.protocol = v;
  if (const char* v = flag_value(argc, argv, "--n")) o.n = std::atoi(v);
  if (const char* v = flag_value(argc, argv, "--t")) o.t = std::atoi(v);
  if (const char* v = flag_value(argc, argv, "--adversary")) o.adversary = v;
  if (const char* v = flag_value(argc, argv, "--byz")) o.byz = std::atoi(v);
  if (const char* v = flag_value(argc, argv, "--seed")) o.seed = std::atoll(v);
  if (const char* v = flag_value(argc, argv, "--delta-ms")) {
    o.delta_ms = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--mode")) o.mode = v;
  if (const char* v = flag_value(argc, argv, "--engine")) o.engine = v;
  if (const char* v = flag_value(argc, argv, "--jobs")) {
    o.jobs = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--sgx-costs")) o.sgx_costs = v;
  if (const char* v = flag_value(argc, argv, "--sgx-working-set")) {
    o.sgx_working_set_mb = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = flag_value(argc, argv, "--crash-at")) {
    o.crash_at = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--recover-after")) {
    o.recover_after = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--checkpoint-every")) {
    o.checkpoint_every = std::atoi(v);
  }
  o.stale_replay = flag_present(argc, argv, "--stale-replay");
  if (const char* v = flag_value(argc, argv, "--committee-size")) {
    o.committee_size = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--committees")) {
    o.committees = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--epochs")) {
    o.epochs = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--fuzz")) o.fuzz = std::atoi(v);
  if (const char* v = flag_value(argc, argv, "--fuzz-seed")) {
    o.fuzz_seed = std::atoll(v);
  }
  if (const char* v = flag_value(argc, argv, "--fuzz-out")) o.fuzz_out = v;
  if (const char* v = flag_value(argc, argv, "--fuzz-max-failures")) {
    o.fuzz_max_failures = std::atoi(v);
  }
  o.fuzz_canary = flag_present(argc, argv, "--fuzz-canary");
  if (const char* v = flag_value(argc, argv, "--fuzz-coverage")) {
    o.fuzz_coverage = v;
  }
  if (const char* v = flag_value(argc, argv, "--fuzz-corpus-out")) {
    o.fuzz_corpus_out = v;
  }
  o.mcheck = flag_present(argc, argv, "--mcheck");
  if (const char* v = flag_value(argc, argv, "--mcheck-n")) {
    o.mcheck_n = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--mcheck-rounds")) {
    o.mcheck_rounds = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--mcheck-bound")) {
    o.mcheck_bound = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--replay-schedule")) {
    o.replay_schedule = v;
  }
  if (const char* v = flag_value(argc, argv, "--transport")) o.transport = v;
  if (const char* v = flag_value(argc, argv, "--tcp-round-ms")) {
    o.tcp_round_ms = std::atoi(v);
  }
  o.csv = flag_present(argc, argv, "--csv");
  if (flag_present(argc, argv, "--metrics-out")) {
    const char* v = flag_value(argc, argv, "--metrics-out");
    o.metrics_path =
        (v != nullptr && v[0] != '-') ? v : "sim_metrics.json";
  }
  if (flag_present(argc, argv, "--trace")) {
    const char* v = flag_value(argc, argv, "--trace");
    o.trace_path = (v != nullptr && v[0] != '-') ? v : "sim_trace.jsonl";
  }
  if (const char* v = flag_value(argc, argv, "--trace-capacity")) {
    std::size_t cap = std::strtoull(v, nullptr, 10);
    if (cap > 0) o.trace_capacity = cap;
  }
  return o;
}

std::unique_ptr<adversary::Strategy> make_strategy(
    const Options& o, NodeId id, std::shared_ptr<adversary::ChainPlan> plan,
    SimDuration round_ms) {
  if (id >= o.byz || o.adversary == "none") return nullptr;
  if (o.adversary == "chain") {
    return std::make_unique<adversary::ChainStrategy>(plan);
  }
  if (o.adversary == "omission") {
    return std::make_unique<adversary::RandomOmissionStrategy>(0.5, 0.3);
  }
  if (o.adversary == "crash") {
    return std::make_unique<adversary::CrashStrategy>();
  }
  if (o.adversary == "delay") {
    return std::make_unique<adversary::DelayStrategy>(2 * round_ms);
  }
  if (o.adversary == "replay") {
    return std::make_unique<adversary::ReplayStrategy>(round_ms / 4);
  }
  std::fprintf(stderr, "unknown adversary '%s'\n", o.adversary.c_str());
  std::exit(2);
}

/// Resolves --sgx-costs / --sgx-working-set into a TransitionCosts model.
/// Returns false (with a message on stderr) on an unparsable spec.
bool resolve_sgx_costs(const Options& o, sgx::TransitionCosts& out) {
  if (o.sgx_costs.empty() || o.sgx_costs == "zero") {
    // default-constructed: counting on, charging off
  } else if (o.sgx_costs == "calibrated") {
    out = sgx::TransitionCosts::calibrated();
  } else {
    std::ifstream in(o.sgx_costs);
    if (!in) {
      std::fprintf(stderr, "--sgx-costs: cannot read '%s'\n",
                   o.sgx_costs.c_str());
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto doc = obs::json_parse(buf.str());
    if (!doc || !doc->is_object()) {
      std::fprintf(stderr, "--sgx-costs: '%s' is not a JSON object\n",
                   o.sgx_costs.c_str());
      return false;
    }
    auto u64 = [&doc](const char* key, std::uint64_t& field) {
      const obs::JsonValue* v = doc->get(key);
      if (v != nullptr && v->type == obs::JsonValue::Type::kInt &&
          v->integer >= 0) {
        field = static_cast<std::uint64_t>(v->integer);
      }
    };
    std::uint64_t ecall_ms = 0;
    std::uint64_t ocall_ms = 0;
    u64("ecall_ms", ecall_ms);
    u64("ocall_ms", ocall_ms);
    out.ecall_ms = static_cast<SimDuration>(ecall_ms);
    out.ocall_ms = static_cast<SimDuration>(ocall_ms);
    u64("ecall_ns", out.ecall_ns);
    u64("ocall_ns", out.ocall_ns);
    u64("epc_working_set_kb", out.epc_working_set_kb);
    u64("epc_resident_kb", out.epc_resident_kb);
    u64("epc_fault_ns", out.epc_fault_ns);
  }
  if (o.sgx_working_set_mb > 0) {
    out.epc_working_set_kb = o.sgx_working_set_mb * 1024;
  }
  return true;
}

struct Outcome {
  std::uint32_t rounds = 0;
  double termination_s = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::string summary;
};

template <typename NodeT, typename DoneFn, typename SummaryFn>
Outcome drive(sim::Testbed& bed, std::uint32_t max_rounds, DoneFn done,
              SummaryFn summarize) {
  bed.start();
  Outcome out;
  out.rounds = bed.run_rounds(max_rounds, [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!done(bed.enclave_as<NodeT>(id))) return false;
    }
    return true;
  });
  out.messages = bed.network().meter().messages();
  out.bytes = bed.network().meter().bytes();
  SimTime latest = 0;
  for (NodeId id : bed.honest_nodes()) {
    latest = std::max(latest, summarize(bed.enclave_as<NodeT>(id), out));
  }
  out.termination_s = to_seconds(latest - bed.start_time());
  return out;
}

}  // namespace

/// Replays one schedule over real sockets. The simulator's digest covers
/// metrics and is meaningless here, so the check is the violated-oracle set
/// against the schedule's expect_violations stamp (empty = must pass).
int run_tcp_replay_mode(const Options& o) {
  std::string error;
  auto schedule = fuzz::Schedule::load_file(o.replay_schedule, &error);
  if (!schedule) {
    std::printf("replay %s: %s\n", o.replay_schedule.c_str(), error.c_str());
    return 1;
  }
  if (!schedule->validate(&error) || !fuzz::tcp_supported(*schedule, &error)) {
    std::printf("replay %s: %s\n", o.replay_schedule.c_str(), error.c_str());
    return 1;
  }
  fuzz::TcpRunOptions run_opts;
  run_opts.round_ms = o.tcp_round_ms;
  fuzz::RunReport report = fuzz::run_tcp_schedule(*schedule, run_opts);
  std::vector<std::string> actual = report.violated_oracles();
  const bool ok = actual == schedule->expect_violations;
  std::printf("replay %s over tcp: %s\n", o.replay_schedule.c_str(),
              ok ? "violated-oracle set matches" : "MISMATCH");
  std::printf("rounds  : %u\ndigest  : %s (honest outcomes only)\n"
              "outcome : %s\n",
              report.rounds, report.digest.c_str(), report.outcome.c_str());
  for (const auto& v : report.violations) {
    std::printf("violated: %s — %s\n", v.oracle.c_str(), v.detail.c_str());
  }
  return ok ? 0 : 1;
}

int run_tcp_fuzz_mode(const Options& o) {
  fuzz::TcpCampaignOptions opts;
  if (o.protocol == "erb") {
    opts.targets = {fuzz::FuzzTarget::kErb};
  } else if (o.protocol == "erng") {
    opts.targets = {fuzz::FuzzTarget::kErngBasic};
  } else if (o.protocol != "all") {
    std::fprintf(stderr,
                 "--transport tcp fuzzing supports --protocol erb|erng|all, "
                 "not '%s'\n",
                 o.protocol.c_str());
    return 2;
  }
  opts.seed = o.fuzz_seed;
  opts.schedules = o.fuzz;
  opts.out_dir = o.fuzz_out;
  opts.max_failures = o.fuzz_max_failures;
  opts.round_ms = o.tcp_round_ms;
  opts.progress_every = o.fuzz >= 20 ? 10 : 0;

  fuzz::TcpCampaignResult result = fuzz::run_tcp_campaign(opts);
  std::printf("tcp fuzz: %llu schedule(s) executed over real sockets, "
              "%llu skipped (not socket-expressible), %zu failure(s)\n",
              static_cast<unsigned long long>(result.executed),
              static_cast<unsigned long long>(result.skipped),
              result.failures.size());
  for (const auto& f : result.failures) {
    std::printf("FAIL %s schedule %u\n", fuzz::target_name(f.target), f.index);
    for (const auto& v : f.report.violations) {
      std::printf("  violated: %s — %s\n", v.oracle.c_str(),
                  v.detail.c_str());
    }
    if (!f.repro_path.empty()) {
      std::printf("  reproducer: %s (replay with --replay-schedule ... "
                  "--transport tcp)\n",
                  f.repro_path.c_str());
    }
  }
  return result.clean() ? 0 : 1;
}

int run_replay_mode(const Options& o) {
  fuzz::ReplayResult r = fuzz::replay_schedule_file(o.replay_schedule);
  std::printf("replay %s: %s\n", o.replay_schedule.c_str(),
              r.message.c_str());
  if (!r.report.digest.empty()) {
    std::printf("rounds  : %u\ndigest  : %s\noutcome : %s\n", r.report.rounds,
                r.report.digest.c_str(), r.report.outcome.c_str());
    for (const auto& v : r.report.violations) {
      std::printf("violated: %s — %s\n", v.oracle.c_str(), v.detail.c_str());
    }
  }
  return r.ok ? 0 : 1;
}

/// Maps --protocol to fuzz/mcheck targets ("all" → empty = every target).
bool parse_fuzz_targets(const std::string& protocol, const char* mode,
                        std::vector<fuzz::FuzzTarget>& targets) {
  if (protocol == "erb") {
    targets = {fuzz::FuzzTarget::kErb};
  } else if (protocol == "erng") {
    targets = {fuzz::FuzzTarget::kErngBasic};
  } else if (protocol == "erng-opt") {
    targets = {fuzz::FuzzTarget::kErngOpt};
  } else if (protocol == "recovery") {
    targets = {fuzz::FuzzTarget::kRecovery};
  } else if (protocol == "shard") {
    targets = {fuzz::FuzzTarget::kShard};
  } else if (protocol != "all") {
    std::fprintf(stderr, "%s supports --protocol erb|erng|erng-opt|"
                 "recovery|shard|all, not '%s'\n", mode, protocol.c_str());
    return false;
  }
  return true;
}

int run_mcheck_mode(const Options& o) {
  std::vector<fuzz::FuzzTarget> targets;
  if (!parse_fuzz_targets(o.protocol, "--mcheck", targets)) return 2;
  if (targets.empty()) {
    targets = {fuzz::FuzzTarget::kErb, fuzz::FuzzTarget::kErngBasic,
               fuzz::FuzzTarget::kErngOpt, fuzz::FuzzTarget::kRecovery,
               fuzz::FuzzTarget::kShard};
  }
  bool clean = true;
  for (fuzz::FuzzTarget target : targets) {
    fuzz::ModelCheckOptions opts;
    opts.target = target;
    opts.n = o.mcheck_n;
    opts.rounds = o.mcheck_rounds;
    opts.bound = o.mcheck_bound;
    opts.seed = o.seed;
    opts.canary = o.fuzz_canary;
    opts.out_dir = o.fuzz_out;
    fuzz::ModelCheckResult result = fuzz::check_model(opts);
    std::printf(
        "mcheck[%s]: %llu state(s) explored, %llu pruned, %llu "
        "violation(s)%s\n",
        fuzz::target_name(target),
        static_cast<unsigned long long>(result.states_explored),
        static_cast<unsigned long long>(result.states_pruned),
        static_cast<unsigned long long>(result.violations_found),
        result.exhausted ? "" : " [NOT exhausted: max-states tripped]");
    for (const auto& v : result.violations) {
      std::printf("FAIL %s → shrunk to %zu action(s) in %u runs\n",
                  fuzz::target_name(target), v.shrunk.actions.size(),
                  v.shrink_runs);
      for (const auto& viol : v.report.violations) {
        std::printf("  violated: %s — %s\n", viol.oracle.c_str(),
                    viol.detail.c_str());
      }
      if (!v.repro_path.empty()) {
        std::printf("  reproducer: %s (replay with --replay-schedule)\n",
                    v.repro_path.c_str());
      }
    }
    clean = clean && result.clean();
  }
  return clean ? 0 : 1;
}

int run_fuzz_mode(const Options& o) {
  fuzz::CampaignOptions opts;
  if (!parse_fuzz_targets(o.protocol, "--fuzz", opts.targets)) return 2;
  opts.seed = o.fuzz_seed;
  opts.schedules = o.fuzz;
  opts.canary = o.fuzz_canary;
  opts.out_dir = o.fuzz_out;
  opts.max_failures = o.fuzz_max_failures;
  opts.progress_every = o.fuzz >= 1000 ? 500 : 0;
  opts.coverage_guided = !o.fuzz_coverage.empty();
  opts.corpus_dir = o.fuzz_corpus_out;

  fuzz::CampaignResult result = fuzz::run_campaign(opts);
  std::printf("fuzz: %llu schedule(s) executed, %zu failure(s)\n",
              static_cast<unsigned long long>(result.executed),
              result.failures.size());
  if (opts.coverage_guided) {
    std::printf("coverage: %zu bit(s) lit, corpus of %llu novel schedule(s)\n",
                result.coverage.count(),
                static_cast<unsigned long long>(result.corpus_size));
    if (!result.coverage.write_file(o.fuzz_coverage)) {
      std::fprintf(stderr, "cannot write coverage map to %s\n",
                   o.fuzz_coverage.c_str());
      return 2;
    }
  }
  for (const auto& f : result.failures) {
    std::printf("FAIL %s schedule %u → shrunk to %zu action(s) in %u runs\n",
                fuzz::target_name(f.target), f.index,
                f.shrunk.actions.size(), f.shrink_runs);
    for (const auto& v : f.report.violations) {
      std::printf("  violated: %s — %s\n", v.oracle.c_str(),
                  v.detail.c_str());
    }
    if (!f.repro_path.empty()) {
      std::printf("  reproducer: %s (replay with --replay-schedule)\n",
                  f.repro_path.c_str());
    }
  }
  return result.clean() ? 0 : 1;
}

int main(int argc, char** argv) {
  Logger::instance().init_from_env();
  Options o = parse(argc, argv);
  if (o.transport != "sim" && o.transport != "tcp") {
    std::fprintf(stderr, "--transport must be sim or tcp, not '%s'\n",
                 o.transport.c_str());
    return 2;
  }
  if (o.transport == "tcp" && o.replay_schedule.empty() && o.fuzz == 0) {
    std::fprintf(stderr,
                 "--transport tcp applies to --fuzz and --replay-schedule\n");
    return 2;
  }
  if (!o.replay_schedule.empty()) {
    return o.transport == "tcp" ? run_tcp_replay_mode(o) : run_replay_mode(o);
  }
  if (o.mcheck) {
    if (o.transport == "tcp") {
      std::fprintf(stderr, "--mcheck runs on the simulator only\n");
      return 2;
    }
    return run_mcheck_mode(o);
  }
  if (o.fuzz > 0) {
    return o.transport == "tcp" ? run_tcp_fuzz_mode(o) : run_fuzz_mode(o);
  }
  if (!o.trace_path.empty()) {
    obs::TraceRecorder::global().enable(o.trace_capacity);
  }
  if (o.n < 2) {
    std::fprintf(stderr, "--n must be at least 2\n");
    return 2;
  }
  if (o.byz >= o.n) {
    std::fprintf(stderr, "--byz must be < n\n");
    return 2;
  }

  sim::TestbedConfig cfg;
  cfg.n = o.n;
  cfg.seed = o.seed;
  cfg.net.base_delay = o.delta_ms / 2;
  cfg.net.max_jitter = o.delta_ms - o.delta_ms / 2;
  cfg.t = o.t != 0 ? o.t : (o.protocol == "erng-opt" ? std::max(1u, o.n / 3)
                                                     : (o.n - 1) / 2);
  if (2 * cfg.t >= o.n) cfg.t = (o.n - 1) / 2;
  bool accounted = o.mode.empty() ? o.n > 128 : o.mode == "accounted";
  cfg.mode = accounted ? protocol::ChannelMode::kAccounted
                       : protocol::ChannelMode::kAttested;
  if (o.engine == "heap") {
    cfg.engine = sim::SimEngine::kHeap;
  } else if (o.engine == "wheel") {
    cfg.engine = sim::SimEngine::kWheel;
  } else if (o.engine == "parallel") {
    cfg.engine = sim::SimEngine::kParallel;
  } else if (!o.engine.empty()) {
    std::fprintf(stderr, "unknown engine '%s' (wheel|heap|parallel)\n",
                 o.engine.c_str());
    return 2;
  }
  cfg.jobs = o.jobs;
  if (o.adversary != "none" && o.byz > 0) {
    // Adversarial runs stay on one worker: strategies and replay stamps were
    // recorded under serial execution, and jobs=1 keeps them byte-stable
    // without forbidding --engine parallel (the merge order is identical).
    cfg.jobs = 1;
  }
  if (!resolve_sgx_costs(o, cfg.sgx_costs)) return 2;
  if (o.protocol == "recovery") {
    if (o.n < 4) {
      std::fprintf(stderr, "--protocol recovery needs --n >= 4\n");
      return 2;
    }
    // One extra node joins fresh after the recovery (the liveness proof), so
    // the testbed is one node larger than the initial roster.
    cfg.n = o.n + 1;
    cfg.t = o.t != 0 ? o.t : (o.n - 1) / 2;
    cfg.mode = protocol::ChannelMode::kAttested;
  }

  auto plan = std::make_shared<adversary::ChainPlan>();
  for (NodeId id = 0; id < o.byz; ++id) plan->order.push_back(id);
  plan->release = adversary::ChainPlan::Release::kSingleHonest;
  plan->honest_target = o.byz;

  sim::Testbed bed(cfg);
  SimDuration round_ms = cfg.effective_round();
  auto strategies = [&](NodeId id) {
    return make_strategy(o, id, plan, round_ms);
  };

  Outcome out;
  if (o.protocol == "erb") {
    Bytes payload = to_bytes("cli broadcast payload");
    bed.build(
        [&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
            protocol::PeerConfig pc,
            const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
          return std::make_unique<protocol::ErbNode>(
              platform, id, host, pc, ias, NodeId{0},
              id == 0 ? payload : Bytes{});
        },
        strategies);
    out = drive<protocol::ErbNode>(
        bed, cfg.effective_t() + 4,
        [](protocol::ErbNode& n) { return n.result().decided; },
        [](protocol::ErbNode& n, Outcome& acc) {
          acc.summary = n.result().value
                            ? "accepted m"
                            : "accepted ⊥";
          return n.result().decided_at;
        });
  } else if (o.protocol == "erng") {
    bed.build(
        [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
           protocol::PeerConfig pc,
           const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
          return std::make_unique<protocol::ErngBasicNode>(platform, id, host,
                                                           pc, ias);
        },
        strategies);
    out = drive<protocol::ErngBasicNode>(
        bed, cfg.effective_t() + 4,
        [](protocol::ErngBasicNode& n) { return n.result().done; },
        [](protocol::ErngBasicNode& n, Outcome& acc) {
          acc.summary = "r=" + hex_encode(ByteView(n.result().value.data(),
                                                   std::min<std::size_t>(
                                                       8, n.result().value
                                                              .size()))) +
                        "… |S|=" + std::to_string(n.result().set_size);
          return n.result().decided_at;
        });
  } else if (o.protocol == "erng-opt") {
    bed.build(
        [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
           protocol::PeerConfig pc,
           const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
          return std::make_unique<protocol::ErngOptNode>(platform, id, host,
                                                         pc, ias);
        },
        strategies);
    out = drive<protocol::ErngOptNode>(
        bed, o.n + 8,
        [](protocol::ErngOptNode& n) { return n.result().done; },
        [](protocol::ErngOptNode& n, Outcome& acc) {
          acc.summary =
              (n.result().is_bottom
                   ? std::string("⊥")
                   : "r=" + hex_encode(ByteView(n.result().value.data(), 8)) +
                         "…") +
              " cluster=" + std::to_string(n.result().cluster_size);
          return n.result().decided_at;
        });
  } else if (o.protocol == "eba") {
    bed.build(
        [&](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
            protocol::PeerConfig pc,
            const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
          return std::make_unique<protocol::EbaNode>(
              platform, id, host, pc, ias,
              to_bytes(id % 2 == 0 ? "commit" : "abort"));
        },
        strategies);
    out = drive<protocol::EbaNode>(
        bed, cfg.effective_t() + 4,
        [](protocol::EbaNode& n) { return n.result().done; },
        [](protocol::EbaNode& n, Outcome& acc) {
          acc.summary = n.result().decision
                            ? "decided " + to_string(*n.result().decision)
                            : "decided ⊥";
          return n.result().decided_at;
        });
  } else if (o.protocol == "recovery") {
    const NodeId victim = 1;
    const NodeId extra = o.n;  // joins fresh after the recovery completes
    const std::uint32_t W = cfg.t + 2;  // membership window length
    const std::uint32_t crash_at = o.crash_at;
    const std::uint32_t recover_at = crash_at + o.recover_after;
    // First membership window starting at or after the relaunch round.
    const std::size_t w_rejoin = (recover_at - 1 + W - 1) / W;
    std::vector<NodeId> roster0;
    for (NodeId id = 0; id < o.n; ++id) roster0.push_back(id);
    std::vector<protocol::JoinPlanEntry> join_plan(w_rejoin + 3);
    join_plan[w_rejoin] = {victim, NodeId{0}, true};
    join_plan[w_rejoin + 1] = {victim, NodeId{2}, true};  // sponsor retry
    join_plan[w_rejoin + 2] = {extra, NodeId{0}, false};  // fresh ERB proof

    sim::Testbed::EnclaveFactory factory =
        [roster0, join_plan](NodeId id, sgx::SgxPlatform& platform,
                             net::Host& host, protocol::PeerConfig pc,
                             const sgx::SimIAS& ias)
        -> std::unique_ptr<protocol::PeerEnclave> {
      return std::make_unique<recovery::RecoverableNode>(
          platform, id, host, pc, ias, roster0, join_plan);
    };
    bed.build(factory, [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
      if (o.stale_replay && id == victim) {
        return std::make_unique<adversary::StaleSealReplayStrategy>();
      }
      return nullptr;
    });

    recovery::RecoveryPlan rp;
    rp.victim = victim;
    rp.crash_round = crash_at;
    rp.recover_round = recover_at;
    rp.checkpoint_interval = o.checkpoint_every;
    recovery::RecoveryCoordinator coord(bed, factory, rp);
    coord.install();

    bed.start();
    auto everyone_converged = [&]() {
      if (!coord.rejoin_complete()) return false;
      for (NodeId id = 0; id < cfg.n; ++id) {
        if (!bed.has_enclave(id)) return false;
        auto& node = bed.enclave_as<recovery::RecoverableNode>(id);
        const auto& roster = node.roster();
        if (!node.is_member() || roster.size() != o.n + 1 ||
            std::find(roster.begin(), roster.end(), extra) == roster.end()) {
          return false;
        }
      }
      return true;
    };
    out.rounds = bed.run_rounds(
        static_cast<std::uint32_t>((w_rejoin + 4) * W), everyone_converged);
    out.messages = bed.network().meter().messages();
    out.bytes = bed.network().meter().bytes();
    out.termination_s = to_seconds(bed.simulator().now() - bed.start_time());

    const char* restore_str =
        !coord.used_fresh_fallback() ? "checkpoint restored"
        : coord.restore_outcome() == recovery::RestoreOutcome::kStale
            ? "stale seal detected, fresh re-admission"
            : "no valid seal, fresh re-admission";
    out.summary = "crash@" + std::to_string(crash_at) + " relaunch@" +
                  std::to_string(recover_at) + " [" + restore_str + "]";
    if (coord.rejoin_complete()) {
      out.summary +=
          " rejoined@" + std::to_string(coord.rejoin_round()) +
          (everyone_converged()
               ? "; post-recovery join ERB decided, all " +
                     std::to_string(cfg.n) + " nodes agree on the roster"
               : "; post-recovery join did NOT converge");
    } else {
      out.summary += " rejoin did NOT complete";
    }
  } else if (o.protocol == "shard") {
    if (o.n < 4) {
      std::fprintf(stderr, "--protocol shard needs --n >= 4\n");
      return 2;
    }
    std::uint32_t csize = o.committee_size;
    if (csize == 0 && o.committees > 0) {
      // --committees K is sugar for a committee size of n/K.
      csize = std::max(4u, o.n / o.committees);
    }
    shard::ShardConfig scfg;
    scfg.committee_size = csize;
    scfg.epochs = o.epochs;
    bed.build(shard::ShardCoordinator::make_factory(), strategies);
    bed.start();
    shard::ShardCoordinator coord(bed, scfg);
    std::vector<shard::EpochSummary> epochs = coord.run_all();
    out.rounds = bed.rounds_run();
    out.messages = bed.network().meter().messages();
    out.bytes = bed.network().meter().bytes();
    out.termination_s = to_seconds(bed.simulator().now() - bed.start_time());
    const std::size_t committees = coord.election().committees().size();
    out.summary = "K=" + std::to_string(committees) +
                  " c=" + std::to_string(coord.election().committee_size());
    for (const shard::EpochSummary& e : epochs) {
      out.summary +=
          " e" + std::to_string(e.epoch) + "=" +
          (e.global_digest.empty()
               ? std::string("none")
               : hex_encode(ByteView(e.global_digest.data(),
                                     std::min<std::size_t>(
                                         8, e.global_digest.size()))) +
                     "…") +
          (e.ok() ? "" : "[ORACLE FAIL]");
    }
    if (!coord.all_ok()) {
      out.summary += " — agreement/validity oracle FAILED";
    }
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", o.protocol.c_str());
    return 2;
  }

  if (o.csv) {
    std::printf("%s,%u,%u,%s,%u,%llu,%u,%.3f,%llu,%llu\n", o.protocol.c_str(),
                o.n, cfg.t, o.adversary.c_str(), o.byz,
                static_cast<unsigned long long>(o.seed), out.rounds,
                out.termination_s,
                static_cast<unsigned long long>(out.messages),
                static_cast<unsigned long long>(out.bytes));
  } else {
    std::printf("protocol    : %s\n", o.protocol.c_str());
    std::printf("network     : N=%u t=%u adversary=%s byz=%u seed=%llu "
                "mode=%s\n",
                o.n, cfg.t, o.adversary.c_str(), o.byz,
                static_cast<unsigned long long>(o.seed),
                accounted ? "accounted" : "attested");
    std::printf("rounds      : %u (round time %.1f s)\n", out.rounds,
                to_seconds(round_ms));
    std::printf("termination : %.3f virtual s\n", out.termination_s);
    std::printf("traffic     : %llu messages, %.3f MB\n",
                static_cast<unsigned long long>(out.messages),
                static_cast<double>(out.bytes) / (1024 * 1024));
    std::printf("outcome     : %s\n", out.summary.c_str());
  }

  if (!o.metrics_path.empty()) {
    std::string json = "{\"bench\":\"sim-" + obs::json_escape(o.protocol) +
                       "\",\"metrics\":" +
                       obs::MetricsRegistry::current().to_json() + "}\n";
    std::FILE* f = std::fopen(o.metrics_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   o.metrics_path.c_str());
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "metrics snapshot written to %s\n",
                   o.metrics_path.c_str());
    }
  }
  if (!o.trace_path.empty()) {
    const auto& tr = obs::TraceRecorder::global();
    if (tr.dropped() > 0) {
      std::fprintf(stderr,
                   "warning: trace ring dropped %llu events; causal roots "
                   "are truncated (raise --trace-capacity)\n",
                   static_cast<unsigned long long>(tr.dropped()));
    }
    if (!tr.write_file(o.trace_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n", o.trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace (%zu events) written to %s\n", tr.size(),
                   o.trace_path.c_str());
    }
  }
  return 0;
}
