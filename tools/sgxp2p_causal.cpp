// sgxp2p-causal — causal-DAG analyzer for span/cause JSONL traces.
//
// Reads one trace (bench --trace output, sgxp2p-sim --trace, or a fuzz
// reproducer's trace) and, per the selected modes:
//
//   --check           run the cause-conservation oracle: every non-root
//                     event names an earlier cause, every delivery's cause
//                     is a recorded send with matching endpoints/arrival.
//                     Exit 2 on any violation.
//   --critical-path   walk backwards from every decide, printing the
//                     per-decide latency attribution (network / compute /
//                     enclave-transition) and the aggregate split.
//   --perfetto FILE   write Chrome-trace JSON openable in ui.perfetto.dev.
//
// With no mode flags, runs --check and --critical-path.
//
//   sgxp2p-causal BENCH_fig2a.trace.jsonl
//   sgxp2p-causal run.trace.jsonl --perfetto run.perfetto.json
//
// Exit status: 0 ok, 1 unreadable/unparseable input or bad usage,
// 2 conservation violations (or truncated trace under --check --strict).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/causal.hpp"

using sgxp2p::obs::CausalGraph;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sgxp2p-causal <trace.jsonl> [--check] "
               "[--critical-path] [--perfetto FILE] [--strict]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) return usage();
  const char* path = argv[1];
  bool do_check = false;
  bool do_path = false;
  bool strict = false;
  const char* perfetto_out = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      do_check = true;
    } else if (std::strcmp(argv[i], "--critical-path") == 0) {
      do_path = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_out = argv[++i];
    } else {
      std::fprintf(stderr, "sgxp2p-causal: unknown option %s\n", argv[i]);
      return usage();
    }
  }
  if (!do_check && !do_path && perfetto_out == nullptr) {
    do_check = do_path = true;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "sgxp2p-causal: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto graph = CausalGraph::parse(buf.str(), &error);
  if (!graph) {
    std::fprintf(stderr, "sgxp2p-causal: %s: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("%s: %zu events, spans %s\n", path, graph->events().size(),
              graph->truncated() ? "TRUNCATED (ring overflowed; raise "
                                   "--trace-capacity)"
                                 : "complete");

  int rc = 0;
  if (do_check) {
    auto violations = graph->check_conservation();
    if (violations.empty()) {
      std::printf("conservation: ok (%llu cause(s) below the retained "
                  "window)\n",
                  static_cast<unsigned long long>(graph->truncated_causes()));
    } else {
      for (const std::string& v : violations) {
        std::fprintf(stderr, "conservation violation: %s\n", v.c_str());
      }
      std::fprintf(stderr, "conservation: %zu violation(s)\n",
                   violations.size());
      rc = 2;
    }
    if (strict && graph->truncated()) {
      std::fprintf(stderr,
                   "strict: trace is truncated — conservation cannot be "
                   "fully verified\n");
      rc = 2;
    }
  }

  if (do_path) {
    auto paths = graph->critical_paths();
    if (paths.empty()) {
      std::printf("\nno decide events — nothing to attribute\n");
    } else {
      std::int64_t tot = 0, net = 0, cpu = 0, sgx = 0, un = 0;
      std::printf("\n=== per-decide latency attribution (virtual ms) ===\n");
      std::printf("%6s %10s %9s %9s %9s %9s %6s\n", "node", "total",
                  "network", "compute", "sgx", "unattrib", "hops");
      for (const auto& p : paths) {
        std::printf("%6u %10lld %9lld %9lld %9lld %9lld %6zu\n", p.node,
                    static_cast<long long>(p.total_ms),
                    static_cast<long long>(p.network_ms),
                    static_cast<long long>(p.compute_ms),
                    static_cast<long long>(p.sgx_ms),
                    static_cast<long long>(p.unattributed_ms),
                    p.steps.size());
        tot += p.total_ms;
        net += p.network_ms;
        cpu += p.compute_ms;
        sgx += p.sgx_ms;
        un += p.unattributed_ms;
      }
      const double denom = tot > 0 ? static_cast<double>(tot) : 1.0;
      std::printf("aggregate: total %lld = network %lld (%.1f%%) + compute "
                  "%lld (%.1f%%) + sgx %lld (%.1f%%) + unattributed %lld "
                  "(%.1f%%)\n",
                  static_cast<long long>(tot), static_cast<long long>(net),
                  100.0 * static_cast<double>(net) / denom,
                  static_cast<long long>(cpu),
                  100.0 * static_cast<double>(cpu) / denom,
                  static_cast<long long>(sgx),
                  100.0 * static_cast<double>(sgx) / denom,
                  static_cast<long long>(un),
                  100.0 * static_cast<double>(un) / denom);
    }
  }

  if (perfetto_out != nullptr) {
    std::ofstream out(perfetto_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "sgxp2p-causal: cannot write %s\n", perfetto_out);
      return 1;
    }
    out << graph->to_perfetto();
    if (!out) {
      std::fprintf(stderr, "sgxp2p-causal: short write to %s\n", perfetto_out);
      return 1;
    }
    std::printf("perfetto: wrote %s (open in ui.perfetto.dev)\n",
                perfetto_out);
  }
  return rc;
}
