# Empty dependencies file for sgxp2p_net.
# This may be replaced when dependencies are built.
