file(REMOVE_RECURSE
  "libsgxp2p_net.a"
)
