
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/sgxp2p_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/sgxp2p_net.dir/host.cpp.o.d"
  "/root/repo/src/net/mesh_transport.cpp" "src/net/CMakeFiles/sgxp2p_net.dir/mesh_transport.cpp.o" "gcc" "src/net/CMakeFiles/sgxp2p_net.dir/mesh_transport.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/sgxp2p_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/sgxp2p_net.dir/network.cpp.o.d"
  "/root/repo/src/net/simulator.cpp" "src/net/CMakeFiles/sgxp2p_net.dir/simulator.cpp.o" "gcc" "src/net/CMakeFiles/sgxp2p_net.dir/simulator.cpp.o.d"
  "/root/repo/src/net/tcp_bus.cpp" "src/net/CMakeFiles/sgxp2p_net.dir/tcp_bus.cpp.o" "gcc" "src/net/CMakeFiles/sgxp2p_net.dir/tcp_bus.cpp.o.d"
  "/root/repo/src/net/tcp_testbed.cpp" "src/net/CMakeFiles/sgxp2p_net.dir/tcp_testbed.cpp.o" "gcc" "src/net/CMakeFiles/sgxp2p_net.dir/tcp_testbed.cpp.o.d"
  "/root/repo/src/net/testbed.cpp" "src/net/CMakeFiles/sgxp2p_net.dir/testbed.cpp.o" "gcc" "src/net/CMakeFiles/sgxp2p_net.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sgx/CMakeFiles/sgxp2p_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/sgxp2p_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/sgxp2p_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sgxp2p_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxp2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
