file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p_net.dir/host.cpp.o"
  "CMakeFiles/sgxp2p_net.dir/host.cpp.o.d"
  "CMakeFiles/sgxp2p_net.dir/mesh_transport.cpp.o"
  "CMakeFiles/sgxp2p_net.dir/mesh_transport.cpp.o.d"
  "CMakeFiles/sgxp2p_net.dir/network.cpp.o"
  "CMakeFiles/sgxp2p_net.dir/network.cpp.o.d"
  "CMakeFiles/sgxp2p_net.dir/simulator.cpp.o"
  "CMakeFiles/sgxp2p_net.dir/simulator.cpp.o.d"
  "CMakeFiles/sgxp2p_net.dir/tcp_bus.cpp.o"
  "CMakeFiles/sgxp2p_net.dir/tcp_bus.cpp.o.d"
  "CMakeFiles/sgxp2p_net.dir/tcp_testbed.cpp.o"
  "CMakeFiles/sgxp2p_net.dir/tcp_testbed.cpp.o.d"
  "CMakeFiles/sgxp2p_net.dir/testbed.cpp.o"
  "CMakeFiles/sgxp2p_net.dir/testbed.cpp.o.d"
  "libsgxp2p_net.a"
  "libsgxp2p_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
