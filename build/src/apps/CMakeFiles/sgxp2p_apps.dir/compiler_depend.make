# Empty compiler generated dependencies file for sgxp2p_apps.
# This may be replaced when dependencies are built.
