file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p_apps.dir/beacon.cpp.o"
  "CMakeFiles/sgxp2p_apps.dir/beacon.cpp.o.d"
  "CMakeFiles/sgxp2p_apps.dir/dkg.cpp.o"
  "CMakeFiles/sgxp2p_apps.dir/dkg.cpp.o.d"
  "CMakeFiles/sgxp2p_apps.dir/group_key.cpp.o"
  "CMakeFiles/sgxp2p_apps.dir/group_key.cpp.o.d"
  "CMakeFiles/sgxp2p_apps.dir/load_balancer.cpp.o"
  "CMakeFiles/sgxp2p_apps.dir/load_balancer.cpp.o.d"
  "CMakeFiles/sgxp2p_apps.dir/random_walk.cpp.o"
  "CMakeFiles/sgxp2p_apps.dir/random_walk.cpp.o.d"
  "libsgxp2p_apps.a"
  "libsgxp2p_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
