file(REMOVE_RECURSE
  "libsgxp2p_apps.a"
)
