file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p_sgx.dir/attestation.cpp.o"
  "CMakeFiles/sgxp2p_sgx.dir/attestation.cpp.o.d"
  "CMakeFiles/sgxp2p_sgx.dir/enclave.cpp.o"
  "CMakeFiles/sgxp2p_sgx.dir/enclave.cpp.o.d"
  "CMakeFiles/sgxp2p_sgx.dir/platform.cpp.o"
  "CMakeFiles/sgxp2p_sgx.dir/platform.cpp.o.d"
  "libsgxp2p_sgx.a"
  "libsgxp2p_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
