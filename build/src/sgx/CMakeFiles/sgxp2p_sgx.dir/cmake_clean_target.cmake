file(REMOVE_RECURSE
  "libsgxp2p_sgx.a"
)
