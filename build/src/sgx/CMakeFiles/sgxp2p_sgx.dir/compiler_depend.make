# Empty compiler generated dependencies file for sgxp2p_sgx.
# This may be replaced when dependencies are built.
