# Empty dependencies file for sgxp2p_common.
# This may be replaced when dependencies are built.
