file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p_common.dir/bytes.cpp.o"
  "CMakeFiles/sgxp2p_common.dir/bytes.cpp.o.d"
  "CMakeFiles/sgxp2p_common.dir/log.cpp.o"
  "CMakeFiles/sgxp2p_common.dir/log.cpp.o.d"
  "libsgxp2p_common.a"
  "libsgxp2p_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
