file(REMOVE_RECURSE
  "libsgxp2p_common.a"
)
