file(REMOVE_RECURSE
  "libsgxp2p_crypto.a"
)
