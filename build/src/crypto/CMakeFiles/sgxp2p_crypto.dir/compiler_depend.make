# Empty compiler generated dependencies file for sgxp2p_crypto.
# This may be replaced when dependencies are built.
