file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p_crypto.dir/aead.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/aes.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/drbg.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/hmac.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/merkle.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/sha256.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/shamir.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/wots.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/wots.cpp.o.d"
  "CMakeFiles/sgxp2p_crypto.dir/x25519.cpp.o"
  "CMakeFiles/sgxp2p_crypto.dir/x25519.cpp.o.d"
  "libsgxp2p_crypto.a"
  "libsgxp2p_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
