file(REMOVE_RECURSE
  "libsgxp2p_protocol.a"
)
