# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sgxp2p_protocol.
