# Empty compiler generated dependencies file for sgxp2p_protocol.
# This may be replaced when dependencies are built.
