file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p_protocol.dir/eba.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/eba.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/erb_instance.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/erb_instance.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/erb_node.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/erb_node.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/erb_sequence.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/erb_sequence.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/erng_basic.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/erng_basic.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/erng_opt.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/erng_opt.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/membership.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/membership.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/peer_enclave.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/peer_enclave.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/rb_early.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/rb_early.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/rb_sig.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/rb_sig.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/sanitizer.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/sanitizer.cpp.o.d"
  "CMakeFiles/sgxp2p_protocol.dir/strawman.cpp.o"
  "CMakeFiles/sgxp2p_protocol.dir/strawman.cpp.o.d"
  "libsgxp2p_protocol.a"
  "libsgxp2p_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
