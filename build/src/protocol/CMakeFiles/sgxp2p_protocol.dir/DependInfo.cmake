
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/eba.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/eba.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/eba.cpp.o.d"
  "/root/repo/src/protocol/erb_instance.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erb_instance.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erb_instance.cpp.o.d"
  "/root/repo/src/protocol/erb_node.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erb_node.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erb_node.cpp.o.d"
  "/root/repo/src/protocol/erb_sequence.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erb_sequence.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erb_sequence.cpp.o.d"
  "/root/repo/src/protocol/erng_basic.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erng_basic.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erng_basic.cpp.o.d"
  "/root/repo/src/protocol/erng_opt.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erng_opt.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/erng_opt.cpp.o.d"
  "/root/repo/src/protocol/membership.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/membership.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/membership.cpp.o.d"
  "/root/repo/src/protocol/peer_enclave.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/peer_enclave.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/peer_enclave.cpp.o.d"
  "/root/repo/src/protocol/rb_early.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/rb_early.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/rb_early.cpp.o.d"
  "/root/repo/src/protocol/rb_sig.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/rb_sig.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/rb_sig.cpp.o.d"
  "/root/repo/src/protocol/sanitizer.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/sanitizer.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/sanitizer.cpp.o.d"
  "/root/repo/src/protocol/strawman.cpp" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/strawman.cpp.o" "gcc" "src/protocol/CMakeFiles/sgxp2p_protocol.dir/strawman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/sgxp2p_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/sgxp2p_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sgxp2p_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxp2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
