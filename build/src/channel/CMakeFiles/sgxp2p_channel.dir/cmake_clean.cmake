file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p_channel.dir/handshake.cpp.o"
  "CMakeFiles/sgxp2p_channel.dir/handshake.cpp.o.d"
  "CMakeFiles/sgxp2p_channel.dir/secure_link.cpp.o"
  "CMakeFiles/sgxp2p_channel.dir/secure_link.cpp.o.d"
  "libsgxp2p_channel.a"
  "libsgxp2p_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
