
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/handshake.cpp" "src/channel/CMakeFiles/sgxp2p_channel.dir/handshake.cpp.o" "gcc" "src/channel/CMakeFiles/sgxp2p_channel.dir/handshake.cpp.o.d"
  "/root/repo/src/channel/secure_link.cpp" "src/channel/CMakeFiles/sgxp2p_channel.dir/secure_link.cpp.o" "gcc" "src/channel/CMakeFiles/sgxp2p_channel.dir/secure_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sgx/CMakeFiles/sgxp2p_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sgxp2p_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxp2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
