file(REMOVE_RECURSE
  "libsgxp2p_channel.a"
)
