# Empty dependencies file for sgxp2p_channel.
# This may be replaced when dependencies are built.
