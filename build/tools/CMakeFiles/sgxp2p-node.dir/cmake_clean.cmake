file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p-node.dir/sgxp2p_node.cpp.o"
  "CMakeFiles/sgxp2p-node.dir/sgxp2p_node.cpp.o.d"
  "sgxp2p-node"
  "sgxp2p-node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p-node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
