
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/sgxp2p_node.cpp" "tools/CMakeFiles/sgxp2p-node.dir/sgxp2p_node.cpp.o" "gcc" "tools/CMakeFiles/sgxp2p-node.dir/sgxp2p_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sgxp2p_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/sgxp2p_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/sgxp2p_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/sgxp2p_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sgxp2p_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxp2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
