# Empty compiler generated dependencies file for sgxp2p-node.
# This may be replaced when dependencies are built.
