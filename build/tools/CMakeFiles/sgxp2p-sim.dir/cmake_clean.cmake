file(REMOVE_RECURSE
  "CMakeFiles/sgxp2p-sim.dir/sgxp2p_sim.cpp.o"
  "CMakeFiles/sgxp2p-sim.dir/sgxp2p_sim.cpp.o.d"
  "sgxp2p-sim"
  "sgxp2p-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxp2p-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
