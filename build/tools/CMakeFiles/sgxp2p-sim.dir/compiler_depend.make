# Empty compiler generated dependencies file for sgxp2p-sim.
# This may be replaced when dependencies are built.
