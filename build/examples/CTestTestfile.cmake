# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_demo "/root/repo/build/examples/attack_demo")
set_tests_properties(example_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_random_beacon "/root/repo/build/examples/random_beacon")
set_tests_properties(example_random_beacon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lottery "/root/repo/build/examples/lottery")
set_tests_properties(example_lottery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overlay_walk "/root/repo/build/examples/overlay_walk")
set_tests_properties(example_overlay_walk PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tcp_cluster "/root/repo/build/examples/tcp_cluster")
set_tests_properties(example_tcp_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_membership_demo "/root/repo/build/examples/membership_demo")
set_tests_properties(example_membership_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_committee_vote "/root/repo/build/examples/committee_vote")
set_tests_properties(example_committee_vote PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_threshold_key "/root/repo/build/examples/threshold_key")
set_tests_properties(example_threshold_key PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
