# Empty dependencies file for lottery.
# This may be replaced when dependencies are built.
