file(REMOVE_RECURSE
  "CMakeFiles/lottery.dir/lottery.cpp.o"
  "CMakeFiles/lottery.dir/lottery.cpp.o.d"
  "lottery"
  "lottery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
