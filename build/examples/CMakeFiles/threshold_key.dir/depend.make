# Empty dependencies file for threshold_key.
# This may be replaced when dependencies are built.
