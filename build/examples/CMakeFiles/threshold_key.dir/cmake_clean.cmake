file(REMOVE_RECURSE
  "CMakeFiles/threshold_key.dir/threshold_key.cpp.o"
  "CMakeFiles/threshold_key.dir/threshold_key.cpp.o.d"
  "threshold_key"
  "threshold_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
