# Empty dependencies file for overlay_walk.
# This may be replaced when dependencies are built.
