file(REMOVE_RECURSE
  "CMakeFiles/overlay_walk.dir/overlay_walk.cpp.o"
  "CMakeFiles/overlay_walk.dir/overlay_walk.cpp.o.d"
  "overlay_walk"
  "overlay_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
