file(REMOVE_RECURSE
  "CMakeFiles/committee_vote.dir/committee_vote.cpp.o"
  "CMakeFiles/committee_vote.dir/committee_vote.cpp.o.d"
  "committee_vote"
  "committee_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/committee_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
