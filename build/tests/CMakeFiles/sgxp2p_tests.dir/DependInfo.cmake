
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adversary_mix.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_adversary_mix.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_adversary_mix.cpp.o.d"
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_dkg.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_dkg.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_dkg.cpp.o.d"
  "/root/repo/tests/test_erb.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_erb.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_erb.cpp.o.d"
  "/root/repo/tests/test_erb_instance.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_erb_instance.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_erb_instance.cpp.o.d"
  "/root/repo/tests/test_erng.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_erng.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_erng.cpp.o.d"
  "/root/repo/tests/test_erng_opt_more.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_erng_opt_more.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_erng_opt_more.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_membership.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_membership.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_membership.cpp.o.d"
  "/root/repo/tests/test_multiprocess.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_multiprocess.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_multiprocess.cpp.o.d"
  "/root/repo/tests/test_peer_enclave.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_peer_enclave.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_peer_enclave.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sgx.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_sgx.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_sgx.cpp.o.d"
  "/root/repo/tests/test_shamir_rand.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_shamir_rand.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_shamir_rand.cpp.o.d"
  "/root/repo/tests/test_simnet.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_simnet.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_simnet.cpp.o.d"
  "/root/repo/tests/test_sweeps.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_sweeps.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_sweeps.cpp.o.d"
  "/root/repo/tests/test_tcp.cpp" "tests/CMakeFiles/sgxp2p_tests.dir/test_tcp.cpp.o" "gcc" "tests/CMakeFiles/sgxp2p_tests.dir/test_tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sgxp2p_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sgxp2p_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sgxp2p_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/sgxp2p_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/sgxp2p_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/sgxp2p_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxp2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
