# Empty compiler generated dependencies file for sgxp2p_tests.
# This may be replaced when dependencies are built.
