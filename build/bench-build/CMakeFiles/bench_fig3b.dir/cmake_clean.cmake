file(REMOVE_RECURSE
  "../bench/bench_fig3b"
  "../bench/bench_fig3b.pdb"
  "CMakeFiles/bench_fig3b.dir/bench_fig3b.cpp.o"
  "CMakeFiles/bench_fig3b.dir/bench_fig3b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
