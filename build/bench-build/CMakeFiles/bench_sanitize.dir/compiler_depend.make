# Empty compiler generated dependencies file for bench_sanitize.
# This may be replaced when dependencies are built.
