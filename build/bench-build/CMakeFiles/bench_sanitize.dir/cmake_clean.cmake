file(REMOVE_RECURSE
  "../bench/bench_sanitize"
  "../bench/bench_sanitize.pdb"
  "CMakeFiles/bench_sanitize.dir/bench_sanitize.cpp.o"
  "CMakeFiles/bench_sanitize.dir/bench_sanitize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sanitize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
