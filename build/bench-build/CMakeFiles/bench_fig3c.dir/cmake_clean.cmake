file(REMOVE_RECURSE
  "../bench/bench_fig3c"
  "../bench/bench_fig3c.pdb"
  "CMakeFiles/bench_fig3c.dir/bench_fig3c.cpp.o"
  "CMakeFiles/bench_fig3c.dir/bench_fig3c.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
