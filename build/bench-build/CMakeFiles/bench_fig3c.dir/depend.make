# Empty dependencies file for bench_fig3c.
# This may be replaced when dependencies are built.
