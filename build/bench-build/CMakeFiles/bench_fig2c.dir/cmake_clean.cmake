file(REMOVE_RECURSE
  "../bench/bench_fig2c"
  "../bench/bench_fig2c.pdb"
  "CMakeFiles/bench_fig2c.dir/bench_fig2c.cpp.o"
  "CMakeFiles/bench_fig2c.dir/bench_fig2c.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
