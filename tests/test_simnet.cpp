// Discrete-event simulator and network tests: event ordering, virtual time,
// delivery bounds, per-pair FIFO, detach semantics, the shared-bandwidth
// model, traffic metering, and end-to-end determinism.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "net/simulator.hpp"

namespace sgxp2p::sim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<int> order;
  s.schedule(10, [&] {
    order.push_back(1);
    s.schedule_in(5, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 15);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  s.run_until(100);
  SimTime fired_at = -1;
  s.schedule(50, [&] { fired_at = s.now(); });  // in the past
  s.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.schedule(20, [&] { ++fired; });
  s.schedule(30, [&] { ++fired; });
  s.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending(), 1u);
}

struct NetFixture {
  Simulator simulator;
  NetworkConfig cfg;
  std::unique_ptr<Network> net;
  std::vector<std::pair<NodeId, Bytes>> received;  // at node 1

  explicit NetFixture(std::uint64_t seed = 1, std::uint64_t bw = 0) {
    cfg.base_delay = milliseconds(100);
    cfg.max_jitter = milliseconds(50);
    cfg.seed = seed;
    cfg.shared_bandwidth = bw;
    net = std::make_unique<Network>(simulator, cfg);
    for (NodeId id = 0; id < 4; ++id) {
      net->attach(id, [this, id](NodeId from, Bytes blob) {
        if (id == 1) received.emplace_back(from, std::move(blob));
      });
    }
  }
};

TEST(Network, DeliversWithinWorstDelay) {
  NetFixture fx;
  fx.net->send(0, 1, to_bytes("hi"));
  fx.simulator.run();
  ASSERT_EQ(fx.received.size(), 1u);
  EXPECT_LE(fx.simulator.now(), fx.cfg.worst_delay());
  EXPECT_GE(fx.simulator.now(), fx.cfg.base_delay);
}

TEST(Network, PerPairFifo) {
  NetFixture fx(7);
  for (int i = 0; i < 50; ++i) {
    fx.net->send(0, 1, Bytes{static_cast<std::uint8_t>(i)});
  }
  fx.simulator.run();
  ASSERT_EQ(fx.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fx.received[i].second[0], i) << "reordered at " << i;
  }
}

TEST(Network, DetachedReceiverDropsQueued) {
  NetFixture fx;
  fx.net->send(0, 1, to_bytes("in flight"));
  fx.net->detach(1);
  fx.simulator.run();
  EXPECT_TRUE(fx.received.empty());
}

TEST(Network, DetachedSenderIgnored) {
  NetFixture fx;
  fx.net->detach(0);
  fx.net->send(0, 1, to_bytes("ghost"));
  fx.simulator.run();
  EXPECT_TRUE(fx.received.empty());
  EXPECT_EQ(fx.net->meter().messages(), 0u);
}

TEST(Network, SelfSendIgnored) {
  NetFixture fx;
  fx.net->send(1, 1, to_bytes("me"));
  fx.simulator.run();
  EXPECT_TRUE(fx.received.empty());
}

TEST(Network, MeterCountsBytesAndMessages) {
  NetFixture fx;
  fx.net->send(0, 1, Bytes(10, 0));
  fx.net->send(2, 1, Bytes(20, 0));
  fx.net->send(0, 3, Bytes(30, 0));
  fx.simulator.run();
  EXPECT_EQ(fx.net->meter().messages(), 3u);
  EXPECT_EQ(fx.net->meter().bytes(), 60u);
  fx.net->meter().reset();
  EXPECT_EQ(fx.net->meter().bytes(), 0u);
}

TEST(Network, SharedBandwidthDelaysBulk) {
  // 1000 bytes/s: a 500-byte message adds 500 ms of serialization.
  NetFixture slow(1, /*bw=*/1000);
  slow.net->send(0, 1, Bytes(500, 0));
  slow.net->send(2, 1, Bytes(500, 0));
  slow.simulator.run();
  ASSERT_EQ(slow.received.size(), 2u);
  // Two 500 B messages through a 1 kB/s link: the second lands at ≥ 1 s.
  EXPECT_GE(slow.simulator.now(), 1000);
}

TEST(Network, TimelineBucketsBytesByTime) {
  NetFixture fx;
  fx.net->meter().enable_timeline(1000);
  fx.net->send(0, 1, Bytes(10, 0));          // bucket 0
  fx.simulator.run();
  fx.simulator.run_until(2500);
  fx.net->send(2, 1, Bytes(20, 0));          // bucket 2
  fx.net->send(0, 3, Bytes(5, 0));           // bucket 2
  fx.simulator.run();
  const auto& tl = fx.net->meter().timeline();
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0], 10u);
  EXPECT_EQ(tl[1], 0u);
  EXPECT_EQ(tl[2], 25u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto trace = [](std::uint64_t seed) {
    NetFixture fx(seed);
    for (int i = 0; i < 20; ++i) {
      fx.net->send(i % 3 == 1 ? 2 : 0, 1, Bytes{static_cast<std::uint8_t>(i)});
    }
    fx.simulator.run();
    std::vector<std::pair<SimTime, int>> out;
    out.emplace_back(fx.simulator.now(),
                     static_cast<int>(fx.received.size()));
    return out;
  };
  EXPECT_EQ(trace(5), trace(5));
  EXPECT_NE(trace(5), trace(6));
}

}  // namespace
}  // namespace sgxp2p::sim
