// The coverage map's own guarantees, the guided mutator's soundness, and
// the small-scope model checker's meta-properties. The load-bearing claims:
// a run's protocol-state bitmap is byte-identical across engines (so CI can
// compare maps exactly), mutation never produces an invalid schedule (so a
// guided campaign spends its whole budget on real runs), guided search
// strictly out-covers fresh-random at equal budget (the reason the mode
// exists), and the exhaustive checker both proves clean small scopes AND
// finds a planted canary, shrinking it to a replayable reproducer.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/rng.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/mcheck.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/schedule.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::fuzz {
namespace {

constexpr FuzzTarget kAllTargets[] = {
    FuzzTarget::kErb, FuzzTarget::kErngBasic, FuzzTarget::kErngOpt,
    FuzzTarget::kRecovery, FuzzTarget::kShard};

std::int64_t gauge_value(const obs::MetricsSnapshot& snap,
                         const std::string& name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  return -1;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  const auto* c = snap.find_counter(name);
  return c != nullptr ? c->value : 0;
}

TEST(CoverageMapUnit, SetTestCountAndSetOperations) {
  CoverageMap a;
  EXPECT_TRUE(a.empty());
  a.hit("oracle:erb.agreement:fail");
  a.hit("rounds=4");
  EXPECT_EQ(a.count(), 2u);
  EXPECT_TRUE(a.test(CoverageMap::feature_bit("rounds=4")));

  CoverageMap b;
  b.hit("rounds=4");
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  EXPECT_EQ(b.novel_bits(a), 1u);  // a has one bit b lacks
  EXPECT_EQ(a.novel_bits(b), 0u);
  EXPECT_EQ(b.merge(a), 1u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.merge(a), 0u);  // idempotent
}

TEST(CoverageMapUnit, FeatureBitIsStableAndInRange) {
  const std::size_t bit = CoverageMap::feature_bit("t=erb:fault:none");
  EXPECT_EQ(bit, CoverageMap::feature_bit("t=erb:fault:none"));
  EXPECT_LT(bit, CoverageMap::kBits);
  EXPECT_NE(bit, CoverageMap::feature_bit("t=erb:fault:drop"));
}

TEST(CoverageMapUnit, TextRoundTripIsIdentity) {
  CoverageMap a;
  a.hit("oracle:erb.termination:ok");
  a.hit("state:*:decided");
  a.set(0);
  a.set(CoverageMap::kBits - 1);
  std::string error;
  auto back = CoverageMap::from_text(a.to_text(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, a);
  EXPECT_EQ(back->to_text(), a.to_text());

  EXPECT_FALSE(CoverageMap::from_text("not-a-map\n", &error).has_value());
}

// The determinism contract CI relies on: the same schedule produces a
// byte-identical coverage map on every engine (wheel, heap, parallel with
// worker threads) and across repeat runs. This is what lets the nightly
// distillation pass reproduce a campaign's aggregate from schedules alone.
TEST(CoverageRun, SameScheduleByteIdenticalAcrossEngines) {
  for (FuzzTarget target : kAllTargets) {
    Schedule s = generate_schedule(target, 5, 11);

    RunOptions wheel;
    wheel.engine = sim::SimEngine::kWheel;
    RunOptions heap;
    heap.engine = sim::SimEngine::kHeap;
    RunOptions parallel;
    parallel.engine = sim::SimEngine::kParallel;
    parallel.jobs = 4;

    RunReport a = run_schedule(s, wheel);
    RunReport b = run_schedule(s, heap);
    RunReport c = run_schedule(s, parallel);
    RunReport a2 = run_schedule(s, wheel);

    EXPECT_GT(a.coverage.count(), 0u) << target_name(target);
    EXPECT_EQ(a.coverage.to_text(), b.coverage.to_text())
        << target_name(target) << ": wheel vs heap";
    EXPECT_EQ(a.coverage.to_text(), c.coverage.to_text())
        << target_name(target) << ": wheel vs parallel";
    EXPECT_EQ(a.coverage, a2.coverage) << target_name(target) << ": repeat";
    EXPECT_EQ(a.digest, c.digest) << target_name(target);
  }
}

// Novelty detection: a schedule the aggregate has already absorbed
// contributes zero new bits; a different schedule contributes some.
TEST(CoverageRun, KnownScheduleAddsZeroBits) {
  Schedule s = generate_schedule(FuzzTarget::kErb, 3, 1);
  RunReport first = run_schedule(s, {});
  CoverageMap aggregate;
  EXPECT_GT(aggregate.merge(first.coverage), 0u);
  RunReport again = run_schedule(s, {});
  EXPECT_EQ(aggregate.merge(again.coverage), 0u);
}

// Every mutant the guided campaign can produce passes Schedule::validate —
// the mutator never hands the runner an unsound fault script.
TEST(CoverageMutation, MutantsAlwaysValidate) {
  for (FuzzTarget target : kAllTargets) {
    Rng rng(0xfeedULL + static_cast<std::uint64_t>(target));
    for (std::uint32_t index : {0u, 7u, 23u}) {
      Schedule parent = generate_schedule(target, 11, index);
      for (int i = 0; i < 16; ++i) {
        Schedule mutant = mutate_schedule(parent, rng);
        std::string error;
        EXPECT_TRUE(mutant.validate(&error))
            << target_name(target) << " index " << index << ": " << error;
        EXPECT_TRUE(mutant.expect_violations.empty());
        EXPECT_TRUE(mutant.expect_digest.empty());
      }
    }
  }
}

TEST(CoverageMutation, SameRngSeedSameMutant) {
  Schedule parent = generate_schedule(FuzzTarget::kRecovery, 4, 9);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mutate_schedule(parent, a).to_text(),
              mutate_schedule(parent, b).to_text());
  }
}

// Guided campaigns keep a corpus and report it through the fuzz.* gauges on
// the campaign registry (never the hermetic per-run registries).
TEST(CoverageCampaign, GuidedBuildsCorpusAndSetsGauges) {
  const std::string dir = ::testing::TempDir() + "sgxp2p_guided_corpus";
  std::filesystem::create_directories(dir);

  obs::MetricsRegistry campaign;
  CampaignResult result;
  {
    obs::MetricsRegistry::ScopedCurrent scoped(campaign);
    CampaignOptions options;
    options.targets = {FuzzTarget::kErb};
    options.seed = 7;
    options.schedules = 100;
    options.coverage_guided = true;
    options.corpus_dir = dir;
    result = run_campaign(options);
  }
  EXPECT_TRUE(result.clean());
  EXPECT_GT(result.coverage.count(), 0u);
  EXPECT_GT(result.corpus_size, 0u);

  auto snap = campaign.snapshot();
  EXPECT_EQ(gauge_value(snap, "fuzz.coverage_bits"),
            static_cast<std::int64_t>(result.coverage.count()));
  EXPECT_EQ(gauge_value(snap, "fuzz.corpus_size"),
            static_cast<std::int64_t>(result.corpus_size));

  // Every corpus-retained schedule landed on disk and replays cleanly.
  std::size_t written = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sched") continue;
    std::string error;
    auto s = Schedule::load_file(entry.path().string(), &error);
    ASSERT_TRUE(s.has_value()) << entry.path() << ": " << error;
    EXPECT_TRUE(s->validate(&error)) << error;
    ++written;
  }
  EXPECT_EQ(written, result.corpus_size);
  std::filesystem::remove_all(dir);
}

// Same budget, same seed pool: the guided campaign must be deterministic
// AND strictly out-cover fresh-random. This is the acceptance check for the
// guided mode; at 2×2000 schedules it runs ~15 s, so it lives behind the
// slow label (FuzzCoverageScale.* in SGXP2P_SLOW_FILTER) and the nightly /
// coverage lanes run it.
TEST(FuzzCoverageScale, GuidedStrictlyOutCoversRandomAt2000) {
  CampaignOptions random;
  random.targets = {FuzzTarget::kErb};
  random.seed = 7;
  random.schedules = 2000;
  CampaignResult random_result = run_campaign(random);

  CampaignOptions guided = random;
  guided.coverage_guided = true;
  CampaignResult guided_result = run_campaign(guided);
  CampaignResult guided_again = run_campaign(guided);

  EXPECT_EQ(guided_result.coverage, guided_again.coverage);
  EXPECT_EQ(guided_result.corpus_size, guided_again.corpus_size);
  EXPECT_GT(guided_result.coverage.count(), random_result.coverage.count())
      << "guided search no longer out-covers fresh-random at equal budget";
}

// The checker exhausts the n=3 / 2-round / bound-2 ERB scope without
// finding anything (the protocol is clean there), counts real exploration
// and real pruning, and publishes both through mcheck.* counters.
TEST(ModelCheck, ExhaustsSmallErbScopeClean) {
  obs::MetricsRegistry registry;
  ModelCheckResult result;
  {
    obs::MetricsRegistry::ScopedCurrent scoped(registry);
    ModelCheckOptions options;
    options.target = FuzzTarget::kErb;
    options.n = 3;
    options.rounds = 2;
    options.bound = 2;
    result = check_model(options);
  }
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.clean());
  EXPECT_GT(result.states_explored, 0u);
  EXPECT_GT(result.states_pruned, 0u);
  EXPECT_GT(result.coverage.count(), 0u);

  auto snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "mcheck.states_explored"),
            result.states_explored);
  EXPECT_EQ(counter_value(snap, "mcheck.states_pruned"),
            result.states_pruned);
}

TEST(ModelCheck, DeterministicAcrossRuns) {
  ModelCheckOptions options;
  options.target = FuzzTarget::kErngBasic;
  ModelCheckResult a = check_model(options);
  ModelCheckResult b = check_model(options);
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.states_pruned, b.states_pruned);
  EXPECT_EQ(a.coverage, b.coverage);
}

// Planted-canary meta-test: arm the deliberately-too-strong canary oracle
// and the enumerator must find it, shrink it, and write a reproducer that
// replays byte-identically — proving the find→shrink→replay loop end to
// end for the exhaustive path, exactly as test_fuzz.cpp proves it for the
// random path.
TEST(ModelCheck, CanaryFoundShrunkAndReplayable) {
  const std::string dir = ::testing::TempDir() + "sgxp2p_mcheck_canary";
  std::filesystem::create_directories(dir);

  ModelCheckOptions options;
  options.target = FuzzTarget::kErb;
  options.canary = true;
  options.out_dir = dir;
  options.max_emitted = 1;
  ModelCheckResult result = check_model(options);

  EXPECT_GT(result.violations_found, 0u);
  ASSERT_FALSE(result.violations.empty());
  const ModelCheckViolation& v = result.violations[0];
  EXPECT_LE(v.shrunk.actions.size(), 8u);
  ASSERT_FALSE(v.repro_path.empty());

  ReplayResult replay = replay_schedule_file(v.repro_path);
  EXPECT_TRUE(replay.ok) << replay.message;
  EXPECT_EQ(replay.report.digest, v.report.digest);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sgxp2p::fuzz
