// Application-layer tests (Appendix H): beacon log integrity and proofs,
// overlay walks (agreement + spread), group keys, load balancing quorums,
// and the sanitization model's convergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "apps/beacon.hpp"
#include "apps/group_key.hpp"
#include "apps/load_balancer.hpp"
#include "apps/random_walk.hpp"
#include "protocol/sanitizer.hpp"

namespace sgxp2p::apps {
namespace {

// --- beacon ---

TEST(Beacon, LogChainAndProofs) {
  BeaconLog log;
  for (int i = 0; i < 6; ++i) {
    log.append(Bytes(32, static_cast<std::uint8_t>(i + 1)), 5);
  }
  EXPECT_TRUE(log.audit_chain());
  Bytes root = log.root();
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_TRUE(
        BeaconLog::verify(root, log.entry(i), i, log.size(), log.proof(i)))
        << "epoch " << i;
  }
  // Wrong index / tampered value rejected.
  EXPECT_FALSE(
      BeaconLog::verify(root, log.entry(2), 3, log.size(), log.proof(2)));
  BeaconEntry forged = log.entry(2);
  forged.value[0] ^= 1;
  EXPECT_FALSE(
      BeaconLog::verify(root, forged, 2, log.size(), log.proof(2)));
}

TEST(Beacon, EndToEndEpochsDistinct) {
  BeaconLog log = run_beacon(/*n=*/7, /*epochs=*/3, /*byzantine_omitters=*/1,
                             /*seed=*/99);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(log.audit_chain());
  EXPECT_NE(log.entry(0).value, log.entry(1).value);
  EXPECT_NE(log.entry(1).value, log.entry(2).value);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(log.entry(i).contributors, 6u);  // ≥ honest count
  }
}

// --- overlay / walks ---

TEST(Overlay, ConnectedAndLowDiameter) {
  Overlay overlay(128, 6);
  EXPECT_EQ(overlay.size(), 128u);
  // Reaches everyone, in few hops (ring+chords ⇒ O(log N)).
  EXPECT_LE(overlay.eccentricity(0), 8u);
  EXPECT_GE(overlay.neighbors(0).size(), 4u);
  // Symmetry: if b is a's neighbor, a is b's.
  for (NodeId a = 0; a < 128; ++a) {
    for (NodeId b : overlay.neighbors(a)) {
      const auto& back = overlay.neighbors(b);
      EXPECT_TRUE(std::find(back.begin(), back.end(), a) != back.end());
    }
  }
}

TEST(Walk, DeterministicPerCoinAndTag) {
  Overlay overlay(64, 5);
  Bytes coin(32, 0x5a);
  auto w1 = common_coin_walk(overlay, 3, 20, coin, 1);
  auto w2 = common_coin_walk(overlay, 3, 20, coin, 1);
  EXPECT_EQ(w1.path, w2.path);
  auto w3 = common_coin_walk(overlay, 3, 20, coin, 2);
  EXPECT_NE(w1.path, w3.path);
  Bytes other_coin(32, 0xa5);
  auto w4 = common_coin_walk(overlay, 3, 20, other_coin, 1);
  EXPECT_NE(w1.path, w4.path);
}

TEST(Walk, PathIsValidInOverlay) {
  Overlay overlay(32, 4);
  auto w = common_coin_walk(overlay, 0, 15, Bytes(32, 1), 9);
  ASSERT_EQ(w.path.size(), 16u);
  for (std::size_t i = 1; i < w.path.size(); ++i) {
    const auto& nbrs = overlay.neighbors(w.path[i - 1]);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), w.path[i]) != nbrs.end())
        << "hop " << i;
  }
}

TEST(Walk, EndpointsSpread) {
  Overlay overlay(64, 5);
  auto hist = endpoint_histogram(overlay, 0, 12, Bytes(32, 7), 4096);
  std::uint32_t total = std::accumulate(hist.begin(), hist.end(), 0u);
  EXPECT_EQ(total, 4096u);
  // Every node reachable; nothing hogs more than 3x the uniform share.
  std::uint32_t uniform = 4096 / 64;
  for (std::size_t i = 0; i < hist.size(); ++i) {
    EXPECT_GT(hist[i], 0u) << "node " << i << " never reached";
    EXPECT_LT(hist[i], 3 * uniform) << "node " << i << " over-visited";
  }
}

// --- group key ---

TEST(GroupKey, DerivationIsLabeledAndDeterministic) {
  Bytes coin(32, 0x42);
  Bytes k1 = derive_group_key(coin, to_bytes("payout"));
  Bytes k2 = derive_group_key(coin, to_bytes("payout"));
  Bytes k3 = derive_group_key(coin, to_bytes("audit"));
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
}

TEST(GroupKey, SealOpenAndTamper) {
  Bytes key = derive_group_key(Bytes(32, 9), to_bytes("msg"));
  Bytes sealed = group_seal(key, 7, to_bytes("secret note"));
  auto opened = group_open(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("secret note"));
  Bytes bad = sealed;
  bad.back() ^= 1;
  EXPECT_FALSE(group_open(key, bad).has_value());
  Bytes wrong_key = derive_group_key(Bytes(32, 8), to_bytes("msg"));
  EXPECT_FALSE(group_open(wrong_key, sealed).has_value());
}

// --- load balancer ---

TEST(LoadBalancer, DeterministicAssignments) {
  Bytes coin(32, 3);
  LoadBalancer lb1(coin, 8), lb2(coin, 8);
  for (std::uint64_t task = 0; task < 100; ++task) {
    EXPECT_EQ(lb1.assign(task), lb2.assign(task));
    EXPECT_LT(lb1.assign(task), 8u);
  }
}

TEST(LoadBalancer, ReasonablyBalanced) {
  LoadBalancer lb(Bytes(32, 0x77), 10);
  auto hist = lb.histogram(10000);
  for (std::uint32_t c : hist) {
    EXPECT_GT(c, 800u);
    EXPECT_LT(c, 1200u);
  }
}

TEST(LoadBalancer, QuorumToleratesLiarsAndDuplicates) {
  PlacementQuorum q(3);
  EXPECT_FALSE(q.vote(0, 42, 5).has_value());
  EXPECT_FALSE(q.vote(1, 42, 6).has_value());  // liar
  EXPECT_FALSE(q.vote(0, 42, 5).has_value());  // duplicate, not counted
  EXPECT_FALSE(q.vote(2, 42, 5).has_value());
  auto confirmed = q.vote(3, 42, 5);
  ASSERT_TRUE(confirmed.has_value());
  EXPECT_EQ(*confirmed, 5u);
}

// --- sanitizer model ---

TEST(Sanitizer, PopulationDiesOutAndRoundsConverge) {
  protocol::SanitizeConfig cfg;
  cfg.n = 256;
  cfg.t0 = 127;
  cfg.p = 1.0 / 16;
  cfg.instances = 1200;
  cfg.trials = 40;
  auto curves = protocol::simulate_sanitization(cfg);
  // Monte-Carlo stays under the Theorem D.1 bound (within noise) and hits
  // zero well before the horizon.
  EXPECT_LT(curves.pr_byz_remaining.back(), 0.05);
  EXPECT_LT(curves.mean_byzantine.back(), 0.5);
  // Average per-instance rounds decreasing toward the constant 2.
  EXPECT_LT(curves.mean_rounds.back(), curves.mean_rounds[100]);
  EXPECT_LT(curves.mean_rounds.back(), 3.5);
  // The analytic bound is monotone decreasing once below 1.
  for (std::size_t i = 600; i + 1 < curves.pr_bound.size(); ++i) {
    EXPECT_LE(curves.pr_bound[i + 1], curves.pr_bound[i] + 1e-12);
  }
}

}  // namespace
}  // namespace sgxp2p::apps
