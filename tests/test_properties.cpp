// Property-based sweeps: the paper's theorem statements checked over a grid
// of network sizes, byzantine loads, and seeds (parameterized gtest).
//
//   Theorem 4.1 (ERB is reliable broadcast): validity, agreement, integrity,
//   termination — plus the early-stopping bound min{f+2, t+2} and the O(N²)
//   traffic envelope.
//   Determinism: identical seeds replay identical executions bit-for-bit.
//   Channel-mode equivalence: accounted links carry the same protocol.
#include <gtest/gtest.h>

#include <tuple>

#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErbNode;
using protocol::ErngBasicNode;
using testutil::all_honest_erb_decided;
using testutil::erb_factory;
using testutil::erng_basic_factory;
using testutil::small_config;

// ---------- ERB grid: (n, f, seed) with the chain adversary ----------

using ErbGridParam = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

class ErbGrid : public ::testing::TestWithParam<ErbGridParam> {};

TEST_P(ErbGrid, ReliableBroadcastProperties) {
  const auto [n, f, seed] = GetParam();
  if (f >= (n - 1) / 2) {
    GTEST_SKIP() << "infeasible combination: f must stay below t";
  }

  auto plan = std::make_shared<adversary::ChainPlan>();
  for (NodeId id = 0; id < f; ++id) plan->order.push_back(id);
  plan->release = adversary::ChainPlan::Release::kSingleHonest;
  plan->honest_target = f;

  sim::Testbed bed(small_config(n, seed));
  Bytes payload = to_bytes("grid");
  bed.build(erb_factory(0, payload), [&](NodeId id)
                                         -> std::unique_ptr<adversary::Strategy> {
    if (f > 0 && id < f) {
      return std::make_unique<adversary::ChainStrategy>(plan);
    }
    return nullptr;
  });
  bed.start();
  const std::uint32_t t = bed.config().effective_t();
  bed.run_rounds(t + 4, all_honest_erb_decided(bed));

  std::optional<Bytes> agreed;
  bool agreed_set = false;
  std::uint32_t max_round = 0;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    // Termination: every honest node decided.
    ASSERT_TRUE(r.decided) << "node " << id;
    // Agreement: all equal.
    if (!agreed_set) {
      agreed = r.value;
      agreed_set = true;
    } else {
      EXPECT_EQ(r.value, agreed) << "node " << id;
    }
    max_round = std::max(max_round, r.round);
  }
  // Validity: with f = 0 the initiator is honest — everyone holds payload.
  if (f == 0) {
    ASSERT_TRUE(agreed.has_value());
    EXPECT_EQ(*agreed, payload);
    EXPECT_LE(max_round, 2u);
  }
  // Integrity: the decided value, when present, is the initiator's m.
  if (agreed.has_value()) {
    EXPECT_EQ(*agreed, payload);
  }
  // Early stopping: min{f+2, t+2}.
  EXPECT_LE(max_round, std::min(f + 2, t + 2));
  // Traffic envelope: < 3·N² messages for every grid point.
  EXPECT_LT(bed.network().meter().messages(), 3ull * n * n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ErbGrid,
    ::testing::Combine(::testing::Values(7u, 11u, 15u),
                       ::testing::Values(0u, 1u, 2u, 4u),
                       ::testing::Values(1u, 7u)),
    [](const ::testing::TestParamInfo<ErbGridParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------- determinism ----------

struct Fingerprint {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::vector<std::uint32_t> rounds;
  std::vector<Bytes> values;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_fingerprint(std::uint64_t seed) {
  sim::Testbed bed(small_config(9, seed));
  bed.build(erng_basic_factory(), [](NodeId id)
                                      -> std::unique_ptr<adversary::Strategy> {
    if (id >= 7) {
      return std::make_unique<adversary::RandomOmissionStrategy>(0.4, 0.2);
    }
    return nullptr;
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4);
  Fingerprint fp;
  fp.messages = bed.network().meter().messages();
  fp.bytes = bed.network().meter().bytes();
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErngBasicNode>(id).result();
    fp.rounds.push_back(r.round);
    fp.values.push_back(r.value);
  }
  return fp;
}

TEST(Determinism, SameSeedSameExecution) {
  EXPECT_EQ(run_fingerprint(123), run_fingerprint(123));
}

TEST(Determinism, DifferentSeedsDiffer) {
  EXPECT_NE(run_fingerprint(123).values, run_fingerprint(124).values);
}

// ---------- channel-mode equivalence ----------

TEST(ChannelMode, AccountedMatchesAttestedShape) {
  // Honest ERB at the same seed in both channel modes: identical message
  // counts, identical wire bytes (the accounted mode pads the AEAD
  // overhead), identical decisions.
  auto run = [](protocol::ChannelMode mode) {
    auto cfg = small_config(9, 55);
    cfg.mode = mode;
    sim::Testbed bed(cfg);
    bed.build(erb_factory(2, to_bytes("equivalence")));
    bed.start();
    bed.run_rounds(6, all_honest_erb_decided(bed));
    std::vector<std::uint32_t> rounds;
    for (NodeId id = 0; id < 9; ++id) {
      rounds.push_back(bed.enclave_as<ErbNode>(id).result().round);
    }
    return std::tuple(bed.network().meter().messages(),
                      bed.network().meter().bytes(), rounds);
  };
  auto attested = run(protocol::ChannelMode::kAttested);
  auto accounted = run(protocol::ChannelMode::kAccounted);
  EXPECT_EQ(std::get<0>(attested), std::get<0>(accounted));
  EXPECT_EQ(std::get<1>(attested), std::get<1>(accounted));
  EXPECT_EQ(std::get<2>(attested), std::get<2>(accounted));
}

// ---------- ERNG agreement under omission-rate sweep ----------

class ErngOmissionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ErngOmissionSweep, AgreementHolds) {
  const double drop = GetParam() / 100.0;
  sim::Testbed bed(small_config(7, 300 + GetParam()));
  bed.build(erng_basic_factory(),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id >= 5) {
                return std::make_unique<adversary::RandomOmissionStrategy>(
                    drop, drop / 2);
              }
              return nullptr;
            });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4);
  const auto& r0 = bed.enclave_as<ErngBasicNode>(0).result();
  ASSERT_TRUE(r0.done);
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErngBasicNode>(id).result();
    ASSERT_TRUE(r.done) << "node " << id;
    EXPECT_EQ(r.value, r0.value) << "node " << id;
    EXPECT_EQ(r.set_size, r0.set_size) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(DropRates, ErngOmissionSweep,
                         ::testing::Values(0, 10, 25, 50, 75, 100));

}  // namespace
}  // namespace sgxp2p
