// Shamir secret sharing (threshold group keys, Appendix H) and the
// statistical randomness battery applied to DRBG and beacon output.
#include <gtest/gtest.h>

#include "apps/beacon.hpp"
#include "apps/group_key.hpp"
#include "common/rng.hpp"
#include "crypto/shamir.hpp"
#include "stats/randtests.hpp"

namespace sgxp2p {
namespace {

using crypto::Drbg;
using crypto::Share;
using crypto::shamir_reconstruct;
using crypto::shamir_split;

// ---------- Shamir ----------

TEST(Shamir, SplitReconstructRoundTrip) {
  Drbg drbg(to_bytes("shamir"));
  Bytes secret = drbg.generate(32);
  auto shares = shamir_split(secret, /*n=*/5, /*k=*/3, drbg);
  ASSERT_EQ(shares.size(), 5u);
  auto back = shamir_reconstruct(shares, 3);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, secret);
}

TEST(Shamir, AnyKSubsetReconstructs) {
  Drbg drbg(to_bytes("subsets"));
  Bytes secret = to_bytes("the group key material!");
  auto shares = shamir_split(secret, 6, 3, drbg);
  // Every 3-subset of 6 shares works.
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = a + 1; b < 6; ++b) {
      for (std::size_t c = b + 1; c < 6; ++c) {
        std::vector<Share> subset = {shares[a], shares[b], shares[c]};
        auto back = shamir_reconstruct(subset, 3);
        ASSERT_TRUE(back.has_value()) << a << b << c;
        EXPECT_EQ(*back, secret) << a << b << c;
      }
    }
  }
}

TEST(Shamir, BelowThresholdLearnsNothingStructural) {
  // k−1 shares yield a wrong reconstruction (we cannot test information-
  // theoretic secrecy directly; we check that interpolating fewer points
  // does not accidentally produce the secret, and that two different
  // secrets can produce the same k−1 share prefix distributionally).
  Drbg drbg(to_bytes("below"));
  Bytes secret = drbg.generate(16);
  auto shares = shamir_split(secret, 5, 3, drbg);
  std::vector<Share> two = {shares[0], shares[1]};
  EXPECT_FALSE(shamir_reconstruct(two, 3).has_value());
  // Interpolating the two shares as if k = 2 gives a value != secret (whp).
  auto wrong = shamir_reconstruct(two, 2);
  ASSERT_TRUE(wrong.has_value());
  EXPECT_NE(*wrong, secret);
}

TEST(Shamir, MalformedSharesRejected) {
  Drbg drbg(to_bytes("malformed"));
  Bytes secret = drbg.generate(8);
  auto shares = shamir_split(secret, 4, 2, drbg);
  // Duplicate x.
  std::vector<Share> dup = {shares[0], shares[0]};
  EXPECT_FALSE(shamir_reconstruct(dup, 2).has_value());
  // Zero x (would be the secret itself).
  std::vector<Share> zero = {Share{0, Bytes(8, 1)}, shares[1]};
  EXPECT_FALSE(shamir_reconstruct(zero, 2).has_value());
  // Length mismatch.
  std::vector<Share> lens = {shares[0], Share{shares[1].x, Bytes(4, 2)}};
  EXPECT_FALSE(shamir_reconstruct(lens, 2).has_value());
}

TEST(Shamir, ParameterValidation) {
  Drbg drbg(to_bytes("params"));
  Bytes secret = drbg.generate(4);
  EXPECT_THROW(shamir_split(secret, 3, 1, drbg), std::invalid_argument);
  EXPECT_THROW(shamir_split(secret, 2, 3, drbg), std::invalid_argument);
}

TEST(Shamir, ThresholdGroupKeyEndToEnd) {
  // The Appendix H flow: beacon value → group key → 3-of-5 escrow; any 3
  // members recover the key and decrypt; the sealed message survives.
  Drbg drbg(to_bytes("e2e"));
  Bytes coin = drbg.generate(32);
  Bytes key = apps::derive_group_key(coin, to_bytes("escrow"));
  Bytes sealed = apps::group_seal(key, 1, to_bytes("quarterly secret"));

  auto shares = shamir_split(key, 5, 3, drbg);
  std::vector<Share> quorum = {shares[4], shares[1], shares[2]};
  auto recovered = shamir_reconstruct(quorum, 3);
  ASSERT_TRUE(recovered.has_value());
  auto opened = apps::group_open(*recovered, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("quarterly secret"));
}

// ---------- randomness battery ----------

TEST(RandBattery, DrbgPasses) {
  Drbg drbg(to_bytes("battery"));
  Bytes sample = drbg.generate(1 << 15);
  auto v = stats::randomness_battery(sample);
  EXPECT_TRUE(v.pass) << "monobit=" << v.monobit << " chi2=" << v.chi_square
                      << " runs=" << v.runs << " corr=" << v.correlation;
}

TEST(RandBattery, ConstantDataFails) {
  Bytes flat(4096, 0xaa);
  EXPECT_FALSE(stats::randomness_battery(flat).pass);
}

TEST(RandBattery, CounterDataFails) {
  Bytes ramp(4096);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::uint8_t>(i);
  }
  auto v = stats::randomness_battery(ramp);
  // A counter has near-perfect bit balance but terrible serial correlation.
  EXPECT_FALSE(v.pass);
}

TEST(RandBattery, BeaconOutputsUnderAdversaryPass) {
  // Concatenate beacon epochs produced with byzantine omitters active; the
  // stream must be statistically clean (Theorem 5.1 in practice).
  Bytes stream;
  apps::BeaconLog log = apps::run_beacon(/*n=*/9, /*epochs=*/24,
                                         /*byzantine_omitters=*/3,
                                         /*seed=*/202607);
  for (std::size_t i = 0; i < log.size(); ++i) {
    append(stream, log.entry(i).value);
  }
  ASSERT_EQ(stream.size(), 24u * 32);
  // Small sample: apply individual instruments with thresholds scaled for
  // 768 bytes rather than the full battery.
  EXPECT_NEAR(stats::monobit_fraction(stream), 0.5, 0.05);
  EXPECT_NEAR(stats::runs_ratio(stream), 1.0, 0.1);
  EXPECT_LT(std::abs(stats::serial_correlation(stream)), 0.2);
}

}  // namespace
}  // namespace sgxp2p
