// Blinded-channel tests (Appendix A): handshake + key derivation, the
// Fig. 4 Write/Read properties (authenticity, confidentiality-shaped
// ciphertexts, program binding), replay windows, and MITM resistance.
#include <gtest/gtest.h>

#include "channel/handshake.hpp"
#include "channel/secure_link.hpp"
#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"
#include "crypto/x25519.hpp"
#include "net/simulator.hpp"
#include "sgx/enclave.hpp"

namespace sgxp2p::channel {
namespace {

class ProbeEnclave final : public sgx::Enclave {
 public:
  using Enclave::Enclave;
  void deliver(NodeId, ByteView) override {}
  sgx::Quote make_quote(ByteView data) const { return quote(data); }
};

class NullHost final : public sgx::EnclaveHostIface {
 public:
  void transfer(NodeId, Bytes) override {}
};

struct Pair {
  sim::Simulator simulator;
  sgx::SgxPlatform platform{simulator, to_bytes("channel-tests")};
  sgx::SimIAS ias{platform};
  NullHost host;
  sgx::ProgramIdentity prog{"chan", "1"};
  sgx::Measurement m = sgx::measure({"chan", "1"});

  ProbeEnclave e_a{platform, 1, prog, host};
  ProbeEnclave e_b{platform, 2, prog, host};
  Bytes priv_a, priv_b;
  std::optional<LinkKeys> keys_a, keys_b;

  Pair() {
    crypto::Drbg d(to_bytes("pair-dh"));
    priv_a = d.generate(32);
    priv_b = d.generate(32);
    HandshakeMsg hello_a =
        make_handshake(10, e_a.make_quote(crypto::x25519_public(priv_a)));
    HandshakeMsg hello_b =
        make_handshake(20, e_b.make_quote(crypto::x25519_public(priv_b)));
    keys_a = complete_handshake(hello_b, 10, priv_a, m, ias);
    keys_b = complete_handshake(hello_a, 20, priv_b, m, ias);
  }
};

TEST(Handshake, DerivesMatchingDirectionalKeys) {
  Pair p;
  ASSERT_TRUE(p.keys_a.has_value());
  ASSERT_TRUE(p.keys_b.has_value());
  EXPECT_EQ(p.keys_a->send_key, p.keys_b->recv_key);
  EXPECT_EQ(p.keys_a->recv_key, p.keys_b->send_key);
  EXPECT_NE(p.keys_a->send_key, p.keys_a->recv_key);
  EXPECT_EQ(p.keys_a->send_seq0, p.keys_b->recv_seq0);
  EXPECT_EQ(p.keys_a->recv_seq0, p.keys_b->send_seq0);
}

TEST(Handshake, RejectsWrongProgramQuote) {
  Pair p;
  ProbeEnclave evil(p.platform, 3, {"evil", "1"}, p.host);
  Bytes priv = crypto::Drbg(to_bytes("evil")).generate(32);
  HandshakeMsg hello =
      make_handshake(30, evil.make_quote(crypto::x25519_public(priv)));
  EXPECT_FALSE(complete_handshake(hello, 10, p.priv_a, p.m, p.ias).has_value());
}

TEST(Handshake, RejectsMitmKeySubstitution) {
  // A malicious host swaps its own DH key into a relayed handshake — but it
  // cannot re-MAC the quote, so the substitution is caught.
  Pair p;
  HandshakeMsg hello_b =
      make_handshake(20, p.e_b.make_quote(crypto::x25519_public(p.priv_b)));
  Bytes mitm_priv = crypto::Drbg(to_bytes("mitm")).generate(32);
  hello_b.quote.report_data = crypto::x25519_public(mitm_priv);
  EXPECT_FALSE(
      complete_handshake(hello_b, 10, p.priv_a, p.m, p.ias).has_value());
}

TEST(Handshake, RejectsSelfHandshake) {
  Pair p;
  HandshakeMsg hello_self =
      make_handshake(10, p.e_a.make_quote(crypto::x25519_public(p.priv_a)));
  EXPECT_FALSE(
      complete_handshake(hello_self, 10, p.priv_a, p.m, p.ias).has_value());
}

TEST(Handshake, SerializationRoundTrip) {
  Pair p;
  HandshakeMsg hello =
      make_handshake(10, p.e_a.make_quote(crypto::x25519_public(p.priv_a)));
  Bytes wire = hello.serialize();
  auto parsed = HandshakeMsg::deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sender, 10u);
  EXPECT_FALSE(
      HandshakeMsg::deserialize(ByteView(wire.data(), wire.size() - 1))
          .has_value());
}

struct Links {
  Pair p;
  SecureLink a;
  SecureLink b;
  Links()
      : a(10, 20, std::move(*p.keys_a), p.m),
        b(20, 10, std::move(*p.keys_b), p.m) {}
};

TEST(SecureLink, SealOpenRoundTrip) {
  Links l;
  Bytes msg = to_bytes("protocol value");
  Bytes blob = l.a.seal(msg);
  EXPECT_EQ(blob.size(), msg.size() + crypto::kAeadOverhead);
  auto opened = l.b.open(blob);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(SecureLink, BothDirectionsIndependent) {
  Links l;
  Bytes m1 = to_bytes("a->b"), m2 = to_bytes("b->a");
  auto r1 = l.b.open(l.a.seal(m1));
  auto r2 = l.a.open(l.b.seal(m2));
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, m1);
  EXPECT_EQ(*r2, m2);
}

TEST(SecureLink, ReplayRejected) {
  Links l;
  Bytes blob = l.a.seal(to_bytes("once"));
  EXPECT_TRUE(l.b.open(blob).has_value());
  EXPECT_FALSE(l.b.open(blob).has_value());  // exact replay
  EXPECT_EQ(l.b.rejected_count(), 1u);
}

TEST(SecureLink, OutOfOrderAcceptedOnceEach) {
  Links l;
  Bytes b1 = l.a.seal(to_bytes("one"));
  Bytes b2 = l.a.seal(to_bytes("two"));
  Bytes b3 = l.a.seal(to_bytes("three"));
  // Deliver 3, 1, 2 — all fresh, all accepted; replays of each rejected.
  EXPECT_TRUE(l.b.open(b3).has_value());
  EXPECT_TRUE(l.b.open(b1).has_value());
  EXPECT_TRUE(l.b.open(b2).has_value());
  EXPECT_FALSE(l.b.open(b1).has_value());
  EXPECT_FALSE(l.b.open(b2).has_value());
  EXPECT_FALSE(l.b.open(b3).has_value());
}

TEST(SecureLink, CorruptionRejected) {
  Links l;
  Bytes blob = l.a.seal(to_bytes("intact"));
  for (std::size_t i = 0; i < blob.size(); i += 3) {
    Bytes bad = blob;
    bad[i] ^= 0x80;
    EXPECT_FALSE(l.b.open(bad).has_value()) << "byte " << i;
  }
  // The original still opens (corrupted attempts must not burn the seq).
  EXPECT_TRUE(l.b.open(blob).has_value());
}

TEST(SecureLink, ReflectionRejected) {
  // A host reflecting A's own blob back to A must fail: directional AAD.
  Links l;
  Bytes blob = l.a.seal(to_bytes("mirror"));
  EXPECT_FALSE(l.a.open(blob).has_value());
}

TEST(SecureLink, CrossProgramRejected) {
  // Same keys, different program measurement in the AAD → reject (the
  // H(π) check of Fig. 4).
  Pair p;
  sgx::Measurement other = sgx::measure({"chan", "2"});
  SecureLink a(10, 20, std::move(*p.keys_a), p.m);
  SecureLink b_wrong(20, 10, std::move(*p.keys_b), other);
  EXPECT_FALSE(b_wrong.open(a.seal(to_bytes("x"))).has_value());
}

TEST(SecureLink, CiphertextsLookUnrelated) {
  // Blind-box (P3) smoke test: sealing the same plaintext twice yields
  // different ciphertext bodies (distinct nonces), and equal-length
  // plaintexts yield equal-length blobs regardless of content.
  Links l;
  Bytes m0(64, 0x00), m1(64, 0xff);
  Bytes c0 = l.a.seal(m0);
  Bytes c1 = l.a.seal(m0);
  Bytes c2 = l.a.seal(m1);
  EXPECT_NE(c0, c1);
  EXPECT_EQ(c0.size(), c2.size());
  // Byte histogram of the ciphertext body should not obviously mirror the
  // plaintext (all-zero vs all-ones bodies would).
  EXPECT_NE(Bytes(c0.begin() + 12, c0.end() - 32),
            Bytes(c2.begin() + 12, c2.end() - 32));
}

TEST(SecureLink, CountersTrack) {
  Links l;
  for (int i = 0; i < 5; ++i) (void)l.a.seal(to_bytes("m"));
  EXPECT_EQ(l.a.sealed_count(), 5u);
  EXPECT_EQ(l.b.opened_count(), 0u);
}

}  // namespace
}  // namespace sgxp2p::channel
