// Sharded epoch overlay (src/shard/): deterministic bias-resistant
// committee election, committee-local ERB with CONFIRM-gated digests, tree
// dissemination, and the coordinator's end-to-end agreement/validity
// oracles — including the adversarial case the design argument hinges on
// (byzantine hosts concentrated inside one committee, its reps included).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/serde.hpp"
#include "net/testbed.hpp"
#include "obs/metrics.hpp"
#include "shard/coordinator.hpp"
#include "shard/election.hpp"

namespace sgxp2p::shard {
namespace {

Bytes seed_bytes(std::uint64_t x) {
  BinaryWriter w;
  w.str("test-shard-seed");
  w.u64(x);
  return w.take();
}

// ----- election ----------------------------------------------------------

TEST(ShardElection, PartitionsEveryNodeExactlyOnce) {
  const Bytes seed = seed_bytes(7);
  for (std::uint32_t n : {5u, 24u, 100u, 1000u}) {
    Election e = Election::compute(n, 0, 3, ByteView(seed), 1);
    const std::uint32_t c = e.committee_size();
    EXPECT_EQ(c, auto_committee_size(n));
    std::set<NodeId> seen;
    for (std::uint32_t k = 0; k < e.committees().size(); ++k) {
      const CommitteeInfo& ci = e.committees()[k];
      EXPECT_TRUE(std::is_sorted(ci.members.begin(), ci.members.end()));
      EXPECT_EQ(ci.t_c, (ci.members.size() - 1) / 2);
      EXPECT_EQ(ci.m_init, ci.t_c + 1);
      // All committees carry exactly c members except the last, which
      // absorbs the remainder (size in [c, 2c − 1]).
      if (e.committees().size() > 1) {
        if (k + 1 < e.committees().size()) {
          EXPECT_EQ(ci.members.size(), c);
        } else {
          EXPECT_GE(ci.members.size(), c);
          EXPECT_LT(ci.members.size(), 2 * c);
        }
      }
      for (NodeId id : ci.members) {
        EXPECT_TRUE(seen.insert(id).second) << "node in two committees";
        EXPECT_EQ(e.committee_of(id), k);
      }
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(ShardElection, TreeShapeAndSubtreeCounts) {
  const Bytes seed = seed_bytes(9);
  Election e = Election::compute(2000, 0, 1, ByteView(seed), 1);
  const auto& cs = e.committees();
  ASSERT_GT(cs.size(), kTreeFanout);  // multi-level tree
  EXPECT_EQ(cs[0].parent, kNoCommittee);
  EXPECT_EQ(cs[0].subtree_count, cs.size());  // root covers everyone
  for (std::uint32_t k = 1; k < cs.size(); ++k) {
    const std::uint32_t p = (k - 1) / kTreeFanout;
    EXPECT_EQ(cs[k].parent, p);
    const auto& kids = cs[p].children;
    EXPECT_NE(std::find(kids.begin(), kids.end(), k), kids.end());
    EXPECT_LE(cs[p].children.size(), kTreeFanout);
  }
  for (const CommitteeInfo& ci : cs) {
    std::uint64_t sum = 1;
    for (std::uint32_t kid : ci.children) sum += cs[kid].subtree_count;
    EXPECT_EQ(ci.subtree_count, sum);
  }
}

TEST(ShardElection, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  const Bytes seed = seed_bytes(11);
  Election a = Election::compute(500, 0, 4, ByteView(seed), 9);
  Election b = Election::compute(500, 0, 4, ByteView(seed), 9);
  ASSERT_EQ(a.committees().size(), b.committees().size());
  for (std::size_t k = 0; k < a.committees().size(); ++k) {
    EXPECT_EQ(a.committees()[k].members, b.committees()[k].members);
    EXPECT_EQ(a.committees()[k].start_round, b.committees()[k].start_round);
  }
  // A different seed — and a different epoch under the same seed — must
  // both reshuffle (the permutation is keyed on H(tag ‖ seed ‖ epoch)).
  const Bytes other = seed_bytes(12);
  Election c = Election::compute(500, 0, 4, ByteView(other), 9);
  Election d = Election::compute(500, 0, 5, ByteView(seed), 9);
  bool differs_seed = false;
  bool differs_epoch = false;
  for (std::size_t k = 0; k < a.committees().size(); ++k) {
    differs_seed |= a.committees()[k].members != c.committees()[k].members;
    differs_epoch |= a.committees()[k].members != d.committees()[k].members;
  }
  EXPECT_TRUE(differs_seed);
  EXPECT_TRUE(differs_epoch);
}

// Bias sanity: over many independent seeds, a fixed node's committee index
// is uniform. 8 committees, 2000 seeds → expected 250 per cell; χ² with
// 7 degrees of freedom stays far below 40 (p < 10⁻⁵) unless the
// permutation is skewed. Deterministic: the seed list is fixed.
TEST(ShardElection, CommitteeAssignmentIsUnbiasedChiSquared) {
  const std::uint32_t n = 40;
  const std::uint32_t c = 5;
  const std::uint32_t kCells = n / c;  // 8 committees
  const std::uint32_t kTrials = 2000;
  std::vector<std::uint32_t> counts(kCells, 0);
  for (std::uint32_t i = 0; i < kTrials; ++i) {
    const Bytes seed = seed_bytes(1000 + i);
    Election e = Election::compute(n, c, 0, ByteView(seed), 1);
    ASSERT_EQ(e.committees().size(), kCells);
    ++counts[e.committee_of(0)];
  }
  const double expected = static_cast<double>(kTrials) / kCells;
  double chi2 = 0;
  for (std::uint32_t cell : counts) {
    const double d = static_cast<double>(cell) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 40.0) << "assignment of node 0 is biased";
}

// ----- full epochs over the testbed --------------------------------------

sim::TestbedConfig shard_cfg(std::uint32_t n, std::uint64_t seed) {
  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.t = 1;  // ShardNode budgets per committee (t_c), not via PeerConfig
  cfg.net.base_delay = milliseconds(100);
  cfg.net.max_jitter = milliseconds(100);
  return cfg;
}

TEST(ShardEpochs, ChainedEpochsDecideAndReseed) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Testbed bed(shard_cfg(24, 5));
  bed.build(ShardCoordinator::make_factory());
  bed.start();

  ShardConfig cfg;
  cfg.committee_size = 6;
  cfg.epochs = 3;
  ShardCoordinator coord(bed, cfg);
  std::vector<EpochSummary> epochs = coord.run_all();

  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_TRUE(coord.all_ok());
  for (const EpochSummary& e : epochs) {
    EXPECT_TRUE(e.termination);
    EXPECT_TRUE(e.agreement);
    EXPECT_TRUE(e.validity);
    EXPECT_EQ(e.decided, e.honest);
    EXPECT_LE(e.rounds_used, e.budget_rounds);
    ASSERT_FALSE(e.global_digest.empty());
  }
  // Distinct digests per epoch, and the beacon chain hands epoch e's digest
  // to epoch e+1's election.
  EXPECT_NE(epochs[0].global_digest, epochs[1].global_digest);
  EXPECT_NE(epochs[1].global_digest, epochs[2].global_digest);
  EXPECT_EQ(coord.next_seed(), epochs[2].global_digest);
  EXPECT_EQ(reg.counter("shard.epochs").value(), 3u);
  EXPECT_GE(reg.counter("shard.decides").value(), 3u * 24u);
}

// Both event engines must produce byte-identical epoch digests: the digest
// hashes every committee's accepted values, so it transitively pins the
// election, ERB scheduling, CONFIRM gating, and the dissemination tree.
TEST(ShardEpochs, WheelAndHeapEnginesAgreeByteIdentically) {
  auto run = [](sim::SimEngine engine) {
    obs::MetricsRegistry reg;
    obs::MetricsRegistry::ScopedCurrent bind(reg);
    sim::TestbedConfig cfg = shard_cfg(30, 9);
    cfg.engine = engine;
    sim::Testbed bed(cfg);
    bed.build(ShardCoordinator::make_factory());
    bed.start();
    ShardConfig scfg;
    scfg.epochs = 2;
    ShardCoordinator coord(bed, scfg);
    coord.run_all();
    EXPECT_TRUE(coord.all_ok());
    std::vector<Bytes> digests;
    for (const EpochSummary& e : coord.summaries()) {
      digests.push_back(e.global_digest);
    }
    return digests;
  };
  std::vector<Bytes> wheel = run(sim::SimEngine::kWheel);
  std::vector<Bytes> heap = run(sim::SimEngine::kHeap);
  ASSERT_EQ(wheel.size(), 2u);
  EXPECT_EQ(wheel, heap);
  EXPECT_FALSE(wheel[0].empty());
}

// The t-budget argument end to end: up to t_c byzantine hosts land inside
// ONE committee — including that committee's reps, the nodes that CONFIRM,
// RECORD, and forward GLOBAL. Omission there starves neither the committee
// ERB (≥ sz − t_c honest echoes remain) nor dissemination (t_c + 1 reps, so
// one honest rep always survives), and global agreement/validity hold.
TEST(ShardEpochs, ByzantineCommitteeRepsCannotBreakAgreement) {
  const std::uint32_t n = 20;
  const std::uint32_t csize = 5;
  const Bytes genesis = seed_bytes(77);

  // The election is a pure function of public inputs, so the test computes
  // the epoch-0 assignment up front and plants the byzantine hosts on the
  // first t_c members of committee 0 — exactly its lowest-id reps.
  Election e0 = Election::compute(n, csize, 0, ByteView(genesis), 1);
  const CommitteeInfo& target = e0.committees()[0];
  const std::uint32_t t_c = target.t_c;
  ASSERT_GE(t_c, 2u);
  std::vector<NodeId> byz(target.members.begin(),
                          target.members.begin() + t_c);

  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::TestbedConfig cfg = shard_cfg(n, 13);
  cfg.t = t_c;
  sim::Testbed bed(cfg);
  bed.build(ShardCoordinator::make_factory(),
            [&byz](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (std::find(byz.begin(), byz.end(), id) != byz.end()) {
                return std::make_unique<adversary::RandomOmissionStrategy>(
                    0.5, 0.3);
              }
              return nullptr;
            });
  bed.start();

  ShardConfig scfg;
  scfg.committee_size = csize;
  scfg.epochs = 2;
  scfg.genesis_seed = genesis;
  ShardCoordinator coord(bed, scfg);
  std::vector<EpochSummary> epochs = coord.run_all();

  ASSERT_EQ(epochs.size(), 2u);
  for (const EpochSummary& e : epochs) {
    EXPECT_TRUE(e.termination) << "epoch " << e.epoch;
    EXPECT_TRUE(e.agreement) << "epoch " << e.epoch;
    EXPECT_TRUE(e.validity) << "epoch " << e.epoch;
    EXPECT_EQ(e.honest, n - byz.size());
    ASSERT_FALSE(e.global_digest.empty());
  }
}

// Satellite: a sharded deployment must not allocate O(n²) network state.
// With sparse setup (no pre-wired clique) the per-pair FIFO slots grow with
// the pairs that actually talk — committee-mates plus tree reps, O(n·c) —
// and the capacity gauges expose that for the bench baselines.
TEST(ShardEpochs, SparseSetupKeepsNetworkStateProportional) {
  const std::uint32_t n = 256;
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::TestbedConfig cfg = shard_cfg(n, 3);
  cfg.mode = protocol::ChannelMode::kAccounted;
  cfg.setup_peers = [](NodeId) { return std::vector<NodeId>{}; };
  sim::Testbed bed(cfg);
  bed.build(ShardCoordinator::make_factory());
  bed.start();
  ShardConfig scfg;
  scfg.committee_size = 8;  // reps stay under the dense-promotion threshold
  scfg.epochs = 1;
  ShardCoordinator coord(bed, scfg);
  coord.run_all();
  EXPECT_TRUE(coord.all_ok());

  bed.network().publish_capacity_gauges();
  const std::size_t pair_slots = bed.network().fifo_pair_slots();
  EXPECT_GT(pair_slots, 0u);
  EXPECT_LE(pair_slots, static_cast<std::size_t>(64) * n)
      << "FIFO state grew superlinearly";
  EXPECT_LT(pair_slots, static_cast<std::size_t>(n) * n / 4);
  EXPECT_EQ(reg.gauge("net.fifo_pair_slots").value(),
            static_cast<std::int64_t>(pair_slots));
  EXPECT_EQ(reg.gauge("net.sink_slots").value(),
            static_cast<std::int64_t>(bed.network().sink_slots()));
}

}  // namespace
}  // namespace sgxp2p::shard
