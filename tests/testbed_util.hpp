// Shared helpers for protocol tests: compact testbed construction for each
// protocol type and common stop predicates.
#pragma once

#include <memory>

#include "adversary/strategies.hpp"
#include "net/testbed.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"
#include "protocol/erng_opt.hpp"

namespace sgxp2p::testutil {

inline sim::TestbedConfig small_config(std::uint32_t n, std::uint64_t seed = 1) {
  sim::TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.net.base_delay = milliseconds(100);
  cfg.net.max_jitter = milliseconds(100);
  return cfg;
}

/// ERB testbed: node `initiator` broadcasts `payload`.
inline sim::Testbed::EnclaveFactory erb_factory(NodeId initiator,
                                                Bytes payload) {
  return [initiator, payload](NodeId id, sgx::SgxPlatform& platform,
                              net::Host& host, protocol::PeerConfig cfg,
                              const sgx::SimIAS& ias)
             -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErbNode>(
        platform, id, host, cfg, ias, initiator,
        id == initiator ? payload : Bytes{});
  };
}

inline sim::Testbed::EnclaveFactory erng_basic_factory() {
  return [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
            protocol::PeerConfig cfg, const sgx::SimIAS& ias)
             -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErngBasicNode>(platform, id, host, cfg,
                                                     ias);
  };
}

inline sim::Testbed::EnclaveFactory erng_opt_factory(
    protocol::ErngOptParams params = {}) {
  return [params](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                  protocol::PeerConfig cfg, const sgx::SimIAS& ias)
             -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<protocol::ErngOptNode>(platform, id, host, cfg,
                                                   ias, params);
  };
}

/// Stop when every honest node's ErbNode has decided.
inline std::function<bool()> all_honest_erb_decided(sim::Testbed& bed) {
  return [&bed]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  };
}

template <typename NodeT>
std::function<bool()> all_honest_done(sim::Testbed& bed) {
  return [&bed]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<NodeT>(id).result().done) return false;
    }
    return true;
  };
}

}  // namespace sgxp2p::testutil
