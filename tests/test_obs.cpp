// Observability stack tests: metric instrument semantics, registry
// snapshot/reset, JSON round-trip through the in-repo parser, trace ring
// behavior, the log-level parser, and — the load-bearing one — byte-identical
// traces plus equal metric snapshots across two same-seed ERB runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "adversary/strategies.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using obs::JsonValue;
using obs::MetricsRegistry;
using obs::TraceRecorder;

TEST(ObsCounter, IncrementAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddMaxOf) {
  obs::Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.max_of(5);   // lower — no effect
  EXPECT_EQ(g.value(), 7);
  g.max_of(20);  // higher — high-water mark moves
  EXPECT_EQ(g.value(), 20);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketPlacementAndOverflow) {
  obs::Histogram h({10, 100, 1000});
  h.observe(5);     // ≤10
  h.observe(10);    // ≤10 (bounds are inclusive upper edges)
  h.observe(99);    // ≤100
  h.observe(5000);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5 + 10 + 99 + 5000);
  auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
}

TEST(ObsRegistry, StableHandlesAndLabels) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("erb.send", "INIT");
  obs::Counter& b = reg.counter("erb.send", "INIT");
  obs::Counter& other = reg.counter("erb.send", "ECHO");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc(3);
  other.inc();
  auto snap = reg.snapshot();
  const auto* init = snap.find_counter("erb.send{INIT}");
  const auto* echo = snap.find_counter("erb.send{ECHO}");
  ASSERT_NE(init, nullptr);
  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(init->value, 3u);
  EXPECT_EQ(echo->value, 1u);
}

TEST(ObsRegistry, ResetKeepsRegistrationsAndReferences) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("x");
  obs::Gauge& g = reg.gauge("y");
  obs::Histogram& h = reg.histogram("z", {1, 2});
  c.inc(7);
  g.set(9);
  h.observe(1);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  // The same references stay live and usable after reset.
  c.inc();
  EXPECT_EQ(reg.snapshot().find_counter("x")->value, 1u);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST(ObsRegistry, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("net.sends").inc(12);
  reg.counter("erb.send", "INIT").inc(5);
  reg.gauge("sim.queue_depth").set(-3);
  reg.histogram("net.msg_bytes", {64, 256}).observe(100);

  auto doc = obs::json_parse(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get("net.sends")->as_int(), 12);
  EXPECT_EQ(counters->get("erb.send{INIT}")->as_int(), 5);
  EXPECT_EQ(doc->get("gauges")->get("sim.queue_depth")->as_int(), -3);
  const JsonValue* h = doc->get("histograms")->get("net.msg_bytes");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->get("bounds")->array.size(), 2u);
  ASSERT_EQ(h->get("buckets")->array.size(), 3u);
  EXPECT_EQ(h->get("buckets")->array[1].as_int(), 1);  // 100 ∈ (64, 256]
  EXPECT_EQ(h->get("count")->as_int(), 1);
  EXPECT_EQ(h->get("sum")->as_int(), 100);
}

TEST(ObsJson, ParserRejectsGarbage) {
  EXPECT_FALSE(obs::json_parse("{").has_value());
  EXPECT_FALSE(obs::json_parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(obs::json_parse("[1,]").has_value());
  auto num = obs::json_parse("{\"a\":2.5,\"b\":-7}");
  ASSERT_TRUE(num.has_value());
  EXPECT_EQ(num->get("a")->type, JsonValue::Type::kDouble);
  EXPECT_EQ(num->get("b")->type, JsonValue::Type::kInt);
}

TEST(ObsTrace, RingKeepsOrderAndDropsOldest) {
  TraceRecorder tr;
  tr.enable(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    tr.record(obs::TraceEvent{
        i, 0, 0, 0, "test", "tick", {obs::fnum("i", i)}});
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);
  std::string jsonl = tr.to_jsonl();
  // Oldest surviving event is i=2; lines come out in record order.
  EXPECT_EQ(jsonl.find("\"i\":2"), jsonl.find("\"i\":"));
  EXPECT_NE(jsonl.find("\"i\":5"), std::string::npos);
  // Every line is valid standalone JSON.
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    ASSERT_TRUE(obs::json_parse(jsonl.substr(pos, nl - pos)).has_value());
    pos = nl + 1;
  }
  tr.reset();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(ObsTrace, DisabledRecordIsNoOp) {
  TraceRecorder tr;
  tr.record(obs::TraceEvent{1, 2, 0, 0, "test", "ignored", {}});
  EXPECT_EQ(tr.size(), 0u);
}

TEST(ObsLog, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_FALSE(parse_log_level("loud").has_value());
}

TEST(ObsLog, InitFromEnvAppliesLevel) {
  Logger& log = Logger::instance();
  LogLevel before = log.level();
  ::setenv("SGXP2P_LOG_LEVEL", "error", 1);
  log.init_from_env();
  EXPECT_EQ(log.level(), LogLevel::Error);
  ::unsetenv("SGXP2P_LOG_LEVEL");
  log.set_level(before);
}

// --- Determinism: the contract that makes traces diffable ---

struct ErbRunCapture {
  std::string trace_jsonl;
  obs::MetricsSnapshot snapshot;
  std::uint64_t messages = 0;
};

// One N=8 ERB execution with an f=2 byzantine chain (Section 6.3 shape),
// capturing the trace bytes and the metrics snapshot it produced.
ErbRunCapture run_erb_chain_instrumented(std::uint64_t seed) {
  MetricsRegistry::global().reset();
  TraceRecorder& tr = TraceRecorder::global();
  tr.enable();
  tr.reset();

  constexpr std::uint32_t kN = 8;
  constexpr std::uint32_t kF = 2;
  auto cfg = testutil::small_config(kN, seed);
  // TestbedConfig.seed drives platform keys and adversary coins only; the
  // jitter stream has its own seed, which must vary too for traces to
  // diverge across "seeds".
  cfg.net.seed = seed;
  sim::Testbed bed(cfg);
  auto plan = std::make_shared<adversary::ChainPlan>();
  for (NodeId id = 0; id < kF; ++id) plan->order.push_back(id);
  plan->release = adversary::ChainPlan::Release::kSingleHonest;
  plan->honest_target = kF;
  bed.build(testutil::erb_factory(0, to_bytes("determinism payload")),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id < kF) {
                return std::make_unique<adversary::ChainStrategy>(plan);
              }
              return nullptr;
            });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 testutil::all_honest_erb_decided(bed));

  ErbRunCapture out;
  out.trace_jsonl = tr.to_jsonl();
  out.snapshot = MetricsRegistry::global().snapshot();
  out.messages = bed.network().meter().messages();
  tr.disable();
  return out;
}

TEST(ObsDeterminism, SameSeedYieldsIdenticalTraceAndSnapshot) {
  ErbRunCapture a = run_erb_chain_instrumented(1234);
  ErbRunCapture b = run_erb_chain_instrumented(1234);
  EXPECT_FALSE(a.trace_jsonl.empty());
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl) << "trace bytes diverged";
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.messages, b.messages);
  // Sanity: the instrumented layers actually fired.
  const auto* sends = a.snapshot.find_counter("net.sends");
  ASSERT_NE(sends, nullptr);
  EXPECT_EQ(sends->value, a.messages);
  EXPECT_NE(a.trace_jsonl.find("\"event\":\"decide\""), std::string::npos);
}

TEST(ObsDeterminism, DifferentSeedsDiverge) {
  ErbRunCapture a = run_erb_chain_instrumented(1);
  ErbRunCapture b = run_erb_chain_instrumented(2);
  // Jitter differs, so virtual timestamps — and the trace bytes — differ.
  EXPECT_NE(a.trace_jsonl, b.trace_jsonl);
}

}  // namespace
}  // namespace sgxp2p
