// Parallel-engine equivalence suite: SimEngine::kParallel must be
// observationally identical to the serial wheel — byte-identical JSONL
// traces and metric snapshots for the same seed, across every protocol
// stack (ERB, both ERNG variants, crash-recovery, and the sharded epoch
// overlay) and every worker count. This is the contract that lets
// bench_scale attribute its speedup entirely to the engine: if any event
// fired in a different order, or any worker-side effect replayed out of
// canonical (vt, seq) order, the traces would diverge at that line.
//
// Also here: exception propagation out of a worker lane, the causal span
// DAG soundness of a parallel trace (tokens must resolve to real spans),
// the explicit-only publication of sim.parallel_* stats, and the deferred
// mid-window Network::detach regression.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/testbed.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/pool.hpp"
#include "obs/trace.hpp"
#include "recovery/coordinator.hpp"
#include "shard/coordinator.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErbNode;
using protocol::ErngBasicNode;
using protocol::ErngOptNode;
using testutil::all_honest_done;
using testutil::all_honest_erb_decided;
using testutil::small_config;

// Everything observable about one protocol run, plus how many conservative
// windows actually fanned out (so a "byte-identical" pass can prove the
// parallel path ran instead of silently falling back to serial).
struct Artifacts {
  std::string trace;    // full JSONL event trace
  std::string metrics;  // registry snapshot JSON
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t windows = 0;  // parallel windows dispatched (0 on kWheel)
};

template <typename Body>
Artifacts capture(Body body) {
  obs::BufferPool::local().clear();
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  auto& tr = obs::TraceRecorder::global();
  tr.enable();
  tr.reset();
  Artifacts a = body();
  EXPECT_EQ(tr.dropped(), 0u) << "trace ring overflowed; grow the capacity";
  a.trace = tr.to_jsonl();
  tr.disable();
  a.metrics = reg.to_json();
  return a;
}

Artifacts finish(sim::Testbed& bed, std::uint32_t rounds) {
  Artifacts a;
  a.rounds = rounds;
  a.messages = bed.network().meter().messages();
  a.bytes = bed.network().meter().bytes();
  a.windows = bed.simulator().parallel_stats().windows;
  return a;
}

// Applies the engine/jobs choice and, for kParallel, drops the fan-out
// threshold to 1 so these tiny deployments exercise real windows.
void arm(sim::Testbed& bed) { bed.simulator().set_parallel_threshold(1); }

Artifacts run_erb(sim::SimEngine engine, std::uint32_t jobs) {
  return capture([engine, jobs]() {
    auto cfg = small_config(25, 7);
    cfg.engine = engine;
    cfg.jobs = jobs;
    sim::Testbed bed(cfg);
    arm(bed);
    bed.build(testutil::erb_factory(0, to_bytes("engine-equivalence")));
    bed.start();
    std::uint32_t rounds = bed.run_rounds(cfg.effective_t() + 4,
                                          all_honest_erb_decided(bed));
    for (NodeId id : bed.honest_nodes()) {
      EXPECT_TRUE(bed.enclave_as<ErbNode>(id).result().decided);
    }
    return finish(bed, rounds);
  });
}

Artifacts run_erng_basic(sim::SimEngine engine, std::uint32_t jobs) {
  return capture([engine, jobs]() {
    auto cfg = small_config(9, 11);
    cfg.engine = engine;
    cfg.jobs = jobs;
    sim::Testbed bed(cfg);
    arm(bed);
    bed.build(testutil::erng_basic_factory());
    bed.start();
    std::uint32_t rounds = bed.run_rounds(cfg.effective_t() + 4,
                                          all_honest_done<ErngBasicNode>(bed));
    for (NodeId id : bed.honest_nodes()) {
      EXPECT_TRUE(bed.enclave_as<ErngBasicNode>(id).result().done);
    }
    return finish(bed, rounds);
  });
}

Artifacts run_erng_opt(sim::SimEngine engine, std::uint32_t jobs) {
  return capture([engine, jobs]() {
    auto cfg = small_config(12, 13);
    cfg.t = 3;
    cfg.engine = engine;
    cfg.jobs = jobs;
    sim::Testbed bed(cfg);
    arm(bed);
    bed.build(testutil::erng_opt_factory());
    bed.start();
    std::uint32_t rounds =
        bed.run_rounds(cfg.n, all_honest_done<ErngOptNode>(bed));
    for (NodeId id : bed.honest_nodes()) {
      EXPECT_TRUE(bed.enclave_as<ErngOptNode>(id).result().done);
    }
    return finish(bed, rounds);
  });
}

// Compact copy of the recovery scenario from test_event_engine.cpp: node 1
// of a 4-member roster crashes, restores from its newest sealed checkpoint,
// and rejoins; one extra node joins fresh afterwards. Crash/relaunch churn
// plus serial-context detaches exercise the window-fence path heavily.
Artifacts run_recovery(sim::SimEngine engine, std::uint32_t jobs) {
  return capture([engine, jobs]() {
    const std::uint32_t n = 4;
    const NodeId victim = 1;
    const NodeId extra = n;
    auto cfg = small_config(n + 1, 3);
    cfg.t = (n - 1) / 2;
    cfg.mode = protocol::ChannelMode::kAttested;
    cfg.engine = engine;
    cfg.jobs = jobs;
    const std::uint32_t W = cfg.t + 2;
    const std::uint32_t recover_at = 6 + 4;
    const std::size_t w_rejoin = (recover_at - 1 + W - 1) / W;

    std::vector<NodeId> roster0;
    for (NodeId id = 0; id < n; ++id) roster0.push_back(id);
    std::vector<protocol::JoinPlanEntry> plan(w_rejoin + 3);
    plan[w_rejoin] = {victim, NodeId{0}, true};
    plan[w_rejoin + 1] = {victim, NodeId{2}, true};
    plan[w_rejoin + 2] = {extra, NodeId{0}, false};

    sim::Testbed bed(cfg);
    arm(bed);
    sim::Testbed::EnclaveFactory factory =
        [roster0, plan](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                        protocol::PeerConfig pc, const sgx::SimIAS& ias)
        -> std::unique_ptr<protocol::PeerEnclave> {
      return std::make_unique<recovery::RecoverableNode>(platform, id, host,
                                                         pc, ias, roster0,
                                                         plan);
    };
    bed.build(factory);

    recovery::RecoveryPlan rp;
    rp.victim = victim;
    rp.crash_round = 6;
    rp.recover_round = recover_at;
    rp.checkpoint_interval = 2;
    recovery::RecoveryCoordinator coord(bed, factory, rp);
    coord.install();

    bed.start();
    std::uint32_t rounds =
        bed.run_rounds(static_cast<std::uint32_t>((w_rejoin + 4) * W));
    EXPECT_TRUE(coord.rejoin_complete());
    return finish(bed, rounds);
  });
}

// Sharded epoch overlay: the global digest hashes every committee's
// accepted values, so it transitively pins the election, committee ERB
// scheduling, CONFIRM gating, and the dissemination tree.
struct ShardRun {
  Artifacts a;
  std::vector<Bytes> digests;
};

ShardRun run_shard(sim::SimEngine engine, std::uint32_t jobs) {
  ShardRun out;
  out.a = capture([&out, engine, jobs]() {
    sim::TestbedConfig cfg;
    cfg.n = 24;
    cfg.seed = 5;
    cfg.t = 1;  // ShardNode budgets per committee (t_c), not via PeerConfig
    cfg.net.base_delay = milliseconds(100);
    cfg.net.max_jitter = milliseconds(100);
    cfg.engine = engine;
    cfg.jobs = jobs;
    sim::Testbed bed(cfg);
    arm(bed);
    bed.build(shard::ShardCoordinator::make_factory());
    bed.start();
    shard::ShardConfig scfg;
    scfg.committee_size = 6;
    scfg.epochs = 2;
    shard::ShardCoordinator coord(bed, scfg);
    coord.run_all();
    EXPECT_TRUE(coord.all_ok());
    for (const shard::EpochSummary& e : coord.summaries()) {
      out.digests.push_back(e.global_digest);
    }
    return finish(bed, bed.rounds_run());
  });
  return out;
}

void expect_identical(const Artifacts& wheel, const Artifacts& par) {
  EXPECT_EQ(wheel.rounds, par.rounds);
  EXPECT_EQ(wheel.messages, par.messages);
  EXPECT_EQ(wheel.bytes, par.bytes);
  EXPECT_EQ(wheel.trace, par.trace);
  EXPECT_EQ(wheel.metrics, par.metrics);
}

constexpr std::uint32_t kJobCounts[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// Byte-identity: kParallel vs kWheel, every stack, jobs ∈ {1, 2, 8}.

TEST(ParallelEngine, ErbByteIdentical) {
  const Artifacts wheel = run_erb(sim::SimEngine::kWheel, 0);
  EXPECT_EQ(wheel.windows, 0u);
  for (std::uint32_t jobs : kJobCounts) {
    const Artifacts par = run_erb(sim::SimEngine::kParallel, jobs);
    expect_identical(wheel, par);
    // jobs=1 is the serial fallback by design; real pools must have fanned
    // out actual windows, otherwise this test proves nothing.
    if (jobs > 1) {
      EXPECT_GT(par.windows, 0u) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelEngine, ErngBasicByteIdentical) {
  const Artifacts wheel = run_erng_basic(sim::SimEngine::kWheel, 0);
  for (std::uint32_t jobs : kJobCounts) {
    const Artifacts par = run_erng_basic(sim::SimEngine::kParallel, jobs);
    expect_identical(wheel, par);
    if (jobs > 1) {
      EXPECT_GT(par.windows, 0u) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelEngine, ErngOptByteIdentical) {
  const Artifacts wheel = run_erng_opt(sim::SimEngine::kWheel, 0);
  for (std::uint32_t jobs : kJobCounts) {
    const Artifacts par = run_erng_opt(sim::SimEngine::kParallel, jobs);
    expect_identical(wheel, par);
    if (jobs > 1) {
      EXPECT_GT(par.windows, 0u) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelEngine, RecoveryScenarioByteIdentical) {
  const Artifacts wheel = run_recovery(sim::SimEngine::kWheel, 0);
  for (std::uint32_t jobs : kJobCounts) {
    const Artifacts par = run_recovery(sim::SimEngine::kParallel, jobs);
    expect_identical(wheel, par);
    if (jobs > 1) {
      EXPECT_GT(par.windows, 0u) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelEngine, ShardEpochsByteIdentical) {
  const ShardRun wheel = run_shard(sim::SimEngine::kWheel, 0);
  ASSERT_EQ(wheel.digests.size(), 2u);
  ASSERT_FALSE(wheel.digests[0].empty());
  for (std::uint32_t jobs : {2u, 8u}) {
    const ShardRun par = run_shard(sim::SimEngine::kParallel, jobs);
    EXPECT_EQ(wheel.digests, par.digests) << "jobs=" << jobs;
    expect_identical(wheel.a, par.a);
    EXPECT_GT(par.a.windows, 0u) << "jobs=" << jobs;
  }
}

// Same engine, same seed, same jobs, run twice → identical. Thread
// scheduling must never leak into the artifacts.
TEST(ParallelEngine, SelfDeterministicAcrossRuns) {
  const Artifacts a = run_erb(sim::SimEngine::kParallel, 8);
  const Artifacts b = run_erb(sim::SimEngine::kParallel, 8);
  expect_identical(a, b);
  EXPECT_GT(a.windows, 0u);
}

// Worker counts must not be observable either: 2 and 8 lanes partition the
// same windows differently but merge in the same canonical order.
TEST(ParallelEngine, JobCountIsUnobservable) {
  expect_identical(run_erb(sim::SimEngine::kParallel, 2),
                   run_erb(sim::SimEngine::kParallel, 8));
}

// cfg.jobs = 0 resolves the SGXP2P_SIM_JOBS env var (the CI tsan job drives
// the whole suite through it).
TEST(ParallelEngine, JobsResolvedFromEnvironment) {
  ::setenv("SGXP2P_SIM_JOBS", "2", 1);
  const Artifacts par = run_erb(sim::SimEngine::kParallel, 0);
  ::unsetenv("SGXP2P_SIM_JOBS");
  EXPECT_GT(par.windows, 0u) << "env jobs=2 should have fanned out windows";
  expect_identical(run_erb(sim::SimEngine::kWheel, 0), par);
}

// ---------------------------------------------------------------------------
// Causal span DAG: a parallel trace must be a sound DAG — every worker-side
// token resolved to a real span, spans strictly increasing, every deliver
// caused by its send. (Conservation is the same oracle the fuzzer runs.)

TEST(ParallelEngine, CausalSpanDagIsSound) {
  const Artifacts par = run_erb(sim::SimEngine::kParallel, 8);
  ASSERT_GT(par.windows, 0u);
  std::string error;
  auto graph = obs::CausalGraph::parse(par.trace, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->check_conservation(), std::vector<std::string>{});
}

// ---------------------------------------------------------------------------
// sim.parallel_* stats are explicit-only: absent from the run's snapshot
// (which must stay byte-identical to kWheel), present after an explicit
// publish_parallel_stats.

TEST(ParallelEngine, StatsPublishedOnlyOnRequest) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  auto cfg = small_config(25, 7);
  cfg.engine = sim::SimEngine::kParallel;
  cfg.jobs = 4;
  sim::Testbed bed(cfg);
  arm(bed);
  bed.build(testutil::erb_factory(0, to_bytes("stats")));
  bed.start();
  bed.run_rounds(cfg.effective_t() + 4, all_honest_erb_decided(bed));
  ASSERT_GT(bed.simulator().parallel_stats().windows, 0u);
  EXPECT_EQ(reg.to_json().find("sim.parallel_windows"), std::string::npos);

  bed.simulator().publish_parallel_stats(reg);
  EXPECT_NE(reg.to_json().find("sim.parallel_windows"), std::string::npos);
  EXPECT_GE(reg.counter("sim.parallel_windows").value(), 1u);
  EXPECT_GE(reg.counter("sim.parallel_events").value(), 1u);
}

// ---------------------------------------------------------------------------
// An exception thrown on a worker lane must surface from the run() call on
// the driving thread (after the canonical prefix replays), not crash a pool
// thread or hang the window barrier.

TEST(ParallelEngine, WorkerExceptionPropagates) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Simulator simulator(reg, sim::SimEngine::kParallel);
  simulator.set_jobs(2);
  simulator.set_parallel_threshold(1);
  sim::Network net(simulator, sim::NetworkConfig{}, reg);
  for (NodeId id = 0; id < 8; ++id) {
    net.attach(id, [id](NodeId, Bytes) {
      if (id == 3) throw std::runtime_error("worker lane failure");
    });
  }
  for (NodeId from = 0; from < 8; ++from) {
    for (NodeId to = 0; to < 8; ++to) {
      if (from != to) net.send(from, to, to_bytes("payload"));
    }
  }
  EXPECT_THROW(simulator.run(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Mid-window detach: Network::detach issued from a worker lane is deferred
// to the detaching event's canonical merge position. Traffic to the victim
// scheduled at least one lookahead window later must then drop exactly as
// the serial engine drops it — byte-identical metrics, no use-after-detach.

TEST(ParallelEngine, MidWindowDetachMatchesSerial) {
  auto run = [](sim::SimEngine engine, std::uint32_t jobs) {
    obs::MetricsRegistry reg;
    obs::MetricsRegistry::ScopedCurrent bind(reg);
    sim::Simulator simulator(reg, engine);
    simulator.set_jobs(jobs);
    simulator.set_parallel_threshold(1);
    sim::NetworkConfig ncfg;
    ncfg.base_delay = milliseconds(100);
    ncfg.max_jitter = 0;  // deterministic arrival instants
    sim::Network net(simulator, ncfg, reg);
    const NodeId victim = 5;
    std::array<int, 6> delivered{};
    for (NodeId id = 0; id < 6; ++id) {
      net.attach(id, [&net, &delivered, id, victim](NodeId, Bytes) {
        ++delivered[id];
        if (id == 0) net.detach(victim);  // from a worker lane on kParallel
      });
    }
    // t=100: node 0 handles "go" and detaches the victim mid-window.
    net.send(1, 0, to_bytes("go"));
    // A full lookahead later: traffic to the victim must drop identically.
    simulator.schedule(milliseconds(250), [&net, victim] {
      net.send(2, victim, to_bytes("late"));
      net.send(victim, 3, to_bytes("from-detached"));
    });
    simulator.run();
    EXPECT_FALSE(net.attached(victim));
    EXPECT_EQ(delivered[0], 1);
    EXPECT_EQ(delivered[victim], 0) << "delivery to detached node leaked";
    EXPECT_EQ(delivered[3], 0) << "send from detached node leaked";
    return reg.to_json();
  };
  const std::string wheel = run(sim::SimEngine::kWheel, 0);
  EXPECT_EQ(wheel, run(sim::SimEngine::kParallel, 2));
  EXPECT_EQ(wheel, run(sim::SimEngine::kParallel, 8));
}

}  // namespace
}  // namespace sgxp2p
