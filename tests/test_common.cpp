// Unit tests for the common substrate: bytes/hex, binary serialization
// (including adversarial truncation), and the deterministic PRNG.
#include <gtest/gtest.h>

#include <map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/time.hpp"

namespace sgxp2p {
namespace {

// --- bytes / hex ---

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  std::string hex = hex_encode(data);
  EXPECT_EQ(hex, "0001abff7f");
  auto back = hex_decode(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Bytes, HexDecodeRejectsMalformed) {
  EXPECT_FALSE(hex_decode("abc").has_value());    // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());     // non-hex
  EXPECT_FALSE(hex_decode("0g").has_value());
  EXPECT_TRUE(hex_decode("").has_value());        // empty is fine
  EXPECT_TRUE(hex_decode("AbCd").has_value());    // mixed case ok
}

TEST(Bytes, XorInto) {
  Bytes a = {0xff, 0x00, 0x55};
  Bytes b = {0x0f, 0xf0, 0x55};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
  Bytes short_b = {0x01};
  EXPECT_THROW(xor_into(a, short_b), std::invalid_argument);
}

TEST(Bytes, Concat) {
  Bytes a = to_bytes("ab"), b = to_bytes("cd"), c = to_bytes("e");
  EXPECT_EQ(concat(a, b, c), to_bytes("abcde"));
  EXPECT_EQ(concat(Bytes{}, b), to_bytes("cd"));
}

TEST(Bytes, EndianHelpers) {
  std::uint8_t buf[8];
  store_le64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ULL);
  store_be32(buf, 0xdeadbeef);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
}

// --- serde ---

TEST(Serde, RoundTripAllTypes) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  w.i64(-42);
  w.bytes(to_bytes("payload"));
  w.str("text");
  w.raw(to_bytes("RAW"));

  BinaryReader r(w.view());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.bytes(), to_bytes("payload"));
  EXPECT_EQ(r.str(), "text");
  EXPECT_EQ(r.raw(3), to_bytes("RAW"));
  EXPECT_TRUE(r.done());
}

TEST(Serde, TruncationDetected) {
  BinaryWriter w;
  w.u64(7);
  w.bytes(to_bytes("hello"));
  Bytes wire = w.take();
  // Every proper prefix must leave the reader not-done or not-ok.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    BinaryReader r(ByteView(wire.data(), len));
    (void)r.u64();
    (void)r.bytes();
    EXPECT_FALSE(r.done()) << "prefix length " << len;
  }
}

TEST(Serde, OversizedLengthPrefixRejected) {
  // A length prefix pointing past the end must not read garbage.
  BinaryWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.raw(to_bytes("xx"));
  BinaryReader r(w.view());
  Bytes b = r.bytes();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serde, TrailingGarbageFailsDone) {
  BinaryWriter w;
  w.u8(1);
  w.u8(2);
  BinaryReader r(w.view());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_FALSE(r.done());  // one byte remains
}

TEST(Serde, ReadPastEndIsSafeAndSticky) {
  BinaryReader r(ByteView{});
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

// --- rng ---

TEST(Rng, DeterministicPerSeed) {
  Rng a(12345), b(12345), c(54321);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool any_diff = false;
  Rng a2(12345);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowBoundsAndCoverage) {
  Rng rng(9);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 3000; ++i) {
    std::uint64_t v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    ++seen[v];
  }
  EXPECT_EQ(seen.size(), 7u);
  // No value should be wildly over/under-represented (expected ≈ 428).
  for (const auto& [v, count] : seen) {
    EXPECT_GT(count, 300) << "value " << v;
    EXPECT_LT(count, 560) << "value " << v;
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, EarlyDrawsAreMixed) {
  // Regression for the jitter-bias bug: the very first draws from two
  // adjacent seeds must not be ordered the same way every time.
  int a_wins = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng a(seed), b(seed + 1000);
    if (a.next_below(1000) < b.next_below(1000)) ++a_wins;
  }
  EXPECT_GT(a_wins, 8);
  EXPECT_LT(a_wins, 32);
}

// --- ids ---

TEST(Ids, InstanceIdHashAndEquality) {
  InstanceId a{3, 7}, b{3, 7}, c{3, 8}, d{4, 7};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  std::hash<InstanceId> h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));  // not guaranteed in theory; holds for this hash
}

// --- time ---

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(1.5), 1500);
  EXPECT_EQ(milliseconds(250), 250);
  EXPECT_DOUBLE_EQ(to_seconds(2500), 2.5);
}

}  // namespace
}  // namespace sgxp2p
