// Causal-tracing tests: the span/cause DAG is deterministic and engine-
// independent, satisfies the conservation oracle on real protocol runs, the
// critical-path analyzer attributes every virtual millisecond of a decide's
// latency, the enclave-transition cost model charges the simulator clock and
// shows up on the path, and the Perfetto export is valid JSON.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/runner.hpp"
#include "obs/causal.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sgx/transition.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using obs::CausalGraph;
using obs::MetricsRegistry;
using obs::TraceRecorder;

struct TracedRun {
  std::string jsonl;
  obs::MetricsSnapshot snapshot;
};

/// One fully traced honest ERB execution (N=8) on the chosen engine.
TracedRun run_erb_traced(std::uint64_t seed, sim::SimEngine engine,
                         sgx::TransitionCosts costs = {}) {
  MetricsRegistry::global().reset();
  TraceRecorder& tr = TraceRecorder::global();
  tr.enable();
  tr.reset();
  auto cfg = testutil::small_config(8, seed);
  cfg.net.seed = seed;
  cfg.engine = engine;
  cfg.sgx_costs = costs;
  sim::Testbed bed(cfg);
  bed.build(testutil::erb_factory(0, to_bytes("causal payload")));
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 testutil::all_honest_erb_decided(bed));
  TracedRun out;
  out.jsonl = tr.to_jsonl();
  out.snapshot = MetricsRegistry::global().snapshot();
  tr.disable();
  return out;
}

/// One fully traced honest ERNG-opt execution (N=8, t=2).
TracedRun run_erng_opt_traced(std::uint64_t seed) {
  MetricsRegistry::global().reset();
  TraceRecorder& tr = TraceRecorder::global();
  tr.enable();
  tr.reset();
  auto cfg = testutil::small_config(8, seed);
  cfg.net.seed = seed;
  cfg.t = 2;
  sim::Testbed bed(cfg);
  bed.build(testutil::erng_opt_factory());
  bed.start();
  bed.run_rounds(cfg.n + 8,
                 testutil::all_honest_done<protocol::ErngOptNode>(bed));
  TracedRun out;
  out.jsonl = tr.to_jsonl();
  out.snapshot = MetricsRegistry::global().snapshot();
  tr.disable();
  return out;
}

// --- determinism: the DAG, not just the event stream, is reproducible ---

TEST(CausalDag, SameSeedSameDagAcrossEngines) {
  TracedRun wheel_a = run_erb_traced(77, sim::SimEngine::kWheel);
  TracedRun wheel_b = run_erb_traced(77, sim::SimEngine::kWheel);
  TracedRun heap = run_erb_traced(77, sim::SimEngine::kHeap);
  ASSERT_FALSE(wheel_a.jsonl.empty());
  EXPECT_EQ(wheel_a.jsonl, wheel_b.jsonl) << "same-seed trace bytes diverged";
  EXPECT_EQ(wheel_a.jsonl, heap.jsonl)
      << "wheel and heap engines produced different causal traces";
  // Span/cause really are in the bytes being compared.
  EXPECT_NE(wheel_a.jsonl.find("\"span\":"), std::string::npos);
  EXPECT_NE(wheel_a.jsonl.find("\"cause\":"), std::string::npos);
}

// --- conservation: every non-root event has exactly one recorded cause ---

TEST(CausalDag, ConservationHoldsOnErbRun) {
  TracedRun run = run_erb_traced(42, sim::SimEngine::kWheel);
  std::string error;
  auto graph = CausalGraph::parse(run.jsonl, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_FALSE(graph->truncated());
  EXPECT_TRUE(graph->check_conservation().empty());
  EXPECT_GT(graph->events().size(), 0u);
}

TEST(CausalDag, ConservationHoldsOnErngOptRun) {
  TracedRun run = run_erng_opt_traced(42);
  std::string error;
  auto graph = CausalGraph::parse(run.jsonl, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_FALSE(graph->truncated());
  for (const std::string& defect : graph->check_conservation()) {
    ADD_FAILURE() << defect;
  }
}

// The fuzzer's opt-in oracle: generated adversarial schedules (including the
// recovery target with its crash/relaunch pivots) keep the DAG sound, and
// arming the check does not perturb the run digest replays depend on.
TEST(CausalDag, FuzzRunnerOracleCleanOnGeneratedSchedules) {
  const fuzz::FuzzTarget targets[] = {fuzz::FuzzTarget::kErb,
                                      fuzz::FuzzTarget::kErngOpt,
                                      fuzz::FuzzTarget::kRecovery};
  for (fuzz::FuzzTarget target : targets) {
    fuzz::Schedule schedule = fuzz::generate_schedule(target, 5, 0);
    fuzz::RunOptions plain;
    fuzz::RunReport base = fuzz::run_schedule(schedule, plain);
    fuzz::RunOptions causal;
    causal.check_causal = true;
    fuzz::RunReport checked = fuzz::run_schedule(schedule, causal);
    EXPECT_EQ(base.digest, checked.digest)
        << "check_causal changed the digest for "
        << fuzz::target_name(target);
    for (const auto& v : checked.violations) {
      if (v.oracle == fuzz::oracle::kCausalConservation) {
        ADD_FAILURE() << fuzz::target_name(target) << ": " << v.detail;
      }
    }
  }
}

// --- critical path: attribution is exhaustive ---

TEST(CausalCriticalPath, SumsToDecideLatencyFullyAttributed) {
  TracedRun run = run_erb_traced(42, sim::SimEngine::kWheel);
  auto graph = CausalGraph::parse(run.jsonl);
  ASSERT_TRUE(graph.has_value());
  auto paths = graph->critical_paths();
  ASSERT_EQ(paths.size(), 8u);  // one decide per node, all honest
  std::int64_t total = 0, attributed = 0;
  for (const auto& p : paths) {
    EXPECT_EQ(p.network_ms + p.compute_ms + p.sgx_ms + p.unattributed_ms,
              p.total_ms)
        << "segments do not sum for decide span " << p.decide_span;
    EXPECT_EQ(p.unattributed_ms, 0)
        << "honest untruncated run left latency unattributed";
    EXPECT_GT(p.total_ms, 0);
    EXPECT_GT(p.network_ms, 0) << "an ERB decide always crosses the wire";
    EXPECT_EQ(p.sgx_ms, 0) << "no cost model configured, nothing to charge";
    EXPECT_FALSE(p.steps.empty());
    total += p.total_ms;
    attributed += p.attributed_ms();
  }
  // The ISSUE's acceptance bar is ≥95%; an honest run attributes everything.
  EXPECT_EQ(attributed, total);
}

// --- enclave-transition cost accounting ---

TEST(CausalSgx, TransitionCostsChargeClockAndAppearOnPath) {
  sgx::TransitionCosts costs;
  costs.ecall_ms = 2;
  costs.ocall_ms = 3;
  TracedRun plain = run_erb_traced(42, sim::SimEngine::kWheel);
  TracedRun charged = run_erb_traced(42, sim::SimEngine::kWheel, costs);

  const auto* ecalls = charged.snapshot.find_counter("sgx.ecalls");
  const auto* ocalls = charged.snapshot.find_counter("sgx.ocalls");
  const auto* cost_ms = charged.snapshot.find_counter("sgx.transition_cost_ms");
  ASSERT_NE(ecalls, nullptr);
  ASSERT_NE(ocalls, nullptr);
  ASSERT_NE(cost_ms, nullptr);
  EXPECT_GT(ecalls->value, 0u);
  EXPECT_GT(ocalls->value, 0u);
  EXPECT_EQ(cost_ms->value,
            2 * ecalls->value + 3 * ocalls->value);

  // Transition events and the per-send sgxms surcharge are in the trace.
  EXPECT_NE(charged.jsonl.find("\"sgxms\":"), std::string::npos);
  EXPECT_EQ(plain.jsonl.find("\"sgxms\":"), std::string::npos)
      << "zero-cost default must not emit surcharge fields";

  // The DAG stays sound and the surcharge lands in the sgx segment.
  auto graph = CausalGraph::parse(charged.jsonl);
  ASSERT_TRUE(graph.has_value());
  EXPECT_TRUE(graph->check_conservation().empty());
  std::int64_t sgx_total = 0;
  for (const auto& p : graph->critical_paths()) {
    EXPECT_EQ(p.network_ms + p.compute_ms + p.sgx_ms + p.unattributed_ms,
              p.total_ms);
    sgx_total += p.sgx_ms;
  }
  EXPECT_GT(sgx_total, 0) << "charged run shows no sgx time on any path";
}

// --- Perfetto export ---

TEST(CausalPerfetto, ExportRoundTripsThroughJsonParser) {
  TracedRun run = run_erb_traced(42, sim::SimEngine::kWheel);
  auto graph = CausalGraph::parse(run.jsonl);
  ASSERT_TRUE(graph.has_value());
  std::string json = graph->to_perfetto();
  auto doc = obs::json_parse(json);
  ASSERT_TRUE(doc.has_value()) << "Perfetto export is not valid JSON";
  const obs::JsonValue* unit = doc->get("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const obs::JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->array.empty());
  bool saw_meta = false, saw_slice = false, saw_flow_out = false,
       saw_flow_in = false;
  for (const auto& ev : events->array) {
    const obs::JsonValue* ph = ev.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") saw_meta = true;
    if (ph->string == "X") saw_slice = true;
    if (ph->string == "s") saw_flow_out = true;
    if (ph->string == "f") saw_flow_in = true;
  }
  EXPECT_TRUE(saw_meta) << "no process_name metadata";
  EXPECT_TRUE(saw_slice) << "no duration slices";
  EXPECT_TRUE(saw_flow_out && saw_flow_in)
      << "send→deliver flow arrows missing";
}

}  // namespace
}  // namespace sgxp2p
