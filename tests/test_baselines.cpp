// Baseline protocol tests — and the paper's Section 2.3 attack catalogue in
// executable form: each attack SUCCEEDS against the strawman (Algorithm 1),
// while the corresponding defense holds in RBsig / RBearly / ERB.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "protocol/rb_early.hpp"
#include "protocol/rb_sig.hpp"
#include "protocol/strawman.hpp"

namespace sgxp2p {
namespace {

using protocol::EquivocatingRbSigInitiator;
using protocol::EquivocatingStrawmanInitiator;
using protocol::RbEarlyNode;
using protocol::RbSigNode;
using protocol::StrawmanNode;

sim::NetworkConfig net_cfg() {
  sim::NetworkConfig cfg;
  cfg.base_delay = milliseconds(100);
  cfg.max_jitter = milliseconds(100);
  return cfg;
}

// ---------- Strawman ----------

TEST(Strawman, HonestCaseWorks) {
  const std::uint32_t n = 7, t = 3;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) {
    return std::make_unique<StrawmanNode>(id, n, t, id == 0,
                                          id == 0 ? to_bytes("m") : Bytes{});
  });
  bed.start();
  bed.run_rounds(t + 2);
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.node_as<StrawmanNode>(id).result();
    ASSERT_TRUE(r.decided);
    ASSERT_TRUE(r.value.has_value());
    EXPECT_EQ(*r.value, to_bytes("m"));
  }
}

TEST(Strawman, EquivocationSplitsTheNetwork) {
  // Attack A2 on Algorithm 1: a byzantine initiator sends m0/m1 to different
  // halves. The attack must SUCCEED: honest nodes end up disagreeing.
  const std::uint32_t n = 9, t = 4;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) -> std::unique_ptr<protocol::PlainNode> {
    if (id == 0) {
      return std::make_unique<EquivocatingStrawmanInitiator>(
          id, n, t, to_bytes("m0"), to_bytes("m1"));
    }
    return std::make_unique<StrawmanNode>(id, n, t, false);
  });
  bed.start();
  bed.run_rounds(t + 2);

  std::set<Bytes> outcomes;
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.node_as<StrawmanNode>(id).result();
    ASSERT_TRUE(r.decided);
    if (r.value) outcomes.insert(*r.value);
  }
  EXPECT_GE(outcomes.size(), 2u) << "equivocation should split the strawman";
}

TEST(Strawman, ImpersonatedInitPollutesDecisions) {
  // Attack A2 as impersonation: a byzantine node races the real initiator
  // with its own INIT(FORGED) — nothing authenticates the sender, so some
  // honest node adopts the forgery first. Integrity is violated: a value the
  // sender never broadcast gets accepted somewhere.
  const std::uint32_t n = 9, t = 4;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) -> std::unique_ptr<protocol::PlainNode> {
    if (id == 1) {
      return std::make_unique<protocol::ForgingStrawmanRelay>(
          id, n, t, to_bytes("FORGED"));
    }
    return std::make_unique<StrawmanNode>(id, n, t, id == 0,
                                          id == 0 ? to_bytes("real") : Bytes{});
  });
  bed.start();
  bed.run_rounds(t + 3);
  // Validity demands every honest node accept "real" (the honest initiator's
  // message). The forgery race leaves some nodes stuck on FORGED — they can
  // never gather a quorum for it and end at ⊥ (or worse, decide FORGED).
  std::size_t holding_real = 0, violated = 0;
  for (NodeId id = 2; id < n; ++id) {
    const auto& r = bed.node_as<StrawmanNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    if (r.value && *r.value == to_bytes("real")) {
      ++holding_real;
    } else {
      ++violated;
    }
  }
  EXPECT_GE(holding_real, 1u) << "race should not flip everyone";
  EXPECT_GE(violated, 1u) << "the forgery must break validity for someone";
}

// ---------- RBsig ----------

class RbSigBed {
 public:
  RbSigBed(std::uint32_t n, std::uint32_t t) : n_(n), t_(t), bed_(n, net_cfg()) {}

  void build_honest(NodeId initiator, Bytes payload) {
    build([&](NodeId id) {
      return std::make_unique<RbSigNode>(
          id, n_, t_, initiator, id == initiator ? payload : Bytes{},
          seed_for(id));
    });
  }

  void build(const sim::PlainBed::NodeFactory& factory) {
    bed_.build(factory);
    // PKI distribution.
    std::vector<Bytes> pki;
    for (NodeId id = 0; id < n_; ++id) {
      pki.push_back(bed_.node_as<RbSigNode>(id).public_key());
    }
    for (NodeId id = 0; id < n_; ++id) {
      bed_.node_as<RbSigNode>(id).set_pki(pki);
    }
  }

  static Bytes seed_for(NodeId id) {
    return crypto::Sha256::hash_bytes(to_bytes("rbsig-" + std::to_string(id)));
  }

  void run() {
    bed_.start();
    bed_.run_rounds(t_ + 2);
  }

  RbSigNode& node(NodeId id) { return bed_.node_as<RbSigNode>(id); }
  sim::PlainBed& bed() { return bed_; }

 private:
  std::uint32_t n_, t_;
  sim::PlainBed bed_;
};

TEST(RbSig, HonestBroadcastAccepted) {
  const std::uint32_t n = 7, t = 3;
  RbSigBed bed(n, t);
  bed.build_honest(0, to_bytes("signed message"));
  bed.run();
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.node(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    ASSERT_TRUE(r.value.has_value()) << "node " << id;
    EXPECT_EQ(*r.value, to_bytes("signed message"));
  }
}

TEST(RbSig, EquivocationYieldsBottomButAgreement) {
  // The same A2 attack that splits the strawman: here every honest node
  // collects both signed values and outputs ⊥ — agreement preserved.
  const std::uint32_t n = 7, t = 3;
  RbSigBed bed(n, t);
  bed.build([&](NodeId id) -> std::unique_ptr<protocol::PlainNode> {
    if (id == 0) {
      return std::make_unique<EquivocatingRbSigInitiator>(
          id, n, t, to_bytes("m0"), to_bytes("m1"), RbSigBed::seed_for(id));
    }
    return std::make_unique<RbSigNode>(id, n, t, NodeId{0}, Bytes{},
                                       RbSigBed::seed_for(id));
  });
  bed.run();
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.node(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    EXPECT_FALSE(r.value.has_value()) << "node " << id << " must output ⊥";
  }
}

TEST(RbSig, ChainsCarryQuadraticByteOverhead) {
  // Signature chains make messages grow with the round — the Appendix B
  // point that ERB's identity-append replaces. Bytes per message here are
  // ~2 KiB+ (WOTS), versus ERB's ~100 B.
  const std::uint32_t n = 5, t = 2;
  RbSigBed bed(n, t);
  bed.build_honest(0, to_bytes("m"));
  bed.run();
  double avg_bytes =
      static_cast<double>(bed.bed().network().meter().bytes()) /
      static_cast<double>(bed.bed().network().meter().messages());
  EXPECT_GT(avg_bytes, 1000.0);
}

// ---------- RBearly ----------

TEST(RbEarly, HonestDecidesInTwoRounds) {
  const std::uint32_t n = 7, t = 3;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) {
    return std::make_unique<RbEarlyNode>(id, n, t, NodeId{0},
                                         id == 0 ? to_bytes("m") : Bytes{});
  });
  bed.start();
  bed.run_rounds(t + 3);
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.node_as<RbEarlyNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    ASSERT_TRUE(r.value.has_value());
    EXPECT_EQ(*r.value, to_bytes("m"));
    EXPECT_LE(r.round, 3u);
  }
}

TEST(RbEarly, CrashedInitiatorEarlyBottom) {
  // f = 1 (the initiator omits everything): honest nodes detect one quiet
  // node and settle on ⊥ by round f + 2 = 3, far before t + 1.
  const std::uint32_t n = 9, t = 4;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) {
    return std::make_unique<RbEarlyNode>(id, n, t, NodeId{0},
                                         id == 0 ? to_bytes("m") : Bytes{});
  });
  bed.node_as<RbEarlyNode>(0).set_send_filter([](NodeId) { return false; });
  bed.start();
  bed.run_rounds(t + 3);
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.node_as<RbEarlyNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    EXPECT_FALSE(r.value.has_value());
    EXPECT_LE(r.round, 4u) << "early stopping bound f+2 (+1 slack)";
  }
}

TEST(RbEarly, OmissionChainStillAgrees) {
  // The initiator reaches exactly one node; that node relays to everyone.
  const std::uint32_t n = 7, t = 3;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) {
    return std::make_unique<RbEarlyNode>(id, n, t, NodeId{0},
                                         id == 0 ? to_bytes("m") : Bytes{});
  });
  bed.node_as<RbEarlyNode>(0).set_send_filter(
      [](NodeId to) { return to == 1; });
  bed.start();
  bed.run_rounds(t + 3);
  std::optional<Bytes> first;
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.node_as<RbEarlyNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    if (id == 1) {
      first = r.value;
    } else {
      EXPECT_EQ(r.value, first) << "node " << id;
    }
  }
  EXPECT_TRUE(first.has_value());
  EXPECT_EQ(*first, to_bytes("m"));
}

TEST(RbEarly, PerRoundLivenessCostsCubicMessages) {
  // The structural cost the paper eliminates: every node broadcasts every
  // round. Crash the initiator so the protocol runs ~3 rounds of all-to-all.
  const std::uint32_t n = 16, t = 7;
  sim::PlainBed bed(n, net_cfg());
  bed.build([&](NodeId id) {
    return std::make_unique<RbEarlyNode>(id, n, t, NodeId{0}, Bytes{});
  });
  bed.node_as<RbEarlyNode>(0).set_send_filter([](NodeId) { return false; });
  bed.start();
  bed.run_rounds(t + 3);
  // ≥ 3 rounds × (n−1) broadcasters × (n−1) targets.
  EXPECT_GT(bed.network().meter().messages(), 3ull * (n - 1) * (n - 1));
}

}  // namespace
}  // namespace sgxp2p
