// TCP transport tests: bus framing and delivery, the epoll data plane's
// failure modes (backpressure, reconnect, torn/oversized frames, multicast
// identity), then full protocol runs (ERB, ERNG) over real localhost sockets
// with wall-clock rounds. Kept small and fast (sub-second rounds) since CI
// time is real time here; the n=64 soak and the real-socket fuzz replays
// carry the `slow` label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "fuzz/schedule.hpp"
#include "fuzz/tcp_runner.hpp"
#include "net/tcp_bus.hpp"
#include "net/tcp_testbed.hpp"
#include "obs/metrics.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"

namespace sgxp2p::net {
namespace {

/// Polls `done` (yield + 1 ms sleep) until it holds or `timeout_ms` passes.
bool eventually(const std::function<bool()>& done, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::uint64_t counter_value(const obs::MetricsRegistry& reg,
                            const char* name) {
  obs::MetricsSnapshot snap = reg.snapshot();
  const obs::CounterSample* c = snap.find_counter(name);
  return c != nullptr ? c->value : 0;
}

/// A framed header as the wire expects it: u32 len ‖ u32 from ‖ u32 to.
Bytes raw_frame(std::uint32_t len, NodeId from, NodeId to, Bytes payload) {
  Bytes raw(12);
  store_le32(raw.data(), len);
  store_le32(raw.data() + 4, from);
  store_le32(raw.data() + 8, to);
  raw.insert(raw.end(), payload.begin(), payload.end());
  return raw;
}

TEST(TcpBus, DeliversFrames) {
  TcpBus bus(3);
  std::mutex mu;
  std::vector<std::tuple<NodeId, NodeId, Bytes>> got;
  bus.set_receiver([&](NodeId to, NodeId from, Bytes blob) {
    std::lock_guard<std::mutex> lock(mu);
    got.emplace_back(to, from, std::move(blob));
  });
  ASSERT_TRUE(bus.start());
  bus.send(0, 1, to_bytes("a->b"));
  bus.send(2, 0, to_bytes("c->a"));
  bus.send(1, 2, to_bytes("b->c"));
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::lock_guard<std::mutex> lock(mu);
    if (got.size() == 3) break;
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(bus.messages_sent(), 3u);
  bool saw_ab = false;
  for (const auto& [to, from, blob] : got) {
    if (to == 1 && from == 0) {
      saw_ab = true;
      EXPECT_EQ(blob, to_bytes("a->b"));
    }
  }
  EXPECT_TRUE(saw_ab);
}

TEST(TcpBus, LargeAndEmptyFrames) {
  TcpBus bus(2);
  std::mutex mu;
  std::vector<Bytes> got;
  bus.set_receiver([&](NodeId, NodeId, Bytes blob) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(std::move(blob));
  });
  ASSERT_TRUE(bus.start());
  Bytes big(300000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  bus.send(0, 1, Bytes{});
  bus.send(0, 1, big);
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::lock_guard<std::mutex> lock(mu);
    if (got.size() == 2) break;
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].empty());
  EXPECT_EQ(got[1], big);  // FIFO + intact across partial reads
}

TEST(TcpBus, SelfAndOutOfRangeSendsIgnored) {
  TcpBus bus(2);
  bus.set_receiver([](NodeId, NodeId, Bytes) { FAIL() << "unexpected"; });
  ASSERT_TRUE(bus.start());
  bus.send(0, 0, to_bytes("self"));
  bus.send(0, 9, to_bytes("nowhere"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(bus.messages_sent(), 0u);
}

TEST(TcpIntegration, ErbOverSockets) {
  TcpTestbedConfig cfg;
  cfg.n = 5;
  cfg.round_ms = 150;
  TcpTestbed bed(cfg);
  Bytes msg = to_bytes("tcp broadcast");
  ASSERT_TRUE(bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
          protocol::PeerConfig pc,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, pc, ias, NodeId{0}, id == 0 ? msg : Bytes{});
      }));
  bed.start();
  bed.run_rounds(6, [&]() {
    for (NodeId id = 0; id < cfg.n; ++id) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });
  bed.locked([&] {
    for (NodeId id = 0; id < cfg.n; ++id) {
      const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
      EXPECT_TRUE(r.decided) << "node " << id;
      ASSERT_TRUE(r.value.has_value()) << "node " << id;
      EXPECT_EQ(*r.value, msg);
      EXPECT_LE(r.round, 3u);
    }
  });
}

TEST(TcpIntegration, ErngOverSockets) {
  TcpTestbedConfig cfg;
  cfg.n = 5;
  cfg.round_ms = 150;
  TcpTestbed bed(cfg);
  ASSERT_TRUE(bed.build(
      [](NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
         protocol::PeerConfig pc,
         const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErngBasicNode>(platform, id, host,
                                                         pc, ias);
      }));
  bed.start();
  bed.run_rounds(8, [&]() {
    for (NodeId id = 0; id < cfg.n; ++id) {
      if (!bed.enclave_as<protocol::ErngBasicNode>(id).result().done) {
        return false;
      }
    }
    return true;
  });
  bed.locked([&] {
    const auto& r0 = bed.enclave_as<protocol::ErngBasicNode>(0).result();
    EXPECT_TRUE(r0.done);
    for (NodeId id = 1; id < cfg.n; ++id) {
      const auto& r = bed.enclave_as<protocol::ErngBasicNode>(id).result();
      EXPECT_TRUE(r.done) << "node " << id;
      EXPECT_EQ(r.value, r0.value) << "node " << id;
    }
  });
}

TEST(TcpBackpressure, WatermarkTripAndRecover) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent scoped(reg);
  TcpBusOptions opts;
  opts.tx_high_watermark = 64 * 1024;
  TcpBus bus(2, opts);
  std::atomic<bool> release{false};
  std::atomic<std::uint64_t> received{0};
  // A slow reader: the I/O thread parks in the receiver, so frames pile up
  // in the kernel buffers first, then in the sender's bounded queue.
  bus.set_receiver([&](NodeId, NodeId, Bytes) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    received.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(bus.start());

  Bytes frame(2048, 0x5a);
  std::uint64_t accepted = 0;
  bool tripped = false;
  for (int i = 0; i < 5000; ++i) {  // 10 MB cap ≫ kernel buffering
    SendStatus st = bus.send(0, 1, Bytes(frame));
    if (st == SendStatus::kOk) {
      ++accepted;
    } else if (st == SendStatus::kBackpressure) {
      tripped = true;
      break;
    } else {
      FAIL() << "unexpected status " << send_status_name(st);
    }
  }
  ASSERT_TRUE(tripped) << "watermark never tripped after " << accepted
                       << " accepted frames";
  EXPECT_GE(counter_value(reg, "net.tcp.backpressure_events"), 1u);

  // Recovery: unblock the reader; every accepted frame must drain through,
  // and the connection must accept new traffic again.
  release.store(true, std::memory_order_release);
  ASSERT_TRUE(eventually(
      [&] { return received.load(std::memory_order_relaxed) >= accepted; },
      10000))
      << "drained " << received.load() << "/" << accepted;
  ASSERT_TRUE(eventually([&] {
    if (bus.send(0, 1, Bytes(frame)) != SendStatus::kOk) return false;
    ++accepted;
    return true;
  })) << "send did not recover to kOk";
  EXPECT_TRUE(eventually(
      [&] { return received.load(std::memory_order_relaxed) >= accepted; }));
  EXPECT_EQ(counter_value(reg, "net.tcp.send_failures"), 0u);
}

TEST(TcpReconnect, BreaksAndRecovers) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent scoped(reg);
  TcpBus bus(2);
  std::atomic<std::uint64_t> received{0};
  bus.set_receiver([&](NodeId, NodeId, Bytes) {
    received.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(bus.start());
  ASSERT_EQ(bus.send(0, 1, to_bytes("before")), SendStatus::kOk);
  ASSERT_TRUE(eventually([&] { return received.load() == 1; }));

  bus.debug_break(0, 1);
  // The pair heals through the dialer's backoff path; until then sends
  // report kDown instead of vanishing.
  std::uint64_t accepted = 1;
  ASSERT_TRUE(eventually([&] {
    SendStatus st = bus.send(0, 1, to_bytes("after"));
    if (st != SendStatus::kOk) {
      EXPECT_EQ(st, SendStatus::kDown);
      return false;
    }
    ++accepted;
    return true;
  })) << "connection never recovered";
  EXPECT_TRUE(eventually([&] { return received.load() >= accepted; }));
  EXPECT_GE(counter_value(reg, "net.tcp.reconnects"), 1u);
}

TEST(TcpReconnect, TornFrameDiscardedOnReconnect) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent scoped(reg);
  TcpBus bus(2);
  std::atomic<std::uint64_t> received{0};
  Bytes last;
  std::mutex mu;
  bus.set_receiver([&](NodeId, NodeId, Bytes blob) {
    std::lock_guard<std::mutex> lock(mu);
    last = std::move(blob);
    received.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(bus.start());

  // A frame claiming 100 payload bytes but delivering only 10: the receiver
  // parks it in rx as incomplete. The break must discard the torn prefix on
  // both sides, or the next frame's bytes would be misparsed as its tail.
  ASSERT_EQ(bus.debug_send_raw(0, 1, raw_frame(100, 0, 1, Bytes(10, 0xab))),
            SendStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(received.load(), 0u);
  bus.debug_break(0, 1);
  ASSERT_TRUE(eventually(
      [&] { return counter_value(reg, "net.tcp.reconnects") >= 1; }));

  Bytes intact = to_bytes("post-reconnect frame arrives intact");
  std::atomic<bool> sent{false};
  ASSERT_TRUE(eventually([&] {
    if (sent.load()) return true;
    if (bus.send(0, 1, Bytes(intact)) != SendStatus::kOk) return false;
    sent.store(true);
    return true;
  }));
  ASSERT_TRUE(eventually([&] { return received.load() == 1; }));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(last, intact);
}

TEST(TcpBus, OversizedLengthPrefixRejected) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent scoped(reg);
  TcpBusOptions opts;
  opts.max_frame = 1024;
  opts.reconnect = false;  // keep the pair down so kDown is observable
  TcpBus bus(2, opts);
  std::atomic<std::uint64_t> received{0};
  bus.set_receiver([&](NodeId, NodeId, Bytes) {
    received.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(bus.start());

  // Length prefix above max_frame: protocol violation → close + count.
  ASSERT_EQ(bus.debug_send_raw(0, 1, raw_frame(2048, 0, 1, Bytes(16, 0x01))),
            SendStatus::kOk);
  ASSERT_TRUE(eventually(
      [&] { return counter_value(reg, "net.tcp.bad_frames") >= 1; }));
  ASSERT_TRUE(eventually(
      [&] { return bus.send(0, 1, to_bytes("x")) == SendStatus::kDown; }));
  EXPECT_EQ(received.load(), 0u);
}

TEST(TcpMulticast, PayloadIdentityUnderCoalescing) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent scoped(reg);
  constexpr std::uint32_t kN = 8;
  TcpBus bus(kN);
  std::mutex mu;
  std::vector<std::vector<Bytes>> got(kN);  // per-destination, in order
  std::atomic<std::uint64_t> received{0};
  bus.set_receiver([&](NodeId to, NodeId from, Bytes blob) {
    EXPECT_EQ(from, 0u);
    std::lock_guard<std::mutex> lock(mu);
    got[to].push_back(std::move(blob));
    received.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(bus.start());

  std::vector<NodeId> group;
  for (NodeId id = 1; id < kN; ++id) group.push_back(id);
  const std::vector<std::size_t> sizes = {0, 1, 64, 1500, 70000};
  std::vector<Bytes> payloads;
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    Bytes p(sizes[k]);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = static_cast<std::uint8_t>(i * 31 + 17 * k + 3);
    }
    payloads.push_back(std::move(p));
  }
  for (const Bytes& p : payloads) {
    ASSERT_EQ(bus.multicast(0, group, Bytes(p)), SendStatus::kOk);
  }

  const std::uint64_t expected = payloads.size() * (kN - 1);
  ASSERT_TRUE(eventually([&] { return received.load() >= expected; }));
  std::lock_guard<std::mutex> lock(mu);
  for (NodeId id = 1; id < kN; ++id) {
    ASSERT_EQ(got[id].size(), payloads.size()) << "node " << id;
    for (std::size_t k = 0; k < payloads.size(); ++k) {
      // Identity under coalescing: every destination sees the exact bytes,
      // in per-connection FIFO order, from one shared serialization.
      EXPECT_EQ(got[id][k], payloads[k]) << "node " << id << " frame " << k;
    }
  }
  EXPECT_EQ(counter_value(reg, "net.tcp.multicasts"), payloads.size());
  EXPECT_EQ(counter_value(reg, "net.tcp.sends"), expected);
}

TEST(TcpRunnerGate, RejectsSocketInexpressibleSchedules) {
  fuzz::Schedule s;
  s.target = fuzz::FuzzTarget::kErb;
  s.n = 5;
  s.t = 2;
  s.max_rounds = 7;
  s.actions.push_back({fuzz::ActionKind::kDrop, 1, 1, kNoNode, 0});
  std::string why;
  EXPECT_TRUE(fuzz::tcp_supported(s, &why)) << why;
  s.actions.push_back({fuzz::ActionKind::kCrash, 1, 2, kNoNode, 0});
  EXPECT_FALSE(fuzz::tcp_supported(s, &why));
  EXPECT_NE(why.find("crash"), std::string::npos) << why;
  s.target = fuzz::FuzzTarget::kErngOpt;
  s.actions.clear();
  EXPECT_FALSE(fuzz::tcp_supported(s, &why));
}

TEST(TcpSoak, MeshOf64Nodes) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent scoped(reg);
  constexpr std::uint32_t kN = 64;
  TcpBus bus(kN);
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> byte_sum{0};
  bus.set_receiver([&](NodeId to, NodeId from, Bytes blob) {
    // Unicast frames carry (from, to) in their first bytes — integrity
    // check without per-pair bookkeeping.
    if (blob.size() == 8) {
      EXPECT_EQ(load_le32(blob.data()), from);
      EXPECT_EQ(load_le32(blob.data() + 4), to);
    }
    byte_sum.fetch_add(blob.size(), std::memory_order_relaxed);
    received.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(bus.start());

  // Full all-to-all: every ordered pair exchanges one addressed frame.
  for (NodeId a = 0; a < kN; ++a) {
    for (NodeId b = 0; b < kN; ++b) {
      if (a == b) continue;
      Bytes p(8);
      store_le32(p.data(), a);
      store_le32(p.data() + 4, b);
      ASSERT_EQ(bus.send(a, b, std::move(p)), SendStatus::kOk);
    }
  }
  // Then a multicast burst from node 0 across all 63 fan-out queues.
  std::vector<NodeId> group;
  for (NodeId id = 1; id < kN; ++id) group.push_back(id);
  constexpr std::uint64_t kBlasts = 50;
  const Bytes blast(256, 0x77);
  for (std::uint64_t i = 0; i < kBlasts; ++i) {
    ASSERT_EQ(bus.multicast(0, group, Bytes(blast)), SendStatus::kOk);
  }

  const std::uint64_t expected =
      std::uint64_t{kN} * (kN - 1) + kBlasts * (kN - 1);
  ASSERT_TRUE(eventually([&] { return received.load() >= expected; }, 30000))
      << received.load() << "/" << expected;
  EXPECT_EQ(received.load(), expected);
  EXPECT_EQ(byte_sum.load(),
            std::uint64_t{kN} * (kN - 1) * 8 + kBlasts * (kN - 1) * 256);
  EXPECT_EQ(counter_value(reg, "net.tcp.send_failures"), 0u);
  EXPECT_EQ(counter_value(reg, "net.tcp.bad_frames"), 0u);
}

TEST(TcpFuzz, PinnedScheduleStableOverRealSockets) {
  const std::string path =
      std::string(SGXP2P_CORPUS_DIR) + "/tcp/erb-pinned.sched";
  std::string error;
  auto schedule = fuzz::Schedule::load_file(path, &error);
  ASSERT_TRUE(schedule.has_value()) << error;
  ASSERT_TRUE(schedule->validate(&error)) << error;
  ASSERT_TRUE(fuzz::tcp_supported(*schedule, &error)) << error;

  // Two independent runs over real sockets: the oracles must pass and the
  // honest-outcome digest must be byte-stable.
  fuzz::RunReport first = fuzz::run_tcp_schedule(*schedule);
  EXPECT_TRUE(first.passed()) << first.outcome;
  fuzz::RunReport second = fuzz::run_tcp_schedule(*schedule);
  EXPECT_TRUE(second.passed()) << second.outcome;
  ASSERT_FALSE(first.digest.empty());
  EXPECT_EQ(first.digest, second.digest)
      << first.outcome << " vs " << second.outcome;
}

TEST(TcpIntegration, SteadyClockMonotone) {
  SteadyClock clock;
  SimTime t1 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SimTime t2 = clock.now();
  EXPECT_GE(t2 - t1, 15);
  EXPECT_LT(t2 - t1, 500);
}

}  // namespace
}  // namespace sgxp2p::net
