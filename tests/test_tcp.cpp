// TCP transport tests: bus framing and delivery, then full protocol runs
// (ERB, ERNG) over real localhost sockets with wall-clock rounds. Kept small
// and fast (sub-second rounds) since CI time is real time here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/tcp_bus.hpp"
#include "net/tcp_testbed.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"

namespace sgxp2p::net {
namespace {

TEST(TcpBus, DeliversFrames) {
  TcpBus bus(3);
  std::mutex mu;
  std::vector<std::tuple<NodeId, NodeId, Bytes>> got;
  bus.set_receiver([&](NodeId to, NodeId from, Bytes blob) {
    std::lock_guard<std::mutex> lock(mu);
    got.emplace_back(to, from, std::move(blob));
  });
  ASSERT_TRUE(bus.start());
  bus.send(0, 1, to_bytes("a->b"));
  bus.send(2, 0, to_bytes("c->a"));
  bus.send(1, 2, to_bytes("b->c"));
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::lock_guard<std::mutex> lock(mu);
    if (got.size() == 3) break;
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(bus.messages_sent(), 3u);
  bool saw_ab = false;
  for (const auto& [to, from, blob] : got) {
    if (to == 1 && from == 0) {
      saw_ab = true;
      EXPECT_EQ(blob, to_bytes("a->b"));
    }
  }
  EXPECT_TRUE(saw_ab);
}

TEST(TcpBus, LargeAndEmptyFrames) {
  TcpBus bus(2);
  std::mutex mu;
  std::vector<Bytes> got;
  bus.set_receiver([&](NodeId, NodeId, Bytes blob) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(std::move(blob));
  });
  ASSERT_TRUE(bus.start());
  Bytes big(300000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  bus.send(0, 1, Bytes{});
  bus.send(0, 1, big);
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::lock_guard<std::mutex> lock(mu);
    if (got.size() == 2) break;
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].empty());
  EXPECT_EQ(got[1], big);  // FIFO + intact across partial reads
}

TEST(TcpBus, SelfAndOutOfRangeSendsIgnored) {
  TcpBus bus(2);
  bus.set_receiver([](NodeId, NodeId, Bytes) { FAIL() << "unexpected"; });
  ASSERT_TRUE(bus.start());
  bus.send(0, 0, to_bytes("self"));
  bus.send(0, 9, to_bytes("nowhere"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(bus.messages_sent(), 0u);
}

TEST(TcpIntegration, ErbOverSockets) {
  TcpTestbedConfig cfg;
  cfg.n = 5;
  cfg.round_ms = 150;
  TcpTestbed bed(cfg);
  Bytes msg = to_bytes("tcp broadcast");
  ASSERT_TRUE(bed.build(
      [&](NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
          protocol::PeerConfig pc,
          const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, pc, ias, NodeId{0}, id == 0 ? msg : Bytes{});
      }));
  bed.start();
  bed.run_rounds(6, [&]() {
    for (NodeId id = 0; id < cfg.n; ++id) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });
  bed.locked([&] {
    for (NodeId id = 0; id < cfg.n; ++id) {
      const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
      EXPECT_TRUE(r.decided) << "node " << id;
      ASSERT_TRUE(r.value.has_value()) << "node " << id;
      EXPECT_EQ(*r.value, msg);
      EXPECT_LE(r.round, 3u);
    }
  });
}

TEST(TcpIntegration, ErngOverSockets) {
  TcpTestbedConfig cfg;
  cfg.n = 5;
  cfg.round_ms = 150;
  TcpTestbed bed(cfg);
  ASSERT_TRUE(bed.build(
      [](NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
         protocol::PeerConfig pc,
         const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErngBasicNode>(platform, id, host,
                                                         pc, ias);
      }));
  bed.start();
  bed.run_rounds(8, [&]() {
    for (NodeId id = 0; id < cfg.n; ++id) {
      if (!bed.enclave_as<protocol::ErngBasicNode>(id).result().done) {
        return false;
      }
    }
    return true;
  });
  bed.locked([&] {
    const auto& r0 = bed.enclave_as<protocol::ErngBasicNode>(0).result();
    EXPECT_TRUE(r0.done);
    for (NodeId id = 1; id < cfg.n; ++id) {
      const auto& r = bed.enclave_as<protocol::ErngBasicNode>(id).result();
      EXPECT_TRUE(r.done) << "node " << id;
      EXPECT_EQ(r.value, r0.value) << "node " << id;
    }
  });
}

TEST(TcpIntegration, SteadyClockMonotone) {
  SteadyClock clock;
  SimTime t1 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SimTime t2 = clock.now();
  EXPECT_GE(t2 - t1, 15);
  EXPECT_LT(t2 - t1, 500);
}

}  // namespace
}  // namespace sgxp2p::net
