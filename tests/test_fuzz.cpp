// The schedule fuzzer's own guarantees: generation is a pure function of
// (seed, index, target), runs are digest-deterministic, the shrinker
// converges on a planted canary, and every pinned corpus schedule replays
// byte-identically. These are what make a CI fuzz failure actionable — the
// artifact it uploads is exactly reproducible on a laptop.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/schedule.hpp"
#include "fuzz/shrinker.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::fuzz {
namespace {

TEST(ScheduleFuzzFormat, TextRoundTripIsIdentity) {
  for (FuzzTarget target :
       {FuzzTarget::kErb, FuzzTarget::kErngBasic, FuzzTarget::kErngOpt,
        FuzzTarget::kRecovery, FuzzTarget::kShard}) {
    Schedule s = generate_schedule(target, 7, 3);
    s.expect_violations = {"erb.agreement"};
    s.expect_digest = "00ff";
    std::string error;
    auto back = Schedule::from_text(s.to_text(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->to_text(), s.to_text());
    EXPECT_EQ(back->actions, s.actions);
  }
}

TEST(ScheduleFuzzFormat, ValidateRejectsUnsoundSchedules) {
  Schedule s = generate_schedule(FuzzTarget::kErb, 1, 0);
  std::string error;
  ASSERT_TRUE(s.validate(&error)) << error;

  Schedule over_budget = s;
  for (NodeId id = 0; id < over_budget.n; ++id) {
    over_budget.actions.push_back({ActionKind::kDrop, id, 1, kNoNode, 0});
  }
  EXPECT_FALSE(over_budget.validate(&error));

  Schedule starved = s;
  starved.max_rounds = 1;  // below the t+3 liveness horizon
  EXPECT_FALSE(starved.validate(&error));

  // A recovering victim occupies a byzantine slot: t−1 extras max.
  Schedule rec = generate_schedule(FuzzTarget::kRecovery, 1, 93);
  ASSERT_TRUE(rec.validate(&error)) << error;
  const RecoveryWindows rw = recovery_windows(rec);
  if (rw.recovers) {
    Schedule greedy = rec;
    std::size_t extras = greedy.faulted_nodes().size();
    for (NodeId id = 1; id < greedy.n - 1 && extras < greedy.t; ++id) {
      if (id == 2 || id == rw.victim) continue;
      greedy.actions.push_back({ActionKind::kDrop, id, 1, kNoNode, 0});
      ++extras;
    }
    EXPECT_FALSE(greedy.validate(&error));
  }
}

TEST(ScheduleFuzzGenerator, SameSeedIsByteIdentical) {
  for (FuzzTarget target :
       {FuzzTarget::kErb, FuzzTarget::kErngBasic, FuzzTarget::kErngOpt,
        FuzzTarget::kRecovery, FuzzTarget::kShard}) {
    for (std::uint32_t index : {0u, 17u, 93u}) {
      Schedule a = generate_schedule(target, 42, index);
      Schedule b = generate_schedule(target, 42, index);
      EXPECT_EQ(a.to_text(), b.to_text());
    }
    EXPECT_NE(generate_schedule(target, 42, 0).to_text(),
              generate_schedule(target, 42, 1).to_text());
  }
}

TEST(ScheduleFuzzRunner, RunDigestIsDeterministic) {
  for (FuzzTarget target :
       {FuzzTarget::kErb, FuzzTarget::kErngBasic, FuzzTarget::kErngOpt,
        FuzzTarget::kRecovery, FuzzTarget::kShard}) {
    Schedule s = generate_schedule(target, 5, 11);
    RunReport a = run_schedule(s, {});
    RunReport b = run_schedule(s, {});
    EXPECT_FALSE(a.digest.empty());
    EXPECT_EQ(a.digest, b.digest) << target_name(target);
    EXPECT_EQ(a.outcome, b.outcome) << target_name(target);
    EXPECT_EQ(a.violated_oracles(), b.violated_oracles());
  }
}

TEST(ScheduleFuzzCampaign, CanaryFoundShrunkAndReplayable) {
  const std::string dir = ::testing::TempDir() + "sgxp2p_fuzz_canary";
  std::filesystem::create_directories(dir);

  CampaignOptions options;
  options.targets = {FuzzTarget::kErb};
  options.seed = 1;
  options.schedules = 500;
  options.canary = true;
  options.out_dir = dir;
  options.max_failures = 1;
  CampaignResult result = run_campaign(options);

  // The too-strong canary oracle must trip within the PR smoke budget…
  ASSERT_EQ(result.failures.size(), 1u);
  const CampaignFailure& failure = result.failures[0];
  EXPECT_LT(failure.index, 500u);
  // …and shrink to a handful of actions.
  EXPECT_LE(failure.shrunk.actions.size(), 8u);
  ASSERT_FALSE(failure.repro_path.empty());

  // The written reproducer replays byte-identically (violations + digest).
  ReplayResult replay = replay_schedule_file(failure.repro_path);
  EXPECT_TRUE(replay.ok) << replay.message;
  EXPECT_EQ(replay.report.digest, failure.report.digest);

  std::filesystem::remove_all(dir);
}

// Campaign bookkeeping lands in the caller's registry (fuzz.* namespace),
// never in the hermetic per-run registries the digests are computed over.
TEST(ScheduleFuzzCampaign, FuzzMetricsCountOnCampaignRegistry) {
  obs::MetricsRegistry campaign;
  obs::MetricsRegistry::ScopedCurrent scoped(campaign);
  CampaignOptions options;
  options.targets = {FuzzTarget::kErb};
  options.seed = 2;
  options.schedules = 3;
  CampaignResult result = run_campaign(options);
  EXPECT_TRUE(result.clean());
  auto snap = campaign.snapshot();
  const auto* schedules = snap.find_counter("fuzz.schedules");
  ASSERT_NE(schedules, nullptr);
  EXPECT_EQ(schedules->value, 3u);
  EXPECT_EQ(snap.find_counter("fuzz.failures")->value, 0u);
  EXPECT_EQ(snap.find_counter("fuzz.violations")->value, 0u);
  EXPECT_EQ(snap.find_counter("fuzz.shrink_runs")->value, 0u);
}

TEST(ScheduleFuzzCorpus, PinnedSchedulesReplayByteIdentically) {
  const std::filesystem::path corpus(SGXP2P_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".sched") continue;
    ReplayResult replay = replay_schedule_file(entry.path().string());
    EXPECT_TRUE(replay.ok)
        << entry.path().filename() << ": " << replay.message;
    ++replayed;
  }
  // One pinned schedule per fuzz target.
  EXPECT_GE(replayed, 5);
}

}  // namespace
}  // namespace sgxp2p::fuzz
