// Crash-recovery subsystem tests (src/recovery/): sealed checkpoints with
// monotonic-counter rollback protection, the scripted crash → relaunch →
// re-attest → rejoin episode on the simulator, and the same injection
// points over real sockets. The simulator scenarios are the executable
// acceptance criteria: both restore paths (honest host vs. stale-seal
// replay) must converge, and two same-seed runs must be byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/strategies.hpp"
#include "net/tcp_testbed.hpp"
#include "net/testbed.hpp"
#include "recovery/coordinator.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using recovery::RecoverableNode;
using recovery::RestoreOutcome;

sim::Testbed::EnclaveFactory roster_factory(
    std::vector<NodeId> roster0, std::vector<protocol::JoinPlanEntry> plan) {
  return [roster0 = std::move(roster0), plan = std::move(plan)](
             NodeId id, sgx::SgxPlatform& platform, net::Host& host,
             protocol::PeerConfig cfg,
             const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<RecoverableNode>(platform, id, host, cfg, ias,
                                             roster0, plan);
  };
}

// ---------------------------------------------------------------------------
// Full scenario driver, mirroring `sgxp2p-sim --protocol recovery`: N initial
// members, node 1 crashes and recovers, node N joins fresh afterwards (the
// post-recovery liveness proof — its join runs a complete ERB instance).
// ---------------------------------------------------------------------------

struct ScenarioOptions {
  std::uint32_t n = 4;  // initial members; node `n` joins fresh at the end
  std::uint64_t seed = 1;
  std::uint32_t crash_at = 6;
  std::uint32_t recover_after = 4;
  std::uint32_t checkpoint_every = 2;
  bool stale_replay = false;
};

struct ScenarioResult {
  std::uint32_t rounds = 0;
  std::uint32_t rejoin_round = 0;
  RestoreOutcome outcome = RestoreOutcome::kInvalid;
  bool fallback = false;
  bool rejoined = false;
  bool converged = false;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::vector<Bytes> victim_seals;        // full sealed history, in order
  std::vector<std::vector<NodeId>> rosters;  // per node, post-run
  std::vector<std::uint64_t> seqs;           // per node my_seq, post-run
};

ScenarioResult run_scenario(const ScenarioOptions& o) {
  const NodeId victim = 1;
  const NodeId extra = o.n;  // joins fresh after the recovery completes
  auto cfg = testutil::small_config(o.n + 1, o.seed);
  cfg.t = (o.n - 1) / 2;  // tolerance sized to the initial membership
  cfg.mode = protocol::ChannelMode::kAttested;
  const std::uint32_t W = cfg.t + 2;
  const std::uint32_t recover_at = o.crash_at + o.recover_after;
  const std::size_t w_rejoin = (recover_at - 1 + W - 1) / W;

  std::vector<NodeId> roster0;
  for (NodeId id = 0; id < o.n; ++id) roster0.push_back(id);
  std::vector<protocol::JoinPlanEntry> plan(w_rejoin + 3);
  plan[w_rejoin] = {victim, NodeId{0}, true};
  plan[w_rejoin + 1] = {victim, NodeId{2}, true};  // sponsor retry
  plan[w_rejoin + 2] = {extra, NodeId{0}, false};  // fresh-join ERB proof

  sim::Testbed bed(cfg);
  auto factory = roster_factory(roster0, plan);
  bed.build(factory, [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
    if (o.stale_replay && id == victim) {
      return std::make_unique<adversary::StaleSealReplayStrategy>();
    }
    return nullptr;
  });

  recovery::RecoveryPlan rp;
  rp.victim = victim;
  rp.crash_round = o.crash_at;
  rp.recover_round = recover_at;
  rp.checkpoint_interval = o.checkpoint_every;
  recovery::RecoveryCoordinator coord(bed, factory, rp);
  coord.install();

  bed.start();
  auto converged = [&]() {
    if (!coord.rejoin_complete()) return false;
    for (NodeId id = 0; id < cfg.n; ++id) {
      if (!bed.has_enclave(id)) return false;
      auto& node = bed.enclave_as<RecoverableNode>(id);
      const auto& roster = node.roster();
      if (!node.is_member() || roster.size() != o.n + 1 ||
          std::find(roster.begin(), roster.end(), extra) == roster.end()) {
        return false;
      }
    }
    return true;
  };

  ScenarioResult r;
  r.rounds = bed.run_rounds(static_cast<std::uint32_t>((w_rejoin + 4) * W),
                            converged);
  r.rejoin_round = coord.rejoin_round();
  r.outcome = coord.restore_outcome();
  r.fallback = coord.used_fresh_fallback();
  r.rejoined = coord.rejoin_complete();
  r.converged = converged();
  r.messages = bed.network().meter().messages();
  r.bytes = bed.network().meter().bytes();
  r.victim_seals = coord.store(victim).history();
  for (NodeId id = 0; id < cfg.n; ++id) {
    auto& node = bed.enclave_as<RecoverableNode>(id);
    r.rosters.push_back(node.roster());
    r.seqs.push_back(node.my_seq());
  }
  return r;
}

// Honest host: the newest sealed checkpoint passes the monotonic-counter
// check, the victim rejoins with restored state, and the post-recovery
// fresh join converges on every node.
TEST(Recovery, HonestHostRestoresLatestCheckpoint) {
  auto& m = recovery::RecoveryMetrics::get();
  const std::uint64_t rollbacks0 = m.rollback_detected->value();
  const std::uint64_t restores0 = m.restores_ok->value();

  ScenarioResult r = run_scenario({});
  EXPECT_EQ(r.outcome, RestoreOutcome::kRestored);
  EXPECT_FALSE(r.fallback);
  EXPECT_TRUE(r.rejoined);
  EXPECT_TRUE(r.converged);
  // Two checkpoints sealed before the crash (rounds 2 and 4), more after.
  EXPECT_GE(r.victim_seals.size(), 2u);
  EXPECT_EQ(m.rollback_detected->value(), rollbacks0);
  EXPECT_EQ(m.restores_ok->value(), restores0 + 1);
  // Everyone — including the rejoined victim and the fresh joiner — ends on
  // the same roster.
  for (const auto& roster : r.rosters) EXPECT_EQ(roster, r.rosters.front());
}

// Byzantine host replays the oldest sealed blob: the embedded counter no
// longer matches the platform counter, the rollback is detected, and the
// victim is re-admitted through the fresh-joiner path instead.
TEST(Recovery, StaleSealReplayDetectedAndConvergesFresh) {
  auto& m = recovery::RecoveryMetrics::get();
  const std::uint64_t rollbacks0 = m.rollback_detected->value();
  const std::uint64_t fallbacks0 = m.fresh_fallbacks->value();

  ScenarioOptions o;
  o.stale_replay = true;
  ScenarioResult r = run_scenario(o);
  EXPECT_EQ(r.outcome, RestoreOutcome::kStale);
  EXPECT_TRUE(r.fallback);
  EXPECT_TRUE(r.rejoined);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(m.rollback_detected->value(), rollbacks0 + 1);
  EXPECT_EQ(m.fresh_fallbacks->value(), fallbacks0 + 1);
  for (const auto& roster : r.rosters) EXPECT_EQ(roster, r.rosters.front());
}

// Crash before the first checkpoint interval elapses: the store is empty,
// there is nothing to restore, and recovery degrades to a fresh join.
TEST(Recovery, CrashBeforeFirstCheckpointFallsBackFresh) {
  ScenarioOptions o;
  o.crash_at = 1;
  o.recover_after = 4;
  ScenarioResult r = run_scenario(o);
  EXPECT_EQ(r.outcome, RestoreOutcome::kInvalid);
  EXPECT_TRUE(r.fallback);
  EXPECT_TRUE(r.rejoined);
  EXPECT_TRUE(r.converged);
  for (const auto& roster : r.rosters) EXPECT_EQ(roster, r.rosters.front());
}

// Same seed ⇒ identical timeline: round counts, traffic totals, sequence
// numbers, rosters, and every sealed checkpoint byte-for-byte. Covers both
// restore paths.
TEST(Recovery, SameSeedRunsAreIdentical) {
  for (bool stale : {false, true}) {
    ScenarioOptions o;
    o.seed = 7;
    o.stale_replay = stale;
    ScenarioResult a = run_scenario(o);
    ScenarioResult b = run_scenario(o);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.rejoin_round, b.rejoin_round);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.fallback, b.fallback);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.seqs, b.seqs);
    EXPECT_EQ(a.rosters, b.rosters);
    EXPECT_EQ(a.victim_seals, b.victim_seals);
    EXPECT_TRUE(a.converged);
  }
}

// ---------------------------------------------------------------------------
// Unit-level rollback protection, without the coordinator: an old blob must
// fail the counter check even though it unseals perfectly, truncated blobs
// must be rejected outright, and only the newest blob restores.
// ---------------------------------------------------------------------------
TEST(Recovery, MonotonicCounterAcceptsOnlyNewestSeal) {
  auto cfg = testutil::small_config(4, 3);
  cfg.mode = protocol::ChannelMode::kAttested;
  std::vector<NodeId> roster0{0, 1, 2, 3};
  auto factory = roster_factory(roster0, {});
  sim::Testbed bed(cfg);
  bed.build(factory);
  bed.start();
  bed.run_rounds(2);

  auto& victim = bed.enclave_as<RecoverableNode>(1);
  Bytes old_seal = victim.take_checkpoint();
  Bytes new_seal = victim.take_checkpoint();
  ASSERT_NE(old_seal, new_seal);

  bed.kill_enclave(1);
  ASSERT_FALSE(bed.has_enclave(1));
  bed.relaunch_enclave(1, factory, [&](protocol::PeerEnclave& enclave) {
    auto& node = dynamic_cast<RecoverableNode&>(enclave);
    Bytes truncated(new_seal.begin(), new_seal.end() - 1);
    EXPECT_EQ(node.restore_checkpoint(truncated), RestoreOutcome::kInvalid);
    // Unseals fine, but carries counter value 1 while the platform says 2.
    EXPECT_EQ(node.restore_checkpoint(old_seal), RestoreOutcome::kStale);
    // Rejected blobs leave the node untouched: no rejoin was scheduled.
    EXPECT_FALSE(node.rejoin_pending());
    EXPECT_EQ(node.restore_checkpoint(new_seal), RestoreOutcome::kRestored);
    EXPECT_TRUE(node.is_member());
    EXPECT_TRUE(node.rejoin_pending());
  });
  ASSERT_TRUE(bed.has_enclave(1));
}

// ---------------------------------------------------------------------------
// The same crash/recover injection points over real TCP sockets: checkpoint,
// kill the enclave mid-run, relaunch from the seal, re-attest, and complete
// a scheduled REJOIN window. Wall-clock, so outcomes only — determinism is
// the simulator's job. (Not tier-1: real sleeping across ~15 rounds.)
// ---------------------------------------------------------------------------
TEST(TcpRecovery, CrashRecoverRejoinOverSockets) {
  net::TcpTestbedConfig cfg;
  cfg.n = 3;
  cfg.round_ms = 150;
  cfg.seed = 11;
  const NodeId victim = 1;
  const std::uint32_t W = 3;  // window length t+2 with n=3, t=1

  std::vector<NodeId> roster0{0, 1, 2};
  // Recovery lands mid-window-1; REJOIN windows 2 and 3 (sponsor retry).
  std::vector<protocol::JoinPlanEntry> plan(4);
  plan[2] = {victim, NodeId{0}, true};
  plan[3] = {victim, NodeId{2}, true};

  net::TcpTestbed::EnclaveFactory factory =
      [&roster0, &plan](NodeId id, sgx::SgxPlatform& platform,
                        sgx::EnclaveHostIface& host, protocol::PeerConfig pc,
                        const sgx::SimIAS& ias)
      -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<RecoverableNode>(platform, id, host, pc, ias,
                                             roster0, plan);
  };

  net::TcpTestbed bed(cfg);
  ASSERT_TRUE(bed.build(factory));
  bed.start();
  bed.run_rounds(2);

  Bytes seal = bed.locked(
      [&] { return bed.enclave_as<RecoverableNode>(victim).take_checkpoint(); });
  bed.crash_node(victim);
  bed.run_rounds(2);  // the survivors keep ticking; victim frames are dropped

  bed.recover_node(victim, factory, [&](protocol::PeerEnclave& enclave) {
    auto& node = dynamic_cast<RecoverableNode&>(enclave);
    ASSERT_EQ(node.restore_checkpoint(seal), RestoreOutcome::kRestored);
    // Re-attest with the survivors (their replay windows moved on). Runs
    // under the testbed state lock, so peer enclaves are safe to touch.
    Bytes hello = node.handshake_blob();
    for (NodeId id : roster0) {
      if (id == victim) continue;
      auto& peer = bed.enclave(id);
      ASSERT_TRUE(peer.accept_handshake(hello));
      ASSERT_TRUE(node.accept_handshake(peer.handshake_blob()));
    }
  });

  std::uint32_t ran = bed.run_rounds(4 * W, [&] {
    auto& node = bed.enclave_as<RecoverableNode>(victim);
    return node.is_member() && !node.rejoin_pending();
  });
  EXPECT_LT(ran, 4 * W) << "victim never completed its REJOIN window";
  bed.locked([&] {
    for (NodeId id : roster0) {
      auto& node = bed.enclave_as<RecoverableNode>(id);
      EXPECT_TRUE(node.is_member());
      EXPECT_EQ(node.roster(), roster0);
    }
  });
}

}  // namespace
}  // namespace sgxp2p
