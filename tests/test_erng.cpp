// ERNG tests (basic, Algorithm 3; optimized, Algorithm 6): agreement on the
// final set, early output in the honest case, unbiasedness under active
// adversaries (A3 content-selective / A4 lookahead attempts), and the
// cluster concentration behavior of the optimized variant.
#include <gtest/gtest.h>

#include <map>

#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErngBasicNode;
using protocol::ErngOptNode;
using testutil::all_honest_done;
using testutil::erng_basic_factory;
using testutil::erng_opt_factory;
using testutil::small_config;

// --- Basic ERNG ---

TEST(ErngBasic, HonestAllAgreeOnFullSet) {
  const std::uint32_t n = 7;
  sim::Testbed bed(small_config(n, 11));
  bed.build(erng_basic_factory());
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));

  const auto& r0 = bed.enclave_as<ErngBasicNode>(0).result();
  ASSERT_TRUE(r0.done);
  EXPECT_EQ(r0.set_size, n);  // every initiator delivered
  EXPECT_FALSE(r0.is_bottom);
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.enclave_as<ErngBasicNode>(id).result();
    ASSERT_TRUE(r.done) << "node " << id;
    EXPECT_EQ(r.value, r0.value) << "node " << id;
    EXPECT_EQ(r.set_size, r0.set_size);
  }
}

TEST(ErngBasic, HonestTerminatesEarlyIndependentOfT) {
  // The paper's Fig. 2b: honest-case termination is ~2 rounds, not t+2.
  const std::uint32_t n = 11;  // t = 5
  sim::Testbed bed(small_config(n, 42));
  bed.build(erng_basic_factory());
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_LE(bed.enclave_as<ErngBasicNode>(id).result().round, 3u);
  }
}

TEST(ErngBasic, OutputIsXorOfContributions) {
  const std::uint32_t n = 5;
  sim::Testbed bed(small_config(n, 17));
  bed.build(erng_basic_factory());
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));
  Bytes expected(32, 0);
  for (NodeId id = 0; id < n; ++id) {
    xor_into(expected, bed.enclave_as<ErngBasicNode>(id).own_contribution());
  }
  EXPECT_EQ(bed.enclave_as<ErngBasicNode>(0).result().value, expected);
}

TEST(ErngBasic, CrashNodesExcludedButAgreementHolds) {
  const std::uint32_t n = 9;  // t = 4
  sim::Testbed bed(small_config(n, 5));
  bed.build(erng_basic_factory(), [](NodeId id) {
    return id >= 7 ? std::make_unique<adversary::CrashStrategy>()
                   : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));
  const auto& r0 = bed.enclave_as<ErngBasicNode>(0).result();
  ASSERT_TRUE(r0.done);
  EXPECT_EQ(r0.set_size, 7u);  // crashed initiators contribute ⊥
  for (NodeId id = 1; id < 7; ++id) {
    const auto& r = bed.enclave_as<ErngBasicNode>(id).result();
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.value, r0.value);
  }
}

TEST(ErngBasic, LateStartContributionIsNeglected) {
  // A4: a byzantine host withholds its node's INIT for two rounds hoping to
  // choose participation after seeing others. P5 rejects the stale rounds;
  // the honest nodes agree and the delayed node's value is excluded.
  const std::uint32_t n = 7;
  auto cfg = small_config(n, 23);
  sim::Testbed bed(cfg);
  SimDuration two_rounds = 2 * bed.config().effective_round();
  bed.build(erng_basic_factory(), [&](NodeId id) {
    return id == 6 ? std::make_unique<adversary::DelayStrategy>(two_rounds)
                   : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));
  const auto& r0 = bed.enclave_as<ErngBasicNode>(0).result();
  ASSERT_TRUE(r0.done);
  EXPECT_EQ(r0.set_size, n - 1);  // node 6's instance decided ⊥ everywhere
  for (NodeId id = 1; id < 6; ++id) {
    EXPECT_EQ(bed.enclave_as<ErngBasicNode>(id).result().value, r0.value);
  }
}

TEST(ErngBasic, CiphertextSelectiveOmissionCannotSplitOrBias) {
  // A3 (content-based): the byzantine host drops blobs based on ciphertext
  // bytes. It cannot target values (P3); agreement must survive since drops
  // are content-independent omissions.
  const std::uint32_t n = 9;
  sim::Testbed bed(small_config(n, 1001));
  bed.build(erng_basic_factory(), [&](NodeId id) {
    return id < 2
               ? std::make_unique<adversary::CiphertextSelectiveStrategy>(64)
               : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));
  const auto& r2 = bed.enclave_as<ErngBasicNode>(2).result();
  ASSERT_TRUE(r2.done);
  for (NodeId id = 3; id < n; ++id) {
    const auto& r = bed.enclave_as<ErngBasicNode>(id).result();
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.value, r2.value) << "node " << id;
  }
}

class ErngBasicSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErngBasicSeeds, AgreementAcrossSeeds) {
  const std::uint32_t n = 6;
  sim::Testbed bed(small_config(n, GetParam()));
  bed.build(erng_basic_factory());
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));
  const auto& r0 = bed.enclave_as<ErngBasicNode>(0).result();
  for (NodeId id = 1; id < n; ++id) {
    EXPECT_EQ(bed.enclave_as<ErngBasicNode>(id).result().value, r0.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErngBasicSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Unbiasedness: across many executions with an active omission adversary,
// the low bit of the output should be fair. (Statistical smoke test — the
// formal claim is Theorem 5.1.)
TEST(ErngBasic, OutputBitBalanceUnderAdversary) {
  int ones = 0;
  const int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint32_t n = 5;
    sim::Testbed bed(small_config(n, 9000 + trial));
    bed.build(erng_basic_factory(), [&](NodeId id) {
      return id == 4 ? std::make_unique<adversary::RandomOmissionStrategy>(
                           0.5, 0.0)
                     : std::unique_ptr<adversary::Strategy>{};
    });
    bed.start();
    bed.run_rounds(bed.config().effective_t() + 4,
                   all_honest_done<ErngBasicNode>(bed));
    const auto& r = bed.enclave_as<ErngBasicNode>(0).result();
    ASSERT_TRUE(r.done);
    ASSERT_FALSE(r.is_bottom);
    ones += r.value[0] & 1;
  }
  // Binomial(40, 1/2): outside [8, 32] has probability < 1e-4.
  EXPECT_GE(ones, 8);
  EXPECT_LE(ones, 32);
}

// --- Optimized ERNG ---

TEST(ErngOpt, SmallNetworkFallbackAgrees) {
  const std::uint32_t n = 12;
  auto cfg = small_config(n, 3);
  cfg.t = 4;  // t ≤ N/3 required by the optimized variant
  sim::Testbed bed(cfg);
  bed.build(erng_opt_factory());
  bed.start();
  bed.run_rounds(40, all_honest_done<ErngOptNode>(bed));

  const auto& r0 = bed.enclave_as<ErngOptNode>(0).result();
  ASSERT_TRUE(r0.done);
  EXPECT_FALSE(r0.is_bottom);
  EXPECT_GE(r0.set_size, 1u);
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.enclave_as<ErngOptNode>(id).result();
    ASSERT_TRUE(r.done) << "node " << id;
    EXPECT_EQ(r.value, r0.value) << "node " << id;
  }
  // Fallback cluster = ⌈2N/3⌉ = 8 nodes.
  EXPECT_EQ(r0.cluster_size, 8u);
}

TEST(ErngOpt, LargeNetworkSampledClusterAgrees) {
  const std::uint32_t n = 80;
  auto cfg = small_config(n, 7);
  cfg.t = 26;  // ≈ N/3
  protocol::ErngOptParams params;
  params.gamma = 5;  // N/(2γ) = 8 → E[cluster] = 10
  sim::Testbed bed(cfg);
  bed.build(erng_opt_factory(params));
  bed.start();
  bed.run_rounds(40, all_honest_done<ErngOptNode>(bed));

  const auto& r0 = bed.enclave_as<ErngOptNode>(0).result();
  ASSERT_TRUE(r0.done);
  EXPECT_FALSE(r0.is_bottom) << "no cluster initiator delivered";
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.enclave_as<ErngOptNode>(id).result();
    ASSERT_TRUE(r.done) << "node " << id;
    EXPECT_EQ(r.value, r0.value) << "node " << id;
  }
  // Every node observed the same cluster.
  for (NodeId id = 1; id < n; ++id) {
    EXPECT_EQ(bed.enclave_as<ErngOptNode>(id).result().cluster_size,
              r0.cluster_size);
  }
}

TEST(ErngOpt, ClusterSizeConcentrates) {
  // Lemma F.1-flavored check: over seeds, the sampled cluster lands within a
  // wide band around E = 2γ, and never empties.
  const std::uint32_t n = 128;
  protocol::ErngOptParams params;
  params.gamma = 8;  // E[cluster] = 16
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto cfg = small_config(n, seed);
    cfg.t = 42;
    // Honest-only statistical sweep: accounted links keep it fast.
    cfg.mode = protocol::ChannelMode::kAccounted;
    sim::Testbed bed(cfg);
    bed.build(erng_opt_factory(params));
    bed.start();
    bed.run_rounds(40, all_honest_done<ErngOptNode>(bed));
    std::size_t cluster = bed.enclave_as<ErngOptNode>(0).result().cluster_size;
    EXPECT_GE(cluster, 4u) << "seed " << seed;
    EXPECT_LE(cluster, 40u) << "seed " << seed;
  }
}

TEST(ErngOpt, ByzantineClusterMinorityCannotBreakAgreement) {
  // Byzantine nodes inside the fallback cluster crash mid-protocol; honest
  // majority of the cluster still produces ≥ threshold identical FINAL sets.
  const std::uint32_t n = 12;
  auto cfg = small_config(n, 13);
  cfg.t = 3;
  sim::Testbed bed(cfg);
  bed.build(erng_opt_factory(), [](NodeId id) {
    return (id == 1 || id == 3)
               ? std::make_unique<adversary::RandomOmissionStrategy>(0.7, 0.7)
               : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(40, all_honest_done<ErngOptNode>(bed));
  std::map<Bytes, int> outputs;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErngOptNode>(id).result();
    if (r.done && !r.is_bottom) ++outputs[r.value];
  }
  // All non-⊥ outputs must be identical.
  EXPECT_LE(outputs.size(), 1u);
}

TEST(ErngOpt, RoundComplexityIsClusterBound) {
  // Total rounds ≈ t_c + 4 where t_c = ⌊(cluster−1)/2⌋ — much less than the
  // network-wide t+2 of the basic variant for large N.
  const std::uint32_t n = 96;
  auto cfg = small_config(n, 55);
  cfg.t = 31;
  protocol::ErngOptParams params;
  params.gamma = 6;
  sim::Testbed bed(cfg);
  bed.build(erng_opt_factory(params));
  bed.start();
  bed.run_rounds(40, all_honest_done<ErngOptNode>(bed));
  const auto& r0 = bed.enclave_as<ErngOptNode>(0).result();
  ASSERT_TRUE(r0.done);
  std::uint32_t t_c = (static_cast<std::uint32_t>(r0.cluster_size) - 1) / 2;
  EXPECT_LE(r0.round, t_c + 5);
  EXPECT_LT(r0.round, cfg.t + 2);  // beats basic ERNG's deadline
}

}  // namespace
}  // namespace sgxp2p
