// Robustness under hostile bytes: every parser and every enclave entry point
// fed random garbage, truncations, and mutations — nothing may crash, leak
// state transitions, or be accepted. (A byzantine host controls exactly
// these inputs.)
#include <gtest/gtest.h>

#include "channel/handshake.hpp"
#include "common/rng.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/wire.hpp"
#include "sgx/attestation.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(Fuzz, ParseValNeverCrashesAndRoundTripsSurvive) {
  Rng rng(101);
  int parsed = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk = random_bytes(rng, 64);
    auto val = protocol::parse_val(junk);
    if (val) {
      ++parsed;
      // Anything that parses must re-serialize to an equivalent value.
      auto again = protocol::parse_val(protocol::serialize(*val));
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *val);
    }
  }
  // Random bytes essentially never form a valid val (type byte + exact
  // length discipline); a handful of accidental parses is acceptable.
  EXPECT_LT(parsed, 50);
}

TEST(Fuzz, QuoteDeserializeNeverCrashes) {
  Rng rng(202);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes junk = random_bytes(rng, 120);
    (void)sgx::Quote::deserialize(junk);
  }
}

TEST(Fuzz, HandshakeDeserializeNeverCrashes) {
  Rng rng(303);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes junk = random_bytes(rng, 150);
    (void)channel::HandshakeMsg::deserialize(junk);
  }
}

TEST(Fuzz, EnclaveDeliverSurvivesGarbageStorm) {
  // A live ERB deployment; one node's enclave is bombarded with garbage
  // claimed to come from every peer. The protocol outcome must be exactly
  // the honest outcome.
  const std::uint32_t n = 5;
  sim::Testbed bed(testutil::small_config(n, 404));
  Bytes msg = to_bytes("survives");
  bed.build(testutil::erb_factory(0, msg));
  bed.start();

  Rng rng(505);
  // Storm before, during, and after round 1.
  auto storm = [&](NodeId target) {
    for (int i = 0; i < 200; ++i) {
      NodeId claimed_from = static_cast<NodeId>(rng.next_below(n));
      bed.enclave(target).deliver(claimed_from, random_bytes(rng, 200));
    }
  };
  storm(2);
  bed.run_rounds(1);
  storm(2);
  storm(3);
  bed.run_rounds(5, testutil::all_honest_erb_decided(bed));
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    ASSERT_TRUE(r.value.has_value());
    EXPECT_EQ(*r.value, msg);
  }
}

TEST(Fuzz, MutatedRealBlobsAllRejected) {
  // Take a genuine sealed protocol blob and mutate every byte; the channel
  // must reject all mutants (none may reach the protocol as a different
  // message).
  const std::uint32_t n = 3;
  sim::Testbed bed(testutil::small_config(n, 606));
  bed.build(testutil::erb_factory(0, to_bytes("original")));

  // Craft a genuine blob by sealing through enclave 0's setup path.
  Bytes real_blob = bed.enclave(0).make_seq_blob(1);
  Rng rng(707);
  for (std::size_t i = 0; i < real_blob.size(); ++i) {
    Bytes mutant = real_blob;
    mutant[i] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    // accept_seq_blob returns false on any mutation (MAC failure or parse).
    EXPECT_FALSE(bed.enclave(1).accept_seq_blob(0, mutant)) << "byte " << i;
  }
  // The pristine blob still works (the mutants burned nothing).
  EXPECT_TRUE(bed.enclave(1).accept_seq_blob(0, real_blob));
}

TEST(Fuzz, SerializedValMutationsNeverEquivocate) {
  // Property: for a fixed sealed INIT, any mutation either fails to open or
  // — impossible with a MAC — changes the payload. Verified indirectly at
  // the AEAD layer, re-checked here at the val layer for the parser.
  protocol::Val val{protocol::MsgType::kInit, 0, 42, 1, to_bytes("payload")};
  Bytes wire = protocol::serialize(val);
  Rng rng(808);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes mutant = wire;
    std::size_t at = rng.next_below(mutant.size());
    mutant[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    auto parsed = protocol::parse_val(mutant);
    if (parsed) {
      // A parseable mutant must differ from the original in a field the
      // protocol checks (type/initiator/seq/round) or in the payload —
      // i.e., it cannot equal the original val.
      EXPECT_NE(*parsed, val);
    }
  }
}

}  // namespace
}  // namespace sgxp2p
