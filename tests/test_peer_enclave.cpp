// PeerEnclave runtime surface: setup-phase edge cases, sequence table
// behavior, round computation, per-type send statistics, and halted-node
// semantics.
#include <gtest/gtest.h>

#include "protocol/erb_node.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErbNode;
using protocol::MsgType;
using testutil::erb_factory;
using testutil::small_config;

TEST(PeerEnclave, HandshakeGarbageRejected) {
  sim::Testbed bed(small_config(3, 1));
  bed.build(erb_factory(0, to_bytes("m")));
  EXPECT_FALSE(bed.enclave(1).accept_handshake(to_bytes("not a handshake")));
  EXPECT_FALSE(bed.enclave(1).accept_handshake({}));
}

TEST(PeerEnclave, SeqBlobFromWrongSenderRejected) {
  sim::Testbed bed(small_config(3, 2));
  bed.build(erb_factory(0, to_bytes("m")));
  // A genuine blob from 0→1 presented as coming from 2: the directional
  // channel AAD kills it.
  Bytes blob = bed.enclave(0).make_seq_blob(1);
  EXPECT_FALSE(bed.enclave(1).accept_seq_blob(2, blob));
}

TEST(PeerEnclave, ExpectedSeqTableAndBump) {
  sim::Testbed bed(small_config(3, 3));
  bed.build(erb_factory(0, to_bytes("m")));
  auto& e1 = bed.enclave(1);
  auto s0 = e1.expected_seq(0);
  ASSERT_TRUE(s0.has_value());
  EXPECT_FALSE(e1.expected_seq(99).has_value());
  EXPECT_EQ(*e1.expected_seq(1), e1.my_seq());
  std::uint64_t own = e1.my_seq();
  e1.bump_all_seqs();
  EXPECT_EQ(*e1.expected_seq(0), *s0 + 1);
  EXPECT_EQ(e1.my_seq(), own + 1);
}

TEST(PeerEnclave, SeqExchangeConsistentAcrossNodes) {
  const std::uint32_t n = 5;
  sim::Testbed bed(small_config(n, 4));
  bed.build(erb_factory(0, to_bytes("m")));
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      // b's view of a's sequence equals a's own.
      EXPECT_EQ(*bed.enclave(b).expected_seq(a), bed.enclave(a).my_seq());
    }
  }
}

TEST(PeerEnclave, CurrentRoundTracksTrustedTime) {
  auto cfg = small_config(3, 5);
  sim::Testbed bed(cfg);
  bed.build(erb_factory(0, to_bytes("m")));
  EXPECT_EQ(bed.enclave(0).current_round(), 0u);  // not started
  bed.start();
  bed.simulator().run_until(bed.start_time());
  EXPECT_EQ(bed.enclave(0).current_round(), 1u);
  SimDuration rt = bed.config().effective_round();
  bed.simulator().run_until(bed.start_time() + 3 * rt + rt / 2);
  EXPECT_EQ(bed.enclave(0).current_round(), 4u);
}

TEST(PeerEnclave, SendStatsBreakdown) {
  const std::uint32_t n = 5;
  sim::Testbed bed(small_config(n, 6));
  bed.build(erb_factory(0, to_bytes("payload")));
  bed.start();
  bed.run_rounds(4, testutil::all_honest_erb_decided(bed));
  // Initiator: n−1 INITs, n−1 ECHOs (it echoes? no — the initiator never
  // echoes; it sends INIT only) plus ACKs for the echoes it received.
  const auto& init_stats = bed.enclave(0).send_stats();
  EXPECT_EQ(init_stats.of(MsgType::kInit), n - 1);
  EXPECT_EQ(init_stats.of(MsgType::kEcho), 0u);
  EXPECT_EQ(init_stats.of(MsgType::kAck), n - 1);  // one per peer echo
  // A receiver: no INITs, one echo multicast, ACKs for INIT + other echoes.
  const auto& recv_stats = bed.enclave(1).send_stats();
  EXPECT_EQ(recv_stats.of(MsgType::kInit), 0u);
  EXPECT_EQ(recv_stats.of(MsgType::kEcho), n - 1);
  EXPECT_EQ(recv_stats.of(MsgType::kAck), n - 1);  // INIT + (n−2) echoes
  EXPECT_GT(recv_stats.bytes, 0u);
}

TEST(PeerEnclave, DoubleStartAborts) {
  sim::Testbed bed(small_config(3, 7));
  bed.build(erb_factory(0, to_bytes("m")));
  bed.start();
  EXPECT_DEATH(bed.enclave(0).start_protocol(123), "start_protocol");
}

TEST(PeerEnclave, WireMessageSizesMatchPaperRegime) {
  // The paper reports INIT ≈ 100 B and ACK ≈ 80 B; our sealed vals must sit
  // in the same regime (sanity for the traffic comparisons).
  const std::uint32_t n = 5;
  sim::Testbed bed(small_config(n, 8));
  bed.build(erb_factory(0, Bytes(32, 0xaa)));  // 32-byte payload, ERNG-like
  bed.start();
  bed.run_rounds(4, testutil::all_honest_erb_decided(bed));
  const auto& stats = bed.enclave(0).send_stats();
  std::uint64_t total_msgs = 0;
  for (auto t : {MsgType::kInit, MsgType::kEcho, MsgType::kAck}) {
    total_msgs += stats.of(t);
  }
  double avg = static_cast<double>(stats.bytes) / total_msgs;
  EXPECT_GT(avg, 60.0);
  EXPECT_LT(avg, 200.0);
}

}  // namespace
}  // namespace sgxp2p
