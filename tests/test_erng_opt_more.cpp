// Deeper optimized-ERNG coverage: the sampled-cluster traffic advantage,
// byzantine members inside the cluster, sampling-parameter behavior, and
// the PeerEnclave runtime surface both ERNG variants share.
#include <gtest/gtest.h>

#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErngBasicNode;
using protocol::ErngOptNode;
using testutil::all_honest_done;
using testutil::erng_basic_factory;
using testutil::erng_opt_factory;
using testutil::small_config;

TEST(ErngOptTraffic, SampledModeBeatsBasicByOrdersOfMagnitude) {
  const std::uint32_t n = 96;
  // Basic: O(N³) messages.
  auto basic_cfg = small_config(n, 31);
  basic_cfg.mode = protocol::ChannelMode::kAccounted;
  sim::Testbed basic(basic_cfg);
  basic.build(erng_basic_factory());
  basic.start();
  basic.run_rounds(basic.config().effective_t() + 4,
                   all_honest_done<ErngBasicNode>(basic));
  std::uint64_t basic_msgs = basic.network().meter().messages();

  // Optimized, sampled two-phase cluster.
  auto opt_cfg = small_config(n, 31);
  opt_cfg.t = n / 3;
  opt_cfg.mode = protocol::ChannelMode::kAccounted;
  protocol::ErngOptParams params;
  params.gamma = 8;
  sim::Testbed opt(opt_cfg);
  opt.build(erng_opt_factory(params));
  opt.start();
  opt.run_rounds(n, all_honest_done<ErngOptNode>(opt));
  std::uint64_t opt_msgs = opt.network().meter().messages();

  const auto& r = opt.enclave_as<ErngOptNode>(0).result();
  ASSERT_TRUE(r.done);
  EXPECT_FALSE(r.is_bottom);
  // The paper's Table 2 gap: ~N³ vs ~N·γ + γ^{5/2}.
  EXPECT_GT(basic_msgs, 30 * opt_msgs)
      << "basic=" << basic_msgs << " opt=" << opt_msgs;
  // And the opt traffic is within a generous O(N·γ) envelope.
  EXPECT_LT(opt_msgs, 40ull * n * params.gamma);
}

TEST(ErngOpt, ByzantineChainInsideClusterIsEliminated) {
  // Fallback cluster = first 2N/3 nodes; byzantine cluster members run a
  // chain that delays one ERB instance. Honest agreement must survive and
  // the chain members must churn out.
  const std::uint32_t n = 12;
  auto cfg = small_config(n, 77);
  cfg.t = 3;
  auto plan = std::make_shared<adversary::ChainPlan>();
  plan->order = {1, 2};
  plan->release = adversary::ChainPlan::Release::kNobody;

  sim::Testbed bed(cfg);
  bed.build(erng_opt_factory(),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id == 1 || id == 2) {
                return std::make_unique<adversary::ChainStrategy>(plan);
              }
              return nullptr;
            });
  bed.start();
  bed.run_rounds(40, all_honest_done<ErngOptNode>(bed));

  std::optional<Bytes> agreed;
  bool agreed_set = false;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErngOptNode>(id).result();
    ASSERT_TRUE(r.done) << "node " << id;
    if (r.is_bottom) continue;
    if (!agreed_set) {
      agreed = r.value;
      agreed_set = true;
    } else {
      EXPECT_EQ(r.value, agreed) << "node " << id;
    }
  }
  EXPECT_TRUE(agreed_set) << "some honest node must deliver a value";
}

TEST(ErngOpt, GammaControlsClusterExpectation) {
  // E[|cluster|] = 2γ under sampling; check the empirical mean over seeds
  // lands in a broad band for two different γ.
  const std::uint32_t n = 192;
  for (std::uint32_t gamma : {4u, 10u}) {
    double total = 0;
    const int kSeeds = 3;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto cfg = small_config(n, 1000 * gamma + seed);
      cfg.t = n / 3;
      cfg.mode = protocol::ChannelMode::kAccounted;
      protocol::ErngOptParams params;
      params.gamma = gamma;
      sim::Testbed bed(cfg);
      bed.build(erng_opt_factory(params));
      bed.start();
      bed.run_rounds(n, all_honest_done<ErngOptNode>(bed));
      total += static_cast<double>(
          bed.enclave_as<ErngOptNode>(0).result().cluster_size);
    }
    double mean = total / kSeeds;
    EXPECT_GT(mean, 1.0 * gamma) << "gamma " << gamma;
    EXPECT_LT(mean, 3.5 * gamma) << "gamma " << gamma;
  }
}

TEST(ErngOpt, OnePhaseProducesMoreInitiators) {
  const std::uint32_t n = 192;
  auto run = [&](bool one_phase) {
    auto cfg = small_config(n, 5);
    cfg.t = n / 3;
    cfg.mode = protocol::ChannelMode::kAccounted;
    protocol::ErngOptParams params;
    params.gamma = 10;
    params.one_phase = one_phase;
    sim::Testbed bed(cfg);
    bed.build(erng_opt_factory(params));
    bed.start();
    bed.run_rounds(n, all_honest_done<ErngOptNode>(bed));
    std::size_t initiators = 0;
    for (NodeId id = 0; id < n; ++id) {
      if (bed.enclave_as<ErngOptNode>(id).result().second_phase) ++initiators;
    }
    // Output must exist either way.
    EXPECT_FALSE(bed.enclave_as<ErngOptNode>(0).result().is_bottom);
    return initiators;
  };
  std::size_t two_phase = run(false);
  std::size_t one_phase = run(true);
  EXPECT_GT(one_phase, two_phase);
}

TEST(ErngOpt, SetSizeMatchesInitiatorDeliveries) {
  const std::uint32_t n = 12;
  auto cfg = small_config(n, 9);
  cfg.t = 3;
  sim::Testbed bed(cfg);
  bed.build(erng_opt_factory());
  bed.start();
  bed.run_rounds(40, all_honest_done<ErngOptNode>(bed));
  std::size_t initiators = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (bed.enclave_as<ErngOptNode>(id).result().second_phase) ++initiators;
  }
  const auto& r = bed.enclave_as<ErngOptNode>(0).result();
  ASSERT_TRUE(r.done);
  // Honest run: every initiated instance delivers.
  EXPECT_EQ(r.set_size, initiators);
}

}  // namespace
}  // namespace sgxp2p
