// Parameterized sweeps over substrate modules: WOTS/Merkle over message and
// tree-size grids, overlay families, TCP bus sizes, and sanitization
// configurations — breadth checks that the building blocks hold across
// their whole parameter ranges, not just the defaults.
#include <gtest/gtest.h>

#include <thread>

#include "apps/random_walk.hpp"
#include "common/rng.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wots.hpp"
#include "net/tcp_bus.hpp"
#include "protocol/sanitizer.hpp"

namespace sgxp2p {
namespace {

// ---------- WOTS across message shapes ----------

class WotsMessages : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WotsMessages, SignVerifyAcrossLengths) {
  const std::size_t len = GetParam();
  Bytes seed = crypto::Sha256::hash_bytes(to_bytes("sweep"));
  crypto::WotsKeyPair kp = crypto::wots_keygen(seed, len);
  Rng rng(len);
  Bytes msg(len);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes sig = crypto::wots_sign(kp, len, msg);
  EXPECT_TRUE(crypto::wots_verify(kp.public_key, len, msg, sig));
  if (len > 0) {
    Bytes other = msg;
    other[0] ^= 1;
    EXPECT_FALSE(crypto::wots_verify(kp.public_key, len, other, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, WotsMessages,
                         ::testing::Values(0u, 1u, 31u, 32u, 33u, 100u, 1000u));

// ---------- Merkle signer across heights ----------

class MerkleHeights : public ::testing::TestWithParam<unsigned> {};

TEST_P(MerkleHeights, FullCapacityUsable) {
  const unsigned height = GetParam();
  crypto::MerkleSigner signer(
      crypto::Sha256::hash_bytes(to_bytes("h" + std::to_string(height))),
      height);
  const std::size_t capacity = std::size_t{1} << height;
  EXPECT_EQ(signer.remaining(), capacity);
  // Sign at the first, a middle, and the last slot (signing everything at
  // height 6 would be slow; slots are independent).
  std::vector<Bytes> sigs;
  Bytes msg = to_bytes("capacity");
  for (std::size_t i = 0; i < capacity; ++i) {
    Bytes sig = signer.sign(msg);
    if (i == 0 || i == capacity / 2 || i == capacity - 1) {
      EXPECT_TRUE(crypto::merkle_verify(signer.public_key(), msg, sig))
          << "slot " << i;
    }
  }
  EXPECT_EQ(signer.remaining(), 0u);
  EXPECT_THROW(signer.sign(msg), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Heights, MerkleHeights, ::testing::Values(1u, 2u, 4u));

// ---------- overlay families ----------

using OverlayParam = std::tuple<std::uint32_t, std::uint32_t>;
class OverlayFamily : public ::testing::TestWithParam<OverlayParam> {};

TEST_P(OverlayFamily, ConnectedSymmetricLowDiameter) {
  const auto [n, chords] = GetParam();
  apps::Overlay overlay(n, chords);
  // Connected: BFS reaches everyone, within the ring+chords diameter bound
  // of ~N/2^chords ring segments plus chord descent.
  std::uint32_t ecc = overlay.eccentricity(0);
  EXPECT_GT(ecc, 0u);
  EXPECT_LE(ecc, n / (1u << chords) + chords + 2);
  // Degree bounded by 2(chords+1).
  for (NodeId id = 0; id < n; ++id) {
    EXPECT_LE(overlay.neighbors(id).size(), 2u * (chords + 1));
    EXPECT_GE(overlay.neighbors(id).size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OverlayFamily,
                         ::testing::Combine(::testing::Values(8u, 33u, 100u,
                                                              257u),
                                            ::testing::Values(2u, 5u)));

// ---------- TCP bus sizes ----------

class TcpBusSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TcpBusSizes, AllToAllDelivery) {
  const std::uint32_t n = GetParam();
  net::TcpBus bus(n);
  std::mutex mu;
  std::uint32_t received = 0;
  bus.set_receiver([&](NodeId, NodeId, Bytes) {
    std::lock_guard<std::mutex> lock(mu);
    ++received;
  });
  ASSERT_TRUE(bus.start());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b) bus.send(a, b, to_bytes("x"));
    }
  }
  const std::uint32_t expect = n * (n - 1);
  for (int i = 0; i < 300; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::lock_guard<std::mutex> lock(mu);
    if (received == expect) break;
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(received, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpBusSizes, ::testing::Values(2u, 4u, 9u));

// ---------- sanitization configurations ----------

using SanParam = std::tuple<double, std::uint32_t>;
class SanitizerSweep : public ::testing::TestWithParam<SanParam> {};

TEST_P(SanitizerSweep, HigherPressureSanitizesFaster) {
  const auto [p, t0] = GetParam();
  protocol::SanitizeConfig cfg;
  cfg.n = 4 * t0 + 2;
  cfg.t0 = t0;
  cfg.p = p;
  cfg.instances = 800;
  cfg.trials = 20;
  auto curves = protocol::simulate_sanitization(cfg);
  // Mean byzantine population decreases monotonically in expectation
  // (compare widely separated points to dodge Monte-Carlo noise).
  EXPECT_LT(curves.mean_byzantine[700], curves.mean_byzantine[50] + 1e-9);
  // And ends below its start.
  EXPECT_LT(curves.mean_byzantine.back(),
            static_cast<double>(t0) * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Configs, SanitizerSweep,
                         ::testing::Combine(::testing::Values(1.0 / 64,
                                                              1.0 / 16,
                                                              1.0 / 4),
                                            ::testing::Values(15u, 63u)));

}  // namespace
}  // namespace sgxp2p
