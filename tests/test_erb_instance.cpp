// ErbInstance state-machine unit tests: no network, events driven by hand.
// Pins the exact Algorithm 2 semantics — what is ACKed, when ECHO flushes,
// which round/sequence mismatches are dropped (P5/P6), the ACK-shortfall
// halt (P4), and the accept thresholds at their edges.
#include <gtest/gtest.h>

#include <numeric>

#include "crypto/sha256.hpp"
#include "protocol/erb_instance.hpp"

namespace sgxp2p::protocol {
namespace {

ErbConfig base_config(NodeId self, std::uint32_t n, std::uint32_t t,
                      bool initiator = false) {
  ErbConfig cfg;
  cfg.self = self;
  cfg.instance = InstanceId{0, 42};  // initiator node 0, epoch 42
  cfg.participants.resize(n);
  std::iota(cfg.participants.begin(), cfg.participants.end(), NodeId{0});
  cfg.t = t;
  cfg.start_round = 1;
  cfg.is_initiator = initiator;
  cfg.init_payload = to_bytes("m");
  return cfg;
}

Val init_val(std::uint32_t round, std::uint64_t seq = 42) {
  return Val{MsgType::kInit, 0, seq, round, to_bytes("m")};
}
Val echo_val(std::uint32_t round, std::uint64_t seq = 42,
             Bytes payload = to_bytes("m")) {
  return Val{MsgType::kEcho, 0, seq, round, std::move(payload)};
}

// --- initiator behavior ---

TEST(ErbInstance, InitiatorMulticastsInitAtRoundOne) {
  ErbInstance inst(base_config(0, 5, 2, true));
  auto sends = inst.on_round_begin(1);
  // One group-wide multicast val; the owner fans it out to everyone but self.
  ASSERT_EQ(sends.multicasts.size(), 1u);
  EXPECT_TRUE(sends.unicasts.empty());
  ASSERT_NE(sends.group, nullptr);
  EXPECT_EQ(sends.group->size(), 5u);
  const Val& v = sends.multicasts[0];
  EXPECT_EQ(v.type, MsgType::kInit);
  EXPECT_EQ(v.round, 1u);
  EXPECT_EQ(v.seq, 42u);
  EXPECT_EQ(v.payload, to_bytes("m"));
}

TEST(ErbInstance, InitiatorHaltsWithoutAcks) {
  ErbInstance inst(base_config(0, 5, 2, true));
  (void)inst.on_round_begin(1);
  // No ACKs arrive during round 1 → halt detected at round 2.
  (void)inst.on_round_begin(2);
  EXPECT_TRUE(inst.wants_halt());
  // A halted instance goes quiet.
  EXPECT_TRUE(inst.on_round_begin(3).empty());
  EXPECT_TRUE(inst.on_val(1, echo_val(3), 3).empty());
}

TEST(ErbInstance, InitiatorSurvivesWithExactlyTAcks) {
  ErbInstance inst(base_config(0, 5, 2, true));
  auto sends = inst.on_round_begin(1);
  Bytes expected_hash =
      crypto::Sha256::hash_bytes(serialize(sends.multicasts[0]));
  // Exactly t = 2 ACKs (the Algorithm 2 bar is Nack < t → halt).
  Val ack{MsgType::kAck, 0, 42, 1, expected_hash};
  (void)inst.on_val(1, ack, 1);
  (void)inst.on_val(2, ack, 1);
  (void)inst.on_round_begin(2);
  EXPECT_FALSE(inst.wants_halt());
}

TEST(ErbInstance, DuplicateAcksFromSamePeerCountOnce) {
  ErbInstance inst(base_config(0, 5, 2, true));
  auto sends = inst.on_round_begin(1);
  Bytes h = crypto::Sha256::hash_bytes(serialize(sends.multicasts[0]));
  Val ack{MsgType::kAck, 0, 42, 1, h};
  (void)inst.on_val(1, ack, 1);
  (void)inst.on_val(1, ack, 1);
  (void)inst.on_val(1, ack, 1);
  (void)inst.on_round_begin(2);
  EXPECT_TRUE(inst.wants_halt());  // one distinct acker < t = 2
}

TEST(ErbInstance, AckWithWrongHashIgnored) {
  ErbInstance inst(base_config(0, 5, 2, true));
  (void)inst.on_round_begin(1);
  Val bad_ack{MsgType::kAck, 0, 42, 1, Bytes(32, 0xee)};
  (void)inst.on_val(1, bad_ack, 1);
  (void)inst.on_val(2, bad_ack, 1);
  (void)inst.on_round_begin(2);
  EXPECT_TRUE(inst.wants_halt());
}

// --- receiver behavior ---

TEST(ErbInstance, ValidInitIsAckedAndEchoScheduled) {
  ErbInstance inst(base_config(3, 5, 2));
  auto sends = inst.on_val(0, init_val(1), 1);
  ASSERT_EQ(sends.unicasts.size(), 1u);  // the ACK back to the initiator
  EXPECT_TRUE(sends.multicasts.empty());
  EXPECT_EQ(sends.unicasts[0].to, 0u);
  EXPECT_EQ(sends.unicasts[0].val.type, MsgType::kAck);
  EXPECT_EQ(sends.unicasts[0].val.payload,
            crypto::Sha256::hash_bytes(serialize(init_val(1))));
  // ECHO flushes at the start of round 2, tagged round 2.
  auto round2 = inst.on_round_begin(2);
  ASSERT_EQ(round2.multicasts.size(), 1u);
  EXPECT_EQ(round2.multicasts[0].type, MsgType::kEcho);
  EXPECT_EQ(round2.multicasts[0].round, 2u);
}

TEST(ErbInstance, StaleRoundInitDropped) {
  // P5: message tagged round 1 arriving during round 2 is an omission.
  ErbInstance inst(base_config(3, 5, 2));
  (void)inst.on_round_begin(1);
  (void)inst.on_round_begin(2);
  auto sends = inst.on_val(0, init_val(1), 2);
  EXPECT_TRUE(sends.empty());  // not even an ACK
  EXPECT_TRUE(inst.on_round_begin(3).empty());  // no echo scheduled
}

TEST(ErbInstance, WrongSequenceDropped) {
  // P6: a replayed instance (stale seq) is ignored.
  ErbInstance inst(base_config(3, 5, 2));
  auto sends = inst.on_val(0, init_val(1, /*seq=*/41), 1);
  EXPECT_TRUE(sends.empty());
}

TEST(ErbInstance, InitFromNonInitiatorDropped) {
  ErbInstance inst(base_config(3, 5, 2));
  Val forged = init_val(1);
  auto sends = inst.on_val(2, forged, 1);  // sender 2 is not the initiator
  EXPECT_TRUE(sends.empty());
}

TEST(ErbInstance, NonParticipantSenderDropped) {
  ErbInstance inst(base_config(3, 5, 2));
  auto sends = inst.on_val(77, init_val(1), 1);
  EXPECT_TRUE(sends.empty());
}

TEST(ErbInstance, AcceptsAtExactlyNMinusTEchoSenders) {
  // N = 7, t = 3 → threshold N − t = 4 distinct members of S_echo.
  ErbInstance inst(base_config(6, 7, 3));
  (void)inst.on_val(0, init_val(1), 1);  // S = {0, 6}
  (void)inst.on_round_begin(2);
  (void)inst.on_val(1, echo_val(2), 2);  // S = {0, 1, 6}
  EXPECT_FALSE(inst.accepted());
  (void)inst.on_val(2, echo_val(2), 2);  // S = {0, 1, 2, 6} → 4 = N − t
  EXPECT_TRUE(inst.accepted());
  EXPECT_TRUE(inst.has_value());
  EXPECT_EQ(inst.value(), to_bytes("m"));
  EXPECT_EQ(inst.accept_round(), 2u);
}

TEST(ErbInstance, DuplicateEchoSendersNotDoubleCounted) {
  ErbInstance inst(base_config(6, 7, 3));
  (void)inst.on_round_begin(1);
  (void)inst.on_round_begin(2);
  (void)inst.on_val(1, echo_val(2), 2);
  (void)inst.on_val(1, echo_val(2), 2);
  (void)inst.on_val(1, echo_val(2), 2);
  EXPECT_EQ(inst.echo_count(), 2u);  // {1, self}
  EXPECT_FALSE(inst.accepted());
}

TEST(ErbInstance, EchoFirstWithoutInitStillWorks) {
  // A node whose INIT was omitted learns m from echoes alone.
  ErbInstance inst(base_config(4, 5, 2));
  (void)inst.on_round_begin(1);
  (void)inst.on_val(1, echo_val(2), 2);  // S = {1, 4}
  auto flush = inst.on_round_begin(3);   // echoes m itself
  ASSERT_FALSE(flush.empty());
  EXPECT_EQ(flush.multicasts[0].type, MsgType::kEcho);
  (void)inst.on_val(2, echo_val(3), 3);  // S = {1, 2, 4} = N − t
  EXPECT_TRUE(inst.accepted());
  EXPECT_EQ(inst.value(), to_bytes("m"));
}

TEST(ErbInstance, BottomAfterTimeout) {
  ErbInstance inst(base_config(3, 5, 2));
  for (std::uint32_t r = 1; r <= 5; ++r) (void)inst.on_round_begin(r);
  // max rounds = t + 2 = 4; at round 5 the instance decides ⊥.
  EXPECT_TRUE(inst.accepted());
  EXPECT_FALSE(inst.has_value());
  EXPECT_EQ(inst.accept_round(), 5u);
}

TEST(ErbInstance, MessagesAfterDeadlineIgnored) {
  ErbInstance inst(base_config(3, 5, 2));
  for (std::uint32_t r = 1; r <= 5; ++r) (void)inst.on_round_begin(r);
  auto sends = inst.on_val(0, init_val(5), 5);
  EXPECT_TRUE(sends.empty());
  EXPECT_FALSE(inst.has_value());
}

TEST(ErbInstance, StartRoundOffsetTranslation) {
  // Cluster instances (ERNG-opt) start at global round 2.
  auto cfg = base_config(3, 5, 2);
  cfg.start_round = 2;
  ErbInstance inst(cfg);
  // Global round 1 is before the instance exists.
  EXPECT_TRUE(inst.on_val(0, init_val(1), 1).empty());
  // Global round 2 = instance round 1: INIT is valid (tagged global 2).
  auto sends = inst.on_val(0, init_val(2), 2);
  EXPECT_EQ(sends.unicasts.size(), 1u);
}

TEST(ErbInstance, HaltDisabledKeepsGoing) {
  auto cfg = base_config(0, 5, 2, true);
  cfg.enable_halt = false;
  ErbInstance inst(cfg);
  (void)inst.on_round_begin(1);
  (void)inst.on_round_begin(2);  // zero ACKs, but halt disabled
  EXPECT_FALSE(inst.wants_halt());
}

TEST(ErbInstance, EquivocationImpossibleByConstruction) {
  // The enclave state machine stores m̄ once; later different payloads from
  // the same instance do not overwrite it (and honest echoes carry m̄).
  ErbInstance inst(base_config(3, 5, 2));
  (void)inst.on_val(0, init_val(1), 1);
  (void)inst.on_round_begin(2);
  (void)inst.on_val(1, echo_val(2, 42, to_bytes("OTHER")), 2);
  // Sender 1 still enters S_echo (the channel authenticated it), but the
  // stored message is unchanged.
  (void)inst.on_val(2, echo_val(2), 2);
  EXPECT_TRUE(inst.accepted());
  EXPECT_EQ(inst.value(), to_bytes("m"));
}

}  // namespace
}  // namespace sgxp2p::protocol
