// Perf-primitive correctness: the batched/SIMD ChaCha20 kernels against the
// RFC 8439 vectors and the scalar path, the SHA-256 backend dispatch, the
// cached-key AEAD against the raw-key path, the fixed-width replay window's
// edges, and the --jobs invariance of the parallel sweep runner.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "channel/handshake.hpp"
#include "channel/secure_link.hpp"
#include "common/serde.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "obs/metrics.hpp"
#include "sgx/enclave.hpp"

namespace sgxp2p {
namespace {

using namespace sgxp2p::crypto;

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// RAII around the force-scalar hooks so a failing assertion can't leak the
// override into other tests.
struct ForceScalar {
  ForceScalar() {
    chacha20_force_scalar() = true;
    sha256_force_scalar() = true;
  }
  ~ForceScalar() {
    chacha20_force_scalar() = false;
    sha256_force_scalar() = false;
  }
};

// ----- RFC 8439 vectors -----

TEST(ChaChaRfc, KeystreamTestVector1) {
  // RFC 8439 A.1 test vector #1: zero key, zero nonce, counter 0.
  Bytes key(kChaChaKeySize, 0), nonce(kChaChaNonceSize, 0);
  Bytes expected = from_hex(
      "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
      "da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586");
  ChaCha20 c(key, nonce, 0);
  EXPECT_EQ(c.keystream(64), expected);

  // The same vector must come out of the forced-scalar path.
  ForceScalar scalar;
  ChaCha20 c2(key, nonce, 0);
  EXPECT_EQ(c2.keystream(64), expected);
}

TEST(ChaChaRfc, SunscreenEncryption) {
  // RFC 8439 §2.4.2: key 00..1f, nonce 00 00 00 00 00 00 00 4a 00 00 00 00,
  // counter 1.
  Bytes key(kChaChaKeySize);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i);
  }
  Bytes nonce = from_hex("000000000000004a00000000");
  Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes expected = from_hex(
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d");
  EXPECT_EQ(chacha20_crypt(key, nonce, 1, plaintext), expected);
}

// ----- scalar vs batched/SIMD equivalence -----

TEST(ChaChaBackend, ScalarAndSimdKeystreamsIdentical) {
  Bytes key = Drbg(to_bytes("cc-key")).generate(kChaChaKeySize);
  Bytes nonce = Drbg(to_bytes("cc-nonce")).generate(kChaChaNonceSize);
  // Every length through four batches, then batch-boundary neighborhoods.
  std::vector<std::size_t> lengths;
  for (std::size_t len = 0; len <= 300; ++len) lengths.push_back(len);
  for (std::size_t len : {511u, 512u, 513u, 1023u, 1024u, 1025u, 2048u,
                          4095u, 4096u, 4097u}) {
    lengths.push_back(len);
  }
  for (std::size_t len : lengths) {
    Bytes fast, slow;
    {
      ChaCha20 c(key, nonce, 1);
      fast = c.keystream(len);
    }
    {
      ForceScalar scalar;
      ChaCha20 c(key, nonce, 1);
      slow = c.keystream(len);
    }
    ASSERT_EQ(fast, slow) << "keystream diverges at length " << len;
  }
}

TEST(ChaChaBackend, StaggeredCryptMatchesOneShot) {
  // Consuming the stream through ragged crypt() calls must equal one shot —
  // exercises the refill/remainder bookkeeping around the batch buffer.
  Bytes key = Drbg(to_bytes("stagger-key")).generate(kChaChaKeySize);
  Bytes nonce = Drbg(to_bytes("stagger-nonce")).generate(kChaChaNonceSize);
  Bytes data = Drbg(to_bytes("stagger-data")).generate(3000);

  Bytes oneshot = chacha20_crypt(key, nonce, 1, data);
  Bytes staggered = data;
  ChaCha20 c(key, nonce, 1);
  std::size_t off = 0;
  // 1, 2, 4, 8, … ragged chunk sizes, never aligned to the block size.
  for (std::size_t chunk = 1; off < staggered.size(); chunk = chunk * 2 + 3) {
    std::size_t take = std::min(chunk, staggered.size() - off);
    c.crypt(staggered.data() + off, take);
    off += take;
  }
  EXPECT_EQ(staggered, oneshot);
}

TEST(ChaChaBackend, CounterWrapMatchesScalar) {
  // A batch that straddles the 32-bit block-counter wrap must match the
  // scalar path (the RFC counter is mod 2^32).
  Bytes key = Drbg(to_bytes("wrap-key")).generate(kChaChaKeySize);
  Bytes nonce = Drbg(to_bytes("wrap-nonce")).generate(kChaChaNonceSize);
  Bytes fast, slow;
  {
    ChaCha20 c(key, nonce, 0xFFFFFFFEu);
    fast = c.keystream(64 * 12);
  }
  {
    ForceScalar scalar;
    ChaCha20 c(key, nonce, 0xFFFFFFFEu);
    slow = c.keystream(64 * 12);
  }
  EXPECT_EQ(fast, slow);
}

TEST(Sha256Backend, ScalarAndAcceleratedDigestsIdentical) {
  for (std::size_t len = 0; len <= 300; ++len) {
    Bytes data = Drbg(to_bytes("sha-" + std::to_string(len))).generate(len);
    Sha256Digest fast = Sha256::hash(data);
    ForceScalar scalar;
    Sha256Digest slow = Sha256::hash(data);
    ASSERT_EQ(fast, slow) << "sha256 diverges at length " << len;
  }
  // One multi-block bulk input.
  Bytes big = Drbg(to_bytes("sha-big")).generate(8192);
  Sha256Digest fast = Sha256::hash(big);
  ForceScalar scalar;
  EXPECT_EQ(fast, Sha256::hash(big));
}

TEST(AeadKeyCache, MatchesRawKeyPath) {
  Bytes key = Drbg(to_bytes("aead-key")).generate(kAeadKeySize);
  AeadKey cached{ByteView(key)};
  Bytes nonce = Drbg(to_bytes("aead-nonce")).generate(kAeadNonceSize);
  Bytes ad = to_bytes("associated data");
  for (std::size_t len : {0u, 1u, 99u, 100u, 1024u, 4096u}) {
    Bytes msg = Drbg(to_bytes("aead-" + std::to_string(len))).generate(len);
    Bytes sealed_cached = aead_seal(cached, nonce, ad, msg);
    Bytes sealed_raw = aead_seal(ByteView(key), nonce, ad, msg);
    ASSERT_EQ(sealed_cached, sealed_raw) << "seal diverges at length " << len;
    auto opened = aead_open(cached, ad, sealed_raw);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, msg);
  }
}

// ----- replay window edges -----

class NullHost final : public sgx::EnclaveHostIface {
 public:
  void transfer(NodeId, Bytes) override {}
};

class ProbeEnclave final : public sgx::Enclave {
 public:
  using Enclave::Enclave;
  void deliver(NodeId, ByteView) override {}
  sgx::Quote make_quote(ByteView data) const { return quote(data); }
};

struct Links {
  sim::Simulator simulator;
  sgx::SgxPlatform platform{simulator, to_bytes("perf-prims")};
  sgx::SimIAS ias{platform};
  NullHost host;
  sgx::Measurement m = sgx::measure({"perf", "1"});
  std::optional<channel::SecureLink> a, b;

  Links() {
    sgx::ProgramIdentity prog{"perf", "1"};
    ProbeEnclave e_a(platform, 1, prog, host);
    ProbeEnclave e_b(platform, 2, prog, host);
    crypto::Drbg d(to_bytes("links-dh"));
    Bytes priv_a = d.generate(32);
    Bytes priv_b = d.generate(32);
    auto hello_a = channel::make_handshake(
        10, e_a.make_quote(crypto::x25519_public(priv_a)));
    auto hello_b = channel::make_handshake(
        20, e_b.make_quote(crypto::x25519_public(priv_b)));
    auto keys_a = channel::complete_handshake(hello_b, 10, priv_a, m, ias);
    auto keys_b = channel::complete_handshake(hello_a, 20, priv_b, m, ias);
    a.emplace(10, 20, std::move(*keys_a), m);
    b.emplace(20, 10, std::move(*keys_b), m);
  }
};

TEST(ReplayWindow, FarFutureSequenceRejected) {
  Links l;
  // Run the sender kReplayWindow + 5 messages ahead of the receiver's base:
  // accepting the newest would push a hole out of the window.
  std::vector<Bytes> blobs;
  for (std::uint64_t i = 0; i < channel::kReplayWindow + 5; ++i) {
    blobs.push_back(l.a->seal(to_bytes("m" + std::to_string(i))));
  }
  EXPECT_FALSE(l.b->open(blobs.back()).has_value());
  EXPECT_EQ(l.b->window_overflow_count(), 1u);
  EXPECT_EQ(l.b->replay_count(), 0u);
  // Messages inside the window still open fine afterwards.
  EXPECT_TRUE(l.b->open(blobs[0]).has_value());
  EXPECT_TRUE(l.b->open(blobs[100]).has_value());
}

TEST(ReplayWindow, SlidesAcrossManyWindows) {
  Links l;
  // 2·kReplayWindow + 10 in-order messages: the base must keep sliding and
  // every message (and no replay) must be accepted.
  Bytes replayed_early;
  for (std::uint64_t i = 0; i < 2 * channel::kReplayWindow + 10; ++i) {
    Bytes blob = l.a->seal(to_bytes("w" + std::to_string(i)));
    if (i == 3) replayed_early = blob;
    ASSERT_TRUE(l.b->open(blob).has_value()) << "rejected at seq " << i;
  }
  EXPECT_EQ(l.b->opened_count(), 2 * channel::kReplayWindow + 10);
  // A sequence far below the slid base is a replay, not an overflow.
  EXPECT_FALSE(l.b->open(replayed_early).has_value());
  EXPECT_EQ(l.b->replay_count(), 1u);
  EXPECT_EQ(l.b->window_overflow_count(), 0u);
}

TEST(ReplayWindow, ReverseDeliveryWithinWindowAccepted) {
  Links l;
  std::vector<Bytes> blobs;
  for (int i = 0; i < 1000; ++i) {
    blobs.push_back(l.a->seal(to_bytes("r" + std::to_string(i))));
  }
  for (auto it = blobs.rbegin(); it != blobs.rend(); ++it) {
    ASSERT_TRUE(l.b->open(*it).has_value());
  }
  // Base has slid over the contiguous prefix; everything replays as stale.
  EXPECT_FALSE(l.b->open(blobs[0]).has_value());
  EXPECT_FALSE(l.b->open(blobs[999]).has_value());
  EXPECT_EQ(l.b->replay_count(), 2u);
}

TEST(ReplayWindow, SerializeRestoreKeepsContinuity) {
  Links l;
  std::vector<Bytes> blobs;
  for (int i = 0; i < 10; ++i) {
    blobs.push_back(l.a->seal(to_bytes("c" + std::to_string(i))));
  }
  // Open 0–4 (with 3 skipped → a hole), checkpoint, restore, continue.
  for (int i = 0; i < 5; ++i) {
    if (i == 3) continue;
    ASSERT_TRUE(l.b->open(blobs[i]).has_value());
  }
  Bytes saved = l.b->serialize();
  auto restored = channel::SecureLink::deserialize(saved, l.m);
  ASSERT_TRUE(restored.has_value());
  // The hole is still fresh; the already-opened ones are still replays.
  EXPECT_TRUE(restored->open(blobs[3]).has_value());
  EXPECT_FALSE(restored->open(blobs[2]).has_value());
  for (int i = 5; i < 10; ++i) {
    ASSERT_TRUE(restored->open(blobs[i]).has_value());
  }
  // The restored sender side resumes the sequence without nonce reuse.
  auto restored_a = channel::SecureLink::deserialize(l.a->serialize(), l.m);
  ASSERT_TRUE(restored_a.has_value());
  EXPECT_TRUE(restored->open(restored_a->seal(to_bytes("post"))).has_value());
}

TEST(ReplayWindow, V1CheckpointRejected) {
  Links l;
  // A v1-era checkpoint (sparse set window) predates the bitmap layout.
  BinaryWriter w;
  w.str("sgxp2p-link-v1");
  w.u32(10);
  w.u32(20);
  EXPECT_FALSE(
      channel::SecureLink::deserialize(w.take(), l.m).has_value());

  // Truncated v2 payloads are rejected too.
  Bytes good = l.a->serialize();
  good.resize(good.size() - 3);
  EXPECT_FALSE(channel::SecureLink::deserialize(good, l.m).has_value());
}

// ----- sweep runner: --jobs must not change results or metrics -----

TEST(SweepRunner, JobsInvariantResultsAndMetrics) {
  auto point = [](std::size_t i) {
    return bench::run_erb(6, 0, protocol::ChannelMode::kAccounted,
                          900 + static_cast<std::uint64_t>(i));
  };
  obs::MetricsRegistry reg_seq, reg_par;
  std::vector<bench::RunStats> seq, par;
  {
    obs::MetricsRegistry::ScopedCurrent bind(reg_seq);
    seq = bench::run_sweep<bench::RunStats>(5, 1, point);
  }
  {
    obs::MetricsRegistry::ScopedCurrent bind(reg_par);
    par = bench::run_sweep<bench::RunStats>(5, 4, point);
  }
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].rounds, par[i].rounds);
    EXPECT_EQ(seq[i].messages, par[i].messages);
    EXPECT_EQ(seq[i].bytes, par[i].bytes);
    EXPECT_DOUBLE_EQ(seq[i].termination_s, par[i].termination_s);
    EXPECT_EQ(seq[i].all_decided, par[i].all_decided);
  }
  // The merged parent registries must be byte-identical JSON.
  EXPECT_EQ(reg_seq.to_json(), reg_par.to_json());
}

TEST(SweepRunner, PointExceptionPropagates) {
  EXPECT_THROW(
      bench::run_sweep<int>(3, 2,
                            [](std::size_t i) -> int {
                              if (i == 1) throw std::runtime_error("boom");
                              return static_cast<int>(i);
                            }),
      std::runtime_error);
}

}  // namespace
}  // namespace sgxp2p
