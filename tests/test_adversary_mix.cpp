// Mixed and exotic adversary compositions: several strategies active in one
// execution, self-isolating nodes, maximal byzantine load at the t bound,
// and baseline-specific forgeries.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "protocol/rb_sig.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErbNode;
using protocol::ErngBasicNode;
using testutil::all_honest_done;
using testutil::all_honest_erb_decided;
using testutil::erb_factory;
using testutil::erng_basic_factory;
using testutil::small_config;

TEST(AdversaryMix, KitchenSinkAgainstErb) {
  // Simultaneously: a corrupting host, a replaying host, a delaying host,
  // and a crashed host — t = 4 of 9 slots, all hostile, honest initiator.
  const std::uint32_t n = 9;
  auto cfg = small_config(n, 999);
  sim::Testbed bed(cfg);
  SimDuration round = cfg.effective_round();
  Bytes msg = to_bytes("through the storm");
  bed.build(erb_factory(4, msg),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              switch (id) {
                case 0:
                  return std::make_unique<adversary::CorruptStrategy>(0.8, n);
                case 1:
                  return std::make_unique<adversary::ReplayStrategy>(round / 3);
                case 2:
                  return std::make_unique<adversary::DelayStrategy>(2 * round);
                case 3:
                  return std::make_unique<adversary::CrashStrategy>();
                default:
                  return nullptr;
              }
            });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    ASSERT_TRUE(r.value.has_value()) << "node " << id;
    EXPECT_EQ(*r.value, msg);
  }
}

// A host that starves only its own enclave: everything inbound is dropped,
// outbound flows normally (receive-omission in the general-omission model).
class InboundEclipseStrategy final : public adversary::Strategy {
 public:
  void on_receive(adversary::HostContext&, NodeId, Bytes) override {}
};

TEST(AdversaryMix, InboundEclipseOnlyHurtsItself) {
  const std::uint32_t n = 7;
  sim::Testbed bed(small_config(n, 333));
  Bytes msg = to_bytes("m");
  bed.build(erb_factory(0, msg),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id == 6) return std::make_unique<InboundEclipseStrategy>();
              return nullptr;
            });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));
  // Honest nodes all accept m; the eclipsed enclave never hears anything and
  // times out to ⊥ — its loss alone.
  for (NodeId id = 0; id < 6; ++id) {
    EXPECT_EQ(*bed.enclave_as<ErbNode>(id).result().value, msg);
  }
  const auto& eclipsed = bed.enclave_as<ErbNode>(6).result();
  EXPECT_TRUE(!eclipsed.decided || !eclipsed.value.has_value());
}

TEST(AdversaryMix, FullTByzantineLoadStillAgrees) {
  // Exactly t byzantine nodes (the model's maximum), all random-omitting,
  // honest initiator: validity must hold — the N−t honest echoes alone meet
  // the acceptance threshold.
  const std::uint32_t n = 11;  // t = 5
  sim::Testbed bed(small_config(n, 555));
  Bytes msg = to_bytes("exactly t");
  bed.build(erb_factory(0, msg),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id >= 6) {
                return std::make_unique<adversary::RandomOmissionStrategy>(
                    0.9, 0.9);
              }
              return nullptr;
            });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    ASSERT_TRUE(r.value.has_value()) << "node " << id;
    EXPECT_EQ(*r.value, msg);
  }
}

TEST(AdversaryMix, ErngSurvivesMixedAdversaries) {
  const std::uint32_t n = 9;
  auto cfg = small_config(n, 777);
  sim::Testbed bed(cfg);
  SimDuration round = cfg.effective_round();
  bed.build(erng_basic_factory(),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id == 6) {
                return std::make_unique<adversary::CorruptStrategy>(0.5, n);
              }
              if (id == 7) {
                return std::make_unique<adversary::DelayStrategy>(2 * round);
              }
              if (id == 8) return std::make_unique<adversary::CrashStrategy>();
              return nullptr;
            });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4,
                 all_honest_done<ErngBasicNode>(bed));
  const auto& r0 = bed.enclave_as<ErngBasicNode>(0).result();
  ASSERT_TRUE(r0.done);
  EXPECT_FALSE(r0.is_bottom);
  for (NodeId id : bed.honest_nodes()) {
    EXPECT_EQ(bed.enclave_as<ErngBasicNode>(id).result().value, r0.value);
  }
}

// --- RBsig-specific forgery: altering a relayed value breaks the chain ---

TEST(AdversaryMix, RbSigForgedRelayRejected) {
  using protocol::RbSigNode;
  const std::uint32_t n = 5, t = 2;

  // Build signers directly (no network needed): node 0 signs a chain for
  // value m; an attacker rewrites the value and re-presents the chain.
  Bytes seed0 = crypto::Sha256::hash_bytes(to_bytes("signer-0"));
  Bytes seed1 = crypto::Sha256::hash_bytes(to_bytes("signer-1"));
  sim::PlainBed bed(n, [] {
    sim::NetworkConfig cfg;
    cfg.base_delay = milliseconds(100);
    cfg.max_jitter = milliseconds(100);
    return cfg;
  }());
  bed.build([&](NodeId id) {
    Bytes seed =
        crypto::Sha256::hash_bytes(to_bytes("s" + std::to_string(id)));
    return std::make_unique<RbSigNode>(id, n, t, NodeId{0},
                                       id == 0 ? to_bytes("real") : Bytes{},
                                       seed);
  });
  std::vector<Bytes> pki;
  for (NodeId id = 0; id < n; ++id) {
    pki.push_back(bed.node_as<RbSigNode>(id).public_key());
  }
  for (NodeId id = 0; id < n; ++id) bed.node_as<RbSigNode>(id).set_pki(pki);
  bed.start();
  bed.run_rounds(t + 2);
  // Everyone accepted the genuine value; a forged variant never circulated
  // because no node can produce a valid signature over it.
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.node_as<RbSigNode>(id).result();
    ASSERT_TRUE(r.decided);
    ASSERT_TRUE(r.value.has_value());
    EXPECT_EQ(*r.value, to_bytes("real"));
  }
}

}  // namespace
}  // namespace sgxp2p
