// ERB protocol tests: the Definition 2.1 properties (validity, agreement,
// integrity, termination), the early-stopping bound min{f+2, t+2}, the
// halt-on-divergence sanitization, and the O(N²) traffic envelope — under
// honest and byzantine conditions.
#include <gtest/gtest.h>

#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErbNode;
using testutil::all_honest_erb_decided;
using testutil::erb_factory;
using testutil::small_config;

Bytes msg() { return to_bytes("the broadcast message"); }

// --- Honest network ---

TEST(Erb, HonestValidityAllAcceptInTwoRounds) {
  sim::Testbed bed(small_config(7));
  bed.build(erb_factory(0, msg()));
  bed.start();
  bed.run_rounds(10, all_honest_erb_decided(bed));
  for (NodeId id = 0; id < 7; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    ASSERT_TRUE(r.value.has_value()) << "node " << id;
    EXPECT_EQ(*r.value, msg()) << "node " << id;
    EXPECT_LE(r.round, 2u) << "node " << id;
  }
}

TEST(Erb, HonestNonInitiatorViewsAgree) {
  sim::Testbed bed(small_config(5, 99));
  bed.build(erb_factory(2, msg()));
  bed.start();
  bed.run_rounds(10, all_honest_erb_decided(bed));
  for (NodeId id = 0; id < 5; ++id) {
    EXPECT_EQ(*bed.enclave_as<ErbNode>(id).result().value, msg());
  }
}

class ErbHonestSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ErbHonestSweep, AllSizesTerminateWithAgreement) {
  const std::uint32_t n = GetParam();
  sim::Testbed bed(small_config(n, 7 * n));
  bed.build(erb_factory(0, msg()));
  bed.start();
  std::uint32_t rounds =
      bed.run_rounds(bed.config().effective_t() + 3, all_honest_erb_decided(bed));
  EXPECT_LE(rounds, 2u + 1);  // accept within 2 rounds + stop-check granularity
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    EXPECT_EQ(*r.value, msg());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ErbHonestSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 16u, 33u));

// --- Byzantine: crash initiator → all honest accept ⊥ at t+2 ---

TEST(Erb, CrashedInitiatorYieldsBottomAtTimeout) {
  auto cfg = small_config(7);
  sim::Testbed bed(cfg);
  bed.build(erb_factory(0, msg()), [](NodeId id) {
    return id == 0
               ? std::make_unique<adversary::CrashStrategy>()
               : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  const std::uint32_t t = bed.config().effective_t();
  bed.run_rounds(t + 4, all_honest_erb_decided(bed));
  for (NodeId id = 1; id < 7; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    EXPECT_FALSE(r.value.has_value()) << "node " << id;  // ⊥
    EXPECT_EQ(r.round, t + 3) << "node " << id;  // detected when rnd > t+2
  }
}

// --- Byzantine: identity-selective omission cannot split decisions ---

TEST(Erb, SelectiveOmissionStillAgrees) {
  // Byzantine initiator sends INIT to only a minority subset; agreement must
  // still hold: either everyone accepts m or everyone accepts ⊥.
  const std::uint32_t n = 9;
  auto cfg = small_config(n, 1234);
  sim::Testbed bed(cfg);
  std::set<NodeId> victims = {4, 5, 6, 7, 8};  // never receive from node 0
  bed.build(erb_factory(0, msg()), [&](NodeId id) {
    return id == 0 ? std::make_unique<adversary::SelectiveOmissionStrategy>(
                         victims)
                   : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));

  std::optional<Bytes> first;
  bool first_set = false;
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    if (!first_set) {
      first = r.value;
      first_set = true;
    } else {
      EXPECT_EQ(r.value, first) << "node " << id;
    }
  }
  // The omitting initiator reached only 4 of 8 peers; with t = 4 it collects
  // ACKs from the 4 it contacted, which meets the ≥ t bar only if 4 ≥ t —
  // here 4 ≥ 4, so it survives, and the echoes propagate m to everyone.
  EXPECT_TRUE(first.has_value());
  EXPECT_EQ(*first, msg());
}

TEST(Erb, OmitterBelowAckThresholdHaltsItself) {
  // Initiator reaches only 2 of 8 peers (< t = 4 ACKs) → P4 halts it.
  const std::uint32_t n = 9;
  sim::Testbed bed(small_config(n, 77));
  std::set<NodeId> victims = {3, 4, 5, 6, 7, 8};
  bed.build(erb_factory(0, msg()), [&](NodeId id) {
    return id == 0 ? std::make_unique<adversary::SelectiveOmissionStrategy>(
                         victims)
                   : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));

  EXPECT_TRUE(bed.enclave(0).halted());
  EXPECT_FALSE(bed.network().attached(0));  // churned out of P
  // Agreement among honest nodes still holds (all m, via echoes from the two
  // contacted nodes).
  std::optional<Bytes> first = bed.enclave_as<ErbNode>(1).result().value;
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    EXPECT_EQ(r.value, first);
  }
}

// --- Byzantine: chain-delay worst case (Section 6.3) ---

TEST(Erb, ChainDelayTerminatesAtFPlusTwoAndEliminatesChain) {
  const std::uint32_t n = 13;  // t = 6
  const std::uint32_t f = 4;
  auto plan = std::make_shared<adversary::ChainPlan>();
  for (NodeId id = 0; id < f; ++id) plan->order.push_back(id);
  plan->release = adversary::ChainPlan::Release::kSingleHonest;
  plan->honest_target = f;  // first honest node

  sim::Testbed bed(small_config(n, 4242));
  bed.build(erb_factory(0, msg()), [&](NodeId id) {
    return id < f ? std::make_unique<adversary::ChainStrategy>(plan)
                  : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));

  std::uint32_t max_round = 0;
  for (NodeId id = f; id < n; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided) << "node " << id;
    ASSERT_TRUE(r.value.has_value()) << "node " << id;
    EXPECT_EQ(*r.value, msg());
    max_round = std::max(max_round, r.round);
  }
  // Early stopping: the chain delays for f rounds, decisions land by f + 2.
  EXPECT_EQ(max_round, f + 2);
  // Sanitization: every chain member halted and left the network.
  for (NodeId id = 0; id < f; ++id) {
    EXPECT_TRUE(bed.enclave(id).halted()) << "byz " << id;
    EXPECT_FALSE(bed.network().attached(id)) << "byz " << id;
  }
}

TEST(Erb, ChainWithNoReleaseYieldsBottomEverywhere) {
  const std::uint32_t n = 9;
  const std::uint32_t f = 3;
  auto plan = std::make_shared<adversary::ChainPlan>();
  for (NodeId id = 0; id < f; ++id) plan->order.push_back(id);
  plan->release = adversary::ChainPlan::Release::kNobody;

  sim::Testbed bed(small_config(n, 5));
  bed.build(erb_factory(0, msg()), [&](NodeId id) {
    return id < f ? std::make_unique<adversary::ChainStrategy>(plan)
                  : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  const std::uint32_t t = bed.config().effective_t();
  bed.run_rounds(t + 4, all_honest_erb_decided(bed));
  for (NodeId id = f; id < n; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    EXPECT_FALSE(r.value.has_value()) << "node " << id;
  }
}

// --- Attacks on the channel: forgery, replay, delay ---

TEST(Erb, CorruptingHostsAreAbsorbed) {
  // Byzantine hosts flip bits and inject junk; the MAC rejects all of it, so
  // the protocol sees omissions at worst — validity must still hold since
  // the initiator is honest.
  const std::uint32_t n = 9;
  sim::Testbed bed(small_config(n, 31337));
  bed.build(erb_factory(4, msg()), [&](NodeId id) {
    return (id == 1 || id == 2)
               ? std::make_unique<adversary::CorruptStrategy>(0.5, n)
               : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    ASSERT_TRUE(r.value.has_value());
    EXPECT_EQ(*r.value, msg());
  }
}

TEST(Erb, ReplayingHostsAreRejected) {
  const std::uint32_t n = 7;
  sim::Testbed bed(small_config(n, 8));
  bed.build(erb_factory(0, msg()), [&](NodeId id) {
    return (id == 5 || id == 6)
               ? std::make_unique<adversary::ReplayStrategy>(milliseconds(50))
               : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, all_honest_erb_decided(bed));
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    EXPECT_EQ(*r.value, msg());
  }
}

TEST(Erb, DelayedInitiatorIsExcludedByLockstep) {
  // The initiator's host delays everything by two full rounds: every INIT
  // arrives with a stale round tag and is dropped (P5) — honest nodes decide
  // ⊥, and no honest node is tricked into accepting late data.
  const std::uint32_t n = 7;
  auto cfg = small_config(n, 21);
  sim::Testbed bed(cfg);
  SimDuration two_rounds = 2 * bed.config().effective_round();
  bed.build(erb_factory(0, msg()), [&](NodeId id) {
    return id == 0 ? std::make_unique<adversary::DelayStrategy>(two_rounds)
                   : std::unique_ptr<adversary::Strategy>{};
  });
  bed.start();
  const std::uint32_t t = bed.config().effective_t();
  bed.run_rounds(t + 4, all_honest_erb_decided(bed));
  for (NodeId id = 1; id < n; ++id) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    EXPECT_FALSE(r.value.has_value()) << "node " << id;
  }
}

// --- Traffic envelope ---

TEST(Erb, HonestTrafficIsQuadratic) {
  // Messages ≈ (N−1) INIT + (N−1)·(N−1) ECHO + one ACK per delivery ⇒
  // strictly under 3·N² for every N; and the N=16→32 ratio is ≈4×.
  std::uint64_t msgs16 = 0, msgs32 = 0;
  for (std::uint32_t n : {16u, 32u}) {
    sim::Testbed bed(small_config(n, n));
    bed.build(erb_factory(0, msg()));
    bed.start();
    bed.run_rounds(6, all_honest_erb_decided(bed));
    std::uint64_t m = bed.network().meter().messages();
    EXPECT_LT(m, 3ull * n * n);
    (n == 16 ? msgs16 : msgs32) = m;
  }
  double ratio = static_cast<double>(msgs32) / static_cast<double>(msgs16);
  EXPECT_NEAR(ratio, 4.0, 0.8);
}

// --- Integrity: accepted exactly once, value immutable after decision ---

TEST(Erb, DecisionIsStable) {
  sim::Testbed bed(small_config(5, 3));
  bed.build(erb_factory(0, msg()));
  bed.start();
  bed.run_rounds(3);
  Bytes v1 = *bed.enclave_as<ErbNode>(2).result().value;
  std::uint32_t r1 = bed.enclave_as<ErbNode>(2).result().round;
  bed.run_rounds(3);  // extra rounds change nothing
  EXPECT_EQ(*bed.enclave_as<ErbNode>(2).result().value, v1);
  EXPECT_EQ(bed.enclave_as<ErbNode>(2).result().round, r1);
}

}  // namespace
}  // namespace sgxp2p
