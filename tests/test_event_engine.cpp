// Event-engine equivalence suite: the timer-wheel engine must be
// observationally identical to the reference heap engine — not merely
// "same decisions", but byte-identical JSONL traces and metric snapshots
// for the same seed, across every protocol stack (ERB, both ERNG variants,
// and the crash-recovery scenario). This is the contract that lets
// bench_scale attribute its speedup entirely to the engine: if any event
// fired in a different order the traces would diverge at that line.
//
// Also here: the BufferPool poisoning test (recycled capacity must never
// leak a previous message's bytes, and results must not depend on pool
// warmth) and the Network::detach FIFO-purge regression test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/pool.hpp"
#include "obs/trace.hpp"
#include "recovery/coordinator.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::ErbNode;
using protocol::ErngBasicNode;
using protocol::ErngOptNode;
using testutil::all_honest_done;
using testutil::all_honest_erb_decided;
using testutil::small_config;

// Everything observable about one protocol run.
struct Artifacts {
  std::string trace;    // full JSONL event trace
  std::string metrics;  // registry snapshot JSON
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

// Runs `body` under a fresh registry and a recording tracer, then captures
// the run's trace + metrics. The pool is cleared first so both engines (and
// both runs of a pair) start from identical pool state; `clear_pool=false`
// deliberately leaves the previous run's warm pool in place for the
// warmth-independence test.
template <typename Body>
Artifacts capture(Body body, bool clear_pool = true) {
  if (clear_pool) obs::BufferPool::local().clear();
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  auto& tr = obs::TraceRecorder::global();
  tr.enable();
  tr.reset();
  Artifacts a = body();
  EXPECT_EQ(tr.dropped(), 0u) << "trace ring overflowed; grow the capacity";
  a.trace = tr.to_jsonl();
  tr.disable();
  a.metrics = reg.to_json();
  return a;
}

Artifacts finish(sim::Testbed& bed, std::uint32_t rounds) {
  Artifacts a;
  a.rounds = rounds;
  a.messages = bed.network().meter().messages();
  a.bytes = bed.network().meter().bytes();
  return a;
}

Artifacts run_erb(sim::SimEngine engine, bool clear_pool = true) {
  return capture(
      [engine]() {
        auto cfg = small_config(25, 7);
        cfg.engine = engine;
        sim::Testbed bed(cfg);
        bed.build(testutil::erb_factory(0, to_bytes("engine-equivalence")));
        bed.start();
        std::uint32_t rounds = bed.run_rounds(cfg.effective_t() + 4,
                                              all_honest_erb_decided(bed));
        for (NodeId id : bed.honest_nodes()) {
          EXPECT_TRUE(bed.enclave_as<ErbNode>(id).result().decided);
        }
        return finish(bed, rounds);
      },
      clear_pool);
}

Artifacts run_erng_basic(sim::SimEngine engine) {
  return capture([engine]() {
    auto cfg = small_config(9, 11);
    cfg.engine = engine;
    sim::Testbed bed(cfg);
    bed.build(testutil::erng_basic_factory());
    bed.start();
    std::uint32_t rounds = bed.run_rounds(cfg.effective_t() + 4,
                                          all_honest_done<ErngBasicNode>(bed));
    for (NodeId id : bed.honest_nodes()) {
      EXPECT_TRUE(bed.enclave_as<ErngBasicNode>(id).result().done);
    }
    return finish(bed, rounds);
  });
}

Artifacts run_erng_opt(sim::SimEngine engine) {
  return capture([engine]() {
    auto cfg = small_config(12, 13);
    cfg.t = 3;
    cfg.engine = engine;
    sim::Testbed bed(cfg);
    bed.build(testutil::erng_opt_factory());
    bed.start();
    std::uint32_t rounds =
        bed.run_rounds(cfg.n, all_honest_done<ErngOptNode>(bed));
    for (NodeId id : bed.honest_nodes()) {
      EXPECT_TRUE(bed.enclave_as<ErngOptNode>(id).result().done);
    }
    return finish(bed, rounds);
  });
}

// Compact copy of the recovery scenario from test_recovery.cpp: node 1 of a
// 4-member roster crashes, restores from its newest sealed checkpoint, and
// rejoins; one extra node joins fresh afterwards.
Artifacts run_recovery(sim::SimEngine engine) {
  return capture([engine]() {
    const std::uint32_t n = 4;
    const NodeId victim = 1;
    const NodeId extra = n;
    auto cfg = small_config(n + 1, 3);
    cfg.t = (n - 1) / 2;
    cfg.mode = protocol::ChannelMode::kAttested;
    cfg.engine = engine;
    const std::uint32_t W = cfg.t + 2;
    const std::uint32_t recover_at = 6 + 4;
    const std::size_t w_rejoin = (recover_at - 1 + W - 1) / W;

    std::vector<NodeId> roster0;
    for (NodeId id = 0; id < n; ++id) roster0.push_back(id);
    std::vector<protocol::JoinPlanEntry> plan(w_rejoin + 3);
    plan[w_rejoin] = {victim, NodeId{0}, true};
    plan[w_rejoin + 1] = {victim, NodeId{2}, true};
    plan[w_rejoin + 2] = {extra, NodeId{0}, false};

    sim::Testbed bed(cfg);
    sim::Testbed::EnclaveFactory factory =
        [roster0, plan](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                        protocol::PeerConfig pc, const sgx::SimIAS& ias)
        -> std::unique_ptr<protocol::PeerEnclave> {
      return std::make_unique<recovery::RecoverableNode>(platform, id, host,
                                                         pc, ias, roster0,
                                                         plan);
    };
    bed.build(factory);

    recovery::RecoveryPlan rp;
    rp.victim = victim;
    rp.crash_round = 6;
    rp.recover_round = recover_at;
    rp.checkpoint_interval = 2;
    recovery::RecoveryCoordinator coord(bed, factory, rp);
    coord.install();

    bed.start();
    std::uint32_t rounds =
        bed.run_rounds(static_cast<std::uint32_t>((w_rejoin + 4) * W));
    EXPECT_TRUE(coord.rejoin_complete());
    return finish(bed, rounds);
  });
}

void expect_identical(const Artifacts& wheel, const Artifacts& heap) {
  EXPECT_EQ(wheel.rounds, heap.rounds);
  EXPECT_EQ(wheel.messages, heap.messages);
  EXPECT_EQ(wheel.bytes, heap.bytes);
  EXPECT_EQ(wheel.trace, heap.trace);
  EXPECT_EQ(wheel.metrics, heap.metrics);
}

// ---------------------------------------------------------------------------
// Engine equivalence: byte-identical traces and metric snapshots.

TEST(EventEngineEquivalence, ErbByteIdentical) {
  expect_identical(run_erb(sim::SimEngine::kWheel),
                   run_erb(sim::SimEngine::kHeap));
}

TEST(EventEngineEquivalence, ErngBasicByteIdentical) {
  expect_identical(run_erng_basic(sim::SimEngine::kWheel),
                   run_erng_basic(sim::SimEngine::kHeap));
}

TEST(EventEngineEquivalence, ErngOptByteIdentical) {
  expect_identical(run_erng_opt(sim::SimEngine::kWheel),
                   run_erng_opt(sim::SimEngine::kHeap));
}

TEST(EventEngineEquivalence, RecoveryScenarioByteIdentical) {
  expect_identical(run_recovery(sim::SimEngine::kWheel),
                   run_recovery(sim::SimEngine::kHeap));
}

// Same engine, same seed, run twice → identical too (the determinism
// baseline the cross-engine comparisons rest on).
TEST(EventEngineEquivalence, WheelSelfDeterministic) {
  expect_identical(run_erb(sim::SimEngine::kWheel),
                   run_erb(sim::SimEngine::kWheel));
}

// ---------------------------------------------------------------------------
// BufferPool poisoning: recycled capacity never leaks previous contents,
// and protocol output is independent of pool warmth.

TEST(BufferPoolPoison, RecycledBuffersAreZeroFilled) {
  auto& pool = obs::BufferPool::local();
  pool.clear();
  ASSERT_TRUE(pool.recycling());

  Bytes secret = pool.acquire(64);
  std::fill(secret.begin(), secret.end(), std::uint8_t{0xAB});
  pool.release(std::move(secret));
  ASSERT_EQ(pool.free_buffers(), 1u);

  // Same-size reuse: contents must equal a fresh Bytes(64).
  Bytes reused = pool.acquire(64);
  EXPECT_EQ(reused, Bytes(64));

  // Shrinking reuse: the poisoned tail beyond size() must not resurface
  // through a later grow-in-place.
  std::fill(reused.begin(), reused.end(), std::uint8_t{0xCD});
  pool.release(std::move(reused));
  Bytes small = pool.acquire(16);
  EXPECT_EQ(small, Bytes(16));
  small.resize(64);
  EXPECT_EQ(small, Bytes(64));
}

TEST(BufferPoolPoison, AcquireEmptyIsEmptyWithCapacity) {
  auto& pool = obs::BufferPool::local();
  pool.clear();
  Bytes dirty = pool.acquire(128);
  std::fill(dirty.begin(), dirty.end(), std::uint8_t{0xEE});
  pool.release(std::move(dirty));
  Bytes empty = pool.acquire_empty(100);
  EXPECT_TRUE(empty.empty());
  EXPECT_GE(empty.capacity(), 100u);
}

TEST(BufferPoolPoison, OutputsIndependentOfPoolWarmth) {
  Artifacts cold = run_erb(sim::SimEngine::kWheel);
  // Second run reuses whatever the first left in the thread's pool.
  ASSERT_GT(obs::BufferPool::local().free_buffers(), 0u);
  Artifacts warm = run_erb(sim::SimEngine::kWheel, /*clear_pool=*/false);
  expect_identical(cold, warm);
}

// ---------------------------------------------------------------------------
// Network::detach must purge per-pair FIFO state (regression: long churn
// episodes grew the FIFO map without bound).

TEST(NetworkDetach, PurgesFifoStateBothDirections) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Simulator simulator(reg);
  sim::Network net(simulator, sim::NetworkConfig{}, reg);
  for (NodeId id = 0; id < 3; ++id) {
    net.attach(id, [](NodeId, Bytes) {});
  }
  for (NodeId from = 0; from < 3; ++from) {
    for (NodeId to = 0; to < 3; ++to) {
      if (from != to) net.send(from, to, to_bytes("x"));
    }
  }
  simulator.run();
  EXPECT_EQ(net.fifo_entries(), 6u);  // all ordered pairs

  net.detach(1);
  EXPECT_FALSE(net.attached(1));
  EXPECT_EQ(net.fifo_entries(), 2u);  // only 0→2 and 2→0 survive

  net.detach(0);
  net.detach(2);
  EXPECT_EQ(net.fifo_entries(), 0u);
}

TEST(NetworkDetach, PurgesSparseIdFallback) {
  // Ids ≥ the dense-table bound (2²⁰) exercise the map fallback for both
  // the sink table and the FIFO state.
  const NodeId far_id = (1u << 20) + 7;
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Simulator simulator(reg);
  sim::Network net(simulator, sim::NetworkConfig{}, reg);
  net.attach(0, [](NodeId, Bytes) {});
  net.attach(far_id, [](NodeId, Bytes) {});
  EXPECT_TRUE(net.attached(far_id));
  net.send(0, far_id, to_bytes("out"));
  net.send(far_id, 0, to_bytes("back"));
  simulator.run();
  EXPECT_EQ(net.fifo_entries(), 2u);

  net.detach(far_id);
  EXPECT_FALSE(net.attached(far_id));
  EXPECT_EQ(net.fifo_entries(), 0u);
}

// ---------------------------------------------------------------------------
// FIFO state must grow with the pairs that actually talk, never O(n²)
// (regression: the pre-shard dense matrix allocated n·4096 slots up front,
// which at n = 100k would be 4 × 10¹¹ entries).

TEST(NetworkCapacity, FifoSlotsTrackTalkingPairsNotN2) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Simulator simulator(reg);
  sim::Network net(simulator, sim::NetworkConfig{}, reg);
  // 50k attached nodes, but each of 200 senders talks to only 8 scattered
  // destinations — shard-like sparsity. Slots must stay ≈ #pairs.
  const NodeId n = 50000;
  const std::uint32_t senders = 200;
  const std::uint32_t fanout = 8;
  std::set<NodeId> attached;
  auto ensure = [&](NodeId id) {
    if (attached.insert(id).second) net.attach(id, [](NodeId, Bytes) {});
  };
  std::size_t pairs = 0;
  for (std::uint32_t s = 0; s < senders; ++s) {
    const NodeId from = (s * 9973u) % n;
    ensure(from);
    for (std::uint32_t k = 0; k < fanout; ++k) {
      const NodeId to = (from + 1 + k * 6131u) % n;
      if (to == from) continue;
      ensure(to);
      net.send(from, to, to_bytes("sparse"));
      ++pairs;
    }
  }
  simulator.run();
  net.publish_capacity_gauges();
  EXPECT_EQ(net.fifo_entries(), pairs);
  // Proportional to pairs (each sparse slot is exact; no row reached the
  // dense-promotion threshold), nowhere near n² or even n.
  EXPECT_LE(net.fifo_pair_slots(), pairs);
  EXPECT_LT(net.fifo_pair_slots(), static_cast<std::size_t>(n));
  // Sink slots track the highest attached small id, not n².
  EXPECT_LE(net.sink_slots(), static_cast<std::size_t>(n));
  EXPECT_EQ(reg.gauge("net.fifo_pair_slots").value(),
            static_cast<std::int64_t>(net.fifo_pair_slots()));
  EXPECT_EQ(reg.gauge("net.sink_slots").value(),
            static_cast<std::int64_t>(net.sink_slots()));
}

TEST(NetworkCapacity, HotRowPromotesToDenseWithoutLosingOrder) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Simulator simulator(reg);
  sim::Network net(simulator, sim::NetworkConfig{}, reg);
  // One clique-style sender fanning out to 64 small ids crosses the
  // promotion threshold (48); the row flips to a dense prefix column and
  // per-pair sequencing must survive the migration mid-stream.
  const std::uint32_t fanout = 64;
  std::vector<int> got(fanout, 0);
  net.attach(1000, [](NodeId, Bytes) {});
  for (NodeId to = 0; to < fanout; ++to) {
    got[to] = 0;
    net.attach(to, [&got, to](NodeId, Bytes) { ++got[to]; });
  }
  for (int round = 0; round < 3; ++round) {
    for (NodeId to = 0; to < fanout; ++to) {
      net.send(1000, to, to_bytes("hot"));
    }
  }
  simulator.run();
  for (NodeId to = 0; to < fanout; ++to) EXPECT_EQ(got[to], 3);
  EXPECT_EQ(net.fifo_entries(), static_cast<std::size_t>(fanout));
  // Promoted row costs ≤ max-small-id slots — bounded, and detach of the
  // sender releases the whole row.
  EXPECT_LE(net.fifo_pair_slots(), static_cast<std::size_t>(fanout) + 4096);
  net.detach(1000);
  EXPECT_EQ(net.fifo_entries(), 0u);
}

TEST(NetworkDetach, QueuedDeliveryToDetachedNodeIsDropped) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry::ScopedCurrent bind(reg);
  sim::Simulator simulator(reg);
  sim::Network net(simulator, sim::NetworkConfig{}, reg);
  int received = 0;
  net.attach(0, [](NodeId, Bytes) {});
  net.attach(1, [&received](NodeId, Bytes) { ++received; });
  net.send(0, 1, to_bytes("in-flight"));
  net.detach(1);  // before the delivery fires
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(reg.counter("net.dropped").value(), 1u);
}

// ---------------------------------------------------------------------------
// Scale smoke (slow label): one ERB broadcast at n=500 on the default
// engine — large enough that the pre-wheel engine visibly dragged, small
// enough for CI.

TEST(EventEngineScale, Erb500Decides) {
  auto cfg = small_config(500, 99);
  cfg.mode = protocol::ChannelMode::kAccounted;
  sim::Testbed bed(cfg);
  bed.build(testutil::erb_factory(0, to_bytes("scale-smoke")));
  bed.start();
  bed.run_rounds(12, all_honest_erb_decided(bed));
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<ErbNode>(id).result();
    ASSERT_TRUE(r.decided);
    EXPECT_TRUE(r.value.has_value());
  }
  EXPECT_GT(bed.registry().counter("sim.deliveries").value(), 250000u);
}

}  // namespace
}  // namespace sgxp2p
