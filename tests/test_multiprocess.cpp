// Multi-process integration: spawns N sgxp2p-node processes (real fork/exec,
// real TCP between them, wire-level attested setup, wall-clock rounds) and
// checks that every process decided the same value.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef SGXP2P_NODE_BIN
#define SGXP2P_NODE_BIN "../tools/sgxp2p-node"
#endif

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

// Launches `n` node processes and returns their --out file contents.
std::vector<std::string> run_deployment(int n, int base_port,
                                        const std::string& protocol,
                                        const std::string& payload) {
  std::vector<pid_t> pids;
  std::vector<std::string> out_files;
  for (int i = 0; i < n; ++i) {
    std::string out = "/tmp/sgxp2p-node-" + std::to_string(getpid()) + "-" +
                      std::to_string(base_port) + "-" + std::to_string(i);
    out_files.push_back(out);
    pid_t pid = fork();
    if (pid == 0) {
      std::string id = std::to_string(i);
      std::string ns = std::to_string(n);
      std::string port = std::to_string(base_port);
      // Quiet the children.
      (void)!freopen("/dev/null", "w", stdout);
      execl(SGXP2P_NODE_BIN, SGXP2P_NODE_BIN, "--id", id.c_str(), "--n",
            ns.c_str(), "--base-port", port.c_str(), "--round-ms", "150",
            "--protocol", protocol.c_str(), "--payload", payload.c_str(),
            "--out", out.c_str(), static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    pids.push_back(pid);
  }
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  std::vector<std::string> results;
  for (const auto& path : out_files) {
    results.push_back(read_file(path));
    std::remove(path.c_str());
  }
  return results;
}

int pick_port(int salt) { return 46000 + (getpid() * 7 + salt) % 2000; }

TEST(MultiProcess, ErbFiveProcessesAgree) {
  auto results = run_deployment(5, pick_port(0), "erb", "cross-process m");
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(results[i].find("decided=1"), std::string::npos) << results[i];
    EXPECT_NE(results[i].find("value=cross-process m"), std::string::npos)
        << results[i];
  }
}

TEST(MultiProcess, ErngFourProcessesShareRandomness) {
  auto results = run_deployment(4, pick_port(500), "erng", "");
  ASSERT_EQ(results.size(), 4u);
  // Extract the value= token; all must match and be 64 hex chars.
  auto value_of = [](const std::string& line) {
    auto pos = line.find("value=");
    auto end = line.find(' ', pos);
    return line.substr(pos + 6, end - pos - 6);
  };
  std::string v0 = value_of(results[0]);
  EXPECT_EQ(v0.size(), 64u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(results[i].find("decided=1"), std::string::npos) << results[i];
    EXPECT_EQ(value_of(results[i]), v0) << results[i];
  }
}

}  // namespace
