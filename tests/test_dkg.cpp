// Verifiable DKG tests: dealing, share verification, linear combination of
// dealer contributions, threshold reconstruction of the never-materialized
// group secret, and byzantine-dealer detection.
#include <gtest/gtest.h>

#include "apps/dkg.hpp"
#include "apps/group_key.hpp"

namespace sgxp2p::apps {
namespace {

using crypto::Drbg;
using crypto::Share;

TEST(Dkg, DealVerifyAllShares) {
  Drbg drbg(to_bytes("dkg-deal"));
  DealerPackage pkg = dkg_deal(/*n=*/7, /*k=*/4, /*secret_len=*/32, drbg);
  ASSERT_EQ(pkg.shares.size(), 7u);
  for (const auto& dealt : pkg.shares) {
    EXPECT_TRUE(dkg_verify_share(pkg.commitment, dealt, 7))
        << "x=" << int(dealt.share.x);
  }
}

TEST(Dkg, TamperedShareFailsCommitment) {
  Drbg drbg(to_bytes("dkg-tamper"));
  DealerPackage pkg = dkg_deal(5, 3, 16, drbg);
  DealtShare bad = pkg.shares[2];
  bad.share.y[0] ^= 1;  // byzantine dealer hands node 2 a bogus share
  EXPECT_FALSE(dkg_verify_share(pkg.commitment, bad, 5));
  // Claiming someone else's slot also fails.
  DealtShare moved = pkg.shares[2];
  moved.share.x = 4;
  EXPECT_FALSE(dkg_verify_share(pkg.commitment, moved, 5));
}

TEST(Dkg, EndToEndGroupSecret) {
  // 6 participants, every one a dealer, threshold 3. No party ever holds
  // the group secret during dealing; any 3 combined shares rebuild it.
  const std::uint8_t n = 6, k = 3;
  Drbg drbg(to_bytes("dkg-e2e"));

  std::vector<DealerPackage> dealers;
  for (int d = 0; d < n; ++d) dealers.push_back(dkg_deal(n, k, 32, drbg));

  // Each participant verifies and combines the shares dealt to it.
  std::vector<Share> combined(n);
  for (std::uint8_t i = 0; i < n; ++i) {
    std::vector<Share> mine;
    for (const auto& pkg : dealers) {
      ASSERT_TRUE(dkg_verify_share(pkg.commitment, pkg.shares[i], n));
      mine.push_back(pkg.shares[i].share);
    }
    auto c = dkg_combine_shares(mine);
    ASSERT_TRUE(c.has_value());
    combined[i] = *c;
  }

  // Any k participants reconstruct the same group secret.
  auto s1 = dkg_reconstruct({combined[0], combined[2], combined[5]}, k);
  auto s2 = dkg_reconstruct({combined[1], combined[3], combined[4]}, k);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(s1->size(), 32u);

  // k−1 shares do not suffice structurally.
  EXPECT_FALSE(dkg_reconstruct({combined[0], combined[1]}, k).has_value());

  // The group secret keys real cryptography end to end.
  Bytes key = derive_group_key(*s1, to_bytes("dkg-session"));
  Bytes sealed = group_seal(key, 0, to_bytes("threshold-protected"));
  auto opened = group_open(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("threshold-protected"));
}

TEST(Dkg, GroupSecretIsXorOfDealerSecrets) {
  // Structural check of the linearity argument: reconstructing the combined
  // shares equals XOR of reconstructing each dealer's shares individually.
  const std::uint8_t n = 4, k = 2;
  Drbg drbg(to_bytes("dkg-linear"));
  std::vector<DealerPackage> dealers;
  for (int d = 0; d < 3; ++d) dealers.push_back(dkg_deal(n, k, 8, drbg));

  Bytes xor_of_secrets(8, 0);
  for (const auto& pkg : dealers) {
    std::vector<Share> all;
    for (const auto& dealt : pkg.shares) all.push_back(dealt.share);
    auto secret = dkg_reconstruct(all, k);
    ASSERT_TRUE(secret.has_value());
    xor_into(xor_of_secrets, *secret);
  }

  std::vector<Share> combined;
  for (std::uint8_t i = 0; i < n; ++i) {
    std::vector<Share> mine;
    for (const auto& pkg : dealers) mine.push_back(pkg.shares[i].share);
    combined.push_back(*dkg_combine_shares(mine));
  }
  auto group = dkg_reconstruct(combined, k);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(*group, xor_of_secrets);
}

TEST(Dkg, CombineRejectsMismatchedPoints) {
  Drbg drbg(to_bytes("dkg-mismatch"));
  auto p1 = dkg_deal(4, 2, 8, drbg);
  auto p2 = dkg_deal(4, 2, 8, drbg);
  // Node 0 accidentally mixes in a share dealt to node 1.
  std::vector<Share> wrong = {p1.shares[0].share, p2.shares[1].share};
  EXPECT_FALSE(dkg_combine_shares(wrong).has_value());
}

}  // namespace
}  // namespace sgxp2p::apps
