// Extension tests: Enclaved Byzantine Agreement (EBA) on top of ERB, and
// sequenced multi-execution ERB with P6 epoch advancement.
#include <gtest/gtest.h>

#include "adversary/strategies.hpp"
#include "net/testbed.hpp"
#include "protocol/eba.hpp"
#include "protocol/erb_sequence.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::EbaNode;
using protocol::ErbSequenceNode;
using testutil::small_config;

sim::Testbed::EnclaveFactory eba_factory(
    const std::function<Bytes(NodeId)>& input_of) {
  return [input_of](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
                    protocol::PeerConfig cfg, const sgx::SimIAS& ias)
             -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<EbaNode>(platform, id, host, cfg, ias,
                                     input_of(id));
  };
}

void run_to_done(sim::Testbed& bed) {
  bed.start();
  bed.run_rounds(bed.config().effective_t() + 4, [&]() {
    for (NodeId id : bed.honest_nodes()) {
      if (!bed.enclave_as<EbaNode>(id).result().done) return false;
    }
    return true;
  });
}

TEST(Eba, ValidityWithUnanimousInputs) {
  const std::uint32_t n = 7;
  sim::Testbed bed(small_config(n, 1));
  bed.build(eba_factory([](NodeId) { return to_bytes("commit"); }));
  run_to_done(bed);
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.enclave_as<EbaNode>(id).result();
    ASSERT_TRUE(r.done);
    ASSERT_TRUE(r.decision.has_value());
    EXPECT_EQ(*r.decision, to_bytes("commit"));
    EXPECT_EQ(r.support, n);
  }
}

TEST(Eba, AgreementWithSplitInputs) {
  const std::uint32_t n = 9;
  sim::Testbed bed(small_config(n, 2));
  bed.build(eba_factory(
      [](NodeId id) { return to_bytes(id < 4 ? "abort" : "commit"); }));
  run_to_done(bed);
  const auto& r0 = bed.enclave_as<EbaNode>(0).result();
  ASSERT_TRUE(r0.done);
  ASSERT_TRUE(r0.decision.has_value());
  EXPECT_EQ(*r0.decision, to_bytes("commit"));  // 5 > 4
  for (NodeId id = 1; id < n; ++id) {
    EXPECT_EQ(bed.enclave_as<EbaNode>(id).result().decision, r0.decision);
  }
}

TEST(Eba, AgreementUnderByzantineOmission) {
  const std::uint32_t n = 9;
  sim::Testbed bed(small_config(n, 3));
  bed.build(
      eba_factory([](NodeId id) { return to_bytes(id % 2 ? "x" : "y"); }),
      [](NodeId id) -> std::unique_ptr<adversary::Strategy> {
        if (id >= 6) {
          return std::make_unique<adversary::RandomOmissionStrategy>(0.6, 0.3);
        }
        return nullptr;
      });
  run_to_done(bed);
  std::optional<Bytes> first;
  bool first_set = false;
  for (NodeId id : bed.honest_nodes()) {
    const auto& r = bed.enclave_as<EbaNode>(id).result();
    ASSERT_TRUE(r.done) << "node " << id;
    if (!first_set) {
      first = r.decision;
      first_set = true;
    } else {
      EXPECT_EQ(r.decision, first) << "node " << id;
    }
  }
}

TEST(Eba, TieBreaksDeterministically) {
  const std::uint32_t n = 8;  // t = 3; inputs split 4/4
  auto cfg = small_config(n, 4);
  sim::Testbed bed(cfg);
  bed.build(eba_factory(
      [](NodeId id) { return to_bytes(id < 4 ? "bbb" : "aaa"); }));
  run_to_done(bed);
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = bed.enclave_as<EbaNode>(id).result();
    ASSERT_TRUE(r.decision.has_value());
    EXPECT_EQ(*r.decision, to_bytes("aaa"));  // lexicographic tie-break
  }
}

// --- sequenced executions ---

sim::Testbed::EnclaveFactory seq_factory(NodeId initiator,
                                         std::vector<Bytes> payloads) {
  return [initiator, payloads](NodeId id, sgx::SgxPlatform& platform,
                               net::Host& host, protocol::PeerConfig cfg,
                               const sgx::SimIAS& ias)
             -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<ErbSequenceNode>(platform, id, host, cfg, ias,
                                             initiator, payloads);
  };
}

TEST(ErbSequence, ConsecutiveExecutionsDeliverInOrder) {
  const std::uint32_t n = 5;
  std::vector<Bytes> payloads = {to_bytes("first"), to_bytes("second"),
                                 to_bytes("third")};
  sim::Testbed bed(small_config(n, 6));
  bed.build(seq_factory(0, payloads));
  bed.start();
  std::uint32_t window = bed.config().effective_t() + 2;
  bed.run_rounds(window * 3 + 2, [&]() {
    for (NodeId id = 0; id < n; ++id) {
      if (!bed.enclave_as<ErbSequenceNode>(id).all_done()) return false;
    }
    return true;
  });
  for (NodeId id = 0; id < n; ++id) {
    const auto& results = bed.enclave_as<ErbSequenceNode>(id).results();
    ASSERT_EQ(results.size(), 3u) << "node " << id;
    for (std::size_t e = 0; e < 3; ++e) {
      ASSERT_TRUE(results[e].decided) << "node " << id << " exec " << e;
      ASSERT_TRUE(results[e].value.has_value()) << "node " << id;
      EXPECT_EQ(*results[e].value, payloads[e]);
      EXPECT_LE(results[e].round, 2u);  // honest: each execution in 2 rounds
    }
  }
}

TEST(ErbSequence, CrossExecutionReplayRejected) {
  // A byzantine host records every ciphertext of execution 0 and replays it
  // during execution 1 (delayed by one full window). Both the channel's
  // wire window and the advanced instance sequence kill the replays; every
  // execution still delivers its own payload.
  const std::uint32_t n = 5;
  std::vector<Bytes> payloads = {to_bytes("e0"), to_bytes("e1")};
  auto cfg = small_config(n, 8);
  sim::Testbed bed(cfg);
  SimDuration window_ms =
      static_cast<SimDuration>(cfg.effective_t() + 2) * cfg.effective_round();
  bed.build(seq_factory(0, payloads),
            [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id == 4) {
                return std::make_unique<adversary::ReplayStrategy>(window_ms);
              }
              return nullptr;
            });
  bed.start();
  std::uint32_t window = bed.config().effective_t() + 2;
  bed.run_rounds(window * 2 + 2);
  for (NodeId id : bed.honest_nodes()) {
    const auto& results = bed.enclave_as<ErbSequenceNode>(id).results();
    ASSERT_EQ(results.size(), 2u) << "node " << id;
    EXPECT_EQ(*results[0].value, to_bytes("e0"));
    EXPECT_EQ(*results[1].value, to_bytes("e1"));
  }
}

TEST(ErbSequence, CrashedInitiatorGivesBottomThenNothingBreaks) {
  const std::uint32_t n = 5;
  std::vector<Bytes> payloads = {to_bytes("a"), to_bytes("b")};
  sim::Testbed bed(small_config(n, 10));
  bed.build(seq_factory(0, payloads),
            [](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id == 0) return std::make_unique<adversary::CrashStrategy>();
              return nullptr;
            });
  bed.start();
  std::uint32_t window = bed.config().effective_t() + 2;
  bed.run_rounds(window * 2 + 2);
  for (NodeId id = 1; id < n; ++id) {
    const auto& results = bed.enclave_as<ErbSequenceNode>(id).results();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].value.has_value());  // ⊥ both times
    EXPECT_FALSE(results[1].value.has_value());
  }
}

}  // namespace
}  // namespace sgxp2p
