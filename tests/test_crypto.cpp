// Crypto substrate tests: published vectors plus algebraic properties.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wots.hpp"
#include "crypto/x25519.hpp"

namespace sgxp2p::crypto {
namespace {

Bytes from_hex(const char* hex) {
  auto out = hex_decode(hex);
  EXPECT_TRUE(out.has_value());
  return out.value_or(Bytes{});
}

std::string digest_hex(const Sha256Digest& d) {
  return hex_encode(ByteView(d.data(), d.size()));
}

// --- SHA-256 (FIPS 180-4 examples) ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  Bytes msg = to_bytes("abc");
  EXPECT_EQ(digest_hex(Sha256::hash(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  Bytes msg = to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(digest_hex(Sha256::hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t len = rng.next_below(500);
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    Sha256 h;
    std::size_t pos = 0;
    while (pos < msg.size()) {
      std::size_t take = std::min<std::size_t>(
          msg.size() - pos, 1 + rng.next_below(64));
      h.update(ByteView(msg.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.finalize(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding edges: 55, 56, 63, 64, 65 bytes.
  for (std::size_t len : {0u, 1u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    Bytes msg(len, 0x5a);
    Sha256 h;
    h.update(msg);
    EXPECT_EQ(h.finalize(), Sha256::hash(msg)) << "len=" << len;
  }
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes data = to_bytes("Hi There");
  EXPECT_EQ(digest_hex(HmacSha256::mac(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  Bytes key = to_bytes("Jefe");
  Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(digest_hex(HmacSha256::mac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes data = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(digest_hex(HmacSha256::mac(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  Bytes data = to_bytes("message");
  auto t1 = HmacSha256::mac(to_bytes("key1"), data);
  auto t2 = HmacSha256::mac(to_bytes("key2"), data);
  EXPECT_NE(t1, t2);
}

// --- HKDF (RFC 5869 test case 1) ---

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = from_hex("000102030405060708090a0b0c");
  Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandLengths) {
  Bytes prk = Sha256::hash_bytes(to_bytes("prk"));
  for (std::size_t len : {1u, 31u, 32u, 33u, 64u, 100u}) {
    Bytes okm = hkdf_expand(prk, to_bytes("info"), len);
    EXPECT_EQ(okm.size(), len);
  }
  // Prefix property: shorter outputs are prefixes of longer ones.
  Bytes a = hkdf_expand(prk, to_bytes("info"), 16);
  Bytes b = hkdf_expand(prk, to_bytes("info"), 48);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

// --- ChaCha20 (RFC 8439) ---

TEST(ChaCha20, Rfc8439BlockFunction) {
  // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, counter 1.
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  Bytes nonce = from_hex("000000090000004a00000000");
  ChaCha20 c(key, nonce, 1);
  Bytes ks = c.keystream(64);
  EXPECT_EQ(hex_encode(ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Section242) {
  // RFC 8439 §2.4.2: key 00..1f, nonce 000000000000004a00000000, counter 1,
  // plaintext "Ladies and Gentlemen..."
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = from_hex("000000000000004a00000000");
  Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes ct = chacha20_crypt(key, nonce, 1, plaintext);
  EXPECT_EQ(hex_encode(ByteView(ct.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  // Decrypt round-trips.
  Bytes pt = chacha20_crypt(key, nonce, 1, ct);
  EXPECT_EQ(pt, plaintext);
}

TEST(ChaCha20, RoundTripRandom) {
  Rng rng(13);
  Bytes key(32), nonce(12);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next_u64());
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    Bytes ct = chacha20_crypt(key, nonce, 1, msg);
    EXPECT_EQ(chacha20_crypt(key, nonce, 1, ct), msg);
    if (len > 0) {
      EXPECT_NE(ct, msg);
    }
  }
}

TEST(ChaCha20, IncrementalMatchesOneShot) {
  Bytes key(32, 0x42), nonce(12, 0x24);
  Bytes msg(300, 0xab);
  Bytes expected = chacha20_crypt(key, nonce, 0, msg);
  ChaCha20 c(key, nonce, 0);
  Bytes out = msg;
  c.crypt(out.data(), 100);
  c.crypt(out.data() + 100, 1);
  c.crypt(out.data() + 101, 199);
  EXPECT_EQ(out, expected);
}

// --- DRBG ---

TEST(Drbg, Deterministic) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  EXPECT_EQ(a.generate(100), b.generate(100));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Drbg, SeedSeparation) {
  Drbg a(to_bytes("seed-a"));
  Drbg b(to_bytes("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  (void)a.generate(10);
  (void)b.generate(10);
  b.reseed(to_bytes("fresh"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, NextBelowIsInRangeAndCoversRange) {
  Drbg d(to_bytes("range"));
  bool seen[10] = {};
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = d.next_below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Drbg, BitBalance) {
  // Crude sanity check of unbiasedness: ones frequency within 1% of half.
  Drbg d(to_bytes("balance"));
  Bytes data = d.generate(1 << 16);
  std::size_t ones = 0;
  for (std::uint8_t b : data) ones += static_cast<std::size_t>(__builtin_popcount(b));
  double frac = static_cast<double>(ones) / (data.size() * 8);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

// --- AEAD ---

TEST(Aead, SealOpenRoundTrip) {
  Bytes key(kAeadKeySize, 0x11);
  Bytes nonce(kAeadNonceSize, 0x22);
  Bytes ad = to_bytes("header");
  Bytes msg = to_bytes("attack at dawn");
  Bytes sealed = aead_seal(key, nonce, ad, msg);
  EXPECT_EQ(sealed.size(), msg.size() + kAeadOverhead);
  auto opened = aead_open(key, ad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(Aead, TamperingDetected) {
  Bytes key(kAeadKeySize, 0x11);
  Bytes nonce(kAeadNonceSize, 0x22);
  Bytes msg = to_bytes("attack at dawn");
  Bytes sealed = aead_seal(key, nonce, {}, msg);
  // Flip every byte position in turn; all must fail to open.
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(aead_open(key, {}, bad).has_value()) << "byte " << i;
  }
}

TEST(Aead, WrongAssociatedDataFails) {
  Bytes key(kAeadKeySize, 0x11);
  Bytes nonce(kAeadNonceSize, 0x22);
  Bytes sealed = aead_seal(key, nonce, to_bytes("ad1"), to_bytes("m"));
  EXPECT_FALSE(aead_open(key, to_bytes("ad2"), sealed).has_value());
  EXPECT_TRUE(aead_open(key, to_bytes("ad1"), sealed).has_value());
}

TEST(Aead, WrongKeyFails) {
  Bytes key1(kAeadKeySize, 0x11), key2(kAeadKeySize, 0x12);
  Bytes nonce(kAeadNonceSize, 0);
  Bytes sealed = aead_seal(key1, nonce, {}, to_bytes("m"));
  EXPECT_FALSE(aead_open(key2, {}, sealed).has_value());
}

TEST(Aead, TruncationFails) {
  Bytes key(kAeadKeySize, 0x11);
  Bytes nonce(kAeadNonceSize, 0);
  Bytes sealed = aead_seal(key, nonce, {}, to_bytes("hello"));
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    Bytes prefix(sealed.begin(), sealed.begin() + static_cast<long>(len));
    EXPECT_FALSE(aead_open(key, {}, prefix).has_value()) << "len " << len;
  }
}

TEST(Aead, EmptyPlaintext) {
  Bytes key(kAeadKeySize, 0x31);
  Bytes nonce(kAeadNonceSize, 0x01);
  Bytes sealed = aead_seal(key, nonce, {}, {});
  auto opened = aead_open(key, {}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

// --- X25519 (RFC 7748) ---

TEST(X25519, Rfc7748Vector1) {
  Bytes scalar = from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  Bytes point = from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  X25519Key k, u;
  std::copy(scalar.begin(), scalar.end(), k.begin());
  std::copy(point.begin(), point.end(), u.begin());
  X25519Key out = x25519(k, u);
  EXPECT_EQ(hex_encode(ByteView(out.data(), out.size())),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748DiffieHellman) {
  Bytes alice_priv = from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  Bytes bob_priv = from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  Bytes alice_pub = x25519_public(alice_priv);
  Bytes bob_pub = x25519_public(bob_priv);
  EXPECT_EQ(hex_encode(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex_encode(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  Bytes s1 = x25519_shared(alice_priv, bob_pub);
  Bytes s2 = x25519_shared(bob_priv, alice_pub);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(hex_encode(s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, RandomKeyAgreement) {
  // Structural check: DH agreement holds for random keys, which fails for
  // essentially any bug in the field arithmetic or ladder.
  Drbg d(to_bytes("x25519-agreement"));
  for (int trial = 0; trial < 8; ++trial) {
    Bytes a = d.generate(32), b = d.generate(32);
    Bytes shared_ab = x25519_shared(a, x25519_public(b));
    Bytes shared_ba = x25519_shared(b, x25519_public(a));
    EXPECT_EQ(shared_ab, shared_ba) << "trial " << trial;
  }
}

// --- WOTS ---

TEST(Wots, SignVerify) {
  Bytes seed = Sha256::hash_bytes(to_bytes("wots-seed"));
  WotsKeyPair kp = wots_keygen(seed, 0);
  Bytes msg = to_bytes("broadcast payload");
  Bytes sig = wots_sign(kp, 0, msg);
  EXPECT_EQ(sig.size(), kWotsSigSize);
  EXPECT_TRUE(wots_verify(kp.public_key, 0, msg, sig));
}

TEST(Wots, WrongMessageRejected) {
  Bytes seed = Sha256::hash_bytes(to_bytes("wots-seed"));
  WotsKeyPair kp = wots_keygen(seed, 3);
  Bytes sig = wots_sign(kp, 3, to_bytes("m1"));
  EXPECT_FALSE(wots_verify(kp.public_key, 3, to_bytes("m2"), sig));
}

TEST(Wots, WrongAddressRejected) {
  Bytes seed = Sha256::hash_bytes(to_bytes("wots-seed"));
  WotsKeyPair kp = wots_keygen(seed, 5);
  Bytes msg = to_bytes("m");
  Bytes sig = wots_sign(kp, 5, msg);
  EXPECT_FALSE(wots_verify(kp.public_key, 6, msg, sig));
}

TEST(Wots, CorruptedSignatureRejected) {
  Bytes seed = Sha256::hash_bytes(to_bytes("wots-seed"));
  WotsKeyPair kp = wots_keygen(seed, 0);
  Bytes msg = to_bytes("m");
  Bytes sig = wots_sign(kp, 0, msg);
  Rng rng(3);
  for (int trial = 0; trial < 16; ++trial) {
    Bytes bad = sig;
    bad[rng.next_below(bad.size())] ^= 0xff;
    EXPECT_FALSE(wots_verify(kp.public_key, 0, msg, bad));
  }
}

// --- Merkle tree ---

TEST(Merkle, ProofsVerifyForAllLeaves) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::vector<Bytes> leaves;
    for (std::size_t i = 0; i < n; ++i) {
      leaves.push_back(to_bytes("leaf-" + std::to_string(i)));
    }
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      auto proof = tree.proof(i);
      EXPECT_TRUE(
          MerkleTree::verify(tree.root(), leaves[i], i, n, proof))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, WrongLeafOrIndexRejected) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(to_bytes("L" + std::to_string(i)));
  MerkleTree tree(leaves);
  auto proof = tree.proof(2);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), to_bytes("evil"), 2, 8, proof));
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[2], 3, 8, proof));
}

TEST(Merkle, SignerSignVerify) {
  Bytes seed = Sha256::hash_bytes(to_bytes("merkle-signer"));
  MerkleSigner signer(seed, 4);
  EXPECT_EQ(signer.remaining(), 16u);
  Bytes msg = to_bytes("hello");
  Bytes sig = signer.sign(msg);
  EXPECT_EQ(sig.size(), merkle_sig_size(4));
  EXPECT_TRUE(merkle_verify(signer.public_key(), msg, sig));
  EXPECT_FALSE(merkle_verify(signer.public_key(), to_bytes("other"), sig));
  EXPECT_EQ(signer.remaining(), 15u);
}

TEST(Merkle, SignerManyMessagesDistinctLeaves) {
  Bytes seed = Sha256::hash_bytes(to_bytes("merkle-many"));
  MerkleSigner signer(seed, 4);
  for (int i = 0; i < 16; ++i) {
    Bytes msg = to_bytes("msg-" + std::to_string(i));
    Bytes sig = signer.sign(msg);
    EXPECT_TRUE(merkle_verify(signer.public_key(), msg, sig)) << i;
  }
  EXPECT_THROW(signer.sign(to_bytes("overflow")), std::runtime_error);
}

TEST(Merkle, CrossSignerRejected) {
  MerkleSigner s1(Sha256::hash_bytes(to_bytes("s1")), 3);
  MerkleSigner s2(Sha256::hash_bytes(to_bytes("s2")), 3);
  Bytes msg = to_bytes("m");
  Bytes sig = s1.sign(msg);
  EXPECT_FALSE(merkle_verify(s2.public_key(), msg, sig));
}

// --- constant-time compare ---

TEST(Ct, Equal) {
  EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(ct_equal({}, {}));
}

}  // namespace
}  // namespace sgxp2p::crypto

// --- AES (FIPS 197 / SP 800-38A) ---

namespace sgxp2p::crypto {
namespace {

TEST(Aes, Fips197Aes128Block) {
  Bytes key = *hex_decode("000102030405060708090a0b0c0d0e0f");
  Bytes pt = *hex_decode("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_encode(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes256Block) {
  Bytes key = *hex_decode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes pt = *hex_decode("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_encode(ByteView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, Sp80038aCtrAes128FirstBlock) {
  // SP 800-38A F.5.1: counter block f0f1...ff = nonce f0..fb ++ ctr fcfdfeff.
  Bytes key = *hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes nonce = *hex_decode("f0f1f2f3f4f5f6f7f8f9fafb");
  Bytes pt = *hex_decode("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct = aes_ctr_crypt(key, nonce, 0xfcfdfeffu, pt);
  EXPECT_EQ(hex_encode(ct), "874d6191b620e3261bef6864990db6ce");
}

TEST(Aes, CtrRoundTripAndCounterChaining) {
  Rng rng(99);
  Bytes key(32), nonce(12);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next_u64());
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 200u}) {
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    Bytes ct = aes_ctr_crypt(key, nonce, 1, msg);
    EXPECT_EQ(aes_ctr_crypt(key, nonce, 1, ct), msg) << "len " << len;
  }
  // Encrypting two blocks at once equals per-block with advancing counters.
  Bytes two(32, 0x5c);
  Bytes whole = aes_ctr_crypt(key, nonce, 7, two);
  Bytes first(two.begin(), two.begin() + 16);
  Bytes second(two.begin() + 16, two.end());
  Bytes p1 = aes_ctr_crypt(key, nonce, 7, first);
  Bytes p2 = aes_ctr_crypt(key, nonce, 8, second);
  EXPECT_TRUE(std::equal(p1.begin(), p1.end(), whole.begin()));
  EXPECT_TRUE(std::equal(p2.begin(), p2.end(), whole.begin() + 16));
}

TEST(Aes, KeySizeValidation) {
  EXPECT_THROW(Aes(Bytes(17, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(24, 0)), std::invalid_argument);  // no AES-192 here
}

}  // namespace
}  // namespace sgxp2p::crypto
