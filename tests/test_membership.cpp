// Membership (Appendix G S1) and sparse-topology flooding (S5) tests.
#include <gtest/gtest.h>

#include "protocol/flood.hpp"
#include "protocol/membership.hpp"
#include "testbed_util.hpp"

namespace sgxp2p {
namespace {

using protocol::FloodNode;
using protocol::JoinPlanEntry;
using protocol::RosterNode;
using testutil::small_config;

sim::Testbed::EnclaveFactory roster_factory(std::vector<NodeId> initial,
                                            std::vector<JoinPlanEntry> plan) {
  return [initial, plan](NodeId id, sgx::SgxPlatform& platform,
                         net::Host& host, protocol::PeerConfig cfg,
                         const sgx::SimIAS& ias)
             -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<RosterNode>(platform, id, host, cfg, ias, initial,
                                        plan);
  };
}

TEST(Membership, SingleJoinConverges) {
  // Nodes 0–4 form the roster; node 5 joins via sponsor 0.
  const std::uint32_t n = 6;
  std::vector<NodeId> initial = {0, 1, 2, 3, 4};
  std::vector<JoinPlanEntry> plan = {{5, 0}};
  sim::Testbed bed(small_config(n, 21));
  bed.build(roster_factory(initial, plan));
  bed.start();
  std::uint32_t window = bed.config().effective_t() + 2;
  bed.run_rounds(2 * window + 1);

  std::vector<NodeId> expect = {0, 1, 2, 3, 4, 5};
  for (NodeId id = 0; id < n; ++id) {
    auto& node = bed.enclave_as<RosterNode>(id);
    EXPECT_EQ(node.roster(), expect) << "node " << id;
    EXPECT_TRUE(node.is_member()) << "node " << id;
  }
  EXPECT_EQ(bed.enclave_as<RosterNode>(0).admitted(),
            std::vector<NodeId>{5});
}

TEST(Membership, SequentialJoinsGrowTheRoster) {
  // 5, then 6 (sponsored by a different member), then 7 — the later joins
  // run their ERB over the grown roster, including the earlier joiners.
  const std::uint32_t n = 8;
  std::vector<NodeId> initial = {0, 1, 2, 3, 4};
  std::vector<JoinPlanEntry> plan = {{5, 0}, {6, 2}, {7, 1}};
  sim::Testbed bed(small_config(n, 22));
  bed.build(roster_factory(initial, plan));
  bed.start();
  std::uint32_t window = bed.config().effective_t() + 2;
  bed.run_rounds(4 * window + 1);

  std::vector<NodeId> expect = {0, 1, 2, 3, 4, 5, 6, 7};
  for (NodeId id = 0; id < n; ++id) {
    auto& node = bed.enclave_as<RosterNode>(id);
    EXPECT_EQ(node.roster(), expect) << "node " << id;
    EXPECT_TRUE(node.is_member()) << "node " << id;
  }
  // Admission order is the plan order at every member.
  EXPECT_EQ(bed.enclave_as<RosterNode>(3).admitted(),
            (std::vector<NodeId>{5, 6, 7}));
}

TEST(Membership, CrashedSponsorFailsJoinConsistently) {
  // The sponsor crashes; the join must fail at EVERY member identically
  // (no roster split), and a later window with a live sponsor succeeds.
  const std::uint32_t n = 7;
  std::vector<NodeId> initial = {0, 1, 2, 3, 4};
  std::vector<JoinPlanEntry> plan = {{5, 1}, {6, 2}};
  sim::Testbed bed(small_config(n, 23));
  bed.build(roster_factory(initial, plan),
            [](NodeId id) -> std::unique_ptr<adversary::Strategy> {
              if (id == 1) return std::make_unique<adversary::CrashStrategy>();
              return nullptr;
            });
  bed.start();
  std::uint32_t window = bed.config().effective_t() + 2;
  bed.run_rounds(3 * window + 1);

  // Node 5's join (sponsor 1, crashed) failed; node 6's succeeded.
  std::vector<NodeId> expect = {0, 1, 2, 3, 4, 6};
  for (NodeId id : {0u, 2u, 3u, 4u}) {
    auto& node = bed.enclave_as<RosterNode>(id);
    EXPECT_EQ(node.roster(), expect) << "node " << id;
  }
  EXPECT_FALSE(bed.enclave_as<RosterNode>(5).is_member());
  EXPECT_TRUE(bed.enclave_as<RosterNode>(6).is_member());
  EXPECT_EQ(bed.enclave_as<RosterNode>(6).roster(), expect);
}

// ---------- flooding over a sparse overlay ----------

struct FloodBed {
  apps::Overlay overlay;
  sim::PlainBed bed;

  FloodBed(std::uint32_t n, std::uint32_t chords, std::uint64_t seed)
      : overlay(n, chords), bed(n, net_cfg(seed)) {
    bed.build([&](NodeId id) {
      return std::make_unique<FloodNode>(id, n, overlay, id == 0,
                                         id == 0 ? to_bytes("flood!") : Bytes{});
    });
  }

  static sim::NetworkConfig net_cfg(std::uint64_t seed) {
    sim::NetworkConfig cfg;
    cfg.base_delay = milliseconds(100);
    cfg.max_jitter = milliseconds(100);
    cfg.seed = seed;
    return cfg;
  }
};

TEST(Flood, ReachesEveryoneWithinEccentricityRounds) {
  const std::uint32_t n = 64;
  FloodBed fx(n, 5, 3);
  std::uint32_t ecc = fx.overlay.eccentricity(0);
  fx.bed.start();
  fx.bed.run_rounds(ecc + 2);
  for (NodeId id = 0; id < n; ++id) {
    const auto& r = fx.bed.node_as<FloodNode>(id).result();
    ASSERT_TRUE(r.received) << "node " << id;
    EXPECT_LE(r.round, ecc + 1) << "node " << id;
  }
}

TEST(Flood, SparseCostBeatsMeshAtScale) {
  const std::uint32_t n = 128;
  FloodBed fx(n, 6, 4);
  fx.bed.start();
  fx.bed.run_rounds(fx.overlay.eccentricity(0) + 2);
  std::uint64_t flood_msgs = fx.bed.network().meter().messages();
  // Each node relays once to its ~2(chords+1) neighbors: O(N·deg) — far
  // below the N·(N−1) a full-mesh multicast costs per round of flooding.
  EXPECT_LT(flood_msgs, static_cast<std::uint64_t>(n) * 16);
  EXPECT_GT(flood_msgs, static_cast<std::uint64_t>(n));
}

TEST(Flood, HopCountsAreShortestPathLike) {
  const std::uint32_t n = 32;
  FloodBed fx(n, 4, 9);
  fx.bed.start();
  fx.bed.run_rounds(fx.overlay.eccentricity(0) + 2);
  // A neighbor of the origin hears it with hop count 1.
  NodeId neighbor = fx.overlay.neighbors(0).front();
  EXPECT_EQ(fx.bed.node_as<FloodNode>(neighbor).result().hops, 1u);
}

}  // namespace
}  // namespace sgxp2p
