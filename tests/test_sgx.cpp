// SGX simulation layer tests: measurement, attestation (quote forging and
// wrong-program rejection), enclave sealing, per-launch randomness, and the
// trusted-time plumbing.
#include <gtest/gtest.h>

#include "net/simulator.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "sgx/measurement.hpp"
#include "sgx/platform.hpp"

namespace sgxp2p::sgx {
namespace {

// Minimal concrete enclave exposing the protected capabilities for testing.
class ProbeEnclave final : public Enclave {
 public:
  using Enclave::Enclave;
  void deliver(NodeId, ByteView) override {}

  Bytes rand(std::size_t n) { return read_rand().generate(n); }
  SimTime time() const { return trusted_time(); }
  Quote make(ByteView data) const { return quote(data); }
  Bytes do_seal(ByteView d) { return seal(d); }  // draws the DRBG nonce
  std::optional<Bytes> do_unseal(ByteView d) const { return unseal(d); }
  std::uint64_t ctr_read() const { return monotonic_read(); }
  std::uint64_t ctr_inc() { return monotonic_increment(); }
};

class NullHost final : public EnclaveHostIface {
 public:
  void transfer(NodeId, Bytes) override {}
};

struct Fixture {
  sim::Simulator simulator;
  SgxPlatform platform{simulator, to_bytes("test-platform-seed")};
  SimIAS ias{platform};
  NullHost host;
};

TEST(Measurement, DistinguishesPrograms) {
  Measurement a = measure({"erb", "1.0"});
  Measurement b = measure({"erb", "1.1"});
  Measurement c = measure({"erng", "1.0"});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, measure({"erb", "1.0"}));
  // Field boundaries matter: ("ab","c") ≠ ("a","bc").
  EXPECT_NE(measure({"ab", "c"}), measure({"a", "bc"}));
}

TEST(Attestation, QuoteVerifies) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
  Quote q = enclave.make(to_bytes("report-data"));
  EXPECT_TRUE(fx.ias.verify(q, measure({"prog", "1"})));
}

TEST(Attestation, WrongProgramRejected) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
  Quote q = enclave.make(to_bytes("rd"));
  EXPECT_FALSE(fx.ias.verify(q, measure({"prog", "2"})));
  EXPECT_FALSE(fx.ias.verify(q, measure({"other", "1"})));
}

TEST(Attestation, TamperedQuoteRejected) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
  Quote q = enclave.make(to_bytes("rd"));
  Measurement m = measure({"prog", "1"});

  Quote bad = q;
  bad.report_data = to_bytes("other data");  // host swaps the bound DH key
  EXPECT_FALSE(fx.ias.verify(bad, m));

  bad = q;
  bad.cpu = 999;
  EXPECT_FALSE(fx.ias.verify(bad, m));

  bad = q;
  bad.mac[0] ^= 1;
  EXPECT_FALSE(fx.ias.verify(bad, m));

  bad = q;
  bad.measurement[0] ^= 1;  // claim a different program under the same MAC
  EXPECT_FALSE(fx.ias.verify(bad, m));
}

TEST(Attestation, ForgedQuoteWithoutRootKeyRejected) {
  Fixture fx;
  // An adversary without the platform root key fabricates a quote whole.
  Quote forged;
  forged.measurement = measure({"prog", "1"});
  forged.cpu = 1;
  forged.report_data = to_bytes("attacker key");
  forged.mac = Bytes(32, 0x41);
  EXPECT_FALSE(fx.ias.verify(forged, measure({"prog", "1"})));
}

TEST(Attestation, QuoteSerializationRoundTrip) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 7, {"prog", "1"}, fx.host);
  Quote q = enclave.make(to_bytes("bound-data"));
  Bytes wire = q.serialize();
  auto parsed = Quote::deserialize(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cpu, 7u);
  EXPECT_EQ(parsed->report_data, to_bytes("bound-data"));
  EXPECT_TRUE(fx.ias.verify(*parsed, measure({"prog", "1"})));
  // Truncations fail to parse.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        Quote::deserialize(ByteView(wire.data(), len)).has_value());
  }
}

TEST(Enclave, SealUnsealRoundTrip) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
  Bytes secret = to_bytes("session keys to persist");
  Bytes sealed = enclave.do_seal(secret);
  EXPECT_NE(sealed, secret);
  auto opened = enclave.do_unseal(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, secret);
}

TEST(Enclave, SealBoundToProgramAndCpu) {
  Fixture fx;
  ProbeEnclave a(fx.platform, 1, {"prog", "1"}, fx.host);
  ProbeEnclave other_prog(fx.platform, 1, {"prog", "2"}, fx.host);
  ProbeEnclave other_cpu(fx.platform, 2, {"prog", "1"}, fx.host);
  Bytes sealed = a.do_seal(to_bytes("secret"));
  EXPECT_FALSE(other_prog.do_unseal(sealed).has_value());
  EXPECT_FALSE(other_cpu.do_unseal(sealed).has_value());
  // Same program, same CPU (a relaunch) can unseal — that is sealing's job.
  ProbeEnclave relaunch(fx.platform, 1, {"prog", "1"}, fx.host);
  EXPECT_TRUE(relaunch.do_unseal(sealed).has_value());
}

TEST(Enclave, TamperedSealedBlobRejected) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
  Bytes sealed = enclave.do_seal(to_bytes("secret"));
  for (std::size_t i = 0; i < sealed.size(); i += 7) {
    Bytes bad = sealed;
    bad[i] ^= 0xff;
    EXPECT_FALSE(enclave.do_unseal(bad).has_value()) << "byte " << i;
  }
}

TEST(Enclave, TruncatedSealedBlobRejected) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
  Bytes sealed = enclave.do_seal(to_bytes("secret"));
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    EXPECT_FALSE(
        enclave.do_unseal(ByteView(sealed.data(), len)).has_value())
        << "length " << len;
  }
  EXPECT_TRUE(enclave.do_unseal(sealed).has_value());
}

TEST(Enclave, CrossCpuAndCrossMeasurementUnsealFails) {
  // The sealing key is derived from (CPU, measurement): any other enclave —
  // same program elsewhere, or another program here — gets nullopt, not a
  // wrong plaintext.
  Fixture fx;
  ProbeEnclave a(fx.platform, 1, {"prog", "1"}, fx.host);
  Bytes sealed = a.do_seal(to_bytes("bound state"));
  ProbeEnclave cross_cpu(fx.platform, 9, {"prog", "1"}, fx.host);
  ProbeEnclave cross_meas(fx.platform, 1, {"prog", "9"}, fx.host);
  EXPECT_FALSE(cross_cpu.do_unseal(sealed).has_value());
  EXPECT_FALSE(cross_meas.do_unseal(sealed).has_value());
}

TEST(Enclave, SealNonceFreshAcrossRelaunch) {
  // Regression: a per-launch seal counter restarts at 0 after a relaunch
  // while the sealing key stays fixed, so two lives sealing with counter
  // nonces would hand the host two ciphertexts under one (key, nonce) pair.
  // With DRBG nonces every sealed blob — within and across launches — must
  // start with a distinct nonce.
  Fixture fx;
  Bytes plaintext = to_bytes("same plaintext every time");
  std::vector<Bytes> blobs;
  {
    ProbeEnclave first(fx.platform, 1, {"prog", "1"}, fx.host);
    blobs.push_back(first.do_seal(plaintext));
    blobs.push_back(first.do_seal(plaintext));
  }
  ProbeEnclave relaunch(fx.platform, 1, {"prog", "1"}, fx.host);
  blobs.push_back(relaunch.do_seal(plaintext));
  blobs.push_back(relaunch.do_seal(plaintext));
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    ASSERT_TRUE(relaunch.do_unseal(blobs[i]).has_value());
    for (std::size_t j = i + 1; j < blobs.size(); ++j) {
      EXPECT_NE(Bytes(blobs[i].begin(), blobs[i].begin() + 12),
                Bytes(blobs[j].begin(), blobs[j].begin() + 12))
          << "nonce reuse between seal " << i << " and " << j;
    }
  }
}

TEST(Enclave, MonotonicCounterSurvivesRelaunch) {
  Fixture fx;
  {
    ProbeEnclave first(fx.platform, 1, {"prog", "1"}, fx.host);
    EXPECT_EQ(first.ctr_read(), 0u);
    EXPECT_EQ(first.ctr_inc(), 1u);
    EXPECT_EQ(first.ctr_inc(), 2u);
    EXPECT_EQ(first.ctr_read(), 2u);
  }
  // The counter lives in the platform, not the enclave: a relaunch sees the
  // previous life's value — that is what defeats sealed-state rollback.
  ProbeEnclave relaunch(fx.platform, 1, {"prog", "1"}, fx.host);
  EXPECT_EQ(relaunch.ctr_read(), 2u);
  EXPECT_EQ(relaunch.ctr_inc(), 3u);
}

TEST(Enclave, MonotonicCounterPerCpuAndProgram) {
  Fixture fx;
  ProbeEnclave a(fx.platform, 1, {"prog", "1"}, fx.host);
  ProbeEnclave other_cpu(fx.platform, 2, {"prog", "1"}, fx.host);
  ProbeEnclave other_prog(fx.platform, 1, {"prog", "2"}, fx.host);
  a.ctr_inc();
  a.ctr_inc();
  EXPECT_EQ(a.ctr_read(), 2u);
  EXPECT_EQ(other_cpu.ctr_read(), 0u);
  EXPECT_EQ(other_prog.ctr_read(), 0u);
}

TEST(Enclave, RelaunchGetsFreshRandomness) {
  // P6's restart story: a relaunched enclave has a fresh DRBG — it cannot
  // resume the randomness (or the session state) of its previous life.
  Fixture fx;
  Bytes first, second;
  {
    ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
    first = enclave.rand(32);
  }
  {
    ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
    second = enclave.rand(32);
  }
  EXPECT_NE(first, second);
}

TEST(Enclave, DistinctCpusDistinctRandomness) {
  Fixture fx;
  ProbeEnclave a(fx.platform, 1, {"prog", "1"}, fx.host);
  ProbeEnclave b(fx.platform, 2, {"prog", "1"}, fx.host);
  EXPECT_NE(a.rand(32), b.rand(32));
}

TEST(Enclave, TrustedTimeTracksSimulatorNotHost) {
  Fixture fx;
  ProbeEnclave enclave(fx.platform, 1, {"prog", "1"}, fx.host);
  EXPECT_EQ(enclave.time(), 0);
  fx.simulator.run_until(1234);
  EXPECT_EQ(enclave.time(), 1234);
}

TEST(Platform, DeterministicFromSeed) {
  sim::Simulator simulator;
  SgxPlatform p1(simulator, to_bytes("seed-x"));
  SgxPlatform p2(simulator, to_bytes("seed-x"));
  EXPECT_EQ(p1.attestation_root_key(), p2.attestation_root_key());
  Measurement m = measure({"p", "1"});
  EXPECT_EQ(p1.sealing_key(3, m), p2.sealing_key(3, m));
  SgxPlatform p3(simulator, to_bytes("seed-y"));
  EXPECT_NE(p1.attestation_root_key(), p3.attestation_root_key());
}

TEST(Platform, CrossPlatformQuotesRejected) {
  // A quote minted on one platform (deployment) fails another's IAS.
  sim::Simulator simulator;
  SgxPlatform p1(simulator, to_bytes("deployment-1"));
  SgxPlatform p2(simulator, to_bytes("deployment-2"));
  NullHost host;
  ProbeEnclave enclave(p1, 1, {"prog", "1"}, host);
  Quote q = enclave.make(to_bytes("rd"));
  SimIAS ias2(p2);
  EXPECT_FALSE(ias2.verify(q, measure({"prog", "1"})));
}

}  // namespace
}  // namespace sgxp2p::sgx
