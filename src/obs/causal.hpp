// Causal-DAG analysis over the span/cause fields the TraceRecorder emits.
//
// A JSONL trace is a DAG: every event carries a unique monotonic `span` id
// and a `cause` id naming the span that triggered it (0 = root: a round
// tick, protocol_start, or setup work). CausalGraph parses one trace and
// offers the three consumers built on the DAG:
//
//   * check_conservation() — the structural oracle the fuzzer reuses:
//     spans strictly increase, every cause precedes its event in both span
//     and virtual time, and every `net deliver` is caused by a recorded
//     `net send` with matching endpoints and arrival time;
//   * critical_paths() — walks backwards from each `decide`, attributing
//     its latency to network delay, node-local compute (handler work and
//     round-alignment waits), and enclave transitions;
//   * to_perfetto() — Chrome-trace/Perfetto JSON (one track per node,
//     events nested under round slices, flow arrows send → deliver) for
//     ui.perfetto.dev.
//
// The ring drops oldest events under overflow; the graph detects that
// (min recorded span > 1) and reports truncation-induced dangling causes
// as `truncated_causes()` rather than conservation violations, so an
// overflowed trace is flagged but not misdiagnosed as a causality bug.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sgxp2p::obs {

/// One parsed trace event. Only the fields the analyses need are retained;
/// numeric extras (round, bytes, arrival, sgxms, latency_ms, …) are looked
/// up by key on demand.
struct CausalEvent {
  SimTime vt = 0;
  std::uint32_t node = 0;
  std::uint64_t span = 0;
  std::uint64_t cause = 0;
  std::string component;
  std::string event;
  std::vector<std::pair<std::string, std::int64_t>> nums;
  std::vector<std::pair<std::string, std::string>> strs;

  [[nodiscard]] std::int64_t num(std::string_view key,
                                 std::int64_t fallback = 0) const;
  [[nodiscard]] const std::string* str(std::string_view key) const;
};

class CausalGraph {
 public:
  /// Parses a JSONL trace (TraceRecorder::to_jsonl / a .trace.jsonl file).
  /// Returns nullopt on malformed JSON or missing span/cause fields, with a
  /// line-numbered reason in `*error` when provided.
  static std::optional<CausalGraph> parse(const std::string& jsonl,
                                          std::string* error = nullptr);

  [[nodiscard]] const std::vector<CausalEvent>& events() const {
    return events_;
  }
  /// Event with the given span id, or nullptr (unknown / truncated away).
  [[nodiscard]] const CausalEvent* by_span(std::uint64_t span) const;

  /// True when the ring dropped the start of the run (oldest span > 1):
  /// causes pointing below the window are unverifiable, not dangling.
  [[nodiscard]] bool truncated() const { return min_span_ > 1; }
  /// Causes that point below the retained window (only when truncated()).
  [[nodiscard]] std::uint64_t truncated_causes() const {
    return truncated_causes_;
  }

  /// Cause-conservation oracle. Empty = the DAG is sound:
  ///   - span ids strictly increase in record order;
  ///   - every non-root cause references an earlier span (cause < span) and
  ///     a no-later virtual time (parent.vt ≤ event.vt);
  ///   - every `net deliver` has a cause, and it is a `net send` whose
  ///     endpoints mirror the delivery and whose `arrival` equals the
  ///     delivery's vt.
  [[nodiscard]] std::vector<std::string> check_conservation() const;

  // ----- critical paths -----

  struct Step {
    std::uint64_t span = 0;       // the event this hop lands on (the cause)
    std::uint32_t node = 0;
    SimTime vt = 0;
    std::string label;            // "component.event"
    const char* segment = "";     // "network" | "compute" | "sgx"
    std::int64_t ms = 0;          // virtual ms attributed to this hop
  };

  struct CriticalPath {
    std::uint64_t decide_span = 0;
    std::uint32_t node = 0;
    std::int64_t total_ms = 0;         // the decide's latency_ms field
    std::int64_t network_ms = 0;       // wire time (send → deliver, minus sgx)
    std::int64_t compute_ms = 0;       // same-node gaps incl. alignment waits
    std::int64_t sgx_ms = 0;           // enclave-transition cost on the path
    std::int64_t unattributed_ms = 0;  // chain broken (ring truncation)
    std::vector<Step> steps;           // decide → … → root, one per hop

    [[nodiscard]] std::int64_t attributed_ms() const {
      return network_ms + compute_ms + sgx_ms;
    }
  };

  /// One entry per `decide` event, walking the cause chain back to a root.
  /// network + compute + sgx + unattributed always equals total.
  [[nodiscard]] std::vector<CriticalPath> critical_paths() const;

  // ----- Perfetto -----

  /// Chrome-trace JSON ({"traceEvents":[…]}, ts in µs of virtual time):
  /// one process per node, round_begin slices spanning their round, every
  /// event a nested slice carrying span/cause args, and flow arrows from
  /// each `net send` to its `net deliver`. Opens in ui.perfetto.dev.
  [[nodiscard]] std::string to_perfetto() const;

 private:
  std::vector<CausalEvent> events_;
  std::uint64_t min_span_ = 1;
  std::uint64_t max_span_ = 0;
  std::uint64_t truncated_causes_ = 0;
  // span → index into events_, valid because spans are contiguous
  // [min_span_, max_span_] in record order (drop-oldest keeps a window).
};

}  // namespace sgxp2p::obs
