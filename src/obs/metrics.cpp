#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace sgxp2p::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                    bounds_.end(),
            "Histogram: bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(std::int64_t v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::add_buckets(const std::vector<std::uint64_t>& buckets,
                            std::uint64_t count, std::int64_t sum) {
  CHECK_MSG(buckets.size() == bounds_.size() + 1,
            "Histogram::add_buckets: bucket count mismatch");
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string MetricsRegistry::full_name(std::string_view name,
                                       std::string_view label) {
  std::string out(name);
  if (!label.empty()) {
    out += '{';
    out += label;
    out += '}';
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label) {
  std::string key = full_name(name, label);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(std::move(key), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view label) {
  std::string key = full_name(name, label);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::move(key), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::int64_t> bounds,
                                      std::string_view label) {
  std::string key = full_name(name, label);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::move(key),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.push_back({name, c->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.push_back({name, g->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
thread_local MetricsRegistry* t_current = nullptr;
}  // namespace

MetricsRegistry& MetricsRegistry::current() {
  return t_current != nullptr ? *t_current : global();
}

MetricsRegistry::ScopedCurrent::ScopedCurrent(MetricsRegistry& registry)
    : previous_(t_current) {
  t_current = &registry;
}

MetricsRegistry::ScopedCurrent::~ScopedCurrent() { t_current = previous_; }

std::uint64_t MetricsRegistry::next_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void merge_snapshot(MetricsRegistry& into, const MetricsSnapshot& snap) {
  for (const auto& c : snap.counters) {
    into.counter(c.name).inc(c.value);
  }
  for (const auto& g : snap.gauges) {
    into.gauge(g.name).max_of(g.value);
  }
  for (const auto& h : snap.histograms) {
    // Re-registers with the snapshot's bounds; add_buckets CHECKs if an
    // already-registered histogram of the same name disagrees on shape.
    into.histogram(h.name, h.bounds).add_buckets(h.buckets, h.count, h.sum);
  }
}

const CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}
void append_i64(std::string& out, std::int64_t v) { out += std::to_string(v); }
}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(c.name);
    out += "\":";
    append_u64(out, c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(g.name);
    out += "\":";
    append_i64(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(h.name);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      append_i64(out, h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ',';
      append_u64(out, h.buckets[i]);
    }
    out += "],\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_i64(out, h.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace sgxp2p::obs
