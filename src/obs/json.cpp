#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace sgxp2p::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return JsonValue{};
    }
    return parse_number();
  }

  std::optional<std::string> parse_raw_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // The repo only emits \u00xx control escapes; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_string_value() {
    auto s = parse_raw_string();
    if (!s) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.string = std::move(*s);
    return v;
  }

  std::optional<JsonValue> parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    bool digits = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        integral = false;
        ++pos_;
      } else if ((c == '-' || c == '+') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
        ++pos_;  // exponent sign
      } else {
        break;
      }
    }
    if (!digits) return std::nullopt;
    std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    if (integral) {
      v.type = JsonValue::Type::kInt;
      v.integer = std::strtoll(token.c_str(), nullptr, 10);
    } else {
      v.type = JsonValue::Type::kDouble;
      v.number = std::strtod(token.c_str(), nullptr);
    }
    return v;
  }

  std::optional<JsonValue> parse_array() {
    if (!eat('[')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (eat(']')) return v;
    while (true) {
      auto item = parse_value();
      if (!item) return std::nullopt;
      v.array.push_back(std::move(*item));
      if (eat(',')) continue;
      if (eat(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object() {
    if (!eat('{')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (eat('}')) return v;
    while (true) {
      skip_ws();
      auto key = parse_raw_string();
      if (!key) return std::nullopt;
      if (!eat(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*value));
      if (eat(',')) continue;
      if (eat('}')) return v;
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace sgxp2p::obs
