#include "obs/pool.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace sgxp2p::obs {

namespace {
// Deterministic totals only — see the header note on hit/miss warmth.
struct PoolCounters {
  Counter* acquires = nullptr;
  Counter* releases = nullptr;

  static PoolCounters& get() {
    thread_local PoolCounters counters;
    thread_local std::uint64_t bound_registry_id = 0;
    MetricsRegistry& reg = MetricsRegistry::current();
    if (reg.id() != bound_registry_id) {
      counters.acquires = &reg.counter("sim.pool_acquires");
      counters.releases = &reg.counter("sim.pool_releases");
      bound_registry_id = reg.id();
    }
    return counters;
  }
};
}  // namespace

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

Bytes BufferPool::take(std::size_t want) {
  ++stats_.acquires;
  PoolCounters::get().acquires->inc();
  if (free_.empty()) {
    ++stats_.misses;
    return Bytes();
  }
  ++stats_.hits;
  Bytes buf = std::move(free_.back());
  free_.pop_back();
  stats_.recycled_bytes += buf.capacity();
  buf.clear();
  if (buf.capacity() < want) buf.reserve(want);
  return buf;
}

Bytes BufferPool::acquire(std::size_t size) {
  Bytes buf = take(size);
  // resize() value-initializes the new tail, so a recycled buffer comes back
  // bitwise identical to a fresh Bytes(size) — never the previous contents.
  buf.resize(size);
  return buf;
}

Bytes BufferPool::acquire_empty(std::size_t capacity) {
  return take(capacity);
}

void BufferPool::release(Bytes buf) {
  ++stats_.releases;
  PoolCounters::get().releases->inc();
  if (!recycling_ || buf.capacity() == 0 ||
      buf.capacity() > kMaxPooledCapacity || free_.size() >= kMaxFree) {
    ++stats_.dropped;
    return;
  }
  free_.push_back(std::move(buf));
}

void BufferPool::clear() {
  free_.clear();
  free_.shrink_to_fit();
  stats_ = Stats{};
}

}  // namespace sgxp2p::obs
