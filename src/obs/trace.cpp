#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace sgxp2p::obs {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceEvent{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  next_span_ = 1;
  current_ = 0;
  token_counter_.store(1, std::memory_order_relaxed);
  token_map_.clear();
  enabled_ = true;
}

void TraceRecorder::disable() { enabled_ = false; }

void TraceRecorder::reset() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  next_span_ = 1;
  current_ = 0;
  token_counter_.store(1, std::memory_order_relaxed);
  token_map_.clear();
}

void TraceRecorder::push(const TraceEvent& ev) {
  if (count_ < capacity_) {
    ring_[(head_ + count_) % capacity_] = ev;
    ++count_;
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < count_; ++i) {
    const TraceEvent& ev = ring_[(head_ + i) % capacity_];
    os << "{\"vt\":" << ev.vt << ",\"node\":" << ev.node
       << ",\"span\":" << ev.span << ",\"cause\":" << ev.cause
       << ",\"component\":\""
       << (ev.component != nullptr ? ev.component : "") << "\",\"event\":\""
       << (ev.event != nullptr ? ev.event : "") << '"';
    for (const TraceField& f : ev.fields) {
      if (f.key == nullptr) break;
      os << ",\"" << f.key << "\":";
      if (f.str != nullptr) {
        os << '"' << json_escape(f.str) << '"';
      } else {
        os << f.num;
      }
    }
    os << "}\n";
  }
}

std::string TraceRecorder::to_jsonl() const {
  std::ostringstream oss;
  write_jsonl(oss);
  return oss.str();
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace sgxp2p::obs
