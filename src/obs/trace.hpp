// TraceRecorder — structured per-run event capture with JSONL export.
//
// Records events {vt, node, span, cause, component, event, fields…} into a
// preallocated ring buffer. Every recorded event gets a monotonically
// assigned `span` id, and a `cause` id naming the span of the event that
// triggered it (0 = root), so one run's trace is a complete causal DAG —
// see docs/OBSERVABILITY.md and src/obs/causal.hpp. Recording is designed
// for the simulator hot path:
//   - zero-cost when disabled: one branch on a plain bool, no allocation;
//   - allocation-light when enabled: events are fixed-size PODs whose keys,
//     component, and event names must be string literals (the recorder
//     stores the pointers, never copies), and numeric fields are int64.
//
// Time is always the simulator's virtual clock, so two same-seed runs emit
// byte-identical JSONL — the determinism test in tests/test_obs.cpp holds
// the repo to that.
//
// When the ring overflows the oldest events are dropped (and counted);
// tools warn when dropped() > 0 so a truncated timeline is never silently
// presented as complete.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace sgxp2p::obs {

/// One key/value field. `key` and `str` must be string literals (or
/// otherwise outlive the recorder). A null `str` means the value is `num`.
struct TraceField {
  const char* key = nullptr;
  std::int64_t num = 0;
  const char* str = nullptr;
};

/// Numeric field shorthand: fnum("round", 3).
inline TraceField fnum(const char* key, std::int64_t v) {
  return TraceField{key, v, nullptr};
}
/// String field shorthand: fstr("type", "INIT").
inline TraceField fstr(const char* key, const char* v) {
  return TraceField{key, 0, v};
}

struct TraceEvent {
  SimTime vt = 0;
  std::uint32_t node = 0;
  std::uint64_t span = 0;   // assigned by the recorder (monotonic, 1-based)
  std::uint64_t cause = 0;  // span of the event that triggered this one
  const char* component = nullptr;
  const char* event = nullptr;
  std::array<TraceField, 4> fields{};  // unused tail entries have key==null
};

class TraceRecorder {
 public:
  /// The process-wide recorder every component writes to.
  static TraceRecorder& global();

  /// Starts recording into a ring of `capacity` events (preallocated).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records `ev`, assigning it the next monotonic span id (1-based). When
  /// `ev.cause` is 0 the recorder substitutes the ambient cause (see Scope);
  /// a nonzero cause passes through untouched. Returns the assigned span id,
  /// or 0 when recording is disabled — 0 is never a valid span, so callers
  /// can use the return value unconditionally as a causal token.
  ///
  /// Inside a parallel-engine worker a thread-local WorkerSink is installed:
  /// the event is buffered instead of pushed, and the return value is a
  /// provisional *span token* (bit 63 set). Tokens are valid wherever spans
  /// are (Scope, Delivery.cause_span, explicit causes): the recorder
  /// translates them back to the real span — assigned when the buffered
  /// event is replayed at its canonical merge position — so merged traces
  /// are byte-identical to a serial run.
  std::uint64_t record(TraceEvent ev) {
    if (!enabled_) return 0;
    if (ev.cause == 0) ev.cause = current_;
    if (sink_ != nullptr) return sink_->record(ev);
    if (is_token(ev.cause)) ev.cause = resolve_cause(ev.cause);
    ev.span = next_span_++;
    push(ev);
    return ev.span;
  }

  /// The ambient cause applied to events recorded with cause==0. 0 means
  /// "root": the event was not triggered by any recorded event. The ambient
  /// cause is thread-local, so parallel-engine workers each carry their own
  /// causal context without synchronizing.
  [[nodiscard]] std::uint64_t current_cause() const { return current_; }

  // — parallel-engine plumbing (see src/net/simulator.cpp) —

  /// Span tokens: provisional ids handed out by a WorkerSink in place of
  /// real spans. Bit 63 marks them; real spans never reach it.
  static constexpr std::uint64_t kTokenBit = 1ull << 63;
  [[nodiscard]] static bool is_token(std::uint64_t id) {
    return (id & kTokenBit) != 0;
  }
  /// Mints a fresh token (thread-safe; workers call this concurrently).
  [[nodiscard]] std::uint64_t acquire_token() {
    return kTokenBit | token_counter_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Maps a span-or-token back to a real span (identity for real spans and
  /// 0). Aborts if the token's defining event has not been replayed yet —
  /// canonical merge order guarantees definition-before-use.
  [[nodiscard]] std::uint64_t resolve_cause(std::uint64_t cause) const {
    if (!is_token(cause)) return cause;
    auto it = token_map_.find(cause);
    CHECK_MSG(it != token_map_.end(),
              "trace token consumed before its defining event was merged");
    return it->second;
  }
  /// Merge-phase emit of a worker-buffered event: translates a token cause,
  /// assigns the real span in canonical order, and registers `token` so
  /// later consumers resolve to it. Returns the real span.
  std::uint64_t replay(TraceEvent ev, std::uint64_t token) {
    if (!enabled_) return 0;
    if (ev.cause == 0) ev.cause = current_;
    if (is_token(ev.cause)) ev.cause = resolve_cause(ev.cause);
    ev.span = next_span_++;
    push(ev);
    if (token != 0) token_map_[token] = ev.span;
    return ev.span;
  }

  /// Buffers events recorded on a worker thread instead of pushing them.
  /// Installed per-thread for the duration of one conservative window.
  class WorkerSink {
   public:
    virtual ~WorkerSink() = default;
    /// Buffers `ev` (ambient cause already substituted; may be a token) and
    /// returns a provisional span token for it.
    virtual std::uint64_t record(const TraceEvent& ev) = 0;
  };
  static void set_worker_sink(WorkerSink* sink) { sink_ = sink; }
  /// Sets this thread's ambient cause directly (workers position it at the
  /// start of each event; AmbientGuard restores it around merge replay).
  static void set_ambient(std::uint64_t cause) { current_ = cause; }

  /// RAII ambient-cause override used when replaying a deferred effect at
  /// merge time: restores the captured worker-side ambient cause (resolving
  /// tokens) so re-executed sends attribute exactly as a serial run would.
  class AmbientGuard {
   public:
    explicit AmbientGuard(std::uint64_t cause) : saved_(current_) {
      current_ = global().resolve_cause(cause);
    }
    ~AmbientGuard() { current_ = saved_; }
    AmbientGuard(const AmbientGuard&) = delete;
    AmbientGuard& operator=(const AmbientGuard&) = delete;

   private:
    std::uint64_t saved_;
  };

  /// RAII ambient-cause scope: while alive, events recorded without an
  /// explicit cause are attributed to `span`. Scopes nest (dispatch → handler
  /// → helper) and restore the previous ambient cause on destruction. A
  /// Scope built while the recorder is disabled, or with span 0, is inert —
  /// it neither reads nor writes recorder state, so untraced parallel sweeps
  /// never touch the global singleton.
  class Scope {
   public:
    explicit Scope(std::uint64_t span)
        : recorder_(global()),
          active_(span != 0 && recorder_.enabled()),
          saved_(active_ ? recorder_.current_ : 0) {
      if (active_) recorder_.current_ = span;
    }
    ~Scope() {
      if (active_) recorder_.current_ = saved_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceRecorder& recorder_;
    bool active_;
    std::uint64_t saved_;
  };

  /// Drops all recorded events (and the dropped counter); keeps the enabled
  /// state and capacity.
  void reset();

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Writes one JSON object per line, oldest event first:
  ///   {"vt":12,"node":3,"component":"erb","event":"send","type":"INIT",...}
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string to_jsonl() const;
  /// Returns false when the file cannot be opened.
  bool write_file(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = 1u << 18;

 private:
  void push(const TraceEvent& ev);

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;   // index of the oldest event
  std::size_t count_ = 0;  // number of valid events
  std::uint64_t dropped_ = 0;
  std::uint64_t next_span_ = 1;  // span 0 is reserved for "no cause"
  std::atomic<std::uint64_t> token_counter_{1};
  std::unordered_map<std::uint64_t, std::uint64_t> token_map_;  // token → span
  std::vector<TraceEvent> ring_;
  // Ambient cause (see Scope) and the per-thread worker sink. Thread-local so
  // parallel workers never contend — the serial engines only ever touch the
  // main thread's copy.
  inline static thread_local std::uint64_t current_ = 0;
  inline static thread_local WorkerSink* sink_ = nullptr;
};

/// Convenience emitter: single branch when tracing is off. Returns the span
/// id assigned to the event (0 when tracing is disabled), so call sites can
/// open a TraceRecorder::Scope attributing follow-on work to this event.
inline std::uint64_t trace_event(SimTime vt, std::uint32_t node,
                                 const char* component, const char* event,
                                 TraceField f0 = {}, TraceField f1 = {},
                                 TraceField f2 = {}, TraceField f3 = {}) {
  TraceRecorder& tr = TraceRecorder::global();
  if (!tr.enabled()) return 0;
  return tr.record(TraceEvent{vt, node, 0, 0, component, event,
                              {f0, f1, f2, f3}});
}

/// Emitter with an explicit cause, bypassing the ambient scope. Used where
/// the trigger is known out-of-band (a Delivery carries the span of its
/// `net send`), so the attribution cannot depend on which event engine ran
/// the dispatch.
inline std::uint64_t trace_event_caused(SimTime vt, std::uint32_t node,
                                        std::uint64_t cause,
                                        const char* component,
                                        const char* event, TraceField f0 = {},
                                        TraceField f1 = {},
                                        TraceField f2 = {}) {
  TraceRecorder& tr = TraceRecorder::global();
  if (!tr.enabled()) return 0;
  return tr.record(TraceEvent{vt, node, 0, cause, component, event,
                              {f0, f1, f2, TraceField{}}});
}

}  // namespace sgxp2p::obs
