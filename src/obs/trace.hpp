// TraceRecorder — structured per-run event capture with JSONL export.
//
// Records events {vt, node, span, cause, component, event, fields…} into a
// preallocated ring buffer. Every recorded event gets a monotonically
// assigned `span` id, and a `cause` id naming the span of the event that
// triggered it (0 = root), so one run's trace is a complete causal DAG —
// see docs/OBSERVABILITY.md and src/obs/causal.hpp. Recording is designed
// for the simulator hot path:
//   - zero-cost when disabled: one branch on a plain bool, no allocation;
//   - allocation-light when enabled: events are fixed-size PODs whose keys,
//     component, and event names must be string literals (the recorder
//     stores the pointers, never copies), and numeric fields are int64.
//
// Time is always the simulator's virtual clock, so two same-seed runs emit
// byte-identical JSONL — the determinism test in tests/test_obs.cpp holds
// the repo to that.
//
// When the ring overflows the oldest events are dropped (and counted);
// tools warn when dropped() > 0 so a truncated timeline is never silently
// presented as complete.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sgxp2p::obs {

/// One key/value field. `key` and `str` must be string literals (or
/// otherwise outlive the recorder). A null `str` means the value is `num`.
struct TraceField {
  const char* key = nullptr;
  std::int64_t num = 0;
  const char* str = nullptr;
};

/// Numeric field shorthand: fnum("round", 3).
inline TraceField fnum(const char* key, std::int64_t v) {
  return TraceField{key, v, nullptr};
}
/// String field shorthand: fstr("type", "INIT").
inline TraceField fstr(const char* key, const char* v) {
  return TraceField{key, 0, v};
}

struct TraceEvent {
  SimTime vt = 0;
  std::uint32_t node = 0;
  std::uint64_t span = 0;   // assigned by the recorder (monotonic, 1-based)
  std::uint64_t cause = 0;  // span of the event that triggered this one
  const char* component = nullptr;
  const char* event = nullptr;
  std::array<TraceField, 4> fields{};  // unused tail entries have key==null
};

class TraceRecorder {
 public:
  /// The process-wide recorder every component writes to.
  static TraceRecorder& global();

  /// Starts recording into a ring of `capacity` events (preallocated).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records `ev`, assigning it the next monotonic span id (1-based). When
  /// `ev.cause` is 0 the recorder substitutes the ambient cause (see Scope);
  /// a nonzero cause passes through untouched. Returns the assigned span id,
  /// or 0 when recording is disabled — 0 is never a valid span, so callers
  /// can use the return value unconditionally as a causal token.
  std::uint64_t record(TraceEvent ev) {
    if (!enabled_) return 0;
    ev.span = next_span_++;
    if (ev.cause == 0) ev.cause = current_;
    push(ev);
    return ev.span;
  }

  /// The ambient cause applied to events recorded with cause==0. 0 means
  /// "root": the event was not triggered by any recorded event.
  [[nodiscard]] std::uint64_t current_cause() const { return current_; }

  /// RAII ambient-cause scope: while alive, events recorded without an
  /// explicit cause are attributed to `span`. Scopes nest (dispatch → handler
  /// → helper) and restore the previous ambient cause on destruction. A
  /// Scope built while the recorder is disabled, or with span 0, is inert —
  /// it neither reads nor writes recorder state, so untraced parallel sweeps
  /// never touch the global singleton.
  class Scope {
   public:
    explicit Scope(std::uint64_t span)
        : recorder_(global()),
          active_(span != 0 && recorder_.enabled()),
          saved_(active_ ? recorder_.current_ : 0) {
      if (active_) recorder_.current_ = span;
    }
    ~Scope() {
      if (active_) recorder_.current_ = saved_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceRecorder& recorder_;
    bool active_;
    std::uint64_t saved_;
  };

  /// Drops all recorded events (and the dropped counter); keeps the enabled
  /// state and capacity.
  void reset();

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Writes one JSON object per line, oldest event first:
  ///   {"vt":12,"node":3,"component":"erb","event":"send","type":"INIT",...}
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string to_jsonl() const;
  /// Returns false when the file cannot be opened.
  bool write_file(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = 1u << 18;

 private:
  void push(const TraceEvent& ev);

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;   // index of the oldest event
  std::size_t count_ = 0;  // number of valid events
  std::uint64_t dropped_ = 0;
  std::uint64_t next_span_ = 1;  // span 0 is reserved for "no cause"
  std::uint64_t current_ = 0;    // ambient cause (see Scope)
  std::vector<TraceEvent> ring_;
};

/// Convenience emitter: single branch when tracing is off. Returns the span
/// id assigned to the event (0 when tracing is disabled), so call sites can
/// open a TraceRecorder::Scope attributing follow-on work to this event.
inline std::uint64_t trace_event(SimTime vt, std::uint32_t node,
                                 const char* component, const char* event,
                                 TraceField f0 = {}, TraceField f1 = {},
                                 TraceField f2 = {}, TraceField f3 = {}) {
  TraceRecorder& tr = TraceRecorder::global();
  if (!tr.enabled()) return 0;
  return tr.record(TraceEvent{vt, node, 0, 0, component, event,
                              {f0, f1, f2, f3}});
}

/// Emitter with an explicit cause, bypassing the ambient scope. Used where
/// the trigger is known out-of-band (a Delivery carries the span of its
/// `net send`), so the attribution cannot depend on which event engine ran
/// the dispatch.
inline std::uint64_t trace_event_caused(SimTime vt, std::uint32_t node,
                                        std::uint64_t cause,
                                        const char* component,
                                        const char* event, TraceField f0 = {},
                                        TraceField f1 = {},
                                        TraceField f2 = {}) {
  TraceRecorder& tr = TraceRecorder::global();
  if (!tr.enabled()) return 0;
  return tr.record(TraceEvent{vt, node, 0, cause, component, event,
                              {f0, f1, f2, TraceField{}}});
}

}  // namespace sgxp2p::obs
