// TraceRecorder — structured per-run event capture with JSONL export.
//
// Records flat events {vt, node, component, event, fields…} into a
// preallocated ring buffer. Recording is designed for the simulator hot
// path:
//   - zero-cost when disabled: one branch on a plain bool, no allocation;
//   - allocation-light when enabled: events are fixed-size PODs whose keys,
//     component, and event names must be string literals (the recorder
//     stores the pointers, never copies), and numeric fields are int64.
//
// Time is always the simulator's virtual clock, so two same-seed runs emit
// byte-identical JSONL — the determinism test in tests/test_obs.cpp holds
// the repo to that.
//
// When the ring overflows the oldest events are dropped (and counted);
// tools warn when dropped() > 0 so a truncated timeline is never silently
// presented as complete.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sgxp2p::obs {

/// One key/value field. `key` and `str` must be string literals (or
/// otherwise outlive the recorder). A null `str` means the value is `num`.
struct TraceField {
  const char* key = nullptr;
  std::int64_t num = 0;
  const char* str = nullptr;
};

/// Numeric field shorthand: fnum("round", 3).
inline TraceField fnum(const char* key, std::int64_t v) {
  return TraceField{key, v, nullptr};
}
/// String field shorthand: fstr("type", "INIT").
inline TraceField fstr(const char* key, const char* v) {
  return TraceField{key, 0, v};
}

struct TraceEvent {
  SimTime vt = 0;
  std::uint32_t node = 0;
  const char* component = nullptr;
  const char* event = nullptr;
  std::array<TraceField, 4> fields{};  // unused tail entries have key==null
};

class TraceRecorder {
 public:
  /// The process-wide recorder every component writes to.
  static TraceRecorder& global();

  /// Starts recording into a ring of `capacity` events (preallocated).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(const TraceEvent& ev) {
    if (!enabled_) return;
    push(ev);
  }

  /// Drops all recorded events (and the dropped counter); keeps the enabled
  /// state and capacity.
  void reset();

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Writes one JSON object per line, oldest event first:
  ///   {"vt":12,"node":3,"component":"erb","event":"send","type":"INIT",...}
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string to_jsonl() const;
  /// Returns false when the file cannot be opened.
  bool write_file(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = 1u << 18;

 private:
  void push(const TraceEvent& ev);

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;   // index of the oldest event
  std::size_t count_ = 0;  // number of valid events
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Convenience emitter: single branch when tracing is off.
inline void trace_event(SimTime vt, std::uint32_t node, const char* component,
                        const char* event, TraceField f0 = {},
                        TraceField f1 = {}, TraceField f2 = {},
                        TraceField f3 = {}) {
  TraceRecorder& tr = TraceRecorder::global();
  if (!tr.enabled()) return;
  tr.record(TraceEvent{vt, node, component, event, {f0, f1, f2, f3}});
}

}  // namespace sgxp2p::obs
