#include "obs/causal.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::obs {

namespace {

bool is_infrastructure(std::string_view c) {
  return c == "net" || c == "sim" || c == "channel" || c == "sgx";
}

}  // namespace

std::int64_t CausalEvent::num(std::string_view key,
                              std::int64_t fallback) const {
  for (const auto& [k, v] : nums) {
    if (k == key) return v;
  }
  return fallback;
}

const std::string* CausalEvent::str(std::string_view key) const {
  for (const auto& [k, v] : strs) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<CausalGraph> CausalGraph::parse(const std::string& jsonl,
                                              std::string* error) {
  auto fail = [&](std::size_t lineno, const char* what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + what;
    }
    return std::nullopt;
  };
  CausalGraph g;
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto doc = json_parse(line);
    if (!doc || !doc->is_object()) return fail(lineno, "malformed JSON");
    const JsonValue* vt = doc->get("vt");
    const JsonValue* node = doc->get("node");
    const JsonValue* span = doc->get("span");
    const JsonValue* cause = doc->get("cause");
    const JsonValue* comp = doc->get("component");
    const JsonValue* event = doc->get("event");
    if (vt == nullptr || node == nullptr || comp == nullptr ||
        event == nullptr || !comp->is_string() || !event->is_string()) {
      return fail(lineno, "missing trace fields");
    }
    if (span == nullptr || cause == nullptr) {
      return fail(lineno, "trace has no span/cause (pre-causal format?)");
    }
    CausalEvent ev;
    ev.vt = vt->as_int();
    ev.node = static_cast<std::uint32_t>(node->as_int());
    ev.span = static_cast<std::uint64_t>(span->as_int());
    ev.cause = static_cast<std::uint64_t>(cause->as_int());
    ev.component = comp->string;
    ev.event = event->string;
    if (ev.span == 0) return fail(lineno, "span 0 is not a valid span id");
    for (const auto& [k, v] : doc->object) {
      if (k == "vt" || k == "node" || k == "span" || k == "cause" ||
          k == "component" || k == "event") {
        continue;
      }
      if (v.is_string()) {
        ev.strs.emplace_back(k, v.string);
      } else {
        ev.nums.emplace_back(k, v.as_int());
      }
    }
    g.events_.push_back(std::move(ev));
  }
  if (!g.events_.empty()) {
    g.min_span_ = g.events_.front().span;
    g.max_span_ = g.events_.back().span;
    for (const CausalEvent& ev : g.events_) {
      if (ev.cause != 0 && ev.cause < g.min_span_) ++g.truncated_causes_;
    }
  }
  return g;
}

const CausalEvent* CausalGraph::by_span(std::uint64_t span) const {
  if (span < min_span_ || span > max_span_) return nullptr;
  const std::size_t idx = static_cast<std::size_t>(span - min_span_);
  if (idx >= events_.size() || events_[idx].span != span) return nullptr;
  return &events_[idx];
}

std::vector<std::string> CausalGraph::check_conservation() const {
  std::vector<std::string> violations;
  auto bad = [&](const CausalEvent& ev, const std::string& what) {
    violations.push_back("span " + std::to_string(ev.span) + " (" +
                         ev.component + " " + ev.event + " @" +
                         std::to_string(ev.vt) + "): " + what);
  };
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const CausalEvent& ev = events_[i];
    if (i > 0 && ev.span != events_[i - 1].span + 1) {
      bad(ev, "span ids not contiguous (prev " +
                  std::to_string(events_[i - 1].span) + ")");
    }
    const bool cause_in_window = ev.cause >= min_span_;
    if (ev.cause != 0) {
      if (ev.cause >= ev.span) {
        bad(ev, "cause " + std::to_string(ev.cause) +
                    " does not precede the event");
        continue;
      }
      if (cause_in_window) {
        const CausalEvent* parent = by_span(ev.cause);
        if (parent == nullptr) {
          bad(ev, "dangling cause " + std::to_string(ev.cause));
          continue;
        }
        if (parent->vt > ev.vt) {
          bad(ev, "cause at vt " + std::to_string(parent->vt) +
                      " is later than the event");
        }
      }
    }
    if (ev.component == "net" && ev.event == "deliver") {
      if (ev.cause == 0) {
        bad(ev, "delivery with no recorded send");
      } else if (cause_in_window) {
        const CausalEvent* send = by_span(ev.cause);
        if (send == nullptr || send->component != "net" ||
            send->event != "send") {
          bad(ev, "delivery's cause is not a net send");
        } else if (send->node != static_cast<std::uint32_t>(ev.num("from")) ||
                   send->num("to") != static_cast<std::int64_t>(ev.node)) {
          bad(ev, "delivery endpoints do not mirror the send");
        } else if (send->num("arrival") != ev.vt) {
          bad(ev, "delivery vt " + std::to_string(ev.vt) +
                      " != send arrival " +
                      std::to_string(send->num("arrival")));
        }
      }
      // cause below the window: unverifiable, already in truncated_causes_.
    }
  }
  return violations;
}

std::vector<CausalGraph::CriticalPath> CausalGraph::critical_paths() const {
  std::vector<CriticalPath> paths;
  for (const CausalEvent& decide : events_) {
    if (decide.event != "decide" || is_infrastructure(decide.component)) {
      continue;
    }
    CriticalPath cp;
    cp.decide_span = decide.span;
    cp.node = decide.node;
    cp.total_ms = decide.num("latency_ms");
    const SimTime t0 = decide.vt - cp.total_ms;  // the protocol's T0
    const CausalEvent* cur = &decide;
    bool rooted = false;
    while (true) {
      if (cur->cause == 0) {
        rooted = true;
        break;
      }
      const CausalEvent* parent = by_span(cur->cause);
      if (parent == nullptr) break;  // chain truncated out of the ring
      Step step;
      step.span = parent->span;
      step.node = parent->node;
      step.vt = parent->vt;
      step.label = parent->component + "." + parent->event;
      // The whole chain never reaches below T0 except via protocol_start
      // (emitted just before the synchronized start); clamp so pre-start
      // setup time is never attributed to the decide.
      const SimTime from = std::max(parent->vt, t0);
      std::int64_t gap = std::max<std::int64_t>(cur->vt - from, 0);
      if (cur->component == "net" && cur->event == "deliver" &&
          parent->component == "net" && parent->event == "send") {
        // Wire hop. The send's sgxms share is enclave-transition time the
        // sender paid before the message left the NIC.
        const std::int64_t sgx = std::min(parent->num("sgxms"), gap);
        cp.sgx_ms += sgx;
        cp.network_ms += gap - sgx;
        step.segment = "network";
      } else {
        // Same causal locality: handler compute, or the protocol waiting
        // for the next round boundary (the "Wait(rnd)" in Algorithm 2).
        cp.compute_ms += gap;
        step.segment = "compute";
      }
      step.ms = gap;
      cp.steps.push_back(std::move(step));
      if (parent->vt <= t0) {
        rooted = true;  // reached the protocol start boundary
        break;
      }
      cur = parent;
    }
    if (rooted && cur->cause == 0 && cur->vt > t0) {
      // Root fired after T0 (e.g. the first INIT rides round 1's tick at
      // T0 exactly — gap 0 — but a late-started chain waits here).
      Step step;
      step.span = cur->span;
      step.node = cur->node;
      step.vt = cur->vt;
      step.label = "wait." + cur->component + "." + cur->event;
      step.segment = "compute";
      step.ms = cur->vt - t0;
      cp.compute_ms += step.ms;
      cp.steps.push_back(std::move(step));
    }
    cp.unattributed_ms = cp.total_ms - cp.attributed_ms();
    paths.push_back(std::move(cp));
  }
  return paths;
}

std::string CausalGraph::to_perfetto() const {
  std::string out;
  out.reserve(events_.size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ',';
    first = false;
    out += obj;
  };
  auto num = [](std::int64_t v) { return std::to_string(v); };

  // One Perfetto "process" per node.
  std::map<std::uint32_t, SimTime> last_vt;
  for (const CausalEvent& ev : events_) {
    last_vt[ev.node] = std::max(last_vt[ev.node], ev.vt);
  }
  for (const auto& [node, vt] : last_vt) {
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + num(node) +
         ",\"args\":{\"name\":\"node " + num(node) + "\"}}");
  }

  // Round slices: round_begin → next round_begin on the same node.
  std::map<std::uint32_t, std::vector<const CausalEvent*>> rounds;
  for (const CausalEvent& ev : events_) {
    if (ev.event == "round_begin") rounds[ev.node].push_back(&ev);
  }
  for (const auto& [node, begins] : rounds) {
    for (std::size_t i = 0; i < begins.size(); ++i) {
      const CausalEvent* b = begins[i];
      const SimTime end = i + 1 < begins.size() ? begins[i + 1]->vt
                                                : last_vt[node] + 1;
      emit("{\"ph\":\"X\",\"name\":\"round " + num(b->num("round")) +
           "\",\"cat\":\"round\",\"pid\":" + num(node) +
           ",\"tid\":0,\"ts\":" + num(b->vt * 1000) +
           ",\"dur\":" + num(std::max<SimTime>(end - b->vt, 1) * 1000) +
           ",\"args\":{\"span\":" + num(static_cast<std::int64_t>(b->span)) +
           "}}");
    }
  }

  // Every event as a thin slice nested under its round, args = the DAG ids
  // plus the numeric fields.
  for (const CausalEvent& ev : events_) {
    if (ev.event == "round_begin") continue;  // already a slice
    std::string args =
        "\"span\":" + num(static_cast<std::int64_t>(ev.span)) +
        ",\"cause\":" + num(static_cast<std::int64_t>(ev.cause));
    for (const auto& [k, v] : ev.nums) {
      args += ",\"" + json_escape(k) + "\":" + num(v);
    }
    for (const auto& [k, v] : ev.strs) {
      args += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    emit("{\"ph\":\"X\",\"name\":\"" + json_escape(ev.component) + "." +
         json_escape(ev.event) + "\",\"cat\":\"" + json_escape(ev.component) +
         "\",\"pid\":" + num(ev.node) + ",\"tid\":0,\"ts\":" +
         num(ev.vt * 1000) + ",\"dur\":200,\"args\":{" + args + "}}");
  }

  // Flow arrows: send → deliver, id = the send's span.
  for (const CausalEvent& ev : events_) {
    if (ev.component != "net" || ev.event != "deliver") continue;
    const CausalEvent* send = by_span(ev.cause);
    if (send == nullptr) continue;
    const std::string id = num(static_cast<std::int64_t>(send->span));
    emit("{\"ph\":\"s\",\"name\":\"msg\",\"cat\":\"flow\",\"id\":" + id +
         ",\"pid\":" + num(send->node) + ",\"tid\":0,\"ts\":" +
         num(send->vt * 1000) + "}");
    emit("{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"msg\",\"cat\":\"flow\",\"id\":" +
         id + ",\"pid\":" + num(ev.node) + ",\"tid\":0,\"ts\":" +
         num(ev.vt * 1000) + "}");
  }
  out += "]}";
  return out;
}

}  // namespace sgxp2p::obs
