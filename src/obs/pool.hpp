// BufferPool — recycles Bytes capacity across the seal → send → deliver →
// unseal cycle.
//
// A simulated broadcast round moves ~n² messages, and before pooling every
// hop allocated a fresh vector: seal allocates the ciphertext, the network
// event owns it until delivery, open allocates the plaintext, and all of
// them hit the allocator again next round. The pool keeps returned buffers
// on a thread-local free list so steady-state rounds run allocation-free:
// `acquire` pops a buffer and re-sizes it (value-initialized, so recycled
// capacity can never leak a previous message's bytes — the poisoning test
// in tests/test_event_engine.cpp pins this), `release` pushes it back.
//
// The pool is thread-local (the simulator is single-threaded per run, and
// parallel sweep workers each get their own pool, matching the per-thread
// MetricsRegistry::current() contract). Only the deterministic totals
// (acquires/releases) are published as registry metrics — hit/miss splits
// depend on pool warmth left over from earlier runs in the same thread and
// would break byte-identical same-seed metric snapshots, so those stay
// process-local in Stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace sgxp2p::obs {

class BufferPool {
 public:
  /// The calling thread's pool.
  static BufferPool& local();

  /// Returns a buffer of exactly `size` zero-filled bytes (same contents as
  /// a freshly constructed `Bytes(size)`), reusing pooled capacity.
  [[nodiscard]] Bytes acquire(std::size_t size);

  /// Returns an empty buffer with capacity ≥ `capacity` reserved. For
  /// callers that assign/append the full contents themselves and don't want
  /// to pay for the zero-fill.
  [[nodiscard]] Bytes acquire_empty(std::size_t capacity);

  /// Returns a buffer to the free list. Oversized or surplus buffers are
  /// dropped so the pool's footprint stays bounded.
  void release(Bytes buf);

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::uint64_t hits = 0;     // acquire served from the free list
    std::uint64_t misses = 0;   // acquire fell through to the allocator
    std::uint64_t dropped = 0;  // release discarded (full / oversized)
    std::uint64_t recycled_bytes = 0;  // capacity handed back out via hits
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }

  /// Drops all pooled buffers and zeroes the stats. Benches call this
  /// between measured configurations so every run starts cold.
  void clear();

  /// Turns recycling off/on (default on). Off, every acquire allocates
  /// fresh and every release drops — the pre-pool allocation behavior
  /// bench_scale uses for its reference configuration. The registry-visible
  /// totals (acquires/releases) are counted identically either way, so
  /// metric snapshots do not depend on this switch.
  void set_recycling(bool on) {
    recycling_ = on;
    if (!on) {
      free_.clear();
      free_.shrink_to_fit();
    }
  }
  [[nodiscard]] bool recycling() const { return recycling_; }

  /// Free-list depth cap: beyond this, released buffers are freed.
  static constexpr std::size_t kMaxFree = 4096;
  /// Buffers with more capacity than this are never pooled (checkpoint and
  /// attestation blobs would pin large allocations forever).
  static constexpr std::size_t kMaxPooledCapacity = std::size_t{1} << 20;

 private:
  Bytes take(std::size_t want);

  std::vector<Bytes> free_;
  Stats stats_;
  bool recycling_ = true;
};

}  // namespace sgxp2p::obs
