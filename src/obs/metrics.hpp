// MetricsRegistry — process-wide named counters, gauges, and fixed-bucket
// histograms.
//
// The registry is the single measurement surface of the repo: the simulator,
// network, channel, and protocol layers all register instruments here, the
// benches and tools serialize a snapshot to JSON (`BENCH_<name>.json`), and
// the determinism tests compare snapshots across same-seed runs.
//
// Hot-path cost model: instrument handles are resolved once (a mutex-guarded
// map lookup) and cached by the instrumented component; after that an
// increment is a single relaxed atomic add, so the O(N³)-message accounted
// benches stay simulable with metrics permanently on. Values are relaxed
// atomics because the TCP transports touch them from I/O threads; the
// simulator itself is single-threaded, so snapshots taken between runs are
// exact and deterministic.
//
// Labels are a cheap single dimension: `counter("erb.send", "INIT")`
// registers the instrument `erb.send{INIT}`. Snapshots iterate name-sorted
// maps, so serialization order — and therefore the JSON byte stream — is
// deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sgxp2p::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void max_of(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Histogram with fixed explicit upper bounds (strictly increasing); values
/// above the last bound land in an implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  /// Adds pre-aggregated bucket counts (plus count/sum) from a snapshot of a
  /// histogram with identical bounds. Used when merging per-run registries.
  void add_buckets(const std::vector<std::uint64_t>& buckets,
                   std::uint64_t count, std::int64_t sum);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// Bucket counts, size bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  friend bool operator==(const GaugeSample&, const GaugeSample&) = default;
};

struct HistogramSample {
  std::string name;
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  friend bool operator==(const HistogramSample&,
                         const HistogramSample&) = default;
};

/// Point-in-time copy of every registered instrument, name-sorted.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;

  [[nodiscard]] const CounterSample* find_counter(std::string_view name) const;

  /// Stable serialization: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"bounds":[...],"buckets":[...],"count":c,"sum":s}}}.
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Returns a stable reference; registering the same name+label twice
  /// returns the same instrument.
  Counter& counter(std::string_view name, std::string_view label = {});
  Gauge& gauge(std::string_view name, std::string_view label = {});
  /// `bounds` only applies on first registration of the instrument.
  Histogram& histogram(std::string_view name, std::vector<std::int64_t> bounds,
                       std::string_view label = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zeroes every value; registrations (and handed-out references) survive.
  void reset();
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }

  /// Process-unique id for this registry instance. Components that cache
  /// instrument handles key their caches on this (never on the registry's
  /// address, which the allocator can reuse across short-lived registries).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// The process-wide registry every component instruments by default.
  static MetricsRegistry& global();

  /// The registry components instrument on this thread. Defaults to global();
  /// rebind with ScopedCurrent to isolate a run (e.g. one sweep point per
  /// worker thread).
  static MetricsRegistry& current();

  /// RAII rebind of current() for this thread.
  class ScopedCurrent {
   public:
    explicit ScopedCurrent(MetricsRegistry& registry);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;

   private:
    MetricsRegistry* previous_;
  };

 private:
  static std::string full_name(std::string_view name, std::string_view label);
  static std::uint64_t next_id();

  const std::uint64_t id_ = next_id();
  mutable std::mutex mu_;  // guards the maps; values are atomics
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Folds a snapshot into `into`: counters add, gauges take the max (they are
/// high-water marks across runs), histograms add bucket counts. Every fold
/// operation is commutative and associative, so merging per-run snapshots in
/// any order yields the same totals — this is what keeps parallel sweeps
/// byte-identical to sequential ones.
void merge_snapshot(MetricsRegistry& into, const MetricsSnapshot& snap);

/// Escapes a string for inclusion in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

}  // namespace sgxp2p::obs
