// Minimal JSON reader for the observability tooling.
//
// Parses the subset the repo itself emits (objects, arrays, strings,
// integer/decimal numbers, booleans, null) — enough for the metrics JSON
// round-trip test, the trace analyzer, and the bench-output smoke check,
// without taking a dependency the container doesn't have. Numbers are held
// as int64 when the text is integral (metric values, virtual times) and as
// double otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgxp2p::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  std::int64_t integer = 0;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const {
    return type == Type::kInt || type == Type::kDouble;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    if (type == Type::kInt) return integer;
    if (type == Type::kDouble) return static_cast<std::int64_t>(number);
    return fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0) const {
    if (type == Type::kInt) return static_cast<double>(integer);
    if (type == Type::kDouble) return number;
    return fallback;
  }
};

/// Strict parse of a complete JSON document; nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace sgxp2p::obs
