// TcpTestbed — the protocol stack over real TCP sockets and wall-clock
// rounds.
//
// Mirrors sim::Testbed's shape (build → start → run_rounds) but with: a
// TcpBus mesh instead of the simulated network, SteadyClock (CLOCK_MONOTONIC)
// as the enclaves' trusted time, and real sleeping between round boundaries.
// All node state is serialized under one mutex: inbound frames arrive on the
// bus I/O thread, ticks on the caller thread. Intended for the localhost
// deployment example and the TCP integration tests (honest nodes; the
// byzantine machinery lives in the deterministic simulator where its effects
// are measurable).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/tcp_bus.hpp"
#include "protocol/peer_enclave.hpp"
#include "sgx/attestation.hpp"
#include "sgx/platform.hpp"

namespace sgxp2p::net {

struct TcpTestbedConfig {
  std::uint32_t n = 4;
  std::uint32_t t = 0;              // 0 → ⌊(n−1)/2⌋
  SimDuration round_ms = 250;       // wall-clock round (2Δ); localhost Δ≈125ms
  std::uint64_t seed = 1;
};

class TcpTestbed {
 public:
  using EnclaveFactory = std::function<std::unique_ptr<protocol::PeerEnclave>(
      NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
      protocol::PeerConfig cfg, const sgx::SimIAS& ias)>;

  explicit TcpTestbed(TcpTestbedConfig config);
  ~TcpTestbed();

  /// Builds nodes, runs the attested setup, and starts the socket mesh.
  /// Returns false if the mesh could not be established.
  bool build(const EnclaveFactory& make_enclave);

  /// Synchronized start (S2): T0 = now + one round.
  void start();

  /// Drives `max_rounds` wall-clock rounds; `stop_when` is evaluated at each
  /// boundary under the state lock. Returns rounds executed.
  std::uint32_t run_rounds(std::uint32_t max_rounds,
                           const std::function<bool()>& stop_when = {});

  /// Crash injection: destroys node `id`'s enclave under the state lock.
  /// Inbound frames for it are dropped until recover_node(). The socket
  /// mesh stays up — only the enclave dies, as in the simulator testbed.
  void crash_node(NodeId id);

  /// Relaunches a crashed node: rebuilds the enclave, runs `before_start`
  /// (restore + re-handshakes) under the lock, and starts it at the
  /// original T0 so its trusted-time round clock matches the others.
  protocol::PeerEnclave& recover_node(
      NodeId id, const EnclaveFactory& make_enclave,
      const std::function<void(protocol::PeerEnclave&)>& before_start = {});

  /// Runs `fn` under the state lock (for inspecting results).
  template <typename Fn>
  auto locked(Fn&& fn) {
    std::lock_guard<std::mutex> lock(state_mu_);
    return fn();
  }

  [[nodiscard]] protocol::PeerEnclave& enclave(NodeId id) {
    return *enclaves_.at(id);
  }
  template <typename T>
  [[nodiscard]] T& enclave_as(NodeId id) {
    return dynamic_cast<T&>(*enclaves_.at(id));
  }
  [[nodiscard]] TcpBus& bus() { return *bus_; }
  [[nodiscard]] const TcpTestbedConfig& config() const { return cfg_; }

 private:
  // The host of a TCP node: transfers blobs over the socket mesh.
  class BusHost final : public sgx::EnclaveHostIface {
   public:
    BusHost(NodeId self, TcpBus& bus) : self_(self), bus_(&bus) {}
    void transfer(NodeId to, Bytes blob) override {
      bus_->send(self_, to, blob);
    }

   private:
    NodeId self_;
    TcpBus* bus_;
  };

  TcpTestbedConfig cfg_;
  SteadyClock clock_;
  std::unique_ptr<TcpBus> bus_;
  sgx::SgxPlatform platform_;
  std::unique_ptr<sgx::SimIAS> ias_;
  std::vector<std::unique_ptr<BusHost>> hosts_;
  std::vector<std::unique_ptr<protocol::PeerEnclave>> enclaves_;
  std::mutex state_mu_;
  SimTime t0_ = 0;
  std::uint32_t rounds_run_ = 0;
};

}  // namespace sgxp2p::net
