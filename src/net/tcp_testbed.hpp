// TcpTestbed — the protocol stack over real TCP sockets and wall-clock
// rounds.
//
// Mirrors sim::Testbed's shape (build → start → run_rounds) but with: a
// TcpBus mesh instead of the simulated network, SteadyClock (CLOCK_MONOTONIC)
// as the enclaves' trusted time, and real sleeping between round boundaries.
// All node state is serialized under one mutex: inbound frames arrive on the
// bus I/O thread, ticks on the caller thread. Intended for the localhost
// deployment example, the TCP integration tests, bench_tcp (which selects
// the bus implementation via TcpTestbedConfig::bus_kind), and the TCP fuzz
// runner (which injects a send hook to fault outbound traffic — see
// fuzz/tcp_shim.hpp).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/tcp_bus.hpp"
#include "protocol/peer_enclave.hpp"
#include "sgx/attestation.hpp"
#include "sgx/platform.hpp"

namespace sgxp2p::net {

/// Which data plane carries the frames: the epoll event loop (production)
/// or the preserved poll(2)+mutex loop (bench comparison baseline).
enum class TcpBusKind : std::uint8_t { kEpoll, kLegacyPoll };

struct TcpTestbedConfig {
  std::uint32_t n = 4;
  std::uint32_t t = 0;              // 0 → ⌊(n−1)/2⌋
  SimDuration round_ms = 250;       // wall-clock round (2Δ); localhost Δ≈125ms
  std::uint64_t seed = 1;
  TcpBusKind bus_kind = TcpBusKind::kEpoll;
  TcpBusOptions bus_options;        // epoll bus only
};

class TcpTestbed {
 public:
  using EnclaveFactory = std::function<std::unique_ptr<protocol::PeerEnclave>(
      NodeId id, sgx::SgxPlatform& platform, sgx::EnclaveHostIface& host,
      protocol::PeerConfig cfg, const sgx::SimIAS& ias)>;

  /// Outbound-frame interposer (the TCP fuzz shim): return false to
  /// suppress the frame, true to let it through. `round` is the current
  /// wall-clock round (0 before start()). Runs on whichever thread the
  /// enclave sent from; must not call back into the testbed lock.
  using SendHook =
      std::function<bool(NodeId from, NodeId to, ByteView blob,
                         std::uint32_t round)>;

  explicit TcpTestbed(TcpTestbedConfig config);
  ~TcpTestbed();

  /// Installs the outbound interposer. Call before build().
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  /// Builds nodes, runs the attested setup, and starts the socket mesh.
  /// Returns false if the mesh could not be established.
  bool build(const EnclaveFactory& make_enclave);

  /// Synchronized start (S2): T0 = now + one round.
  void start();

  /// Drives `max_rounds` wall-clock rounds; `stop_when` is evaluated at each
  /// boundary under the state lock. Returns rounds executed.
  std::uint32_t run_rounds(std::uint32_t max_rounds,
                           const std::function<bool()>& stop_when = {});

  /// Crash injection: destroys node `id`'s enclave under the state lock.
  /// Inbound frames for it are dropped until recover_node(). The socket
  /// mesh stays up — only the enclave dies, as in the simulator testbed.
  void crash_node(NodeId id);

  /// Relaunches a crashed node: rebuilds the enclave, runs `before_start`
  /// (restore + re-handshakes) under the lock, and starts it at the
  /// original T0 so its trusted-time round clock matches the others.
  protocol::PeerEnclave& recover_node(
      NodeId id, const EnclaveFactory& make_enclave,
      const std::function<void(protocol::PeerEnclave&)>& before_start = {});

  /// Runs `fn` under the state lock (for inspecting results).
  template <typename Fn>
  auto locked(Fn&& fn) {
    std::lock_guard<std::mutex> lock(state_mu_);
    return fn();
  }

  /// The wall-clock round in progress: 0 before T0, 1 during [T0, T0+round),
  /// … Safe from any thread (the fuzz shim's delay worker uses it).
  [[nodiscard]] std::uint32_t current_round() const;

  /// Sends a frame on the raw bus, bypassing the send hook — the shim's
  /// delayed/duplicated deliveries re-enter here. Failures are logged once
  /// per connection and counted by the bus.
  SendStatus bus_send_raw(NodeId from, NodeId to, Bytes blob);

  [[nodiscard]] protocol::PeerEnclave& enclave(NodeId id) {
    return *enclaves_.at(id);
  }
  template <typename T>
  [[nodiscard]] T& enclave_as(NodeId id) {
    return dynamic_cast<T&>(*enclaves_.at(id));
  }
  [[nodiscard]] TcpBusIface& bus() { return *bus_; }
  [[nodiscard]] const TcpTestbedConfig& config() const { return cfg_; }

 private:
  // The host of a TCP node: transfers blobs over the socket mesh.
  class BusHost final : public sgx::EnclaveHostIface {
   public:
    BusHost(NodeId self, TcpTestbed& bed) : self_(self), bed_(&bed) {}
    void transfer(NodeId to, Bytes blob) override {
      bed_->host_transfer(self_, to, std::move(blob));
    }

   private:
    NodeId self_;
    TcpTestbed* bed_;
  };

  void host_transfer(NodeId from, NodeId to, Bytes blob);

  TcpTestbedConfig cfg_;
  SteadyClock clock_;
  std::unique_ptr<TcpBusIface> bus_;
  sgx::SgxPlatform platform_;
  std::unique_ptr<sgx::SimIAS> ias_;
  std::vector<std::unique_ptr<BusHost>> hosts_;
  std::vector<std::unique_ptr<protocol::PeerEnclave>> enclaves_;
  SendHook send_hook_;
  // One warn per connection on the first failed send (satellite of the
  // status-enum change: failures used to vanish silently).
  std::unique_ptr<std::atomic<bool>[]> send_warned_;
  std::mutex state_mu_;
  std::atomic<SimTime> t0_{0};
  std::uint32_t rounds_run_ = 0;
};

}  // namespace sgxp2p::net
