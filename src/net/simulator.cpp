#include "net/simulator.hpp"

#include <algorithm>
#include <utility>

namespace sgxp2p::sim {

Simulator::Simulator(obs::MetricsRegistry& registry)
    : scheduled_ctr_(registry.counter("sim.events_scheduled")),
      fired_ctr_(registry.counter("sim.events_fired")),
      depth_gauge_(registry.gauge("sim.queue_depth")),
      depth_peak_(registry.gauge("sim.queue_peak")),
      wait_hist_(registry.histogram(
          "sim.event_wait_ms",
          {0, 1, 10, 100, 250, 500, 1000, 2000, 5000, 10000})) {}

void Simulator::heap_push(Event ev) {
  heap_.push_back(std::move(ev));
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulator::Event Simulator::heap_pop() {
  Event out = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
  }
  heap_.pop_back();
  // Sift the relocated tail element down to restore the heap property.
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    std::size_t left = 2 * i + 1;
    std::size_t right = 2 * i + 2;
    if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return out;
}

void Simulator::schedule(SimTime at, std::function<void()> fn) {
  heap_push(Event{std::max(at, now_), next_seq_++, now_, std::move(fn)});
  scheduled_ctr_.inc();
  auto depth = static_cast<std::int64_t>(heap_.size());
  depth_gauge_.set(depth);
  depth_peak_.max_of(depth);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  Event ev = heap_pop();
  now_ = ev.at;
  fired_ctr_.inc();
  depth_gauge_.set(static_cast<std::int64_t>(heap_.size()));
  wait_hist_.observe(ev.at - ev.queued_at);
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!heap_.empty() && heap_.front().at <= t) {
    step();
  }
  now_ = std::max(now_, t);
}

}  // namespace sgxp2p::sim
