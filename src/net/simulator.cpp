#include "net/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string_view>
#include <utility>

namespace sgxp2p::sim {

SimEngine resolve_engine(SimEngine engine) {
  if (engine != SimEngine::kDefault) return engine;
  if (const char* env = std::getenv("SGXP2P_SIM_ENGINE")) {
    if (std::string_view(env) == "heap") return SimEngine::kHeap;
  }
  return SimEngine::kWheel;
}

const char* engine_name(SimEngine engine) {
  switch (resolve_engine(engine)) {
    case SimEngine::kHeap:
      return "heap";
    default:
      return "wheel";
  }
}

Simulator::Simulator(obs::MetricsRegistry& registry, SimEngine engine)
    : engine_(resolve_engine(engine)),
      scheduled_ctr_(registry.counter("sim.events_scheduled")),
      fired_ctr_(registry.counter("sim.events_fired")),
      deliveries_ctr_(registry.counter("sim.deliveries")),
      depth_gauge_(registry.gauge("sim.queue_depth")),
      depth_peak_(registry.gauge("sim.queue_peak")),
      wait_hist_(registry.histogram(
          "sim.event_wait_ms",
          {0, 1, 10, 100, 250, 500, 1000, 2000, 5000, 10000})) {}

// ---------------------------------------------------------------------------
// Timer wheel

int Simulator::Wheel::level_for(SimTime at) const {
  // An event belongs to the lowest level at which its bucket index differs
  // from the cursor's by < kSlots. The subtraction is safe: callers only
  // insert at >= cur_.
  const auto a = static_cast<std::uint64_t>(at);
  const auto c = static_cast<std::uint64_t>(cur_);
  for (int l = 0; l < kLevels; ++l) {
    if (((a >> (l * kBits)) - (c >> (l * kBits))) < kSlots) return l;
  }
  return -1;  // beyond the top level: overflow list
}

int Simulator::Wheel::scan_from(int level, std::size_t start) const {
  const std::uint64_t* words = occupied_.data() +
                               static_cast<std::size_t>(level) * kWords;
  std::size_t w = start >> 6;
  std::uint64_t word = words[w] & (~std::uint64_t{0} << (start & 63));
  // One full cycle plus a re-visit of the masked first word.
  for (std::size_t i = 0; i <= kWords; ++i) {
    if (word != 0) {
      return static_cast<int>((w << 6) +
                              static_cast<std::size_t>(std::countr_zero(word)));
    }
    w = (w + 1) & (kWords - 1);
    word = words[w];
  }
  return -1;
}

void Simulator::Wheel::place(Event ev) {
  const int l = level_for(ev.at);
  if (l < 0) {
    far_min_ = std::min(far_min_, ev.at);
    far_.push_back(std::move(ev));
    return;
  }
  const std::size_t idx =
      (static_cast<std::uint64_t>(ev.at) >> (l * kBits)) & kMask;
  const std::size_t s = static_cast<std::size_t>(l) * kSlots + idx;
  slot_min_[s] = std::min(slot_min_[s], ev.at);
  occupied_[static_cast<std::size_t>(l) * kWords + (idx >> 6)] |=
      std::uint64_t{1} << (idx & 63);
  slots_[s].push_back(std::move(ev));
}

void Simulator::Wheel::insert(Event ev) {
  ++size_;
  place(std::move(ev));
}

std::optional<SimTime> Simulator::Wheel::peek() const {
  SimTime best = kNoTime;
  for (int l = 0; l < kLevels; ++l) {
    std::size_t start =
        (static_cast<std::uint64_t>(cur_) >> (l * kBits)) & kMask;
    // At coarse levels the cursor's own bucket is always empty (its events
    // cascaded down when the cursor entered it), so the cyclic scan starts
    // just past it — making scan order equal time order within the level.
    if (l > 0) start = (start + 1) & kMask;
    const int idx = scan_from(l, start);
    if (idx >= 0) {
      best = std::min(
          best, slot_min_[static_cast<std::size_t>(l) * kSlots +
                          static_cast<std::size_t>(idx)]);
    }
  }
  if (!far_.empty()) best = std::min(best, far_min_);
  if (best == kNoTime) return std::nullopt;
  return best;
}

void Simulator::Wheel::cascade(int level, std::size_t idx) {
  const std::size_t s = static_cast<std::size_t>(level) * kSlots + idx;
  auto& slot = slots_[s];
  if (slot.empty()) return;
  occupied_[static_cast<std::size_t>(level) * kWords + (idx >> 6)] &=
      ~(std::uint64_t{1} << (idx & 63));
  slot_min_[s] = kNoTime;
  scratch_.clear();
  scratch_.swap(slot);  // also hands scratch_'s old capacity to the slot
  for (Event& ev : scratch_) place(std::move(ev));
}

void Simulator::Wheel::advance(SimTime to) {
  if (to <= cur_) return;
  const auto old = static_cast<std::uint64_t>(cur_);
  const auto tgt = static_cast<std::uint64_t>(to);
  cur_ = to;
  // Top-down: a bucket cascaded from level L may land in the level-(L−1)
  // bucket that is itself about to be cascaded.
  for (int l = kLevels - 1; l >= 1; --l) {
    if ((old >> (l * kBits)) == (tgt >> (l * kBits))) continue;
    cascade(l, (tgt >> (l * kBits)) & kMask);
  }
  if (!far_.empty() && (old >> (kLevels * kBits)) != (tgt >> (kLevels * kBits))) {
    std::vector<Event> keep;
    keep.reserve(far_.size());
    far_min_ = kNoTime;
    for (Event& ev : far_) {
      if (level_for(ev.at) >= 0) {
        place(std::move(ev));
      } else {
        far_min_ = std::min(far_min_, ev.at);
        keep.push_back(std::move(ev));
      }
    }
    far_ = std::move(keep);
  }
}

void Simulator::Wheel::take_due(std::vector<Event>& out) {
  const std::size_t idx = static_cast<std::uint64_t>(cur_) & kMask;
  auto& slot = slots_[idx];  // level 0
  if (slot.empty()) return;
  occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  slot_min_[idx] = kNoTime;
  size_ -= slot.size();
  if (out.empty()) {
    out.swap(slot);  // steal the batch wholesale, recycle out's capacity
  } else {
    for (Event& ev : slot) out.push_back(std::move(ev));
    slot.clear();
  }
}

// ---------------------------------------------------------------------------
// Reference heap engine (the original event queue, byte-identical behavior)

void Simulator::heap_push(Event ev) {
  heap_.push_back(std::move(ev));
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulator::Event Simulator::heap_pop() {
  Event out = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
  }
  heap_.pop_back();
  // Sift the relocated tail element down to restore the heap property.
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    std::size_t left = 2 * i + 1;
    std::size_t right = 2 * i + 2;
    if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Engine-independent driver

void Simulator::enqueue(Event ev) {
  scheduled_ctr_.inc();
  if (engine_ == SimEngine::kHeap) {
    heap_push(std::move(ev));
  } else if (active_pos_ < active_.size() && ev.at == now_) {
    // An event scheduled at now while the now-batch drains fires after the
    // batch's remaining events — exactly the heap's FIFO tie-break.
    active_.push_back(std::move(ev));
  } else {
    wheel_.insert(std::move(ev));
  }
  auto depth = static_cast<std::int64_t>(pending());
  depth_gauge_.set(depth);
  depth_peak_.max_of(depth);
}

void Simulator::schedule(SimTime at, std::function<void()> fn) {
  Event ev;
  ev.at = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.queued_at = now_;
  // A timer inherits the causal context of whoever armed it, so the span
  // DAG flows through protocol delays (retransmit timers, round alignment).
  ev.cause_span = obs::TraceRecorder::global().current_cause();
  ev.fn = std::move(fn);
  enqueue(std::move(ev));
}

std::uint32_t Simulator::add_delivery_handler(DeliveryHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

void Simulator::schedule_delivery(SimTime at, std::uint32_t handler,
                                  Delivery d) {
  deliveries_ctr_.inc();
  if (engine_ == SimEngine::kHeap) {
    // The reference engine reproduces the original delivery path exactly:
    // one heap-allocated std::function closure per message, dispatched
    // type-erased — this is the baseline bench_scale measures against.
    schedule(at, [this, handler, d = std::move(d)]() mutable {
      handlers_[handler](std::move(d));
    });
    return;
  }
  Event ev;
  ev.at = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.queued_at = now_;
  ev.cause_span = d.cause_span;
  ev.delivery = std::move(d);
  ev.handler = handler;
  enqueue(std::move(ev));
}

void Simulator::fire(Event& ev) {
  fired_ctr_.inc();
  depth_gauge_.set(static_cast<std::int64_t>(pending()));
  wait_hist_.observe(ev.at - ev.queued_at);
  penalty_ = SimDuration{0};
  // Everything the handler does — trace events, sends, timers it arms — is
  // caused by this event. The Scope is inert when tracing is off, and the
  // Network re-scopes deliveries to their own `deliver` span, so both
  // engines (closure-wrapped heap deliveries included) emit identical DAGs.
  obs::TraceRecorder::Scope causal(ev.cause_span);
  if (ev.fn) {
    ev.fn();
  } else {
    handlers_[ev.handler](std::move(ev.delivery));
  }
}

bool Simulator::next_ready(SimTime limit) {
  if (active_pos_ < active_.size()) return now_ <= limit;
  if (active_pos_ != 0) {
    active_.clear();
    active_pos_ = 0;
  }
  auto t = wheel_.peek();
  if (!t || *t > limit) return false;
  wheel_.advance(*t);
  now_ = *t;
  wheel_.take_due(active_);
  // Restore the FIFO tie-break within the same-millisecond batch: a slot
  // that mixes direct inserts with cascaded events can interleave seqs.
  // That is rare in practice — a slot filled by one cascade (or by direct
  // inserts alone) is already seq-ordered, since both append in schedule
  // order — so check before paying for a sort of the whole batch.
  auto by_seq = [](const Event& a, const Event& b) { return a.seq < b.seq; };
  if (!std::is_sorted(active_.begin(), active_.end(), by_seq)) {
    std::sort(active_.begin(), active_.end(), by_seq);
  }
  return true;
}

bool Simulator::step_limit(SimTime limit) {
  if (engine_ == SimEngine::kHeap) {
    if (heap_.empty() || heap_.front().at > limit) return false;
    Event ev = heap_pop();
    now_ = ev.at;
    fire(ev);
    return true;
  }
  if (!next_ready(limit)) return false;
  // Move out before firing: the callback may append to active_.
  Event ev = std::move(active_[active_pos_]);
  ++active_pos_;
  fire(ev);
  return true;
}

bool Simulator::step() { return step_limit(Wheel::kNoTime); }

void Simulator::run() {
  while (step_limit(Wheel::kNoTime)) {
  }
}

void Simulator::run_until(SimTime t) {
  while (step_limit(t)) {
  }
  now_ = std::max(now_, t);
  if (engine_ != SimEngine::kHeap) wheel_.advance(now_);
}

}  // namespace sgxp2p::sim
