#include "net/simulator.hpp"

#include <algorithm>

namespace sgxp2p::sim {

Simulator::Simulator()
    : scheduled_ctr_(
          obs::MetricsRegistry::global().counter("sim.events_scheduled")),
      fired_ctr_(obs::MetricsRegistry::global().counter("sim.events_fired")),
      depth_gauge_(obs::MetricsRegistry::global().gauge("sim.queue_depth")),
      depth_peak_(obs::MetricsRegistry::global().gauge("sim.queue_peak")),
      wait_hist_(obs::MetricsRegistry::global().histogram(
          "sim.event_wait_ms",
          {0, 1, 10, 100, 250, 500, 1000, 2000, 5000, 10000})) {}

void Simulator::schedule(SimTime at, std::function<void()> fn) {
  queue_.push(Event{std::max(at, now_), next_seq_++, now_, std::move(fn)});
  scheduled_ctr_.inc();
  auto depth = static_cast<std::int64_t>(queue_.size());
  depth_gauge_.set(depth);
  depth_peak_.max_of(depth);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved out
  // before pop, so copy the header fields and steal the callable.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  fired_ctr_.inc();
  depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
  wait_hist_.observe(ev.at - ev.queued_at);
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    step();
  }
  now_ = std::max(now_, t);
}

}  // namespace sgxp2p::sim
