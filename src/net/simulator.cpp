#include "net/simulator.hpp"

#include <algorithm>

namespace sgxp2p::sim {

void Simulator::schedule(SimTime at, std::function<void()> fn) {
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved out
  // before pop, so copy the header fields and steal the callable.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    step();
  }
  now_ = std::max(now_, t);
}

}  // namespace sgxp2p::sim
