#include "net/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/check.hpp"

namespace sgxp2p::sim {

namespace detail {

/// Per-thread worker context for one conservative window. Doubles as the
/// TraceRecorder::WorkerSink buffering trace events into the current item's
/// effect log, so traces interleave with sends in exact emission order.
struct SimWorkerCtx final : obs::TraceRecorder::WorkerSink {
  Simulator* sim = nullptr;
  SimTime now = 0;                 // timestamp of the item being executed
  SimDuration penalty{0};          // per-item enclave-transition charge
  NodeId node = kNoNode;           // owning node of the item being executed
  std::vector<std::function<void()>>* effects = nullptr;
  std::uint64_t steals = 0;        // cumulative across windows
  std::exception_ptr error;
  std::size_t error_idx = 0;       // window index of the throwing item

  std::uint64_t record(const obs::TraceEvent& ev) override {
    auto& tr = obs::TraceRecorder::global();
    const std::uint64_t token = tr.acquire_token();
    effects->push_back(
        [ev, token] { obs::TraceRecorder::global().replay(ev, token); });
    return token;
  }
};

}  // namespace detail

namespace {
// The executing worker's context, or null on any thread not currently
// running window items (including the main thread during merge — replayed
// effects re-enter Simulator/Network through the normal serial paths).
thread_local detail::SimWorkerCtx* g_worker = nullptr;
}  // namespace

SimEngine resolve_engine(SimEngine engine) {
  if (engine != SimEngine::kDefault) return engine;
  if (const char* env = std::getenv("SGXP2P_SIM_ENGINE")) {
    if (std::string_view(env) == "heap") return SimEngine::kHeap;
    if (std::string_view(env) == "parallel") return SimEngine::kParallel;
  }
  return SimEngine::kWheel;
}

const char* engine_name(SimEngine engine) {
  switch (resolve_engine(engine)) {
    case SimEngine::kHeap:
      return "heap";
    case SimEngine::kParallel:
      return "parallel";
    default:
      return "wheel";
  }
}

Simulator::Simulator(obs::MetricsRegistry& registry, SimEngine engine)
    : engine_(resolve_engine(engine)),
      scheduled_ctr_(registry.counter("sim.events_scheduled")),
      fired_ctr_(registry.counter("sim.events_fired")),
      deliveries_ctr_(registry.counter("sim.deliveries")),
      depth_gauge_(registry.gauge("sim.queue_depth")),
      depth_peak_(registry.gauge("sim.queue_peak")),
      wait_hist_(registry.histogram(
          "sim.event_wait_ms",
          {0, 1, 10, 100, 250, 500, 1000, 2000, 5000, 10000})) {}

Simulator::~Simulator() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

SimTime Simulator::now() const {
  if (g_worker != nullptr && g_worker->sim == this) return g_worker->now;
  return now_;
}

void Simulator::charge(SimDuration cost) {
  if (g_worker != nullptr && g_worker->sim == this) {
    g_worker->penalty += cost;
    return;
  }
  penalty_ += cost;
}

SimDuration Simulator::pending_charge() const {
  if (g_worker != nullptr && g_worker->sim == this) return g_worker->penalty;
  return penalty_;
}

void Simulator::clear_charge() {
  if (g_worker != nullptr && g_worker->sim == this) {
    g_worker->penalty = SimDuration{0};
    return;
  }
  penalty_ = SimDuration{0};
}

bool Simulator::in_worker() const {
  return g_worker != nullptr && g_worker->sim == this;
}

void Simulator::defer_effect(std::function<void()> f) {
  CHECK(g_worker != nullptr && g_worker->sim == this);
  g_worker->effects->push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// Timer wheel

int Simulator::Wheel::level_for(SimTime at) const {
  // An event belongs to the lowest level at which its bucket index differs
  // from the cursor's by < kSlots. The subtraction is safe: callers only
  // insert at >= cur_.
  const auto a = static_cast<std::uint64_t>(at);
  const auto c = static_cast<std::uint64_t>(cur_);
  for (int l = 0; l < kLevels; ++l) {
    if (((a >> (l * kBits)) - (c >> (l * kBits))) < kSlots) return l;
  }
  return -1;  // beyond the top level: overflow list
}

int Simulator::Wheel::scan_from(int level, std::size_t start) const {
  const std::uint64_t* words = occupied_.data() +
                               static_cast<std::size_t>(level) * kWords;
  std::size_t w = start >> 6;
  std::uint64_t word = words[w] & (~std::uint64_t{0} << (start & 63));
  // One full cycle plus a re-visit of the masked first word.
  for (std::size_t i = 0; i <= kWords; ++i) {
    if (word != 0) {
      return static_cast<int>((w << 6) +
                              static_cast<std::size_t>(std::countr_zero(word)));
    }
    w = (w + 1) & (kWords - 1);
    word = words[w];
  }
  return -1;
}

void Simulator::Wheel::place(Event ev) {
  const int l = level_for(ev.at);
  if (l < 0) {
    far_min_ = std::min(far_min_, ev.at);
    far_.push_back(std::move(ev));
    return;
  }
  const std::size_t idx =
      (static_cast<std::uint64_t>(ev.at) >> (l * kBits)) & kMask;
  const std::size_t s = static_cast<std::size_t>(l) * kSlots + idx;
  slot_min_[s] = std::min(slot_min_[s], ev.at);
  occupied_[static_cast<std::size_t>(l) * kWords + (idx >> 6)] |=
      std::uint64_t{1} << (idx & 63);
  slots_[s].push_back(std::move(ev));
}

void Simulator::Wheel::insert(Event ev) {
  ++size_;
  place(std::move(ev));
}

std::optional<SimTime> Simulator::Wheel::peek() const {
  SimTime best = kNoTime;
  for (int l = 0; l < kLevels; ++l) {
    std::size_t start =
        (static_cast<std::uint64_t>(cur_) >> (l * kBits)) & kMask;
    // At coarse levels the cursor's own bucket is always empty (its events
    // cascaded down when the cursor entered it), so the cyclic scan starts
    // just past it — making scan order equal time order within the level.
    if (l > 0) start = (start + 1) & kMask;
    const int idx = scan_from(l, start);
    if (idx >= 0) {
      best = std::min(
          best, slot_min_[static_cast<std::size_t>(l) * kSlots +
                          static_cast<std::size_t>(idx)]);
    }
  }
  if (!far_.empty()) best = std::min(best, far_min_);
  if (best == kNoTime) return std::nullopt;
  return best;
}

void Simulator::Wheel::cascade(int level, std::size_t idx) {
  const std::size_t s = static_cast<std::size_t>(level) * kSlots + idx;
  auto& slot = slots_[s];
  if (slot.empty()) return;
  occupied_[static_cast<std::size_t>(level) * kWords + (idx >> 6)] &=
      ~(std::uint64_t{1} << (idx & 63));
  slot_min_[s] = kNoTime;
  scratch_.clear();
  scratch_.swap(slot);  // also hands scratch_'s old capacity to the slot
  for (Event& ev : scratch_) place(std::move(ev));
}

void Simulator::Wheel::advance(SimTime to) {
  if (to <= cur_) return;
  const auto old = static_cast<std::uint64_t>(cur_);
  const auto tgt = static_cast<std::uint64_t>(to);
  cur_ = to;
  // Top-down: a bucket cascaded from level L may land in the level-(L−1)
  // bucket that is itself about to be cascaded.
  for (int l = kLevels - 1; l >= 1; --l) {
    if ((old >> (l * kBits)) == (tgt >> (l * kBits))) continue;
    cascade(l, (tgt >> (l * kBits)) & kMask);
  }
  if (!far_.empty() && (old >> (kLevels * kBits)) != (tgt >> (kLevels * kBits))) {
    std::vector<Event> keep;
    keep.reserve(far_.size());
    far_min_ = kNoTime;
    for (Event& ev : far_) {
      if (level_for(ev.at) >= 0) {
        place(std::move(ev));
      } else {
        far_min_ = std::min(far_min_, ev.at);
        keep.push_back(std::move(ev));
      }
    }
    far_ = std::move(keep);
  }
}

void Simulator::Wheel::take_due(std::vector<Event>& out) {
  const std::size_t idx = static_cast<std::uint64_t>(cur_) & kMask;
  auto& slot = slots_[idx];  // level 0
  if (slot.empty()) return;
  occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  slot_min_[idx] = kNoTime;
  size_ -= slot.size();
  if (out.empty()) {
    out.swap(slot);  // steal the batch wholesale, recycle out's capacity
  } else {
    for (Event& ev : slot) out.push_back(std::move(ev));
    slot.clear();
  }
}

// ---------------------------------------------------------------------------
// Reference heap engine (the original event queue, byte-identical behavior)

void Simulator::heap_push(Event ev) {
  heap_.push_back(std::move(ev));
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulator::Event Simulator::heap_pop() {
  Event out = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
  }
  heap_.pop_back();
  // Sift the relocated tail element down to restore the heap property.
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    std::size_t left = 2 * i + 1;
    std::size_t right = 2 * i + 2;
    if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Engine-independent driver

void Simulator::enqueue(Event ev) {
  scheduled_ctr_.inc();
  if (engine_ == SimEngine::kHeap) {
    heap_push(std::move(ev));
  } else if (active_pos_ < active_.size() && ev.at == now_) {
    // An event scheduled at now while the now-batch drains fires after the
    // batch's remaining events — exactly the heap's FIFO tie-break.
    active_.push_back(std::move(ev));
  } else {
    wheel_.insert(std::move(ev));
  }
  auto depth = static_cast<std::int64_t>(pending());
  depth_gauge_.set(depth);
  depth_peak_.max_of(depth);
}

void Simulator::schedule(SimTime at, std::function<void()> fn) {
  if (in_worker()) {
    // Defer the enqueue to the merge phase so seq assignment stays in
    // canonical order. The timer is pinned to the arming node's lane and
    // must respect the lookahead horizon — the merge CHECK enforces it.
    const SimTime when = std::max(at, g_worker->now);
    const NodeId node = g_worker->node;
    const std::uint64_t cause = obs::TraceRecorder::global().current_cause();
    defer_effect([this, when, node, cause, fn = std::move(fn)]() mutable {
      CHECK_MSG(when >= window_end_,
                "kParallel conservative-window violation: a delivery handler "
                "armed a timer due before the Δ-lookahead horizon; run this "
                "workload with jobs=1");
      Event ev;
      ev.at = when;
      ev.seq = next_seq_++;
      ev.queued_at = now_;
      ev.cause_span = obs::TraceRecorder::global().resolve_cause(cause);
      ev.node = node;
      ev.fn = std::move(fn);
      enqueue(std::move(ev));
    });
    return;
  }
  Event ev;
  ev.at = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.queued_at = now_;
  // A timer inherits the causal context of whoever armed it, so the span
  // DAG flows through protocol delays (retransmit timers, round alignment).
  ev.cause_span = obs::TraceRecorder::global().current_cause();
  ev.fn = std::move(fn);
  enqueue(std::move(ev));
}

std::uint32_t Simulator::add_delivery_handler(DeliveryHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

void Simulator::schedule_delivery(SimTime at, std::uint32_t handler,
                                  Delivery d) {
  if (in_worker()) {
    const SimTime when = std::max(at, g_worker->now);
    defer_effect([this, when, handler, d = std::move(d)]() mutable {
      CHECK_MSG(when >= window_end_,
                "kParallel conservative-window violation: a delivery was "
                "scheduled before the Δ-lookahead horizon; respect the "
                "Network min delay or run with jobs=1");
      deliveries_ctr_.inc();
      d.cause_span = obs::TraceRecorder::global().resolve_cause(d.cause_span);
      Event ev;
      ev.at = when;
      ev.seq = next_seq_++;
      ev.queued_at = now_;
      ev.cause_span = d.cause_span;
      ev.node = d.to;
      ev.delivery = std::move(d);
      ev.handler = handler;
      enqueue(std::move(ev));
    });
    return;
  }
  deliveries_ctr_.inc();
  if (engine_ == SimEngine::kHeap) {
    // The reference engine reproduces the original delivery path exactly:
    // one heap-allocated std::function closure per message, dispatched
    // type-erased — this is the baseline bench_scale measures against.
    schedule(at, [this, handler, d = std::move(d)]() mutable {
      handlers_[handler](std::move(d));
    });
    return;
  }
  Event ev;
  ev.at = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.queued_at = now_;
  ev.cause_span = d.cause_span;
  ev.node = d.to;
  ev.delivery = std::move(d);
  ev.handler = handler;
  enqueue(std::move(ev));
}

void Simulator::fire(Event& ev) {
  fired_ctr_.inc();
  depth_gauge_.set(static_cast<std::int64_t>(pending()));
  wait_hist_.observe(ev.at - ev.queued_at);
  penalty_ = SimDuration{0};
  // Everything the handler does — trace events, sends, timers it arms — is
  // caused by this event. The Scope is inert when tracing is off, and the
  // Network re-scopes deliveries to their own `deliver` span, so both
  // engines (closure-wrapped heap deliveries included) emit identical DAGs.
  obs::TraceRecorder::Scope causal(ev.cause_span);
  if (ev.fn) {
    ev.fn();
  } else {
    handlers_[ev.handler](std::move(ev.delivery));
  }
}

bool Simulator::next_ready(SimTime limit) {
  if (active_pos_ < active_.size()) return now_ <= limit;
  if (active_pos_ != 0) {
    active_.clear();
    active_pos_ = 0;
  }
  auto t = wheel_.peek();
  if (!t || *t > limit) return false;
  wheel_.advance(*t);
  now_ = *t;
  wheel_.take_due(active_);
  // Restore the FIFO tie-break within the same-millisecond batch: a slot
  // that mixes direct inserts with cascaded events can interleave seqs.
  // That is rare in practice — a slot filled by one cascade (or by direct
  // inserts alone) is already seq-ordered, since both append in schedule
  // order — so check before paying for a sort of the whole batch.
  auto by_seq = [](const Event& a, const Event& b) { return a.seq < b.seq; };
  if (!std::is_sorted(active_.begin(), active_.end(), by_seq)) {
    std::sort(active_.begin(), active_.end(), by_seq);
  }
  return true;
}

bool Simulator::step_limit(SimTime limit) {
  if (engine_ == SimEngine::kHeap) {
    if (heap_.empty() || heap_.front().at > limit) return false;
    Event ev = heap_pop();
    now_ = ev.at;
    fire(ev);
    return true;
  }
  // kParallel fans a window out only when the active batch is drained and
  // enough work is pending to beat the fan-out overhead; otherwise (and for
  // kWheel) the serial wheel path below runs — byte-identical by
  // construction, and able to handle arbitrary mid-batch scheduling.
  if (engine_ == SimEngine::kParallel && active_pos_ >= active_.size() &&
      resolved_jobs() > 1 && wheel_.size() >= parallel_threshold_) {
    return parallel_window(limit);
  }
  if (!next_ready(limit)) return false;
  // Move out before firing: the callback may append to active_.
  Event ev = std::move(active_[active_pos_]);
  ++active_pos_;
  fire(ev);
  return true;
}

// ---------------------------------------------------------------------------
// Parallel engine: conservative Δ-lookahead windows over a worker pool.
//
// One window = every wheel batch due in [t0, t0 + lookahead). The Network's
// min delay guarantees nothing a window item emits lands inside the window,
// so items only interact through per-node state — partitioning by node makes
// execution embarrassingly parallel. Handlers run concurrently but every
// side effect (send, timer, trace event) is captured into a per-item ordered
// log and replayed serially in canonical (timestamp, seq) order through the
// untouched serial code paths, which is what makes traces, metrics, RNG
// draws, FIFO stamps, and bandwidth serialization byte-identical to kWheel.

std::uint32_t Simulator::resolved_jobs() {
  if (jobs_ != 0) return jobs_;
  std::uint32_t j = jobs_cfg_;
  if (j == 0) {
    if (const char* env = std::getenv("SGXP2P_SIM_JOBS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) j = static_cast<std::uint32_t>(v);
    }
  }
  if (j == 0) j = std::max(1u, std::thread::hardware_concurrency());
  jobs_ = j;
  return jobs_;
}

void Simulator::set_jobs(std::uint32_t jobs) {
  CHECK_MSG(workers_.empty(),
            "set_jobs must be called before the first parallel window");
  jobs_cfg_ = jobs;
  jobs_ = 0;
}

void Simulator::set_lookahead(SimDuration min_delay) {
  if (min_delay < SimDuration{1}) min_delay = SimDuration{1};
  if (lookahead_ == SimDuration{0} || min_delay < lookahead_) {
    lookahead_ = min_delay;
  }
}

void Simulator::publish_parallel_stats(obs::MetricsRegistry& registry) const {
  registry.counter("sim.parallel_windows").inc(pstats_.windows);
  registry.counter("sim.parallel_events").inc(pstats_.events);
  registry.gauge("sim.worker_steals")
      .set(static_cast<std::int64_t>(pstats_.steals));
}

bool Simulator::extract_window(SimTime limit) {
  auto first = wheel_.peek();
  if (!first || *first > limit) return false;
  const SimDuration la = lookahead_ > SimDuration{0} ? lookahead_
                                                     : SimDuration{1};
  window_end_ = *first + la;
  if (limit != Wheel::kNoTime && window_end_ > limit + 1) {
    window_end_ = limit + 1;
  }
  bool fenced = false;
  while (!fenced) {
    auto t = wheel_.peek();
    if (!t || *t >= window_end_) break;
    wheel_.advance(*t);
    const std::size_t batch_begin = window_.size();
    wheel_.take_due(window_);
    auto by_seq = [](const Event& a, const Event& b) { return a.seq < b.seq; };
    if (!std::is_sorted(window_.begin() +
                            static_cast<std::ptrdiff_t>(batch_begin),
                        window_.end(), by_seq)) {
      std::sort(window_.begin() + static_cast<std::ptrdiff_t>(batch_begin),
                window_.end(), by_seq);
    }
    // A serial-context timer (node == kNoNode) may touch any node's state:
    // it fences the window. Everything from the fence onward in this batch
    // moves to active_ and runs on the serial path after the merge.
    for (std::size_t i = batch_begin; i < window_.size(); ++i) {
      if (window_[i].fn && window_[i].node == kNoNode) {
        active_.clear();
        active_pos_ = 0;
        for (std::size_t j = i; j < window_.size(); ++j) {
          active_.push_back(std::move(window_[j]));
        }
        window_.resize(i);
        fenced = true;
        break;
      }
    }
  }
  return !window_.empty() || active_pos_ < active_.size();
}

bool Simulator::parallel_window(SimTime limit) {
  if (!extract_window(limit)) return false;
  if (!window_.empty()) {
    run_window();
    merge_window();
  }
  // Position the clock on a fence batch so the serial path drains it.
  if (active_pos_ < active_.size()) now_ = active_[active_pos_].at;
  return true;
}

void Simulator::ensure_pool() {
  if (!workers_.empty()) return;
  workers_.reserve(jobs_);
  for (std::uint32_t i = 0; i < jobs_; ++i) {
    workers_.push_back(std::make_unique<detail::SimWorkerCtx>());
    workers_.back()->sim = this;
  }
  threads_.reserve(jobs_ - 1);
  for (std::uint32_t i = 1; i < jobs_; ++i) {
    threads_.emplace_back([this, i] { pool_main(i); });
  }
}

void Simulator::run_window() {
  ++pstats_.windows;
  pstats_.events += window_.size();
  const std::size_t n = window_.size();
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
  // Group by destination node (stable: canonical order within a lane).
  std::stable_sort(order_.begin(), order_.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return window_[a].node < window_[b].node;
                   });
  tasks_.clear();
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i + 1;
    while (j < n && window_[order_[j]].node == window_[order_[i]].node) ++j;
    tasks_.push_back(
        {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    i = j;
  }
  if (item_fx_.size() < n) item_fx_.resize(n);
  for (std::size_t i = 0; i < n; ++i) item_fx_[i].clear();
  next_task_.store(0, std::memory_order_relaxed);
  abort_window_.store(false, std::memory_order_relaxed);
  window_registry_ = &obs::MetricsRegistry::current();
  ensure_pool();
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    ++window_gen_;
    workers_done_ = 0;
  }
  pool_cv_.notify_all();
  worker_run(0);  // the driver thread works too
  if (!threads_.empty()) {
    std::unique_lock<std::mutex> lock(pool_mu_);
    done_cv_.wait(lock, [this] { return workers_done_ == threads_.size(); });
  }
  std::uint64_t steals = 0;
  for (const auto& w : workers_) steals += w->steals;
  pstats_.steals = steals;
}

void Simulator::pool_main(std::uint32_t wid) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock,
                    [&] { return shutdown_ || window_gen_ != seen; });
      if (shutdown_) return;
      seen = window_gen_;
    }
    // Bind the driver's registry so lazily created instruments (and the
    // thread-local pool counters) land where the serial run puts them.
    obs::MetricsRegistry::ScopedCurrent bind(*window_registry_);
    worker_run(wid);
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void Simulator::worker_run(std::uint32_t wid) {
  detail::SimWorkerCtx& w = *workers_[wid];
  g_worker = &w;
  obs::TraceRecorder::set_worker_sink(&w);
  for (;;) {
    if (abort_window_.load(std::memory_order_relaxed)) break;
    const std::size_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= tasks_.size()) break;
    if (t % jobs_ != wid) ++w.steals;
    bool stop = false;
    for (std::uint32_t i = tasks_[t].begin; i < tasks_[t].end; ++i) {
      const std::uint32_t idx = order_[i];
      Event& ev = window_[idx];
      w.now = ev.at;
      w.penalty = SimDuration{0};
      w.node = ev.node;
      w.effects = &item_fx_[idx];
      obs::TraceRecorder::set_ambient(ev.cause_span);
      try {
        if (ev.fn) {
          ev.fn();
        } else {
          handlers_[ev.handler](std::move(ev.delivery));
        }
      } catch (...) {
        if (!w.error) {
          w.error = std::current_exception();
          w.error_idx = idx;
        }
        abort_window_.store(true, std::memory_order_relaxed);
        stop = true;
        break;
      }
    }
    if (stop) break;
  }
  obs::TraceRecorder::set_ambient(0);
  obs::TraceRecorder::set_worker_sink(nullptr);
  g_worker = nullptr;
}

void Simulator::merge_window() {
  // A worker exception aborts the window: merge the prefix a serial run
  // would have completed, then rethrow from the lowest canonical position.
  std::size_t stop = window_.size();
  std::exception_ptr error;
  for (const auto& w : workers_) {
    if (w->error && w->error_idx < stop) {
      stop = w->error_idx;
      error = w->error;
    }
  }
  for (std::size_t idx = 0; idx < stop; ++idx) {
    Event& ev = window_[idx];
    now_ = ev.at;
    window_pos_ = idx + 1;
    // Mirror fire()'s serial accounting sequence exactly.
    fired_ctr_.inc();
    depth_gauge_.set(static_cast<std::int64_t>(pending()));
    wait_hist_.observe(ev.at - ev.queued_at);
    for (auto& fx : item_fx_[idx]) fx();
    item_fx_[idx].clear();
    penalty_ = SimDuration{0};
  }
  if (stop > 0) now_ = window_[stop - 1].at;
  window_.clear();
  window_pos_ = 0;
  if (error) {
    for (auto& v : item_fx_) v.clear();
    for (const auto& w : workers_) {
      if (w->error) {
        w->error = nullptr;
        w->error_idx = 0;
      }
    }
    std::rethrow_exception(error);
  }
}

bool Simulator::step() { return step_limit(Wheel::kNoTime); }

void Simulator::run() {
  while (step_limit(Wheel::kNoTime)) {
  }
}

void Simulator::run_until(SimTime t) {
  while (step_limit(t)) {
  }
  now_ = std::max(now_, t);
  if (engine_ != SimEngine::kHeap) wheel_.advance(now_);
}

}  // namespace sgxp2p::sim
