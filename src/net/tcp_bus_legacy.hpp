// LegacyTcpBus — the original correctness-grade poll(2) TCP mesh.
//
// This is the pre-epoll data plane kept behind the shared TcpBusIface: a
// poll(2) read loop plus blocking full-frame writes serialized by a
// per-connection mutex (one write(2) per message, no coalescing, no
// backpressure, no reconnect — a failed connection stays dead). bench_tcp
// runs it side by side with the epoll TcpBus so the msgs/s, syscalls/msg,
// and decide-latency deltas of the rebuild stay measurable, mirroring how
// SimEngine::kHeap and the bench_micro legacy namespace keep superseded
// implementations runnable as named references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/tcp_bus.hpp"

namespace sgxp2p::net {

class LegacyTcpBus final : public TcpBusIface {
 public:
  using TcpBusIface::send;

  explicit LegacyTcpBus(std::uint32_t n);
  ~LegacyTcpBus() override;

  LegacyTcpBus(const LegacyTcpBus&) = delete;
  LegacyTcpBus& operator=(const LegacyTcpBus&) = delete;

  void set_receiver(Receiver receiver) override {
    receiver_ = std::move(receiver);
  }

  bool start() override;
  void stop() override;

  SendStatus send(NodeId from, NodeId to, Bytes blob) override;
  SendStatus multicast(NodeId from, const std::vector<NodeId>& group,
                       Bytes payload) override;

  [[nodiscard]] std::uint64_t messages_sent() const override {
    return messages_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const override {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint16_t port_of(NodeId id) const override {
    return ports_.at(id);
  }

 private:
  struct Connection {
    int fd = -1;
    NodeId a = kNoNode;  // lower endpoint id
    NodeId b = kNoNode;  // higher endpoint id
    Bytes rx;            // partial-frame read buffer
    std::mutex write_mu;
  };

  void io_loop();
  bool read_ready(Connection& conn);

  std::uint32_t n_;
  Receiver receiver_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::uint64_t, Connection*> by_pair_;
  std::thread io_thread_;
  std::atomic<bool> running_{false};
  int wake_pipe_[2] = {-1, -1};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace sgxp2p::net
