#include "net/mesh_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sgxp2p::net {

namespace {
constexpr std::size_t kFrameHeader = 8;  // u32 len ‖ u32 from
constexpr std::uint32_t kMaxFrame = 16 * 1024 * 1024;

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_in make_addr(const PeerAddress& peer) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  ::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr);
  return addr;
}
}  // namespace

SimTime RealtimeClock::now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

MeshTransport::MeshTransport(NodeId self, std::vector<PeerAddress> peers)
    : self_(self),
      addresses_(std::move(peers)),
      sends_ctr_(&obs::MetricsRegistry::global().counter("net.mesh.sends")),
      sent_bytes_ctr_(
          &obs::MetricsRegistry::global().counter("net.mesh.bytes")),
      received_ctr_(
          &obs::MetricsRegistry::global().counter("net.mesh.received")) {
  peers_.resize(addresses_.size());
  for (auto& p : peers_) p = std::make_unique<Peer>();
}

MeshTransport::~MeshTransport() { stop(); }

bool MeshTransport::start(SimDuration dial_timeout_ms) {
  const auto n = static_cast<NodeId>(addresses_.size());

  // Own listener.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return false;
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in self_addr = make_addr(addresses_[self_]);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&self_addr),
             sizeof self_addr) < 0 ||
      ::listen(listener, static_cast<int>(n)) < 0) {
    ::close(listener);
    return false;
  }

  // Dial every lower id (they may not be up yet: retry within the budget).
  for (NodeId j = 0; j < self_; ++j) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(dial_timeout_ms);
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) break;
      sockaddr_in addr = make_addr(addresses_[j]);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
          0) {
        break;
      }
      ::close(fd);
      fd = -1;
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (fd < 0) {
      ::close(listener);
      return false;
    }
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::uint8_t hello[4];
    store_le32(hello, self_);
    if (!write_all(fd, hello, sizeof hello)) {
      ::close(fd);
      ::close(listener);
      return false;
    }
    peers_[j]->fd = fd;
  }

  // Accept every higher id; the hello tells us who arrived.
  for (NodeId expected = self_ + 1; expected < n; ++expected) {
    int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      ::close(listener);
      return false;
    }
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::uint8_t hello[4];
    if (!read_exact(fd, hello, sizeof hello)) {
      ::close(fd);
      ::close(listener);
      return false;
    }
    NodeId who = load_le32(hello);
    if (who <= self_ || who >= n || peers_[who]->fd >= 0) {
      ::close(fd);
      ::close(listener);
      return false;
    }
    peers_[who]->fd = fd;
  }
  ::close(listener);

  if (::pipe(wake_pipe_) < 0) return false;
  running_ = true;
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void MeshTransport::stop() {
  if (!running_.exchange(false)) return;
  if (wake_pipe_[1] >= 0) {
    std::uint8_t byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& peer : peers_) {
    if (peer->fd >= 0) ::close(peer->fd);
    peer->fd = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void MeshTransport::send(NodeId to, ByteView blob) {
  if (!running_ || to == self_ || to >= peers_.size()) return;
  Peer& peer = *peers_[to];
  if (peer.fd < 0) return;
  Bytes frame(kFrameHeader + blob.size());
  store_le32(frame.data(), static_cast<std::uint32_t>(blob.size()));
  store_le32(frame.data() + 4, self_);
  std::memcpy(frame.data() + kFrameHeader, blob.data(), blob.size());
  std::lock_guard<std::mutex> lock(peer.write_mu);
  if (write_all(peer.fd, frame.data(), frame.size())) {
    ++messages_sent_;
    bytes_sent_ += blob.size();
    sends_ctr_->inc();
    sent_bytes_ctr_->inc(blob.size());
  }
}

bool MeshTransport::read_ready(NodeId peer_id) {
  Peer& peer = *peers_[peer_id];
  std::uint8_t buf[64 * 1024];
  ssize_t n = ::recv(peer.fd, buf, sizeof buf, 0);
  if (n <= 0) return n == -1 && (errno == EAGAIN || errno == EINTR);
  peer.rx.insert(peer.rx.end(), buf, buf + n);
  while (peer.rx.size() >= kFrameHeader) {
    std::uint32_t len = load_le32(peer.rx.data());
    if (len > kMaxFrame) return false;
    if (peer.rx.size() < kFrameHeader + len) break;
    NodeId from = load_le32(peer.rx.data() + 4);
    Bytes payload(peer.rx.begin() + kFrameHeader,
                  peer.rx.begin() + kFrameHeader + len);
    peer.rx.erase(peer.rx.begin(), peer.rx.begin() + kFrameHeader + len);
    // Transport-level binding: the frame's claimed sender must be the
    // connection's peer.
    if (from == peer_id && receiver_) {
      received_ctr_->inc();
      receiver_(from, std::move(payload));
    }
  }
  return true;
}

void MeshTransport::io_loop() {
  std::vector<pollfd> fds;
  std::vector<NodeId> ids;
  while (running_) {
    fds.clear();
    ids.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    ids.push_back(kNoNode);
    for (NodeId id = 0; id < peers_.size(); ++id) {
      if (peers_[id]->fd >= 0) {
        fds.push_back(pollfd{peers_[id]->fd, POLLIN, 0});
        ids.push_back(id);
      }
    }
    int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready <= 0) continue;
    if (fds[0].revents & POLLIN) {
      std::uint8_t drain[16];
      (void)!::read(wake_pipe_[0], drain, sizeof drain);
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!read_ready(ids[i])) {
          // Peer process exited (or misbehaved): retire the fd so the loop
          // does not spin on a permanently-readable closed socket.
          Peer& peer = *peers_[ids[i]];
          std::lock_guard<std::mutex> lock(peer.write_mu);
          ::close(peer.fd);
          peer.fd = -1;
        }
      }
    }
  }
}

}  // namespace sgxp2p::net
