#include "net/tcp_bus_legacy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sgxp2p::net {

namespace {

// Frame layout: u32 payload length ‖ u32 from ‖ u32 to ‖ payload.
constexpr std::size_t kFrameHeader = 12;
constexpr std::uint32_t kMaxFrame = 16 * 1024 * 1024;

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

LegacyTcpBus::LegacyTcpBus(std::uint32_t n) : n_(n), ports_(n, 0) {}

LegacyTcpBus::~LegacyTcpBus() { stop(); }

bool LegacyTcpBus::start() {
  std::vector<int> listeners(n_, -1);
  auto fail = [&]() {
    for (int fd : listeners) {
      if (fd >= 0) ::close(fd);
    }
    for (auto& c : connections_) {
      if (c->fd >= 0) ::close(c->fd);
    }
    connections_.clear();
    return false;
  };

  // One listener per node, OS-assigned port on loopback.
  for (std::uint32_t i = 0; i < n_; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail();
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, static_cast<int>(n_)) < 0) {
      ::close(fd);
      return fail();
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports_[i] = ntohs(addr.sin_port);
    listeners[i] = fd;
  }

  // Mesh: for each pair (lo, hi), hi dials lo's listener and announces the
  // pair with a hello frame of two u32s.
  for (std::uint32_t hi = 1; hi < n_; ++hi) {
    for (std::uint32_t lo = 0; lo < hi; ++lo) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return fail();
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ports_[lo]);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        ::close(fd);
        return fail();
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      std::uint8_t hello[8];
      store_le32(hello, hi);
      store_le32(hello + 4, lo);
      if (!write_all(fd, hello, sizeof hello)) {
        ::close(fd);
        return fail();
      }
      // Accept on lo's listener and read the hello to identify the pair.
      int afd = ::accept(listeners[lo], nullptr, nullptr);
      if (afd < 0) {
        ::close(fd);
        return fail();
      }
      ::setsockopt(afd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      std::uint8_t hello_in[8];
      std::size_t got = 0;
      while (got < sizeof hello_in) {
        ssize_t r = ::recv(afd, hello_in + got, sizeof hello_in - got, 0);
        if (r <= 0) {
          ::close(fd);
          ::close(afd);
          return fail();
        }
        got += static_cast<std::size_t>(r);
      }
      // Both endpoints share one duplex connection: the dialer keeps `fd`,
      // the acceptor keeps `afd`. We register BOTH fds under the pair; reads
      // poll both, writes from x use the fd on x's side.
      auto conn_dial = std::make_unique<Connection>();
      conn_dial->fd = fd;
      conn_dial->a = lo;
      conn_dial->b = hi;
      auto conn_accept = std::make_unique<Connection>();
      conn_accept->fd = afd;
      conn_accept->a = lo;
      conn_accept->b = hi;
      // Writer mapping: frames from `hi` go out on the dialer fd; frames
      // from `lo` go out on the acceptor fd. Key accordingly: (writer, peer).
      by_pair_[(static_cast<std::uint64_t>(hi) << 32) | lo] = conn_dial.get();
      by_pair_[(static_cast<std::uint64_t>(lo) << 32) | hi] =
          conn_accept.get();
      connections_.push_back(std::move(conn_dial));
      connections_.push_back(std::move(conn_accept));
    }
  }
  for (int fd : listeners) ::close(fd);  // mesh complete

  if (::pipe(wake_pipe_) < 0) return fail();
  running_ = true;
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void LegacyTcpBus::stop() {
  if (!running_.exchange(false)) return;
  if (wake_pipe_[1] >= 0) {
    std::uint8_t byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

SendStatus LegacyTcpBus::send(NodeId from, NodeId to, Bytes blob) {
  if (!running_ || from == to || to >= n_) return SendStatus::kDown;
  auto it = by_pair_.find((static_cast<std::uint64_t>(from) << 32) | to);
  if (it == by_pair_.end()) return SendStatus::kDown;
  Connection* conn = it->second;
  Bytes frame(kFrameHeader + blob.size());
  store_le32(frame.data(), static_cast<std::uint32_t>(blob.size()));
  store_le32(frame.data() + 4, from);
  store_le32(frame.data() + 8, to);
  std::memcpy(frame.data() + kFrameHeader, blob.data(), blob.size());
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->fd < 0 ||
      !write_all(conn->fd, frame.data(), frame.size())) {
    return SendStatus::kDown;
  }
  ++messages_sent_;
  bytes_sent_ += blob.size();
  return SendStatus::kOk;
}

SendStatus LegacyTcpBus::multicast(NodeId from,
                                   const std::vector<NodeId>& group,
                                   Bytes payload) {
  // No shared-buffer path here: the legacy bus re-frames (and re-copies)
  // the payload per destination, which is exactly the cost the epoll bus's
  // refcounted fan-out removes.
  SendStatus worst = SendStatus::kOk;
  for (NodeId to : group) {
    if (to == from) continue;
    SendStatus st = send(from, to, ByteView(payload));
    if (static_cast<int>(st) > static_cast<int>(worst)) worst = st;
  }
  return worst;
}

bool LegacyTcpBus::read_ready(Connection& conn) {
  std::uint8_t buf[64 * 1024];
  ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
  if (n <= 0) return n == -1 && (errno == EAGAIN || errno == EINTR);
  // (A false return below closes the connection in io_loop.)
  conn.rx.insert(conn.rx.end(), buf, buf + n);
  // Drain complete frames.
  while (conn.rx.size() >= kFrameHeader) {
    std::uint32_t len = load_le32(conn.rx.data());
    if (len > kMaxFrame) return false;  // protocol violation: drop conn
    if (conn.rx.size() < kFrameHeader + len) break;
    NodeId from = load_le32(conn.rx.data() + 4);
    NodeId to = load_le32(conn.rx.data() + 8);
    Bytes payload(conn.rx.begin() + kFrameHeader,
                  conn.rx.begin() + kFrameHeader + len);
    conn.rx.erase(conn.rx.begin(),
                  conn.rx.begin() + kFrameHeader + len);
    // Transport-level sender binding: a frame arriving on this connection
    // can only legitimately come from one of its two endpoints.
    if ((from == conn.a || from == conn.b) && receiver_) {
      receiver_(to, from, std::move(payload));
    }
  }
  return true;
}

void LegacyTcpBus::io_loop() {
  std::vector<pollfd> fds;
  while (running_) {
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (auto& conn : connections_) {
      fds.push_back(pollfd{conn->fd, POLLIN, 0});
    }
    int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready <= 0) continue;
    if (fds[0].revents & POLLIN) {
      std::uint8_t drain[16];
      (void)!::read(wake_pipe_[0], drain, sizeof drain);
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!read_ready(*connections_[i - 1])) {
          // Peer gone or protocol violation: retire the fd so poll() stops
          // signaling it (negative fds are ignored by poll).
          std::lock_guard<std::mutex> lock(connections_[i - 1]->write_mu);
          ::close(connections_[i - 1]->fd);
          connections_[i - 1]->fd = -1;
        }
      }
    }
  }
}

}  // namespace sgxp2p::net
