// MeshTransport — one node's endpoint of a multi-process TCP mesh.
//
// Unlike TcpBus (which hosts every endpoint of an in-process demo), a
// MeshTransport owns exactly ONE node's sockets, so N independent processes
// — or machines — form the network, as in the paper's DeterLab deployment.
// Mesh formation is deterministic: node i accepts connections from every
// j > i on its own port and dials every j < i (retrying while peers boot).
// Frames are the same length-prefixed layout as TcpBus.
//
// Threading model mirrors TcpBus: one I/O thread reads and dispatches to
// the receiver callback; send() is thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "sgx/trusted_time.hpp"

namespace sgxp2p::net {

/// Wall-clock trusted time shared ACROSS processes: milliseconds of
/// CLOCK_REALTIME. The paper's synchronous-start assumption S2 ("starting at
/// a time posted in public servers", Appendix G) needs a common reference;
/// on one machine — or NTP-synced machines — realtime is that reference.
class RealtimeClock final : public sgx::TrustedClock {
 public:
  [[nodiscard]] SimTime now() const override;
};

struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class MeshTransport {
 public:
  using Receiver = std::function<void(NodeId from, Bytes blob)>;

  /// `peers[i]` is node i's address; `self` indexes into it.
  MeshTransport(NodeId self, std::vector<PeerAddress> peers);
  ~MeshTransport();

  MeshTransport(const MeshTransport&) = delete;
  MeshTransport& operator=(const MeshTransport&) = delete;

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Binds, dials lower ids (retrying up to `dial_timeout_ms`), accepts
  /// higher ids, then starts the I/O thread. Blocking; false on failure.
  bool start(SimDuration dial_timeout_ms = 15000);
  void stop();

  void send(NodeId to, ByteView blob);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Peer {
    int fd = -1;
    Bytes rx;
    std::mutex write_mu;
  };

  void io_loop();
  bool read_ready(NodeId peer_id);

  NodeId self_;
  std::vector<PeerAddress> addresses_;
  std::vector<std::unique_ptr<Peer>> peers_;  // index = node id; self unused
  Receiver receiver_;
  std::thread io_thread_;
  std::atomic<bool> running_{false};
  int wake_pipe_[2] = {-1, -1};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  // Registry handles (net.mesh.*); counters are relaxed atomics, so the I/O
  // thread and send() callers may bump them without extra locking.
  obs::Counter* sends_ctr_;
  obs::Counter* sent_bytes_ctr_;
  obs::Counter* received_ctr_;
};

}  // namespace sgxp2p::net
