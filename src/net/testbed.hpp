// Testbed — one-call harness assembling a full simulated deployment.
//
// Owns the simulator, network, SGX platform, SimIAS, hosts (with their
// byzantine strategies) and protocol enclaves; performs the one-time setup
// phase (attested handshakes + sequence exchange, or fast links in
// accounted mode); then drives the lockstep round loop: at every round
// boundary each live enclave's trusted timer fires, halted nodes are churned
// out of the network, and the loop stops on a caller predicate or a round
// cap. Tests, benches, and examples all build on this.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"
#include "protocol/peer_enclave.hpp"
#include "sgx/attestation.hpp"
#include "sgx/platform.hpp"
#include "sgx/transition.hpp"

namespace sgxp2p::sim {

struct TestbedConfig {
  std::uint32_t n = 4;
  std::uint32_t t = 0;  // 0 → ⌊(n−1)/2⌋
  NetworkConfig net;
  SimDuration round_ms = 0;  // 0 → 2 × net.worst_delay()  (round = 2Δ)
  protocol::ChannelMode mode = protocol::ChannelMode::kAttested;
  std::uint64_t seed = 1;
  /// Event-engine selection (timer wheel by default; the reference heap is
  /// kept for equivalence tests and as the bench_scale baseline).
  SimEngine engine = SimEngine::kDefault;
  /// Worker count for SimEngine::kParallel (0 → SGXP2P_SIM_JOBS env, else
  /// hardware concurrency). Ignored by the serial engines. jobs=1 runs the
  /// serial wheel path — the fuzzer pins it so reproducers stay byte-stable.
  std::uint32_t jobs = 0;
  /// Registry this deployment instruments. nullptr → the thread's current
  /// registry at construction time (usually the global one). Sweep drivers
  /// hand every run its own registry so runs are isolated and mergeable.
  obs::MetricsRegistry* registry = nullptr;
  /// Per-transition virtual costs (sgx/transition.hpp). Default zero: the
  /// meter counts ecalls/ocalls but charges nothing, so every existing
  /// baseline is unchanged unless a run opts into the cost model.
  sgx::TransitionCosts sgx_costs;
  /// Setup-phase topology: returns the peers node `id` exchanges handshake
  /// and sequence blobs with during run_setup(). Unset → full clique (the
  /// paper's setup). Sharded deployments at n=100k pass a sparse (or empty,
  /// in accounted mode) neighbor map so setup stays far below O(n²).
  std::function<std::vector<NodeId>(NodeId)> setup_peers;

  [[nodiscard]] std::uint32_t effective_t() const {
    return t != 0 ? t : (n - 1) / 2;
  }
  [[nodiscard]] SimDuration effective_round() const {
    return round_ms != 0 ? round_ms : 2 * net.worst_delay();
  }
};

class Testbed {
 public:
  /// Builds the protocol enclave for one node. The PeerConfig handed in is
  /// fully populated; factories typically just construct their subclass.
  using EnclaveFactory = std::function<std::unique_ptr<protocol::PeerEnclave>(
      NodeId id, sgx::SgxPlatform& platform, net::Host& host,
      protocol::PeerConfig cfg, const sgx::SimIAS& ias)>;
  /// Chooses each node's OS behavior; nullptr → honest.
  using StrategyFactory =
      std::function<std::unique_ptr<adversary::Strategy>(NodeId id)>;

  explicit Testbed(TestbedConfig config);

  /// Constructs hosts + enclaves and runs the setup phase.
  void build(const EnclaveFactory& make_enclave,
             const StrategyFactory& make_strategy = {});

  /// Fixes T0 slightly in the future and calls start_protocol on all nodes.
  void start();

  /// Runs complete rounds until `stop_when` returns true (checked at each
  /// round boundary, after ticks) or `max_rounds` elapse. Returns the number
  /// of rounds executed.
  std::uint32_t run_rounds(std::uint32_t max_rounds,
                           const std::function<bool()>& stop_when = {});

  // ----- crash / recovery injection (src/recovery/) -----

  /// Hook fired at every round boundary BEFORE the enclaves tick, with the
  /// round number about to begin. The RecoveryCoordinator uses it to drive
  /// checkpoints, crashes, and relaunches in lockstep with the protocol.
  void set_round_hook(std::function<void(std::uint32_t)> hook) {
    round_hook_ = std::move(hook);
  }

  /// Chains `hook` after any hook already installed (both run, in
  /// installation order). The fuzz runner composes its partition/crash
  /// driver with the RecoveryCoordinator's hook through this.
  void add_round_hook(std::function<void(std::uint32_t)> hook) {
    if (!round_hook_) {
      round_hook_ = std::move(hook);
      return;
    }
    round_hook_ = [prev = std::move(round_hook_),
                   next = std::move(hook)](std::uint32_t round) {
      prev(round);
      next(round);
    };
  }

  /// Crash injection: destroys node `id`'s enclave (all in-enclave state is
  /// lost) and detaches it from the network. The host object survives, as
  /// does any host-side sealed storage.
  void kill_enclave(NodeId id);

  /// Relaunches a previously killed node: builds a fresh enclave via the
  /// factory, reattaches host + network, runs `before_start` (checkpoint
  /// restore + re-handshakes happen there), then starts the protocol at the
  /// original T0 so the trusted-time round clock stays aligned.
  protocol::PeerEnclave& relaunch_enclave(
      NodeId id, const EnclaveFactory& make_enclave,
      const std::function<void(protocol::PeerEnclave&)>& before_start = {});

  /// False after kill_enclave(id) until the node is relaunched.
  [[nodiscard]] bool has_enclave(NodeId id) const {
    return enclaves_.at(id) != nullptr;
  }

  // ----- access -----
  [[nodiscard]] protocol::PeerEnclave& enclave(NodeId id) {
    return *enclaves_.at(id);
  }
  template <typename T>
  [[nodiscard]] T& enclave_as(NodeId id) {
    auto* p = dynamic_cast<T*>(enclaves_.at(id).get());
    CHECK_MSG(p != nullptr, "enclave_as: wrong protocol type");
    return *p;
  }
  [[nodiscard]] net::Host& host(NodeId id) { return *hosts_.at(id); }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] Simulator& simulator() { return simulator_; }
  [[nodiscard]] obs::MetricsRegistry& registry() { return *registry_; }
  [[nodiscard]] const TestbedConfig& config() const { return cfg_; }
  [[nodiscard]] sgx::SimIAS& ias() { return *ias_; }
  [[nodiscard]] SimTime start_time() const { return t0_; }
  [[nodiscard]] std::uint32_t rounds_run() const { return rounds_run_; }

  /// Ids of nodes still attached to the network.
  [[nodiscard]] std::vector<NodeId> live_nodes() const;
  /// Ids of honest (HonestStrategy) nodes.
  [[nodiscard]] std::vector<NodeId> honest_nodes() const;

 private:
  void run_setup();

  TestbedConfig cfg_;
  obs::MetricsRegistry* registry_;  // resolved before simulator_/network_
  Simulator simulator_;
  Network network_;
  sgx::SgxPlatform platform_;
  std::unique_ptr<sgx::SimIAS> ias_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<protocol::PeerEnclave>> enclaves_;
  SimTime t0_ = 0;
  std::uint32_t rounds_run_ = 0;
  std::function<void(std::uint32_t)> round_hook_;
};

}  // namespace sgxp2p::sim
