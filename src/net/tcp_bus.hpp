// Real-sockets transport: a TCP mesh over localhost.
//
// The simulated Network (net/network.hpp) gives determinism for tests and
// benchmarks; this module gives realism — the same protocol enclaves run
// over genuine TCP connections with length-prefixed frames, a poll(2) event
// loop, and wall-clock rounds (the role Boost.Asio played in the paper's
// prototype). One TcpBus hosts all N endpoints of an in-process deployment:
// each node gets its own listening socket (OS-assigned port) and a full
// mesh of connections is established pairwise, so moving a node to another
// process later only changes how the port map is shared.
//
// Threading: one background I/O thread owns every fd for reading; writes are
// serialized per connection with a mutex and are safe from any thread.
// Inbound frames are handed to the receiver callback ON the I/O thread —
// callers serialize their own node state (TcpTestbed uses one state mutex).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "sgx/trusted_time.hpp"

namespace sgxp2p::net {

/// Wall-clock trusted time: milliseconds since construction, from
/// CLOCK_MONOTONIC — the deployment analogue of sgx_get_trusted_time.
class SteadyClock final : public sgx::TrustedClock {
 public:
  SteadyClock();
  [[nodiscard]] SimTime now() const override;

 private:
  std::int64_t epoch_ns_;
};

class TcpBus {
 public:
  /// Frame arriving for `to`, sent by `from`.
  using Receiver = std::function<void(NodeId to, NodeId from, Bytes blob)>;

  explicit TcpBus(std::uint32_t n);
  ~TcpBus();

  TcpBus(const TcpBus&) = delete;
  TcpBus& operator=(const TcpBus&) = delete;

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Binds N listeners, builds the pairwise mesh, starts the I/O thread.
  /// Returns false if any socket operation fails.
  bool start();
  void stop();

  /// Sends a frame; thread-safe. Silently drops when the mesh is down.
  void send(NodeId from, NodeId to, ByteView blob);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint16_t port_of(NodeId id) const {
    return ports_.at(id);
  }

 private:
  struct Connection {
    int fd = -1;
    NodeId a = kNoNode;  // lower endpoint id
    NodeId b = kNoNode;  // higher endpoint id
    Bytes rx;            // partial-frame read buffer
    std::mutex write_mu;
  };

  void io_loop();
  bool read_ready(Connection& conn);
  Connection* connection_for(NodeId x, NodeId y);

  std::uint32_t n_;
  Receiver receiver_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::uint64_t, Connection*> by_pair_;
  std::thread io_thread_;
  std::atomic<bool> running_{false};
  int wake_pipe_[2] = {-1, -1};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace sgxp2p::net
