// Real-sockets transport: a TCP mesh over localhost.
//
// The simulated Network (net/network.hpp) gives determinism for tests and
// benchmarks; this module gives realism — the same protocol enclaves run
// over genuine TCP connections with length-prefixed frames and wall-clock
// rounds (the role Boost.Asio played in the paper's prototype). One TcpBus
// hosts all N endpoints of an in-process deployment: each node gets its own
// listening socket (OS-assigned port) and a full mesh of connections is
// established pairwise, so moving a node to another process later only
// changes how the port map is shared.
//
// TcpBus is the production data plane: a nonblocking epoll(7) event loop
// with edge-triggered reads into persistent per-connection rx buffers,
// per-connection bounded outbound queues drained with writev(2) coalescing
// (many small sealed frames per syscall), refcounted serialize-once
// multicast, explicit backpressure (queue high-watermark → kBackpressure),
// and reconnect-on-failure with capped exponential backoff. LegacyTcpBus
// (net/tcp_bus_legacy.hpp) preserves the original poll(2)+mutex loop behind
// the same interface as the bench_tcp comparison baseline.
//
// Threading: one background I/O thread owns every fd; send() only enqueues
// under a per-connection mutex and kicks the loop through an eventfd.
// Inbound frames are handed to the receiver callback ON the I/O thread —
// callers serialize their own node state (TcpTestbed uses one state mutex).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "sgx/trusted_time.hpp"

namespace sgxp2p::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace sgxp2p::obs

namespace sgxp2p::net {

/// Wall-clock trusted time: milliseconds since construction, from
/// CLOCK_MONOTONIC — the deployment analogue of sgx_get_trusted_time.
class SteadyClock final : public sgx::TrustedClock {
 public:
  SteadyClock();
  [[nodiscard]] SimTime now() const override;

 private:
  std::int64_t epoch_ns_;
};

/// What happened to a frame handed to send()/multicast(). kOk means the
/// frame was accepted into the connection's outbound queue (delivery is
/// still best-effort TCP); the error statuses replace the old silent drop.
enum class SendStatus : std::uint8_t {
  kOk = 0,
  kDown = 1,          // no usable connection (failed / reconnecting / bad id)
  kBackpressure = 2,  // outbound queue above the high-watermark; retry later
};

[[nodiscard]] const char* send_status_name(SendStatus status);

struct TcpBusOptions {
  /// Frames with a length prefix above this are a protocol violation: the
  /// connection is closed and net.tcp.bad_frames incremented.
  std::size_t max_frame = 16u * 1024 * 1024;
  /// Per-connection outbound queue bound. Once queued-but-unwritten bytes
  /// exceed this, send() returns kBackpressure (a single frame larger than
  /// the watermark is still admitted into an empty queue, so max_frame-sized
  /// blobs remain sendable).
  std::size_t tx_high_watermark = 4u * 1024 * 1024;
  /// Reconnect backoff: first retry after base ms, doubling up to max.
  std::uint32_t reconnect_base_ms = 25;
  std::uint32_t reconnect_max_ms = 2000;
  /// When false a failed connection stays down (tests that want to observe
  /// the kDown state without racing the redialer).
  bool reconnect = true;
};

/// The transport contract shared by the epoll TcpBus and the poll(2)
/// LegacyTcpBus, so testbeds and benches can run either interchangeably.
class TcpBusIface {
 public:
  /// Frame arriving for `to`, sent by `from`. Invoked on the I/O thread.
  using Receiver = std::function<void(NodeId to, NodeId from, Bytes blob)>;

  virtual ~TcpBusIface() = default;

  virtual void set_receiver(Receiver receiver) = 0;

  /// Binds N listeners, builds the pairwise mesh, starts the I/O thread.
  /// Returns false if any socket operation fails.
  virtual bool start() = 0;
  virtual void stop() = 0;

  /// Sends a frame; thread-safe. Takes the payload by value so callers can
  /// move pool-backed Bytes straight into the outbound queue (zero-copy).
  virtual SendStatus send(NodeId from, NodeId to, Bytes blob) = 0;
  SendStatus send(NodeId from, NodeId to, ByteView blob) {
    return send(from, to, Bytes(blob.begin(), blob.end()));
  }

  /// Serialize-once fan-out: the payload is moved into a shared refcounted
  /// buffer and every connection queue holds a reference — the socket-layer
  /// mirror of broadcast_val's one-serialization semantics. Returns the
  /// worst per-destination status (kBackpressure > kDown > kOk).
  virtual SendStatus multicast(NodeId from, const std::vector<NodeId>& group,
                               Bytes payload) = 0;

  [[nodiscard]] virtual std::uint64_t messages_sent() const = 0;
  [[nodiscard]] virtual std::uint64_t bytes_sent() const = 0;
  [[nodiscard]] virtual std::uint16_t port_of(NodeId id) const = 0;
};

class TcpBus final : public TcpBusIface {
 public:
  using TcpBusIface::send;

  explicit TcpBus(std::uint32_t n, TcpBusOptions options = {});
  ~TcpBus() override;

  TcpBus(const TcpBus&) = delete;
  TcpBus& operator=(const TcpBus&) = delete;

  void set_receiver(Receiver receiver) override {
    receiver_ = std::move(receiver);
  }

  bool start() override;
  void stop() override;

  SendStatus send(NodeId from, NodeId to, Bytes blob) override;
  SendStatus multicast(NodeId from, const std::vector<NodeId>& group,
                       Bytes payload) override;

  [[nodiscard]] std::uint64_t messages_sent() const override {
    return messages_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const override {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint16_t port_of(NodeId id) const override {
    return ports_.at(id);
  }

  // ---- fault-injection hooks (tests and the TCP fuzz shim) ----

  /// Abruptly closes both fds of the (a,b) connection from the I/O thread,
  /// as if the kernel reported an error mid-stream. Synchronous: returns
  /// once the break has been applied, so subsequent sends observe kDown
  /// until the pair heals via the normal backoff path (reconnect enabled).
  void debug_break(NodeId a, NodeId b);

  /// Queues raw bytes on the (from→to) connection without framing — for
  /// exercising torn/oversized-frame handling at the receiver.
  SendStatus debug_send_raw(NodeId from, NodeId to, Bytes raw);

 private:
  /// One directed half of a pair's duplex connection: the fd on `self`'s
  /// side. Writes from `self` go out here; reads yield frames from `peer`.
  struct OutFrame {
    std::array<std::uint8_t, 12> header{};  // u32 len ‖ u32 from ‖ u32 to
    std::uint8_t header_len = 0;            // 12, or 8 (hello), or 0 (raw)
    std::shared_ptr<const Bytes> payload;   // null for header-only frames
    std::size_t offset = 0;                 // bytes already written
    [[nodiscard]] std::size_t size() const {
      return header_len + (payload ? payload->size() : 0);
    }
  };
  struct Endpoint {
    NodeId self = kNoNode;
    NodeId peer = kNoNode;
    std::uint32_t sib = 0;  // index of the pair's other endpoint
    bool is_dialer = false;  // self > peer: this side redials on failure

    // I/O-thread-only state.
    int fd = -1;
    Bytes rx;  // persistent read buffer; frames parsed from rx_head
    std::size_t rx_head = 0;
    bool connecting = false;      // nonblocking connect() in flight
    std::uint32_t backoff_ms = 0;  // current retry delay (dialer side)
    std::int64_t retry_at = -1;    // now_ms() deadline; -1 = none pending

    // Sender-visible state, guarded by mu.
    std::mutex mu;
    std::deque<OutFrame> txq;
    std::size_t tx_bytes = 0;  // queued-but-unwritten bytes
    bool scheduled = false;    // already on the kick list
    bool down = false;
  };
  struct Pending {  // accepted fd waiting for its 8-byte hello
    std::array<std::uint8_t, 8> hello{};
    std::size_t got = 0;
  };
  struct Ctl {
    enum class Op : std::uint8_t { kBreak } op = Op::kBreak;
    NodeId a = kNoNode;
    NodeId b = kNoNode;
  };

  static std::uint64_t pair_key(NodeId writer, NodeId peer) {
    return (static_cast<std::uint64_t>(writer) << 32) | peer;
  }
  [[nodiscard]] static std::int64_t now_ms();

  SendStatus enqueue_frame(std::uint32_t idx, OutFrame frame);
  void kick(std::uint32_t idx);

  void io_loop();
  void drain_wake();
  void process_kicks();
  void process_controls();
  void process_retries();
  [[nodiscard]] int next_timeout_ms() const;
  void service_tx(std::uint32_t idx);
  [[nodiscard]] bool drain_tx_locked(Endpoint& e);
  void on_endpoint_event(std::uint32_t idx, std::uint32_t events);
  [[nodiscard]] bool on_readable(Endpoint& e);
  [[nodiscard]] bool drain_rx(Endpoint& e);
  void on_accept(std::uint32_t listener_node);
  void on_pending(int fd, std::uint32_t events);
  void adopt_accepted(int fd, NodeId hi, NodeId lo);
  void fail_pair(std::uint32_t idx);
  void attempt_redial(std::uint32_t idx);
  void redial_failed(Endpoint& d);
  void finish_redial(std::uint32_t idx);
  bool register_fd(int fd, std::uint32_t tag, std::uint32_t idx,
                   std::uint32_t events);

  std::uint32_t n_;
  TcpBusOptions options_;
  Receiver receiver_;
  std::vector<std::uint16_t> ports_;
  std::vector<int> listeners_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::uint64_t, std::uint32_t> by_pair_;  // (writer,peer) → index
  std::map<int, Pending> pending_;

  int epfd_ = -1;
  int wake_fd_ = -1;
  std::thread io_thread_;
  std::atomic<bool> running_{false};

  std::mutex kick_mu_;
  std::vector<std::uint32_t> kicked_;
  std::mutex ctl_mu_;
  std::vector<Ctl> ctl_;
  std::uint64_t ctl_posted_ = 0;  // under ctl_mu_
  std::atomic<std::uint64_t> ctl_done_{0};

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};

  // Instrument handles, resolved once from MetricsRegistry::current() on the
  // constructing thread and touched from the I/O thread as relaxed atomics
  // (the MeshTransport pattern).
  obs::Counter* sends_ = nullptr;
  obs::Counter* sent_bytes_ = nullptr;
  obs::Counter* received_ = nullptr;
  obs::Counter* received_bytes_ = nullptr;
  obs::Counter* send_failures_ = nullptr;
  obs::Counter* backpressure_events_ = nullptr;
  obs::Counter* bad_frames_ = nullptr;
  obs::Counter* reconnects_ = nullptr;
  obs::Counter* conn_failures_ = nullptr;
  obs::Counter* writev_calls_ = nullptr;
  obs::Counter* recv_calls_ = nullptr;
  obs::Counter* multicasts_ = nullptr;
  obs::Histogram* writev_batch_ = nullptr;
  obs::Gauge* tx_queue_peak_ = nullptr;
};

}  // namespace sgxp2p::net
