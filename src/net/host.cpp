#include "net/host.hpp"

namespace sgxp2p::net {

Host::Host(NodeId self, sim::Network& network,
           std::unique_ptr<adversary::Strategy> strategy,
           std::uint64_t rng_seed)
    : self_(self),
      network_(&network),
      strategy_(std::move(strategy)),
      rng_(rng_seed) {}

void Host::connect() {
  network_->attach(self_, [this](NodeId from, Bytes blob) {
    on_network(from, std::move(blob));
  });
}

}  // namespace sgxp2p::net
