#include "net/testbed.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/serde.hpp"

namespace sgxp2p::sim {

namespace {
Bytes platform_seed(std::uint64_t seed) {
  BinaryWriter w;
  w.str("sgxp2p-platform");
  w.u64(seed);
  return w.take();
}
}  // namespace

Testbed::Testbed(TestbedConfig config)
    : cfg_(config),
      registry_(config.registry != nullptr ? config.registry
                                           : &obs::MetricsRegistry::current()),
      simulator_(*registry_, config.engine),
      network_(simulator_, config.net, *registry_),
      platform_(simulator_, platform_seed(config.seed)) {
  simulator_.set_jobs(cfg_.jobs);
  // Every ecall/ocall on this deployment is counted under sgx.*; when the
  // config carries nonzero costs, each transition also charges virtual time
  // that the Network folds into the next send's arrival.
  platform_.transitions().bind(*registry_);
  platform_.transitions().configure(
      cfg_.sgx_costs, [this](SimDuration c) { simulator_.charge(c); });
  ias_ = std::make_unique<sgx::SimIAS>(platform_);
  CHECK_MSG(cfg_.n >= 1, "Testbed: need at least one node");
  CHECK_MSG(2 * cfg_.effective_t() < cfg_.n, "Testbed: t < N/2 required");
  // Lockstep soundness: a message sent at a round boundary plus its ACK must
  // land inside the same round, so the round must cover two worst-case hops.
  CHECK_MSG(cfg_.effective_round() >= 2 * cfg_.net.worst_delay(),
            "Testbed: round shorter than 2Δ");
}

void Testbed::build(const EnclaveFactory& make_enclave,
                    const StrategyFactory& make_strategy) {
  // Everything below (and transitively: handshakes, seq exchange) runs
  // enclave code that resolves instruments via MetricsRegistry::current().
  obs::MetricsRegistry::ScopedCurrent bind(*registry_);
  hosts_.reserve(cfg_.n);
  enclaves_.reserve(cfg_.n);

  std::vector<NodeId> byzantine;
  for (NodeId id = 0; id < cfg_.n; ++id) {
    std::unique_ptr<adversary::Strategy> strategy;
    if (make_strategy) strategy = make_strategy(id);
    if (!strategy) strategy = std::make_unique<adversary::HonestStrategy>();
    auto host = std::make_unique<net::Host>(id, network_, std::move(strategy),
                                            cfg_.seed * 1000003 + id);
    if (host->is_byzantine()) byzantine.push_back(id);
    hosts_.push_back(std::move(host));
  }

  protocol::PeerConfig pc;
  pc.n = cfg_.n;
  pc.t = cfg_.effective_t();
  pc.round_ms = cfg_.effective_round();
  pc.mode = cfg_.mode;
  for (NodeId id = 0; id < cfg_.n; ++id) {
    pc.self = id;
    auto enclave = make_enclave(id, platform_, *hosts_[id], pc, *ias_);
    CHECK_MSG(enclave != nullptr, "Testbed: factory returned null");
    hosts_[id]->attach_enclave(*enclave);
    hosts_[id]->set_colluders(byzantine);
    hosts_[id]->connect();
    enclaves_.push_back(std::move(enclave));
  }
  run_setup();
}

void Testbed::run_setup() {
  // One-time setup phase (paper Section 4 "Setup Phase"). Modeled as a
  // trusted bootstrap: handshake artifacts are real (quotes, X25519) but are
  // exchanged by the harness rather than over the adversarial wire — the
  // paper assumes setup completes and excludes it from all measurements.
  //
  // Default topology is the paper's full clique. When cfg_.setup_peers is
  // set it names each node's out-neighbors and only those pairs are set up
  // (callers wanting bidirectional channels list symmetric neighbor sets);
  // sharded 100k-node deployments use this to avoid the O(n²) bootstrap.
  const auto peers_of = [this](NodeId a) {
    if (cfg_.setup_peers) return cfg_.setup_peers(a);
    std::vector<NodeId> all;
    all.reserve(cfg_.n - 1);
    for (NodeId b = 0; b < cfg_.n; ++b) {
      if (b != a) all.push_back(b);
    }
    return all;
  };
  if (cfg_.mode == protocol::ChannelMode::kAttested) {
    std::vector<Bytes> hello(cfg_.n);  // computed lazily: sparse setups
    for (NodeId a = 0; a < cfg_.n; ++a) {
      for (NodeId b : peers_of(a)) {
        if (a == b) continue;
        if (hello[a].empty()) hello[a] = enclaves_[a]->handshake_blob();
        bool ok = enclaves_[b]->accept_handshake(hello[a]);
        CHECK_MSG(ok, "Testbed: attested handshake failed");
      }
    }
  } else {
    for (NodeId a = 0; a < cfg_.n; ++a) {
      for (NodeId b : peers_of(a)) {
        if (a != b) enclaves_[a]->install_fast_link(b);
      }
    }
  }
  // Initial instance-sequence exchange (P6), over the sealed links.
  for (NodeId a = 0; a < cfg_.n; ++a) {
    for (NodeId b : peers_of(a)) {
      if (a == b) continue;
      Bytes blob = enclaves_[a]->make_seq_blob(b);
      bool ok = enclaves_[b]->accept_seq_blob(a, blob);
      CHECK_MSG(ok, "Testbed: sequence exchange failed");
    }
  }
}

void Testbed::start() {
  obs::MetricsRegistry::ScopedCurrent bind(*registry_);
  // S2: synchronized start at a public reference time.
  t0_ = simulator_.now() + milliseconds(10);
  LOG_INFO("testbed: start N=", cfg_.n, " t=", cfg_.effective_t(),
           " seed=", cfg_.seed, " round_ms=", cfg_.effective_round());
  for (auto& enclave : enclaves_) enclave->start_protocol(t0_);
}

std::uint32_t Testbed::run_rounds(std::uint32_t max_rounds,
                                  const std::function<bool()>& stop_when) {
  obs::MetricsRegistry::ScopedCurrent bind(*registry_);
  const SimDuration rt = cfg_.effective_round();
  // Consecutive calls continue the schedule (rounds_run_ tracks progress).
  for (std::uint32_t r = 1; r <= max_rounds; ++r) {
    SimTime boundary =
        t0_ + static_cast<SimTime>(rounds_run_ + r - 1) * rt;
    simulator_.run_until(boundary);
    // Crash/recovery injection runs first so a node killed "at round R"
    // never observes R's tick and a node relaunched at R ticks immediately.
    if (round_hook_) round_hook_(rounds_run_ + r);
    // Trusted timers fire: every live enclave observes the new round. Each
    // tick is its own ECALL: clear the transition-charge accumulator so one
    // node's tick cost never delays a different node's sends.
    for (NodeId id = 0; id < cfg_.n; ++id) {
      if (enclaves_[id] && network_.attached(id)) {
        simulator_.clear_charge();
        enclaves_[id]->on_tick();
      }
    }
    simulator_.clear_charge();
    // P4: nodes that halted leave the network immediately.
    for (NodeId id = 0; id < cfg_.n; ++id) {
      if (enclaves_[id] && enclaves_[id]->halted() && network_.attached(id)) {
        network_.detach(id);
      }
    }
    // Let the round's traffic settle.
    simulator_.run_until(boundary + rt - 1);
    if (stop_when && stop_when()) {
      rounds_run_ += r;
      return r;
    }
  }
  rounds_run_ += max_rounds;
  return max_rounds;
}

void Testbed::kill_enclave(NodeId id) {
  CHECK_MSG(id < cfg_.n && enclaves_.at(id) != nullptr,
            "kill_enclave: no such enclave");
  if (network_.attached(id)) network_.detach(id);
  hosts_[id]->detach_enclave();
  enclaves_[id].reset();  // everything in-enclave is gone
}

protocol::PeerEnclave& Testbed::relaunch_enclave(
    NodeId id, const EnclaveFactory& make_enclave,
    const std::function<void(protocol::PeerEnclave&)>& before_start) {
  obs::MetricsRegistry::ScopedCurrent bind(*registry_);
  CHECK_MSG(id < cfg_.n && enclaves_.at(id) == nullptr,
            "relaunch_enclave: node still running");
  protocol::PeerConfig pc;
  pc.self = id;
  pc.n = cfg_.n;
  pc.t = cfg_.effective_t();
  pc.round_ms = cfg_.effective_round();
  pc.mode = cfg_.mode;
  auto enclave = make_enclave(id, platform_, *hosts_[id], pc, *ias_);
  CHECK_MSG(enclave != nullptr, "relaunch_enclave: factory returned null");
  hosts_[id]->attach_enclave(*enclave);
  hosts_[id]->connect();
  enclaves_[id] = std::move(enclave);
  if (before_start) before_start(*enclaves_[id]);
  // Same T0 as everyone else: trusted time puts the relaunched enclave into
  // the current round, not round 1.
  enclaves_[id]->start_protocol(t0_);
  return *enclaves_[id];
}

std::vector<NodeId> Testbed::live_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < cfg_.n; ++id) {
    if (network_.attached(id)) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Testbed::honest_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < cfg_.n; ++id) {
    if (!hosts_[id]->is_byzantine()) out.push_back(id);
  }
  return out;
}

}  // namespace sgxp2p::sim
