#include "net/tcp_bus.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pool.hpp"

namespace sgxp2p::net {

namespace {

// Frame layout: u32 payload length ‖ u32 from ‖ u32 to ‖ payload.
constexpr std::size_t kFrameHeader = 12;
// Hello frame (connection identification): u32 dialer ‖ u32 acceptor.
constexpr std::size_t kHello = 8;

// epoll_event.data.u64 = (tag << 32) | index.
constexpr std::uint32_t kTagWake = 0;
constexpr std::uint32_t kTagListener = 1;
constexpr std::uint32_t kTagEndpoint = 2;
constexpr std::uint32_t kTagPending = 3;  // index = fd

// iovec slots per sendmsg batch; each frame needs up to two (header,
// payload), so one syscall can carry up to 32 coalesced frames.
constexpr int kMaxIov = 64;

std::uint64_t epoll_data(std::uint32_t tag, std::uint32_t idx) {
  return (static_cast<std::uint64_t>(tag) << 32) | idx;
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SteadyClock::SteadyClock()
    : epoch_ns_(std::chrono::steady_clock::now().time_since_epoch().count()) {}

SimTime SteadyClock::now() const {
  auto now_ns = std::chrono::steady_clock::now().time_since_epoch().count();
  return (now_ns - epoch_ns_) / 1'000'000;
}

const char* send_status_name(SendStatus status) {
  switch (status) {
    case SendStatus::kOk:
      return "ok";
    case SendStatus::kDown:
      return "down";
    case SendStatus::kBackpressure:
      return "backpressure";
  }
  return "?";
}

TcpBus::TcpBus(std::uint32_t n, TcpBusOptions options)
    : n_(n), options_(options), ports_(n, 0) {
  auto& reg = obs::MetricsRegistry::current();
  sends_ = &reg.counter("net.tcp.sends");
  sent_bytes_ = &reg.counter("net.tcp.sent_bytes");
  received_ = &reg.counter("net.tcp.received");
  received_bytes_ = &reg.counter("net.tcp.received_bytes");
  send_failures_ = &reg.counter("net.tcp.send_failures");
  backpressure_events_ = &reg.counter("net.tcp.backpressure_events");
  bad_frames_ = &reg.counter("net.tcp.bad_frames");
  reconnects_ = &reg.counter("net.tcp.reconnects");
  conn_failures_ = &reg.counter("net.tcp.conn_failures");
  writev_calls_ = &reg.counter("net.tcp.writev_calls");
  recv_calls_ = &reg.counter("net.tcp.recv_calls");
  multicasts_ = &reg.counter("net.tcp.multicasts");
  writev_batch_ =
      &reg.histogram("net.tcp.writev_batch", {1, 2, 4, 8, 16, 32, 64, 128});
  tx_queue_peak_ = &reg.gauge("net.tcp.tx_queue_peak_bytes");
}

TcpBus::~TcpBus() { stop(); }

std::int64_t TcpBus::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TcpBus::register_fd(int fd, std::uint32_t tag, std::uint32_t idx,
                         std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = epoll_data(tag, idx);
  return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool TcpBus::start() {
  listeners_.assign(n_, -1);
  auto fail = [&]() {
    for (int& fd : listeners_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    for (auto& e : endpoints_) {
      if (e->fd >= 0) ::close(e->fd);
    }
    endpoints_.clear();
    by_pair_.clear();
    if (epfd_ >= 0) ::close(epfd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epfd_ = wake_fd_ = -1;
    return false;
  };

  // One listener per node, OS-assigned port on loopback. Listeners stay open
  // (and registered with epoll below) so failed connections can redial.
  for (std::uint32_t i = 0; i < n_; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail();
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, static_cast<int>(n_)) < 0) {
      ::close(fd);
      return fail();
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports_[i] = ntohs(addr.sin_port);
    listeners_[i] = fd;
  }

  // Mesh: for each pair (lo, hi), hi dials lo's listener and announces the
  // pair with a hello frame of two u32s. This initial bring-up is blocking
  // and sequential; the fds turn nonblocking once handed to epoll.
  for (std::uint32_t hi = 1; hi < n_; ++hi) {
    for (std::uint32_t lo = 0; lo < hi; ++lo) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return fail();
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ports_[lo]);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        ::close(fd);
        return fail();
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      std::uint8_t hello[kHello];
      store_le32(hello, hi);
      store_le32(hello + 4, lo);
      if (!write_all(fd, hello, sizeof hello)) {
        ::close(fd);
        return fail();
      }
      int afd = ::accept(listeners_[lo], nullptr, nullptr);
      if (afd < 0) {
        ::close(fd);
        return fail();
      }
      ::setsockopt(afd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      std::uint8_t hello_in[kHello];
      std::size_t got = 0;
      while (got < sizeof hello_in) {
        ssize_t r = ::recv(afd, hello_in + got, sizeof hello_in - got, 0);
        if (r <= 0) {
          ::close(fd);
          ::close(afd);
          return fail();
        }
        got += static_cast<std::size_t>(r);
      }
      // Two directed endpoints share the duplex connection: the dialer (hi)
      // writes on `fd`, the acceptor (lo) writes on `afd`.
      auto dialer = std::make_unique<Endpoint>();
      dialer->self = hi;
      dialer->peer = lo;
      dialer->is_dialer = true;
      dialer->fd = fd;
      auto acceptor = std::make_unique<Endpoint>();
      acceptor->self = lo;
      acceptor->peer = hi;
      acceptor->fd = afd;
      const auto d_idx = static_cast<std::uint32_t>(endpoints_.size());
      const auto a_idx = d_idx + 1;
      dialer->sib = a_idx;
      acceptor->sib = d_idx;
      by_pair_[pair_key(hi, lo)] = d_idx;
      by_pair_[pair_key(lo, hi)] = a_idx;
      endpoints_.push_back(std::move(dialer));
      endpoints_.push_back(std::move(acceptor));
    }
  }

  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epfd_ < 0 || wake_fd_ < 0) return fail();
  if (!register_fd(wake_fd_, kTagWake, 0, EPOLLIN)) return fail();
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (!set_nonblocking(listeners_[i]) ||
        !register_fd(listeners_[i], kTagListener, i, EPOLLIN)) {
      return fail();
    }
  }
  for (std::uint32_t idx = 0; idx < endpoints_.size(); ++idx) {
    Endpoint& e = *endpoints_[idx];
    if (!set_nonblocking(e.fd) ||
        !register_fd(e.fd, kTagEndpoint, idx, EPOLLIN | EPOLLOUT | EPOLLET)) {
      return fail();
    }
  }

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void TcpBus::stop() {
  if (!running_.exchange(false)) return;
  if (wake_fd_ >= 0) {
    std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof one);
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& e : endpoints_) {
    std::lock_guard<std::mutex> lock(e->mu);
    if (e->fd >= 0) ::close(e->fd);
    e->fd = -1;
    e->down = true;
    e->txq.clear();
    e->tx_bytes = 0;
  }
  for (auto& [fd, pending] : pending_) ::close(fd);
  pending_.clear();
  for (int& fd : listeners_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (epfd_ >= 0) ::close(epfd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epfd_ = wake_fd_ = -1;
}

// ---- send path ------------------------------------------------------------

SendStatus TcpBus::enqueue_frame(std::uint32_t idx, OutFrame frame) {
  Endpoint& e = *endpoints_[idx];
  const std::size_t sz = frame.size();
  bool do_kick = false;
  std::size_t queued = 0;
  {
    std::lock_guard<std::mutex> lock(e.mu);
    if (e.down) {
      send_failures_->inc();
      return SendStatus::kDown;
    }
    // A frame larger than the watermark is still admitted into an empty
    // queue; otherwise max_frame-sized blobs could never be sent.
    if (!e.txq.empty() && e.tx_bytes + sz > options_.tx_high_watermark) {
      backpressure_events_->inc();
      return SendStatus::kBackpressure;
    }
    e.txq.push_back(std::move(frame));
    e.tx_bytes += sz;
    queued = e.tx_bytes;
    if (!e.scheduled) {
      e.scheduled = true;
      do_kick = true;
    }
  }
  tx_queue_peak_->max_of(static_cast<std::int64_t>(queued));
  if (do_kick) kick(idx);
  return SendStatus::kOk;
}

void TcpBus::kick(std::uint32_t idx) {
  {
    std::lock_guard<std::mutex> lock(kick_mu_);
    kicked_.push_back(idx);
  }
  std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof one);
}

SendStatus TcpBus::send(NodeId from, NodeId to, Bytes blob) {
  if (!running_.load(std::memory_order_acquire) || from == to || to >= n_ ||
      from >= n_ || blob.size() > options_.max_frame) {
    send_failures_->inc();
    return SendStatus::kDown;
  }
  auto it = by_pair_.find(pair_key(from, to));
  if (it == by_pair_.end()) {
    send_failures_->inc();
    return SendStatus::kDown;
  }
  const std::size_t len = blob.size();
  OutFrame f;
  store_le32(f.header.data(), static_cast<std::uint32_t>(len));
  store_le32(f.header.data() + 4, from);
  store_le32(f.header.data() + 8, to);
  f.header_len = kFrameHeader;
  f.payload = std::make_shared<const Bytes>(std::move(blob));
  SendStatus st = enqueue_frame(it->second, std::move(f));
  if (st == SendStatus::kOk) {
    sends_->inc();
    sent_bytes_->inc(len);
    ++messages_sent_;
    bytes_sent_ += len;
  }
  return st;
}

SendStatus TcpBus::multicast(NodeId from, const std::vector<NodeId>& group,
                             Bytes payload) {
  if (!running_.load(std::memory_order_acquire) || from >= n_ ||
      payload.size() > options_.max_frame) {
    send_failures_->inc();
    return SendStatus::kDown;
  }
  const std::size_t len = payload.size();
  // Serialize once: every destination queue holds a reference to the same
  // immutable buffer; the bytes are copied only by the kernel at sendmsg.
  auto shared = std::make_shared<const Bytes>(std::move(payload));
  multicasts_->inc();
  SendStatus worst = SendStatus::kOk;
  auto note = [&worst](SendStatus st) {
    if (static_cast<int>(st) > static_cast<int>(worst)) worst = st;
  };
  for (NodeId to : group) {
    if (to == from) continue;
    auto it = to < n_ ? by_pair_.find(pair_key(from, to)) : by_pair_.end();
    if (it == by_pair_.end()) {
      send_failures_->inc();
      note(SendStatus::kDown);
      continue;
    }
    OutFrame f;
    store_le32(f.header.data(), static_cast<std::uint32_t>(len));
    store_le32(f.header.data() + 4, from);
    store_le32(f.header.data() + 8, to);
    f.header_len = kFrameHeader;
    f.payload = shared;
    SendStatus st = enqueue_frame(it->second, std::move(f));
    if (st == SendStatus::kOk) {
      sends_->inc();
      sent_bytes_->inc(len);
      ++messages_sent_;
      bytes_sent_ += len;
    }
    note(st);
  }
  return worst;
}

void TcpBus::debug_break(NodeId a, NodeId b) {
  if (!running_.load(std::memory_order_acquire)) return;
  std::uint64_t target;
  {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    ctl_.push_back({Ctl::Op::kBreak, a, b});
    target = ++ctl_posted_;
  }
  std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof one);
  // Synchronous: controls are processed FIFO, so once the done-counter
  // reaches this control's position the pair is genuinely down and sends
  // observe kDown until the redial completes — no window where a frame is
  // accepted only to be wiped by the imminent fail_pair.
  while (ctl_done_.load(std::memory_order_acquire) < target &&
         running_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

SendStatus TcpBus::debug_send_raw(NodeId from, NodeId to, Bytes raw) {
  if (!running_.load(std::memory_order_acquire)) return SendStatus::kDown;
  auto it = by_pair_.find(pair_key(from, to));
  if (it == by_pair_.end()) return SendStatus::kDown;
  OutFrame f;  // header_len = 0: the bytes go on the wire unframed
  f.payload = std::make_shared<const Bytes>(std::move(raw));
  return enqueue_frame(it->second, std::move(f));
}

// ---- I/O loop -------------------------------------------------------------

void TcpBus::io_loop() {
  std::vector<epoll_event> events(512);
  while (running_.load(std::memory_order_acquire)) {
    int nev =
        ::epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                     next_timeout_ms());
    if (nev < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < nev; ++i) {
      const std::uint64_t data = events[i].data.u64;
      const auto tag = static_cast<std::uint32_t>(data >> 32);
      const auto idx = static_cast<std::uint32_t>(data & 0xffffffffu);
      switch (tag) {
        case kTagWake:
          drain_wake();
          break;
        case kTagListener:
          on_accept(idx);
          break;
        case kTagPending:
          on_pending(static_cast<int>(idx), events[i].events);
          break;
        case kTagEndpoint:
          on_endpoint_event(idx, events[i].events);
          break;
        default:
          break;
      }
    }
    process_controls();
    process_kicks();
    process_retries();
  }
}

void TcpBus::drain_wake() {
  std::uint64_t drained = 0;
  (void)!::read(wake_fd_, &drained, sizeof drained);
}

void TcpBus::process_kicks() {
  std::vector<std::uint32_t> batch;
  {
    std::lock_guard<std::mutex> lock(kick_mu_);
    batch.swap(kicked_);
  }
  for (std::uint32_t idx : batch) service_tx(idx);
}

void TcpBus::process_controls() {
  std::vector<Ctl> batch;
  {
    std::lock_guard<std::mutex> lock(ctl_mu_);
    batch.swap(ctl_);
  }
  for (const Ctl& c : batch) {
    if (c.a != c.b && c.a < n_ && c.b < n_) {
      auto it = by_pair_.find(pair_key(c.a, c.b));
      if (it != by_pair_.end()) fail_pair(it->second);
    }
    ctl_done_.fetch_add(1, std::memory_order_release);
  }
}

void TcpBus::process_retries() {
  const std::int64_t now = now_ms();
  for (std::uint32_t idx = 0; idx < endpoints_.size(); ++idx) {
    Endpoint& e = *endpoints_[idx];
    if (e.is_dialer && e.retry_at >= 0 && now >= e.retry_at) {
      attempt_redial(idx);
    }
  }
}

int TcpBus::next_timeout_ms() const {
  std::int64_t best = 100;  // idle heartbeat; also bounds shutdown latency
  const std::int64_t now = now_ms();
  for (const auto& e : endpoints_) {
    if (e->retry_at >= 0) best = std::min(best, e->retry_at - now);
  }
  return static_cast<int>(std::max<std::int64_t>(best, 0));
}

void TcpBus::service_tx(std::uint32_t idx) {
  Endpoint& e = *endpoints_[idx];
  bool ok = true;
  {
    std::lock_guard<std::mutex> lock(e.mu);
    e.scheduled = false;
    if (e.down || e.fd < 0 || e.connecting) return;
    ok = drain_tx_locked(e);
  }
  if (!ok) fail_pair(idx);
}

bool TcpBus::drain_tx_locked(Endpoint& e) {
  while (!e.txq.empty()) {
    iovec iov[kMaxIov];
    int n_iov = 0;
    std::int64_t frames = 0;
    for (auto it = e.txq.begin(); it != e.txq.end() && n_iov + 2 <= kMaxIov;
         ++it) {
      OutFrame& f = *it;
      std::size_t off = f.offset;
      if (off < f.header_len) {
        iov[n_iov].iov_base = f.header.data() + off;
        iov[n_iov].iov_len = f.header_len - off;
        ++n_iov;
        off = 0;
      } else {
        off -= f.header_len;
      }
      if (f.payload && off < f.payload->size()) {
        iov[n_iov].iov_base =
            const_cast<std::uint8_t*>(f.payload->data()) + off;
        iov[n_iov].iov_len = f.payload->size() - off;
        ++n_iov;
      }
      ++frames;
    }
    if (n_iov == 0) {  // fully-written frames not yet popped (empty raw)
      e.tx_bytes -= e.txq.front().size();
      e.txq.pop_front();
      continue;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(n_iov);
    ssize_t w = ::sendmsg(e.fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // EPOLLOUT
      if (errno == EINTR) continue;
      return false;
    }
    writev_calls_->inc();
    writev_batch_->observe(frames);
    auto left = static_cast<std::size_t>(w);
    while (left > 0 && !e.txq.empty()) {
      OutFrame& f = e.txq.front();
      const std::size_t remain = f.size() - f.offset;
      if (left >= remain) {
        left -= remain;
        e.tx_bytes -= f.size();
        e.txq.pop_front();
      } else {
        f.offset += left;
        left = 0;
      }
    }
  }
  return true;
}

void TcpBus::on_endpoint_event(std::uint32_t idx, std::uint32_t events) {
  Endpoint& e = *endpoints_[idx];
  if (e.fd < 0) return;  // stale event from an fd closed earlier this batch
  if (e.connecting) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(e.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, e.fd, nullptr);
      ::close(e.fd);
      e.fd = -1;
      e.connecting = false;
      redial_failed(e);
    } else if ((events & EPOLLOUT) != 0) {
      finish_redial(idx);
    }
    return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    fail_pair(idx);
    return;
  }
  if ((events & EPOLLIN) != 0 && !on_readable(e)) {
    fail_pair(idx);
    return;
  }
  if (e.fd >= 0 && (events & EPOLLOUT) != 0) service_tx(idx);
}

bool TcpBus::on_readable(Endpoint& e) {
  std::uint8_t buf[64 * 1024];
  while (true) {  // edge-triggered: must read until EAGAIN
    ssize_t r = ::recv(e.fd, buf, sizeof buf, 0);
    if (r > 0) {
      recv_calls_->inc();
      e.rx.insert(e.rx.end(), buf, buf + r);
      if (!drain_rx(e)) return false;
      continue;
    }
    if (r == 0) return false;  // orderly close
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool TcpBus::drain_rx(Endpoint& e) {
  while (true) {
    const std::size_t avail = e.rx.size() - e.rx_head;
    if (avail < kFrameHeader) break;
    const std::uint8_t* p = e.rx.data() + e.rx_head;
    const std::uint32_t len = load_le32(p);
    if (len > options_.max_frame) {
      bad_frames_->inc();
      return false;  // protocol violation: drop the connection
    }
    if (avail < kFrameHeader + len) break;  // incomplete frame; wait
    const NodeId from = load_le32(p + 4);
    const NodeId to = load_le32(p + 8);
    // Transport-level sender binding: this fd only carries peer → self.
    if (from != e.peer || to != e.self) {
      bad_frames_->inc();
      return false;
    }
    Bytes payload = obs::BufferPool::local().acquire_empty(len);
    payload.assign(p + kFrameHeader, p + kFrameHeader + len);
    e.rx_head += kFrameHeader + len;
    received_->inc();
    received_bytes_->inc(len);
    if (receiver_) receiver_(to, from, std::move(payload));
  }
  if (e.rx_head == e.rx.size()) {
    e.rx.clear();
    e.rx_head = 0;
  } else if (e.rx_head >= 256 * 1024) {
    e.rx.erase(e.rx.begin(),
               e.rx.begin() + static_cast<std::ptrdiff_t>(e.rx_head));
    e.rx_head = 0;
  }
  return true;
}

// ---- reconnect ------------------------------------------------------------

void TcpBus::fail_pair(std::uint32_t idx) {
  Endpoint& e = *endpoints_[idx];
  Endpoint& s = *endpoints_[e.sib];
  const bool was_live = e.fd >= 0 || s.fd >= 0 || e.connecting || s.connecting;
  if (was_live) conn_failures_->inc();
  for (Endpoint* x : {&e, &s}) {
    std::lock_guard<std::mutex> lock(x->mu);
    if (x->fd >= 0) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, x->fd, nullptr);
      ::close(x->fd);
      x->fd = -1;
    }
    x->connecting = false;
    x->down = true;
    x->txq.clear();
    x->tx_bytes = 0;
    x->scheduled = false;
    // A torn frame (partial write at the moment of failure) dies here: the
    // residual rx prefix is discarded, never delivered.
    x->rx.clear();
    x->rx_head = 0;
  }
  Endpoint& d = e.is_dialer ? e : s;
  if (options_.reconnect && running_.load(std::memory_order_acquire)) {
    d.backoff_ms =
        d.backoff_ms == 0
            ? options_.reconnect_base_ms
            : std::min(d.backoff_ms * 2, options_.reconnect_max_ms);
    d.retry_at = now_ms() + d.backoff_ms;
  }
}

void TcpBus::attempt_redial(std::uint32_t idx) {
  Endpoint& d = *endpoints_[idx];
  d.retry_at = -1;
  if (!running_.load(std::memory_order_acquire) || !options_.reconnect) return;
  {
    std::lock_guard<std::mutex> lock(d.mu);
    if (!d.down) return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    redial_failed(d);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ports_[d.peer]);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc == 0) {
    d.fd = fd;
    if (!register_fd(fd, kTagEndpoint, idx, EPOLLIN | EPOLLOUT | EPOLLET)) {
      ::close(fd);
      d.fd = -1;
      redial_failed(d);
      return;
    }
    finish_redial(idx);
  } else if (errno == EINPROGRESS) {
    d.fd = fd;
    d.connecting = true;
    if (!register_fd(fd, kTagEndpoint, idx, EPOLLIN | EPOLLOUT | EPOLLET)) {
      ::close(fd);
      d.fd = -1;
      d.connecting = false;
      redial_failed(d);
    }
  } else {
    ::close(fd);
    redial_failed(d);
  }
}

void TcpBus::redial_failed(Endpoint& d) {
  d.backoff_ms = std::min(std::max(d.backoff_ms * 2, options_.reconnect_base_ms),
                          options_.reconnect_max_ms);
  d.retry_at = now_ms() + d.backoff_ms;
}

void TcpBus::finish_redial(std::uint32_t idx) {
  Endpoint& d = *endpoints_[idx];
  int one = 1;
  ::setsockopt(d.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  d.connecting = false;
  d.backoff_ms = 0;
  OutFrame hello;
  store_le32(hello.header.data(), d.self);
  store_le32(hello.header.data() + 4, d.peer);
  hello.header_len = kHello;
  {
    std::lock_guard<std::mutex> lock(d.mu);
    d.down = false;
    d.txq.push_front(std::move(hello));
    d.tx_bytes += kHello;
  }
  reconnects_->inc();
  LOG_DEBUG("tcp_bus: reconnected ", d.self, "<->", d.peer);
  service_tx(idx);
}

void TcpBus::on_accept(std::uint32_t listener_node) {
  while (true) {
    int fd = ::accept4(listeners_[listener_node], nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or transient error): wait for more events
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    pending_[fd] = Pending{};
    if (!register_fd(fd, kTagPending, static_cast<std::uint32_t>(fd),
                     EPOLLIN | EPOLLET)) {
      pending_.erase(fd);
      ::close(fd);
    }
  }
}

void TcpBus::on_pending(int fd, std::uint32_t events) {
  auto it = pending_.find(fd);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  auto drop = [&]() {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    pending_.erase(it);
  };
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    drop();
    return;
  }
  while (p.got < kHello) {
    ssize_t r = ::recv(fd, p.hello.data() + p.got, kHello - p.got, 0);
    if (r > 0) {
      p.got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (r < 0 && errno == EINTR) continue;
    drop();
    return;
  }
  const NodeId hi = load_le32(p.hello.data());
  const NodeId lo = load_le32(p.hello.data() + 4);
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  pending_.erase(it);
  adopt_accepted(fd, hi, lo);
}

void TcpBus::adopt_accepted(int fd, NodeId hi, NodeId lo) {
  auto it = lo < hi && hi < n_ ? by_pair_.find(pair_key(lo, hi))
                               : by_pair_.end();
  if (it == by_pair_.end()) {
    bad_frames_->inc();  // malformed hello
    ::close(fd);
    return;
  }
  const std::uint32_t a_idx = it->second;
  Endpoint& a = *endpoints_[a_idx];
  if (a.fd >= 0) {  // replaced by a fresh dial: retire the stale socket
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, a.fd, nullptr);
    ::close(a.fd);
    a.fd = -1;
    a.rx.clear();
    a.rx_head = 0;
  }
  a.fd = fd;
  if (!register_fd(fd, kTagEndpoint, a_idx, EPOLLIN | EPOLLOUT | EPOLLET)) {
    ::close(fd);
    a.fd = -1;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(a.mu);
    a.down = false;
  }
  service_tx(a_idx);
}

}  // namespace sgxp2p::net
