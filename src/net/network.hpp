// Simulated synchronous P2P network.
//
// Models the paper's assumptions S3/S5: every pair of peers is connected;
// the TCP/IP substrate delivers within a known bound Δ. Per-ordered-pair
// FIFO is preserved (delay = base + deterministic jitter, never exceeding
// Δ, never reordering). Every accepted send is metered — the benchmark
// traffic numbers (Figs. 3a–3c) read the meter directly, so "communication
// complexity" is measured on the wire, not estimated.
//
// Deliveries ride the simulator's typed event lane (sim::Delivery) instead
// of per-message closures: one registered dispatcher routes every arrival
// to the receiver's sink. Sinks come in two flavors — owned (the Host path:
// the receiver takes the buffer) and view (plaintext baselines: the
// receiver only reads, so a multicast can share one refcounted payload
// across the whole group).
//
// An optional shared-link bandwidth model reproduces the paper's testbed
// artifact (40 machines behind one 128 MB/s link): when enabled, messages
// additionally queue on a global serialization resource.
//
// Parallel engine (SimEngine::kParallel) interplay: the constructor
// registers base_delay as the simulator's conservative lookahead, and
// send/multicast/detach issued from a worker thread are captured and
// replayed at the event's canonical merge position through the normal
// serial path — so the shared jitter RNG, per-pair FIFO stamps, bandwidth
// serialization, and the sink/FIFO table mutations all stay single-threaded
// and byte-identical to a serial run. Workers only ever *read* the sink
// tables (to dispatch deliveries), which is why detach must defer its purge.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/simulator.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::sim {

struct NetworkConfig {
  SimDuration base_delay = milliseconds(200);   // floor latency
  SimDuration max_jitter = milliseconds(300);   // deterministic, per message
  std::uint64_t seed = 1;                       // jitter stream
  // Bytes/second through a shared bottleneck; 0 = infinite (default).
  std::uint64_t shared_bandwidth = 0;

  /// Upper bound on one-way delivery: the Δ of assumption S3 must be ≥ this.
  [[nodiscard]] SimDuration worst_delay() const {
    return base_delay + max_jitter;
  }
};

/// Wire traffic counters, global and per message-class, with an optional
/// time-bucketed byte timeline (used to show per-round traffic profiles).
class TrafficMeter {
 public:
  /// `now` is mandatory: a defaulted timestamp used to silently fold
  /// un-timestamped calls into bucket 0 and skew the timeline.
  void record(std::size_t bytes, SimTime now) {
    ++messages_;
    bytes_ += bytes;
    if (bucket_ms_ > 0) {
      auto bucket = static_cast<std::size_t>(now / bucket_ms_);
      if (bucket >= timeline_.size()) {
        // Grow capacity geometrically (amortized O(1) per message over long
        // timelines) but keep size() exact — callers read timeline().size()
        // as "buckets seen so far".
        if (bucket >= timeline_.capacity()) {
          timeline_.reserve(std::max(bucket + 1, 2 * timeline_.capacity()));
        }
        timeline_.resize(bucket + 1, 0);
      }
      timeline_[bucket] += bytes;
    }
  }
  void reset() {
    messages_ = 0;
    bytes_ = 0;
    timeline_.clear();
  }
  /// Enables the timeline with `bucket_ms`-wide buckets (e.g. the round
  /// time, so each entry is one round's bytes).
  void enable_timeline(SimDuration bucket_ms) { bucket_ms_ = bucket_ms; }
  [[nodiscard]] const std::vector<std::uint64_t>& timeline() const {
    return timeline_;
  }

  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] double megabytes() const {
    return static_cast<double>(bytes_) / (1024.0 * 1024.0);
  }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  SimDuration bucket_ms_ = 0;
  std::vector<std::uint64_t> timeline_;
};

class Network {
 public:
  using DeliverFn = std::function<void(NodeId from, Bytes blob)>;
  using DeliverViewFn = std::function<void(NodeId from, ByteView blob)>;

  /// Instruments net.* on `registry` (defaults to the thread's current
  /// registry, which is the global one unless a run rebound it).
  Network(Simulator& simulator, NetworkConfig config,
          obs::MetricsRegistry& registry = obs::MetricsRegistry::current());

  /// Registers the inbound sink for `id` (the node's Host): the sink takes
  /// ownership of each delivered buffer.
  void attach(NodeId id, DeliverFn sink);

  /// Registers a read-only sink for `id`: the network keeps buffer
  /// ownership (recycling it through the BufferPool) and multicast
  /// deliveries alias one shared payload instead of copying per receiver.
  void attach_view(NodeId id, DeliverViewFn sink);

  /// Removes a node: queued deliveries to it are dropped on arrival and
  /// future sends from/to it are ignored. Per-pair FIFO state involving the
  /// node is purged (long churn episodes must not grow it without bound).
  void detach(NodeId id);
  [[nodiscard]] bool attached(NodeId id) const;

  /// Sends `blob` from → to with delay ≤ worst_delay(). Metered.
  void send(NodeId from, NodeId to, Bytes blob);

  /// Sends the same payload from → each of `group` (self and detached ids
  /// skipped). Metering, jitter, and FIFO behave exactly as |group|
  /// individual sends, but all deliveries share one refcounted buffer.
  void multicast(NodeId from, const std::vector<NodeId>& group,
                 Bytes payload);

  // ----- partition injection (adversarial schedule hooks, src/fuzz/) -----

  /// Cuts (or heals) the undirected link a ↔ b. While cut, sends between the
  /// pair are dropped (counted under net.dropped) instead of scheduled — the
  /// adversary severed the wire, so nothing traverses it. Messages already
  /// in flight still arrive (the cut happens at the sender's NIC). Cuts are
  /// refcounted so overlapping partition windows compose: a link is live
  /// again only when every cut that covered it has been healed.
  void block_link(NodeId a, NodeId b);
  void unblock_link(NodeId a, NodeId b);
  [[nodiscard]] bool link_blocked(NodeId a, NodeId b) const;
  /// Currently cut undirected pairs (partition bookkeeping + tests).
  [[nodiscard]] std::size_t blocked_links() const { return blocked_.size(); }

  [[nodiscard]] TrafficMeter& meter() { return meter_; }
  [[nodiscard]] Simulator& simulator() { return *simulator_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  /// Live per-ordered-pair FIFO entries (detach-leak regression hook).
  [[nodiscard]] std::size_t fifo_entries() const;
  /// Allocated per-pair FIFO slots (dense + sparse + far map). Grows with
  /// the pairs actually communicating, NOT with n² — the memory-
  /// proportionality regression test reads this through the net.* gauges.
  [[nodiscard]] std::size_t fifo_pair_slots() const;
  /// Allocated sink-table slots (≈ highest attached id + far entries).
  [[nodiscard]] std::size_t sink_slots() const;
  /// Stamps net.fifo_pair_slots / net.sink_slots gauges on the registry
  /// this network instruments.
  void publish_capacity_gauges();

 private:
  struct Sink {
    DeliverFn owned;
    DeliverViewFn view;

    [[nodiscard]] bool attached() const {
      return static_cast<bool>(owned) || static_cast<bool>(view);
    }
  };

  struct Routed {
    SimTime arrival = 0;
    std::uint64_t span = 0;  // span of the `net send` trace event (0 untraced)
  };
  /// Meters the send and computes its arrival time (jitter, bandwidth,
  /// per-pair FIFO, pending enclave-transition charge).
  Routed route(NodeId from, NodeId to, std::size_t bytes, SimTime now);
  void on_delivery(Delivery&& d);
  /// Next admissible delivery time for the ordered pair from → to (0 = no
  /// earlier traffic, which constrains nothing since SimTime starts at 0).
  SimTime& fifo_slot(NodeId from, NodeId to);
  /// The sink registered for `id`, or nullptr. Dense ids index a flat
  /// table (same rationale as the FIFO matrix: one lookup per delivery and
  /// two per send on the hot path).
  [[nodiscard]] const Sink* find_sink(NodeId id) const;
  Sink& sink_slot(NodeId id);

  /// FIFO guarantee: next admissible delivery time per ordered pair,
  /// size-adaptive per sender row. A row starts as a sorted sparse vector
  /// (binary-searched — a 100k-node sharded topology has ~10² destinations
  /// per sender, so rows stay tiny and total state is O(live pairs), never
  /// O(n²) up front). A row that accumulates kFifoPromoteAt small-id
  /// destinations is promoted to a dense prefix array, restoring the O(1)
  /// hot path the clique benches rely on; destinations ≥ kDenseColumnCap
  /// always stay in the sparse tail.
  struct FifoRow {
    std::vector<std::pair<NodeId, SimTime>> sparse;  // sorted by id
    std::vector<SimTime> dense;  // promoted columns [0, dense.size())
  };

  Simulator* simulator_;
  NetworkConfig config_;
  obs::MetricsRegistry* registry_;
  Rng jitter_rng_;
  TrafficMeter meter_;
  std::uint32_t handler_;
  // Registry handles (net.*). The meter stays per-network (tests compare
  // meters of separate testbeds); the registry aggregates process-wide.
  obs::Counter& sends_ctr_;
  obs::Counter& bytes_ctr_;
  obs::Counter& delivered_ctr_;
  obs::Counter& delivered_bytes_ctr_;
  obs::Counter& dropped_ctr_;
  obs::Histogram& size_hist_;
  obs::Histogram& delay_hist_;
  // Ids below kMaxTableIds index flat tables (lazily grown to the highest
  // id seen — O(n), not O(n²)); larger/sparser ids fall back to the maps.
  static constexpr NodeId kMaxTableIds = 1u << 20;
  static constexpr NodeId kDenseColumnCap = 4096;
  static constexpr std::size_t kFifoPromoteAt = 48;
  std::vector<Sink> sinks_dense_;               // ids < kMaxTableIds
  std::unordered_map<NodeId, Sink> sinks_far_;  // sparse/large ids
  std::vector<FifoRow> fifo_rows_;              // [from], adaptive per row
  std::unordered_map<std::uint64_t, SimTime> fifo_far_;
  // Shared-bandwidth model: time at which the bottleneck frees up.
  SimTime link_free_at_ = 0;
  // Partitioned (undirected) pairs → number of live cuts covering them.
  // Ordered map: partition state must never perturb iteration determinism.
  std::map<std::uint64_t, std::uint32_t> blocked_;
};

}  // namespace sgxp2p::sim
