// Simulated synchronous P2P network.
//
// Models the paper's assumptions S3/S5: every pair of peers is connected;
// the TCP/IP substrate delivers within a known bound Δ. Per-ordered-pair
// FIFO is preserved (delay = base + deterministic jitter, never exceeding
// Δ, never reordering). Every accepted send is metered — the benchmark
// traffic numbers (Figs. 3a–3c) read the meter directly, so "communication
// complexity" is measured on the wire, not estimated.
//
// An optional shared-link bandwidth model reproduces the paper's testbed
// artifact (40 machines behind one 128 MB/s link): when enabled, messages
// additionally queue on a global serialization resource.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/simulator.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::sim {

struct NetworkConfig {
  SimDuration base_delay = milliseconds(200);   // floor latency
  SimDuration max_jitter = milliseconds(300);   // deterministic, per message
  std::uint64_t seed = 1;                       // jitter stream
  // Bytes/second through a shared bottleneck; 0 = infinite (default).
  std::uint64_t shared_bandwidth = 0;

  /// Upper bound on one-way delivery: the Δ of assumption S3 must be ≥ this.
  [[nodiscard]] SimDuration worst_delay() const {
    return base_delay + max_jitter;
  }
};

/// Wire traffic counters, global and per message-class, with an optional
/// time-bucketed byte timeline (used to show per-round traffic profiles).
class TrafficMeter {
 public:
  /// `now` is mandatory: a defaulted timestamp used to silently fold
  /// un-timestamped calls into bucket 0 and skew the timeline.
  void record(std::size_t bytes, SimTime now) {
    ++messages_;
    bytes_ += bytes;
    if (bucket_ms_ > 0) {
      auto bucket = static_cast<std::size_t>(now / bucket_ms_);
      if (bucket >= timeline_.size()) timeline_.resize(bucket + 1, 0);
      timeline_[bucket] += bytes;
    }
  }
  void reset() {
    messages_ = 0;
    bytes_ = 0;
    timeline_.clear();
  }
  /// Enables the timeline with `bucket_ms`-wide buckets (e.g. the round
  /// time, so each entry is one round's bytes).
  void enable_timeline(SimDuration bucket_ms) { bucket_ms_ = bucket_ms; }
  [[nodiscard]] const std::vector<std::uint64_t>& timeline() const {
    return timeline_;
  }

  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] double megabytes() const {
    return static_cast<double>(bytes_) / (1024.0 * 1024.0);
  }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  SimDuration bucket_ms_ = 0;
  std::vector<std::uint64_t> timeline_;
};

class Network {
 public:
  using DeliverFn = std::function<void(NodeId from, Bytes blob)>;

  /// Instruments net.* on `registry` (defaults to the thread's current
  /// registry, which is the global one unless a run rebound it).
  Network(Simulator& simulator, NetworkConfig config,
          obs::MetricsRegistry& registry = obs::MetricsRegistry::current());

  /// Registers the inbound sink for `id` (the node's Host).
  void attach(NodeId id, DeliverFn sink);

  /// Removes a node: queued deliveries to it are dropped on arrival and
  /// future sends from/to it are ignored. Used when a node Halt()s.
  void detach(NodeId id);
  [[nodiscard]] bool attached(NodeId id) const;

  /// Sends `blob` from → to with delay ≤ worst_delay(). Metered.
  void send(NodeId from, NodeId to, Bytes blob);

  [[nodiscard]] TrafficMeter& meter() { return meter_; }
  [[nodiscard]] Simulator& simulator() { return *simulator_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  Simulator* simulator_;
  NetworkConfig config_;
  Rng jitter_rng_;
  TrafficMeter meter_;
  // Registry handles (net.*). The meter stays per-network (tests compare
  // meters of separate testbeds); the registry aggregates process-wide.
  obs::Counter& sends_ctr_;
  obs::Counter& bytes_ctr_;
  obs::Counter& delivered_ctr_;
  obs::Counter& delivered_bytes_ctr_;
  obs::Counter& dropped_ctr_;
  obs::Histogram& size_hist_;
  obs::Histogram& delay_hist_;
  std::unordered_map<NodeId, DeliverFn> sinks_;
  // FIFO guarantee: next admissible delivery time per ordered pair.
  std::unordered_map<std::uint64_t, SimTime> last_delivery_;
  // Shared-bandwidth model: time at which the bottleneck frees up.
  SimTime link_free_at_ = 0;
};

}  // namespace sgxp2p::sim
