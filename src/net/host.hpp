// The untrusted host (the "OS" of Fig. 1).
//
// Every peer is a Host + Enclave pair. The host is the only component that
// touches the network; the enclave is the only component that sees
// plaintext. The host routes blobs through its Strategy, which is where
// byzantine behavior lives — an honest node simply carries HonestStrategy.
#pragma once

#include <memory>
#include <vector>

#include "adversary/strategy.hpp"
#include "common/ids.hpp"
#include "net/network.hpp"
#include "obs/pool.hpp"
#include "sgx/enclave.hpp"

namespace sgxp2p::net {

class Host final : public sgx::EnclaveHostIface, public adversary::HostContext {
 public:
  Host(NodeId self, sim::Network& network,
       std::unique_ptr<adversary::Strategy> strategy, std::uint64_t rng_seed);

  /// Registers this host as the network sink for its id.
  void connect();

  /// Binds the enclave the host runs. (The host launches the enclave in
  /// real SGX; here the harness constructs both and ties them together.)
  void attach_enclave(sgx::Enclave& enclave) { enclave_ = &enclave; }

  /// Unbinds the enclave (crash injection: the enclave object is about to be
  /// destroyed while the host survives and keeps its sealed storage).
  void detach_enclave() { enclave_ = nullptr; }

  void set_colluders(std::vector<NodeId> ids) { colluders_ = std::move(ids); }

  [[nodiscard]] bool is_byzantine() const { return strategy_->is_byzantine(); }

  /// The host's OS behavior — the recovery layer consults it for checkpoint
  /// storage decisions (Strategy::on_restore).
  [[nodiscard]] adversary::Strategy& strategy() { return *strategy_; }

  // --- sgx::EnclaveHostIface (OCALLs from the enclave) ---
  void transfer(NodeId to, Bytes blob) override {
    strategy_->on_send(*this, to, std::move(blob));
  }

  // --- network sink ---
  void on_network(NodeId from, Bytes blob) {
    strategy_->on_receive(*this, from, std::move(blob));
  }

  // --- adversary::HostContext ---
  [[nodiscard]] NodeId self() const override { return self_; }
  [[nodiscard]] SimTime now() const override {
    return network_->simulator().now();
  }
  void forward(NodeId to, Bytes blob) override {
    network_->send(self_, to, std::move(blob));
  }
  void deliver(NodeId from, Bytes blob) override {
    // The enclave reads the blob as a view and copies what it keeps (the
    // decrypted plaintext lives in its own buffer), so the host's buffer is
    // dead on return — recycle it for the next seal/send.
    if (enclave_ != nullptr) enclave_->ecall_deliver(from, blob);
    obs::BufferPool::local().release(std::move(blob));
  }
  void schedule_in(SimDuration delay, std::function<void()> fn) override {
    network_->simulator().schedule_in(delay, std::move(fn));
  }
  [[nodiscard]] const std::vector<NodeId>& colluders() const override {
    return colluders_;
  }
  Rng& rng() override { return rng_; }

 private:
  NodeId self_;
  sim::Network* network_;
  std::unique_ptr<adversary::Strategy> strategy_;
  sgx::Enclave* enclave_ = nullptr;
  std::vector<NodeId> colluders_;
  Rng rng_;
};

}  // namespace sgxp2p::net
