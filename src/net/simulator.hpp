// Discrete-event simulator with virtual time.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order. Implements sgx::TrustedClock so enclaves read the same
// virtual clock the event loop advances — modeling the hardware timer the
// OS cannot skew (feature F4). All timing results in EXPERIMENTS.md are
// virtual seconds from this clock.
//
// Two interchangeable engines drive the event queue:
//
//  * kWheel (default) — a hierarchical timer wheel: kLevels levels of
//    kSlots buckets, each level covering kBits more bits of the timestamp.
//    Network delays are bounded by Δ = base_delay + max_jitter, so nearly
//    every event lands within the first two levels and schedule/pop are
//    O(1) instead of O(log m) on a heap holding ~n² pending deliveries.
//    Per-level occupancy bitmaps make "next non-empty bucket" a handful of
//    word scans; a per-slot minimum keeps peek exact even when a coarse
//    slot spans many timestamps. Events due at the same millisecond are
//    drained as one batch sorted by seq, which preserves the global FIFO
//    tie-break exactly — traces, metrics, and bench tables are
//    byte-identical to the heap engine for identical seeds
//    (tests/test_event_engine.cpp enforces this).
//
//  * kHeap — the original hand-rolled binary min-heap, kept as the
//    reference engine for the equivalence tests and as the baseline the
//    bench_scale speedup gate measures against.
//
//  * kParallel — conservative parallel execution over the wheel. The Δ
//    min-delay every Network enforces (registered via set_lookahead) means
//    an event fired at t cannot cause another event before t + Δ, so the
//    engine extracts one lookahead window of events at a time, fans them
//    out to a persistent worker pool partitioned by destination node, and
//    serially replays every side effect (sends, timers, trace events,
//    metrics trajectories) in canonical (timestamp, seq) order. Traces and
//    metrics snapshots are byte-identical to kWheel for every protocol,
//    seed, and job count (tests/test_parallel_engine.cpp enforces this).
//    Contract: a delivery handler may only touch state owned by the
//    destination node; handlers must not schedule work due before the
//    lookahead horizon (the merge CHECK-fails if one does — the Network's
//    own delay floor satisfies this by construction). Timers armed from
//    serial context act as fences and run on the serial path.
//
// Message deliveries are typed events (Delivery{from, to, payload}) routed
// to a registered handler rather than per-message std::function closures;
// the type-erased path remains for protocol timers. Multicast payloads are
// carried refcounted so an n−1 fan-out shares one buffer.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sgx/trusted_time.hpp"

namespace sgxp2p::sim {

namespace detail {
struct SimWorkerCtx;  // per-thread worker state, defined in simulator.cpp
}

enum class SimEngine {
  kDefault,  // resolve via SGXP2P_SIM_ENGINE env var, else the wheel
  kWheel,
  kHeap,
  kParallel,  // conservative Δ-lookahead windows over a worker pool
};

/// Resolves kDefault against the SGXP2P_SIM_ENGINE environment variable
/// ("wheel", "heap", or "parallel"); anything else selects the wheel.
[[nodiscard]] SimEngine resolve_engine(SimEngine engine);
[[nodiscard]] const char* engine_name(SimEngine engine);

/// One in-flight message: the typed event the network schedules instead of
/// a closure. Exactly one of `payload` (owned, unicast) or `shared`
/// (refcounted, one buffer fanned out to a whole group) carries the bytes.
struct Delivery {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint64_t cause_span = 0;  // span of the `net send` trace event
  Bytes payload;
  std::shared_ptr<const Bytes> shared;

  [[nodiscard]] ByteView view() const {
    return shared ? ByteView(*shared) : ByteView(payload);
  }
};

class Simulator : public sgx::TrustedClock {
 public:
  using DeliveryHandler = std::function<void(Delivery&&)>;

  /// Instruments sim.* on `registry` (defaults to the thread's current
  /// registry, which is the global one unless a run rebound it).
  explicit Simulator(
      obs::MetricsRegistry& registry = obs::MetricsRegistry::current(),
      SimEngine engine = SimEngine::kDefault);
  ~Simulator() override;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Inside a parallel worker this returns the worker's current event time,
  /// so enclaves always read the virtual instant of the event they handle.
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] SimEngine engine() const { return engine_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now). From a
  /// parallel worker the event is deferred to the merge phase and pinned to
  /// the arming node, so the timer keeps firing on that node's task lane.
  void schedule(SimTime at, std::function<void()> fn);
  void schedule_in(SimDuration delay, std::function<void()> fn) {
    schedule(now() + delay, std::move(fn));
  }

  /// Registers a delivery dispatcher (the Network registers one per
  /// instance); the returned index keys schedule_delivery.
  std::uint32_t add_delivery_handler(DeliveryHandler handler);

  /// Schedules a typed delivery at `at` (clamped to now): no closure, no
  /// type-erased dispatch — the flat Delivery rides inside the event.
  void schedule_delivery(SimTime at, std::uint32_t handler, Delivery d);

  /// Runs until the event queue is empty.
  void run();
  /// Runs events with timestamp ≤ t, then sets now to t.
  void run_until(SimTime t);
  /// Runs a single event; returns false if the queue was empty.
  bool step();

  /// Enclave-transition cost accounting (src/sgx/transition.hpp). A handler
  /// that crosses the enclave boundary charges its virtual transition cost
  /// here; the Network folds the accumulated charge into the arrival time of
  /// the next send, modeling "the CPU was busy switching worlds before the
  /// message hit the wire". fire() zeroes the accumulator before each event
  /// so one handler's charges never leak into another's sends. Inside a
  /// parallel worker the accumulator is per-worker-event, so concurrent
  /// handlers charge independently.
  void charge(SimDuration cost);
  [[nodiscard]] SimDuration pending_charge() const;
  void clear_charge();

  [[nodiscard]] bool idle() const { return pending() == 0; }
  [[nodiscard]] std::size_t pending() const {
    return engine_ == SimEngine::kHeap
               ? heap_.size()
               : wheel_.size() + (active_.size() - active_pos_) +
                     (window_.size() - window_pos_);
  }

  // — kParallel configuration & plumbing —

  /// Worker count for kParallel (main thread included). 0 (default) resolves
  /// the SGXP2P_SIM_JOBS env var, else hardware concurrency. jobs=1 runs the
  /// serial wheel path, byte-identical by construction. Must be called
  /// before the first parallel window spins up the pool.
  void set_jobs(std::uint32_t jobs);
  /// Registers a causality floor: no event fired at t can cause an event
  /// before t + min_delay. Each Network registers its base_delay; the
  /// effective lookahead is the minimum over all registrations (floor 1 ms).
  void set_lookahead(SimDuration min_delay);
  /// Minimum pending events before a window fans out to the pool; below it
  /// the serial wheel path runs (fan-out overhead beats tiny windows).
  /// Tests set 1 to force parallel dispatch at small n.
  void set_parallel_threshold(std::size_t min_events) {
    parallel_threshold_ = min_events;
  }

  struct ParallelStats {
    std::uint64_t windows = 0;   // conservative windows fanned out
    std::uint64_t events = 0;    // events executed on worker lanes
    std::uint64_t steals = 0;    // tasks run off their preferred worker
  };
  [[nodiscard]] const ParallelStats& parallel_stats() const { return pstats_; }
  /// Stamps sim.parallel_windows / sim.parallel_events (deterministic
  /// counters) and sim.worker_steals (scheduling-dependent gauge, excluded
  /// from the counters-only CI compare) onto `registry`. Never implicit:
  /// kParallel metric snapshots stay byte-identical to kWheel unless a
  /// bench opts in after its equivalence checks.
  void publish_parallel_stats(obs::MetricsRegistry& registry) const;

  /// True on a worker thread of *this* simulator, while a window runs.
  [[nodiscard]] bool in_worker() const;
  /// Worker-side effect capture: defers `f` to the serial merge phase at
  /// the current event's canonical position (valid only when in_worker()).
  /// The Network uses this to re-run sends through the real serial path —
  /// jitter RNG, FIFO ordering, bandwidth serialization untouched.
  void defer_effect(std::function<void()> f);
  /// Merge-replay plumbing: restores a captured worker-side charge so a
  /// replayed send folds the same enclave-transition penalty into its
  /// arrival time as the serial run would.
  void set_replay_charge(SimDuration c) { penalty_ = c; }

 private:
  struct Event {
    SimTime at = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among equal timestamps
    SimTime queued_at = 0;  // enqueue time, for the sim.event_wait_ms hist
    std::uint64_t cause_span = 0;  // ambient cause captured at schedule time
    // Node affinity for kParallel partitioning: deliveries carry their
    // destination, worker-armed timers their arming node. kNoNode marks a
    // serial-context timer, which fences the window (it may touch any node).
    NodeId node = kNoNode;
    std::function<void()> fn;  // timer path; empty for typed deliveries
    Delivery delivery;
    std::uint32_t handler = 0;
  };
  // Min-heap order: earliest timestamp first, FIFO among equals.
  static bool before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Hierarchical timer wheel. Level L buckets timestamps by bits
  /// [L·kBits, (L+1)·kBits); an event goes to the lowest level whose
  /// bucket still distinguishes it from the cursor. Advancing the cursor
  /// across a level-L bucket boundary cascades that one bucket's events
  /// down a level, so every event is touched O(kLevels) times total.
  class Wheel {
   public:
    static constexpr int kBits = 8;
    static constexpr int kLevels = 5;  // covers deltas up to 2^40 ms
    static constexpr std::size_t kSlots = std::size_t{1} << kBits;
    static constexpr std::size_t kMask = kSlots - 1;
    static constexpr std::size_t kWords = kSlots / 64;
    static constexpr SimTime kNoTime = std::numeric_limits<SimTime>::max();

    void insert(Event ev);  // precondition: ev.at >= cur()
    /// Earliest pending timestamp, if any. O(kLevels) via the occupancy
    /// bitmaps and per-slot minima.
    [[nodiscard]] std::optional<SimTime> peek() const;
    /// Moves the cursor to `to` (precondition: nothing pending before it),
    /// cascading coarse buckets the cursor enters.
    void advance(SimTime to);
    /// Moves every event due exactly at the cursor into `out` (unsorted).
    void take_due(std::vector<Event>& out);
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] SimTime cur() const { return cur_; }

   private:
    [[nodiscard]] int level_for(SimTime at) const;
    [[nodiscard]] int scan_from(int level, std::size_t start) const;
    void place(Event ev);
    void cascade(int level, std::size_t idx);

    SimTime cur_ = 0;
    std::size_t size_ = 0;
    std::vector<std::vector<Event>> slots_ =
        std::vector<std::vector<Event>>(kLevels * kSlots);
    std::vector<SimTime> slot_min_ =
        std::vector<SimTime>(kLevels * kSlots, kNoTime);
    std::array<std::uint64_t, kLevels * kWords> occupied_{};
    // Deltas beyond the top level (> ~34 years of virtual time): kept in an
    // unordered overflow list, re-filed when the cursor gets close.
    std::vector<Event> far_;
    SimTime far_min_ = kNoTime;
    std::vector<Event> scratch_;  // cascade staging, capacity recycled
  };

  void enqueue(Event ev);
  void fire(Event& ev);
  /// Fires the next event with timestamp ≤ limit; false if none.
  bool step_limit(SimTime limit);
  /// Wheel only: ensures active_ holds an unfired batch due ≤ limit.
  bool next_ready(SimTime limit);

  void heap_push(Event ev);
  Event heap_pop();

  // — kParallel internals (simulator.cpp, "Parallel engine" section) —
  std::uint32_t resolved_jobs();
  bool extract_window(SimTime limit);
  bool parallel_window(SimTime limit);
  void run_window();
  void merge_window();
  void worker_run(std::uint32_t wid);
  void pool_main(std::uint32_t wid);
  void ensure_pool();

  friend struct detail::SimWorkerCtx;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  SimDuration penalty_ = SimDuration{0};  // unconsumed enclave-transition cost
  SimEngine engine_;
  std::vector<Event> heap_;
  Wheel wheel_;
  // The batch of events due at now_, sorted by seq; events scheduled at
  // now_ while the batch drains are appended (matching heap FIFO order).
  std::vector<Event> active_;
  std::size_t active_pos_ = 0;
  std::vector<DeliveryHandler> handlers_;

  // — kParallel state —
  std::uint32_t jobs_cfg_ = 0;  // set_jobs() request; 0 = auto
  std::uint32_t jobs_ = 0;      // resolved at the first parallel window
  SimDuration lookahead_ = SimDuration{0};  // 0 = unset → 1 ms floor
  std::size_t parallel_threshold_ = kDefaultParallelThreshold;
  SimTime window_end_ = 0;  // exclusive horizon of the current window
  std::vector<Event> window_;
  std::size_t window_pos_ = 0;  // merged-so-far count, for pending()
  std::vector<std::uint32_t> order_;  // window indices grouped by node
  struct TaskRange {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<TaskRange> tasks_;  // one contiguous run of order_ per node
  // Per-item ordered effect logs: everything a handler emitted (sends,
  // timers, trace events), replayed serially in canonical order. Outer
  // vector capacity is recycled across windows.
  std::vector<std::vector<std::function<void()>>> item_fx_;
  std::vector<std::thread> threads_;  // jobs_ − 1 pool threads
  std::vector<std::unique_ptr<detail::SimWorkerCtx>> workers_;  // [jobs_]
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;  // wakes workers on a new window
  std::condition_variable done_cv_;  // wakes the driver when workers finish
  std::uint64_t window_gen_ = 0;
  std::uint32_t workers_done_ = 0;
  bool shutdown_ = false;
  std::atomic<std::size_t> next_task_{0};
  std::atomic<bool> abort_window_{false};
  obs::MetricsRegistry* window_registry_ = nullptr;
  ParallelStats pstats_;

  static constexpr std::size_t kDefaultParallelThreshold = 64;

  // Registry handles (sim.*), resolved once at construction; incrementing
  // them is a relaxed atomic add, cheap enough for the accounted benches.
  obs::Counter& scheduled_ctr_;
  obs::Counter& fired_ctr_;
  obs::Counter& deliveries_ctr_;
  obs::Gauge& depth_gauge_;
  obs::Gauge& depth_peak_;
  obs::Histogram& wait_hist_;
};

}  // namespace sgxp2p::sim
