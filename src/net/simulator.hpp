// Discrete-event simulator with virtual time.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order. Implements sgx::TrustedClock so enclaves read the same
// virtual clock the event loop advances — modeling the hardware timer the
// OS cannot skew (feature F4). All timing results in EXPERIMENTS.md are
// virtual seconds from this clock.
//
// The event queue is a hand-rolled binary min-heap over a vector rather than
// std::priority_queue: pop can then move the event (and its std::function)
// out of storage without the const_cast that priority_queue::top forces, and
// sift-down moves each displaced event exactly once instead of copying.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "sgx/trusted_time.hpp"

namespace sgxp2p::sim {

class Simulator : public sgx::TrustedClock {
 public:
  /// Instruments sim.* on `registry` (defaults to the thread's current
  /// registry, which is the global one unless a run rebound it).
  explicit Simulator(
      obs::MetricsRegistry& registry = obs::MetricsRegistry::current());

  [[nodiscard]] SimTime now() const override { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now).
  void schedule(SimTime at, std::function<void()> fn);
  void schedule_in(SimDuration delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Runs until the event queue is empty.
  void run();
  /// Runs events with timestamp ≤ t, then sets now to t.
  void run_until(SimTime t);
  /// Runs a single event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    SimTime queued_at;  // enqueue time, for the sim.event_wait_ms histogram
    std::function<void()> fn;
  };
  // Min-heap order: earliest timestamp first, FIFO among equals.
  static bool before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  void heap_push(Event ev);
  Event heap_pop();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;

  // Registry handles (sim.*), resolved once at construction; incrementing
  // them is a relaxed atomic add, cheap enough for the accounted benches.
  obs::Counter& scheduled_ctr_;
  obs::Counter& fired_ctr_;
  obs::Gauge& depth_gauge_;
  obs::Gauge& depth_peak_;
  obs::Histogram& wait_hist_;
};

}  // namespace sgxp2p::sim
