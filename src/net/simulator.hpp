// Discrete-event simulator with virtual time.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order. Implements sgx::TrustedClock so enclaves read the same
// virtual clock the event loop advances — modeling the hardware timer the
// OS cannot skew (feature F4). All timing results in EXPERIMENTS.md are
// virtual seconds from this clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "sgx/trusted_time.hpp"

namespace sgxp2p::sim {

class Simulator : public sgx::TrustedClock {
 public:
  Simulator();

  [[nodiscard]] SimTime now() const override { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now).
  void schedule(SimTime at, std::function<void()> fn);
  void schedule_in(SimDuration delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Runs until the event queue is empty.
  void run();
  /// Runs events with timestamp ≤ t, then sets now to t.
  void run_until(SimTime t);
  /// Runs a single event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    SimTime queued_at;  // enqueue time, for the sim.event_wait_ms histogram
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;

  // Registry handles (sim.*), resolved once at construction; incrementing
  // them is a relaxed atomic add, cheap enough for the accounted benches.
  obs::Counter& scheduled_ctr_;
  obs::Counter& fired_ctr_;
  obs::Gauge& depth_gauge_;
  obs::Gauge& depth_peak_;
  obs::Histogram& wait_hist_;
};

}  // namespace sgxp2p::sim
