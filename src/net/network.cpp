#include "net/network.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace sgxp2p::sim {

Network::Network(Simulator& simulator, NetworkConfig config,
                 obs::MetricsRegistry& registry)
    : simulator_(&simulator),
      config_(config),
      jitter_rng_(config.seed),
      sends_ctr_(registry.counter("net.sends")),
      bytes_ctr_(registry.counter("net.bytes")),
      delivered_ctr_(registry.counter("net.delivered")),
      delivered_bytes_ctr_(registry.counter("net.delivered_bytes")),
      dropped_ctr_(registry.counter("net.dropped")),
      size_hist_(registry.histogram(
          "net.msg_bytes", {32, 64, 128, 256, 512, 1024, 4096, 16384})),
      delay_hist_(registry.histogram(
          "net.delay_ms", {100, 200, 300, 400, 500, 750, 1000, 2000, 5000})) {}

void Network::attach(NodeId id, DeliverFn sink) {
  sinks_[id] = std::move(sink);
}

void Network::detach(NodeId id) { sinks_.erase(id); }

bool Network::attached(NodeId id) const { return sinks_.contains(id); }

void Network::send(NodeId from, NodeId to, Bytes blob) {
  if (!attached(from) || !attached(to) || from == to) return;
  SimTime now = simulator_->now();
  meter_.record(blob.size(), now);
  sends_ctr_.inc();
  bytes_ctr_.inc(blob.size());
  size_hist_.observe(static_cast<std::int64_t>(blob.size()));
  SimDuration jitter =
      config_.max_jitter > 0
          ? static_cast<SimDuration>(jitter_rng_.next_below(
                static_cast<std::uint64_t>(config_.max_jitter) + 1))
          : 0;
  SimTime arrival = now + config_.base_delay + jitter;

  if (config_.shared_bandwidth > 0) {
    // Serialize through the shared bottleneck: 1 byte takes 1e3/bw ms.
    SimDuration ser = static_cast<SimDuration>(
        (blob.size() * 1000 + config_.shared_bandwidth - 1) /
        config_.shared_bandwidth);
    link_free_at_ = std::max(link_free_at_, now) + ser;
    arrival = std::max(arrival, link_free_at_);
  }

  // Per-pair FIFO: never deliver earlier than a previously sent message.
  std::uint64_t pair_key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  SimTime& last = last_delivery_[pair_key];
  arrival = std::max(arrival, last);
  last = arrival;

  delay_hist_.observe(arrival - now);
  obs::trace_event(now, from, "net", "send", obs::fnum("to", to),
                   obs::fnum("bytes", static_cast<std::int64_t>(blob.size())),
                   obs::fnum("arrival", arrival));

  simulator_->schedule(
      arrival, [this, from, to, blob = std::move(blob)]() mutable {
        auto it = sinks_.find(to);
        if (it == sinks_.end()) {
          dropped_ctr_.inc();  // receiver left the network
          LOG_DEBUG("net: drop ", from, "->", to, " (receiver detached)");
          obs::trace_event(simulator_->now(), to, "net", "drop",
                           obs::fnum("from", from));
          return;
        }
        delivered_ctr_.inc();
        delivered_bytes_ctr_.inc(blob.size());
        it->second(from, std::move(blob));
      });
}

}  // namespace sgxp2p::sim
