#include "net/network.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "obs/pool.hpp"
#include "obs/trace.hpp"

namespace sgxp2p::sim {

Network::Network(Simulator& simulator, NetworkConfig config,
                 obs::MetricsRegistry& registry)
    : simulator_(&simulator),
      config_(config),
      registry_(&registry),
      jitter_rng_(config.seed),
      handler_(simulator.add_delivery_handler(
          [this](Delivery&& d) { on_delivery(std::move(d)); })),
      sends_ctr_(registry.counter("net.sends")),
      bytes_ctr_(registry.counter("net.bytes")),
      delivered_ctr_(registry.counter("net.delivered")),
      delivered_bytes_ctr_(registry.counter("net.delivered_bytes")),
      dropped_ctr_(registry.counter("net.dropped")),
      size_hist_(registry.histogram(
          "net.msg_bytes", {32, 64, 128, 256, 512, 1024, 4096, 16384})),
      delay_hist_(registry.histogram(
          "net.delay_ms", {100, 200, 300, 400, 500, 750, 1000, 2000, 5000})) {
  // Register this network's causality floor with the parallel engine: no
  // send can arrive sooner than base_delay after it leaves, so windows of
  // that width contain no intra-window causality.
  simulator.set_lookahead(config_.base_delay);
}

Network::Sink& Network::sink_slot(NodeId id) {
  if (id < kMaxTableIds) {
    if (id >= sinks_dense_.size()) sinks_dense_.resize(id + 1);
    return sinks_dense_[id];
  }
  return sinks_far_[id];
}

const Network::Sink* Network::find_sink(NodeId id) const {
  if (id < kMaxTableIds) {
    if (id >= sinks_dense_.size() || !sinks_dense_[id].attached()) {
      return nullptr;
    }
    return &sinks_dense_[id];
  }
  auto it = sinks_far_.find(id);
  return it != sinks_far_.end() ? &it->second : nullptr;
}

void Network::attach(NodeId id, DeliverFn sink) {
  sink_slot(id) = Sink{std::move(sink), nullptr};
}

void Network::attach_view(NodeId id, DeliverViewFn sink) {
  sink_slot(id) = Sink{nullptr, std::move(sink)};
}

namespace {
auto sparse_lower_bound(std::vector<std::pair<NodeId, SimTime>>& sparse,
                        NodeId to) {
  return std::lower_bound(
      sparse.begin(), sparse.end(), to,
      [](const auto& entry, NodeId id) { return entry.first < id; });
}
}  // namespace

void Network::detach(NodeId id) {
  if (simulator_->in_worker()) {
    // Deferred to the merge phase: worker threads read the sink and FIFO
    // tables concurrently, so the purge must never run mid-window (a
    // half-purged adaptive row is a data race and a torn read). Semantics:
    // a detach issued from a delivery handler takes effect at its canonical
    // merge position — deliveries already executing in the same window
    // still see the node attached.
    simulator_->defer_effect([this, id] { detach(id); });
    return;
  }
  if (id < sinks_dense_.size()) sinks_dense_[id] = Sink{};
  sinks_far_.erase(id);
  if (id < fifo_rows_.size()) fifo_rows_[id] = FifoRow{};
  for (auto& row : fifo_rows_) {
    if (id < row.dense.size()) row.dense[id] = 0;
    auto it = sparse_lower_bound(row.sparse, id);
    if (it != row.sparse.end() && it->first == id) row.sparse.erase(it);
  }
  std::erase_if(fifo_far_, [id](const auto& entry) {
    return static_cast<NodeId>(entry.first >> 32) == id ||
           static_cast<NodeId>(entry.first & 0xffffffffu) == id;
  });
}

SimTime& Network::fifo_slot(NodeId from, NodeId to) {
  if (from >= kMaxTableIds || to >= kMaxTableIds) {
    return fifo_far_[(static_cast<std::uint64_t>(from) << 32) |
                     static_cast<std::uint64_t>(to)];
  }
  if (from >= fifo_rows_.size()) fifo_rows_.resize(from + 1);
  FifoRow& row = fifo_rows_[from];
  if (to < row.dense.size()) return row.dense[to];
  if (!row.dense.empty() && to < kDenseColumnCap) {
    row.dense.resize(to + 1, 0);
    return row.dense[to];
  }
  auto it = sparse_lower_bound(row.sparse, to);
  if (it != row.sparse.end() && it->first == to) return it->second;
  it = row.sparse.insert(it, {to, 0});
  if (to < kDenseColumnCap) {
    // Promote once the row collects enough small-id destinations: a clique
    // sender touches every column and earns the O(1) array; a sharded
    // sender with ~10² destinations never pays for one.
    std::size_t small = 0;
    NodeId max_small = 0;
    for (const auto& [dest, when] : row.sparse) {
      if (dest < kDenseColumnCap) {
        ++small;
        max_small = dest;  // sorted: last small id is the max
      } else {
        break;
      }
    }
    if (small >= kFifoPromoteAt) {
      row.dense.assign(max_small + 1, 0);
      std::vector<std::pair<NodeId, SimTime>> far_tail;
      for (auto& [dest, when] : row.sparse) {
        if (dest < kDenseColumnCap) {
          row.dense[dest] = when;
        } else {
          far_tail.emplace_back(dest, when);
        }
      }
      row.sparse = std::move(far_tail);
      return row.dense[to];
    }
  }
  return it->second;
}

std::size_t Network::fifo_entries() const {
  std::size_t live = fifo_far_.size();
  for (const auto& row : fifo_rows_) {
    for (SimTime t : row.dense) live += t != 0 ? 1 : 0;
    for (const auto& [dest, when] : row.sparse) live += when != 0 ? 1 : 0;
  }
  return live;
}

std::size_t Network::fifo_pair_slots() const {
  std::size_t slots = fifo_far_.size();
  for (const auto& row : fifo_rows_) {
    slots += row.dense.size() + row.sparse.size();
  }
  return slots;
}

std::size_t Network::sink_slots() const {
  return sinks_dense_.size() + sinks_far_.size();
}

void Network::publish_capacity_gauges() {
  registry_->gauge("net.fifo_pair_slots")
      .set(static_cast<std::int64_t>(fifo_pair_slots()));
  registry_->gauge("net.sink_slots")
      .set(static_cast<std::int64_t>(sink_slots()));
}

bool Network::attached(NodeId id) const { return find_sink(id) != nullptr; }

namespace {
std::uint64_t pair_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}
}  // namespace

void Network::block_link(NodeId a, NodeId b) {
  if (a == b) return;
  ++blocked_[pair_key(a, b)];
}

void Network::unblock_link(NodeId a, NodeId b) {
  auto it = blocked_.find(pair_key(a, b));
  if (it == blocked_.end()) return;
  if (--it->second == 0) blocked_.erase(it);
}

bool Network::link_blocked(NodeId a, NodeId b) const {
  return blocked_.contains(pair_key(a, b));
}

Network::Routed Network::route(NodeId from, NodeId to, std::size_t bytes,
                               SimTime now) {
  meter_.record(bytes, now);
  sends_ctr_.inc();
  bytes_ctr_.inc(bytes);
  size_hist_.observe(static_cast<std::int64_t>(bytes));
  SimDuration jitter =
      config_.max_jitter > 0
          ? static_cast<SimDuration>(jitter_rng_.next_below(
                static_cast<std::uint64_t>(config_.max_jitter) + 1))
          : 0;
  // The sender's accumulated enclave-transition cost delays the message
  // before it hits the wire: the CPU spent `sgx_cost` switching worlds
  // (ecall in, ocalls out) between the triggering event and this send.
  const SimDuration sgx_cost = simulator_->pending_charge();
  SimTime arrival = now + sgx_cost + config_.base_delay + jitter;

  if (config_.shared_bandwidth > 0) {
    // Serialize through the shared bottleneck: 1 byte takes 1e3/bw ms.
    SimDuration ser = static_cast<SimDuration>(
        (bytes * 1000 + config_.shared_bandwidth - 1) /
        config_.shared_bandwidth);
    link_free_at_ = std::max(link_free_at_, now) + ser;
    arrival = std::max(arrival, link_free_at_);
  }

  // Per-pair FIFO: never deliver earlier than a previously sent message.
  SimTime& last = fifo_slot(from, to);
  arrival = std::max(arrival, last);
  last = arrival;

  delay_hist_.observe(arrival - now);
  std::uint64_t span =
      sgx_cost > 0
          ? obs::trace_event(now, from, "net", "send", obs::fnum("to", to),
                             obs::fnum("bytes",
                                       static_cast<std::int64_t>(bytes)),
                             obs::fnum("arrival", arrival),
                             obs::fnum("sgxms", sgx_cost))
          : obs::trace_event(now, from, "net", "send", obs::fnum("to", to),
                             obs::fnum("bytes",
                                       static_cast<std::int64_t>(bytes)),
                             obs::fnum("arrival", arrival));
  return Routed{arrival, span};
}

void Network::send(NodeId from, NodeId to, Bytes blob) {
  if (simulator_->in_worker()) {
    // Capture the send and replay it at the item's canonical merge position
    // through this very function (in_worker() is false on the merge thread):
    // the jitter RNG draw, FIFO stamp, bandwidth serialization, metrics, and
    // the `net send` trace all happen in serial order, byte-identical to
    // kWheel. The worker-side transition charge and ambient cause are part
    // of the capture — they are per-event state the merge must restore.
    simulator_->defer_effect(
        [this, from, to, blob = std::move(blob),
         penalty = simulator_->pending_charge(),
         cause = obs::TraceRecorder::global().current_cause()]() mutable {
          obs::TraceRecorder::AmbientGuard causal(cause);
          simulator_->set_replay_charge(penalty);
          send(from, to, std::move(blob));
          simulator_->set_replay_charge(SimDuration{0});
        });
    return;
  }
  if (!attached(from) || !attached(to) || from == to) return;
  SimTime now = simulator_->now();
  if (!blocked_.empty() && link_blocked(from, to)) {
    dropped_ctr_.inc();
    obs::trace_event(now, from, "net", "cut_drop", obs::fnum("to", to));
    obs::BufferPool::local().release(std::move(blob));
    return;
  }
  Routed r = route(from, to, blob.size(), now);
  simulator_->schedule_delivery(
      r.arrival, handler_, Delivery{from, to, r.span, std::move(blob), nullptr});
}

void Network::multicast(NodeId from, const std::vector<NodeId>& group,
                        Bytes payload) {
  if (simulator_->in_worker()) {
    // One deferred effect for the whole fan-out keeps the per-target route
    // order (and so the jitter draws) exactly as a serial run makes them.
    simulator_->defer_effect(
        [this, from, group, payload = std::move(payload),
         penalty = simulator_->pending_charge(),
         cause = obs::TraceRecorder::global().current_cause()]() mutable {
          obs::TraceRecorder::AmbientGuard causal(cause);
          simulator_->set_replay_charge(penalty);
          multicast(from, group, std::move(payload));
          simulator_->set_replay_charge(SimDuration{0});
        });
    return;
  }
  if (!attached(from)) return;
  auto shared = std::make_shared<const Bytes>(std::move(payload));
  for (NodeId to : group) {
    if (to == from || !attached(to)) continue;
    if (!blocked_.empty() && link_blocked(from, to)) {
      dropped_ctr_.inc();
      obs::trace_event(simulator_->now(), from, "net", "cut_drop",
                       obs::fnum("to", to));
      continue;
    }
    SimTime now = simulator_->now();
    Routed r = route(from, to, shared->size(), now);
    simulator_->schedule_delivery(r.arrival, handler_,
                                  Delivery{from, to, r.span, Bytes{}, shared});
  }
}

void Network::on_delivery(Delivery&& d) {
  const SimTime now = simulator_->now();
  const Sink* sink_ptr = find_sink(d.to);
  if (sink_ptr == nullptr) {
    dropped_ctr_.inc();  // receiver left the network
    LOG_DEBUG("net: drop ", d.from, "->", d.to, " (receiver detached)");
    obs::trace_event_caused(now, d.to, d.cause_span, "net", "drop",
                            obs::fnum("from", d.from));
    if (!d.payload.empty()) obs::BufferPool::local().release(std::move(d.payload));
    return;
  }
  delivered_ctr_.inc();
  delivered_bytes_ctr_.inc(d.view().size());
  // The cause is the `net send` span carried inside the Delivery — explicit,
  // never ambient, so the heap engine's closure-wrapped dispatch emits the
  // same edge. Everything the receiver does runs under the deliver's scope.
  std::uint64_t deliver_span = obs::trace_event_caused(
      now, d.to, d.cause_span, "net", "deliver", obs::fnum("from", d.from),
      obs::fnum("bytes", static_cast<std::int64_t>(d.view().size())));
  obs::TraceRecorder::Scope causal(deliver_span);
  const Sink& sink = *sink_ptr;
  if (sink.view) {
    sink.view(d.from, d.view());
    // A view sink only borrowed the bytes; recycle owned buffers.
    if (!d.payload.empty()) obs::BufferPool::local().release(std::move(d.payload));
  } else if (d.shared) {
    // Owned sink + shared payload: this receiver needs its own copy.
    Bytes blob = obs::BufferPool::local().acquire_empty(d.shared->size());
    blob.assign(d.shared->begin(), d.shared->end());
    sink.owned(d.from, std::move(blob));
  } else {
    sink.owned(d.from, std::move(d.payload));
  }
}

}  // namespace sgxp2p::sim
