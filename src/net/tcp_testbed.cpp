#include "net/tcp_testbed.hpp"

#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serde.hpp"
#include "net/tcp_bus_legacy.hpp"

namespace sgxp2p::net {

namespace {
Bytes tcp_platform_seed(std::uint64_t seed) {
  BinaryWriter w;
  w.str("sgxp2p-tcp-platform");
  w.u64(seed);
  return w.take();
}
}  // namespace

TcpTestbed::TcpTestbed(TcpTestbedConfig config)
    : cfg_(config), platform_(clock_, tcp_platform_seed(config.seed)) {
  ias_ = std::make_unique<sgx::SimIAS>(platform_);
  if (cfg_.t == 0) cfg_.t = (cfg_.n - 1) / 2;
  CHECK_MSG(2 * cfg_.t < cfg_.n, "TcpTestbed: t < N/2 required");
  send_warned_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(cfg_.n) * cfg_.n);
}

TcpTestbed::~TcpTestbed() {
  if (bus_) bus_->stop();
}

std::uint32_t TcpTestbed::current_round() const {
  const SimTime t0 = t0_.load(std::memory_order_acquire);
  if (t0 == 0) return 0;
  const SimTime now = clock_.now();
  if (now < t0) return 0;
  return 1 + static_cast<std::uint32_t>((now - t0) / cfg_.round_ms);
}

SendStatus TcpTestbed::bus_send_raw(NodeId from, NodeId to, Bytes blob) {
  const std::size_t len = blob.size();
  SendStatus st = bus_->send(from, to, std::move(blob));
  if (st != SendStatus::kOk && from < cfg_.n && to < cfg_.n) {
    std::atomic<bool>& warned =
        send_warned_[static_cast<std::size_t>(from) * cfg_.n + to];
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      LOG_WARN("tcp_testbed: send ", from, "->", to, " failed (",
               send_status_name(st), ", ", len,
               " bytes); further failures on this connection are silent");
    }
  }
  return st;
}

void TcpTestbed::host_transfer(NodeId from, NodeId to, Bytes blob) {
  if (send_hook_ &&
      !send_hook_(from, to, ByteView(blob), current_round())) {
    return;  // the shim swallowed (or rescheduled) the frame
  }
  bus_send_raw(from, to, std::move(blob));
}

bool TcpTestbed::build(const EnclaveFactory& make_enclave) {
  if (cfg_.bus_kind == TcpBusKind::kLegacyPoll) {
    bus_ = std::make_unique<LegacyTcpBus>(cfg_.n);
  } else {
    bus_ = std::make_unique<TcpBus>(cfg_.n, cfg_.bus_options);
  }

  protocol::PeerConfig pc;
  pc.n = cfg_.n;
  pc.t = cfg_.t;
  pc.round_ms = cfg_.round_ms;
  pc.mode = protocol::ChannelMode::kAttested;
  for (NodeId id = 0; id < cfg_.n; ++id) {
    hosts_.push_back(std::make_unique<BusHost>(id, *this));
    pc.self = id;
    enclaves_.push_back(
        make_enclave(id, platform_, *hosts_[id], pc, *ias_));
    CHECK_MSG(enclaves_.back() != nullptr, "TcpTestbed: factory returned null");
  }

  // Attested setup (handshakes + sequence exchange), as in sim::Testbed.
  std::vector<Bytes> hello(cfg_.n);
  for (NodeId id = 0; id < cfg_.n; ++id) {
    hello[id] = enclaves_[id]->handshake_blob();
  }
  for (NodeId a = 0; a < cfg_.n; ++a) {
    for (NodeId b = 0; b < cfg_.n; ++b) {
      if (a != b && !enclaves_[b]->accept_handshake(hello[a])) return false;
    }
  }
  for (NodeId a = 0; a < cfg_.n; ++a) {
    for (NodeId b = 0; b < cfg_.n; ++b) {
      if (a == b) continue;
      Bytes blob = enclaves_[a]->make_seq_blob(b);
      if (!enclaves_[b]->accept_seq_blob(a, blob)) return false;
    }
  }

  bus_->set_receiver([this](NodeId to, NodeId from, Bytes blob) {
    std::lock_guard<std::mutex> lock(state_mu_);
    // A crashed node's slot is null until recover_node(); drop its frames.
    if (to < enclaves_.size() && enclaves_[to] != nullptr) {
      enclaves_[to]->deliver(from, blob);
    }
  });
  return bus_->start();
}

void TcpTestbed::start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  t0_.store(clock_.now() + cfg_.round_ms, std::memory_order_release);
  for (auto& enclave : enclaves_) enclave->start_protocol(t0_);
}

std::uint32_t TcpTestbed::run_rounds(std::uint32_t max_rounds,
                                     const std::function<bool()>& stop_when) {
  // Consecutive calls continue the wall-clock schedule.
  for (std::uint32_t r = 1; r <= max_rounds; ++r) {
    SimTime boundary =
        t0_ + static_cast<SimTime>(rounds_run_ + r - 1) * cfg_.round_ms;
    // Sleep the caller thread to the wall-clock boundary; inbound frames
    // keep flowing on the bus thread meanwhile.
    SimTime wait = boundary - clock_.now();
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (auto& enclave : enclaves_) {
        if (enclave) enclave->on_tick();
      }
    }
    // Let the round's traffic complete before evaluating the predicate.
    SimTime round_end = boundary + cfg_.round_ms - cfg_.round_ms / 8;
    SimTime settle = round_end - clock_.now();
    if (settle > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(settle));
    }
    if (stop_when) {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (stop_when()) {
        rounds_run_ += r;
        return r;
      }
    }
  }
  rounds_run_ += max_rounds;
  return max_rounds;
}

void TcpTestbed::crash_node(NodeId id) {
  std::lock_guard<std::mutex> lock(state_mu_);
  CHECK_MSG(id < enclaves_.size() && enclaves_[id] != nullptr,
            "crash_node: no such enclave");
  enclaves_[id].reset();
}

protocol::PeerEnclave& TcpTestbed::recover_node(
    NodeId id, const EnclaveFactory& make_enclave,
    const std::function<void(protocol::PeerEnclave&)>& before_start) {
  std::lock_guard<std::mutex> lock(state_mu_);
  CHECK_MSG(id < enclaves_.size() && enclaves_[id] == nullptr,
            "recover_node: node still running");
  protocol::PeerConfig pc;
  pc.self = id;
  pc.n = cfg_.n;
  pc.t = cfg_.t;
  pc.round_ms = cfg_.round_ms;
  pc.mode = protocol::ChannelMode::kAttested;
  auto enclave = make_enclave(id, platform_, *hosts_[id], pc, *ias_);
  CHECK_MSG(enclave != nullptr, "recover_node: factory returned null");
  enclaves_[id] = std::move(enclave);
  if (before_start) before_start(*enclaves_[id]);
  enclaves_[id]->start_protocol(t0_);
  return *enclaves_[id];
}

}  // namespace sgxp2p::net
