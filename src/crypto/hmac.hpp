// HMAC-SHA256 (RFC 2104 / FIPS 198-1) and HKDF (RFC 5869).
//
// HMAC is the MAC of the blinded channel's encrypt-then-MAC composition
// (Appendix A, Fig. 4) and the primitive behind the simulated attestation
// quotes. HKDF derives the per-direction channel keys from the X25519 shared
// secret during the setup phase.
//
// Hot-path shape: HmacKey precomputes the SHA-256 midstates that result from
// compressing the ipad/opad key blocks. A SecureLink seals thousands of
// messages under one key, so caching the midstates turns the per-message key
// schedule (two extra compression blocks plus the key XORs) into two struct
// copies.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kHmacTagSize = kSha256DigestSize;

/// Precomputed HMAC key schedule: the inner/outer hash states after the
/// ipad/opad blocks. Derive once per key, reuse for every MAC.
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(ByteView key);

  [[nodiscard]] const Sha256& inner_state() const { return inner_; }
  [[nodiscard]] const Sha256& outer_state() const { return outer_; }

 private:
  Sha256 inner_;  // state after absorbing key ⊕ ipad
  Sha256 outer_;  // state after absorbing key ⊕ opad
};

class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key) : HmacSha256(HmacKey(key)) {}
  /// Starts from a precomputed key schedule (two midstate copies, no hashing).
  explicit HmacSha256(const HmacKey& key)
      : inner_(key.inner_state()), outer_(key.outer_state()) {}

  void update(ByteView data);
  Sha256Digest finalize();

  /// One-shot MAC.
  static Sha256Digest mac(ByteView key, ByteView data);
  static Bytes mac_bytes(ByteView key, ByteView data);

 private:
  Sha256 inner_;
  Sha256 outer_;
};

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes (≤ 255*32) from PRK and info.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace sgxp2p::crypto
