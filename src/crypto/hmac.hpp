// HMAC-SHA256 (RFC 2104 / FIPS 198-1) and HKDF (RFC 5869).
//
// HMAC is the MAC of the blinded channel's encrypt-then-MAC composition
// (Appendix A, Fig. 4) and the primitive behind the simulated attestation
// quotes. HKDF derives the per-direction channel keys from the X25519 shared
// secret during the setup phase.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kHmacTagSize = kSha256DigestSize;

class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(ByteView data);
  Sha256Digest finalize();

  /// One-shot MAC.
  static Sha256Digest mac(ByteView key, ByteView data);
  static Bytes mac_bytes(ByteView key, ByteView data);

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_key_;
};

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes (≤ 255*32) from PRK and info.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace sgxp2p::crypto
