#include "crypto/aead.hpp"

#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"

namespace sgxp2p::crypto {

namespace {
void mac_header(HmacSha256& mac, ByteView nonce, ByteView associated_data,
                ByteView ciphertext) {
  // Unambiguous framing: lengths are MAC'd so (ad, ct) boundaries cannot be
  // shifted.
  std::uint8_t lens[16];
  store_le64(lens, associated_data.size());
  store_le64(lens + 8, ciphertext.size());
  mac.update(nonce);
  mac.update(associated_data);
  mac.update(ciphertext);
  mac.update(ByteView(lens, sizeof lens));
}
}  // namespace

Bytes aead_seal(ByteView key, ByteView nonce, ByteView associated_data,
                ByteView plaintext) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead_seal: bad key size");
  }
  if (nonce.size() != kAeadNonceSize) {
    throw std::invalid_argument("aead_seal: bad nonce size");
  }
  ByteView enc_key = key.subspan(0, 32);
  ByteView mac_key = key.subspan(32, 32);

  Bytes out;
  out.reserve(kAeadOverhead + plaintext.size());
  append(out, nonce);
  Bytes ct = chacha20_crypt(enc_key, nonce, 1, plaintext);
  append(out, ct);

  HmacSha256 mac(mac_key);
  mac_header(mac, nonce, associated_data, ct);
  Sha256Digest tag = mac.finalize();
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<Bytes> aead_open(ByteView key, ByteView associated_data,
                               ByteView sealed) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead_open: bad key size");
  }
  if (sealed.size() < kAeadOverhead) return std::nullopt;
  ByteView enc_key = key.subspan(0, 32);
  ByteView mac_key = key.subspan(32, 32);

  ByteView nonce = sealed.subspan(0, kAeadNonceSize);
  ByteView ct = sealed.subspan(kAeadNonceSize,
                               sealed.size() - kAeadOverhead);
  ByteView tag = sealed.subspan(sealed.size() - kAeadTagSize);

  HmacSha256 mac(mac_key);
  mac_header(mac, nonce, associated_data, ct);
  Sha256Digest expected = mac.finalize();
  if (!ct_equal(ByteView(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  return chacha20_crypt(enc_key, nonce, 1, ct);
}

}  // namespace sgxp2p::crypto
