#include "crypto/aead.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "obs/pool.hpp"

namespace sgxp2p::crypto {

namespace {
void mac_header(HmacSha256& mac, ByteView nonce, ByteView associated_data,
                ByteView ciphertext) {
  // Unambiguous framing: lengths are MAC'd so (ad, ct) boundaries cannot be
  // shifted.
  std::uint8_t lens[16];
  store_le64(lens, associated_data.size());
  store_le64(lens + 8, ciphertext.size());
  mac.update(nonce);
  mac.update(associated_data);
  mac.update(ciphertext);
  mac.update(ByteView(lens, sizeof lens));
}
}  // namespace

AeadKey::AeadKey(ByteView key) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("AeadKey: bad key size");
  }
  std::memcpy(enc_key_.data(), key.data(), enc_key_.size());
  mac_key_ = HmacKey(key.subspan(32, 32));
}

Bytes aead_seal(const AeadKey& key, ByteView nonce, ByteView associated_data,
                ByteView plaintext) {
  if (nonce.size() != kAeadNonceSize) {
    throw std::invalid_argument("aead_seal: bad nonce size");
  }
  // Single buffer: nonce ‖ ct ‖ tag, ciphertext produced in place. Pooled:
  // in steady state this reuses the capacity of a previously delivered
  // message instead of hitting the allocator.
  Bytes out = obs::BufferPool::local().acquire(kAeadOverhead + plaintext.size());
  std::memcpy(out.data(), nonce.data(), kAeadNonceSize);
  std::uint8_t* ct = out.data() + kAeadNonceSize;
  if (!plaintext.empty()) {
    std::memcpy(ct, plaintext.data(), plaintext.size());
  }
  ChaCha20 cipher(key.enc_key(), nonce, 1);
  cipher.crypt(ct, plaintext.size());

  HmacSha256 mac(key.mac_key());
  mac_header(mac, nonce, associated_data, ByteView(ct, plaintext.size()));
  Sha256Digest tag = mac.finalize();
  std::memcpy(ct + plaintext.size(), tag.data(), tag.size());
  return out;
}

std::optional<Bytes> aead_open(const AeadKey& key, ByteView associated_data,
                               ByteView sealed) {
  if (sealed.size() < kAeadOverhead) return std::nullopt;

  ByteView nonce = sealed.subspan(0, kAeadNonceSize);
  ByteView ct = sealed.subspan(kAeadNonceSize, sealed.size() - kAeadOverhead);
  ByteView tag = sealed.subspan(sealed.size() - kAeadTagSize);

  HmacSha256 mac(key.mac_key());
  mac_header(mac, nonce, associated_data, ct);
  Sha256Digest expected = mac.finalize();
  if (!ct_equal(ByteView(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  // Single (pooled) buffer: copy the ciphertext out and decrypt in place.
  Bytes plaintext = obs::BufferPool::local().acquire_empty(ct.size());
  plaintext.assign(ct.begin(), ct.end());
  ChaCha20 cipher(key.enc_key(), nonce, 1);
  cipher.crypt(plaintext);
  return plaintext;
}

Bytes aead_seal(ByteView key, ByteView nonce, ByteView associated_data,
                ByteView plaintext) {
  return aead_seal(AeadKey(key), nonce, associated_data, plaintext);
}

std::optional<Bytes> aead_open(ByteView key, ByteView associated_data,
                               ByteView sealed) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead_open: bad key size");
  }
  return aead_open(AeadKey(key), associated_data, sealed);
}

}  // namespace sgxp2p::crypto

