#include "crypto/x25519.hpp"

#include <cstring>
#include <stdexcept>

namespace sgxp2p::crypto {

namespace {

// Field element in GF(2^255 − 19): five unsigned limbs of 51 bits.
// Invariant maintained between operations: limbs < 2^52 + small ε, which the
// 128-bit products in fe_mul tolerate with room to spare.
using Fe = std::array<std::uint64_t, 5>;

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

constexpr Fe fe_zero() { return {0, 0, 0, 0, 0}; }
constexpr Fe fe_one() { return {1, 0, 0, 0, 0}; }

Fe fe_add(const Fe& a, const Fe& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3], a[4] + b[4]};
}

// a − b, computed as a + 2p − b to avoid underflow. 2p has limbs
// (2^52 − 38, 2^52 − 2, …).
Fe fe_sub(const Fe& a, const Fe& b) {
  constexpr std::uint64_t kTwoP0 = (1ULL << 52) - 38;
  constexpr std::uint64_t kTwoPi = (1ULL << 52) - 2;
  return {a[0] + kTwoP0 - b[0], a[1] + kTwoPi - b[1], a[2] + kTwoPi - b[2],
          a[3] + kTwoPi - b[3], a[4] + kTwoPi - b[4]};
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using U128 = unsigned __int128;
  const std::uint64_t b1_19 = b[1] * 19, b2_19 = b[2] * 19,
                      b3_19 = b[3] * 19, b4_19 = b[4] * 19;

  U128 t0 = (U128)a[0] * b[0] + (U128)a[1] * b4_19 + (U128)a[2] * b3_19 +
            (U128)a[3] * b2_19 + (U128)a[4] * b1_19;
  U128 t1 = (U128)a[0] * b[1] + (U128)a[1] * b[0] + (U128)a[2] * b4_19 +
            (U128)a[3] * b3_19 + (U128)a[4] * b2_19;
  U128 t2 = (U128)a[0] * b[2] + (U128)a[1] * b[1] + (U128)a[2] * b[0] +
            (U128)a[3] * b4_19 + (U128)a[4] * b3_19;
  U128 t3 = (U128)a[0] * b[3] + (U128)a[1] * b[2] + (U128)a[2] * b[1] +
            (U128)a[3] * b[0] + (U128)a[4] * b4_19;
  U128 t4 = (U128)a[0] * b[4] + (U128)a[1] * b[3] + (U128)a[2] * b[2] +
            (U128)a[3] * b[1] + (U128)a[4] * b[0];

  Fe r;
  std::uint64_t carry;
  r[0] = (std::uint64_t)t0 & kMask51; carry = (std::uint64_t)(t0 >> 51);
  t1 += carry;
  r[1] = (std::uint64_t)t1 & kMask51; carry = (std::uint64_t)(t1 >> 51);
  t2 += carry;
  r[2] = (std::uint64_t)t2 & kMask51; carry = (std::uint64_t)(t2 >> 51);
  t3 += carry;
  r[3] = (std::uint64_t)t3 & kMask51; carry = (std::uint64_t)(t3 >> 51);
  t4 += carry;
  r[4] = (std::uint64_t)t4 & kMask51; carry = (std::uint64_t)(t4 >> 51);
  r[0] += carry * 19;
  carry = r[0] >> 51;
  r[0] &= kMask51;
  r[1] += carry;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

// a · 121665, the (A − 2)/4 constant of the Montgomery ladder.
Fe fe_mul121665(const Fe& a) {
  using U128 = unsigned __int128;
  Fe r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 5; ++i) {
    U128 t = (U128)a[i] * 121665 + carry;
    r[i] = (std::uint64_t)t & kMask51;
    carry = (std::uint64_t)(t >> 51);
  }
  r[0] += carry * 19;
  carry = r[0] >> 51;
  r[0] &= kMask51;
  r[1] += carry;
  return r;
}

// z^(p − 2) via square-and-multiply over the fixed exponent 2^255 − 21.
Fe fe_invert(const Fe& z) {
  // p − 2 in little-endian bytes: eb ff … ff 7f.
  static constexpr std::uint8_t kExp[32] = {
      0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  Fe result = fe_one();
  for (int bit = 254; bit >= 0; --bit) {
    result = fe_sq(result);
    if ((kExp[bit >> 3] >> (bit & 7)) & 1) result = fe_mul(result, z);
  }
  return result;
}

Fe fe_frombytes(const std::uint8_t* s) {
  Fe t;
  t[0] = load_le64(s) & kMask51;
  t[1] = (load_le64(s + 6) >> 3) & kMask51;
  t[2] = (load_le64(s + 12) >> 6) & kMask51;
  t[3] = (load_le64(s + 19) >> 1) & kMask51;
  t[4] = (load_le64(s + 24) >> 12) & kMask51;  // also drops the top bit
  return t;
}

// Carries the limbs down to < 2^51 each (value then < 2^255 < 2p).
void fe_carry(Fe& t) {
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 4; ++i) {
      t[i + 1] += t[i] >> 51;
      t[i] &= kMask51;
    }
    t[0] += 19 * (t[4] >> 51);
    t[4] &= kMask51;
  }
}

void fe_tobytes(std::uint8_t* out, Fe t) {
  fe_carry(t);
  // Constant-time conditional subtraction of p = 2^255 − 19.
  constexpr std::uint64_t kP0 = kMask51 - 18;
  constexpr std::uint64_t kPi = kMask51;
  Fe d;
  std::uint64_t borrow = 0;
  const std::uint64_t p_limbs[5] = {kP0, kPi, kPi, kPi, kPi};
  for (int i = 0; i < 5; ++i) {
    std::uint64_t diff = t[i] - p_limbs[i] - borrow;
    borrow = diff >> 63;
    d[i] = diff + (borrow << 51);
  }
  // borrow == 0 means t ≥ p: take d.
  std::uint64_t take_d = borrow - 1;  // all-ones iff borrow == 0
  for (int i = 0; i < 5; ++i) t[i] = (t[i] & ~take_d) | (d[i] & take_d);

  std::uint64_t w0 = t[0] | (t[1] << 51);
  std::uint64_t w1 = (t[1] >> 13) | (t[2] << 38);
  std::uint64_t w2 = (t[2] >> 26) | (t[3] << 25);
  std::uint64_t w3 = (t[3] >> 39) | (t[4] << 12);
  store_le64(out, w0);
  store_le64(out + 8, w1);
  store_le64(out + 16, w2);
  store_le64(out + 24, w3);
}

// Constant-time swap of (a, b) when swap == 1.
void fe_cswap(std::uint64_t swap, Fe& a, Fe& b) {
  const std::uint64_t mask = 0 - swap;
  for (int i = 0; i < 5; ++i) {
    std::uint64_t x = mask & (a[i] ^ b[i]);
    a[i] ^= x;
    b[i] ^= x;
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  std::uint8_t k[32];
  std::memcpy(k, scalar.data(), 32);
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;

  Fe x1 = fe_frombytes(point.data());
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    std::uint64_t k_t = (k[t >> 3] >> (t & 7)) & 1;
    swap ^= k_t;
    fe_cswap(swap, x2, x3);
    fe_cswap(swap, z2, z3);
    swap = k_t;

    Fe a = fe_add(x2, z2);
    Fe aa = fe_sq(a);
    Fe b = fe_sub(x2, z2);
    Fe bb = fe_sq(b);
    Fe e = fe_sub(aa, bb);
    Fe c = fe_add(x3, z3);
    Fe d = fe_sub(x3, z3);
    Fe da = fe_mul(d, a);
    Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e, fe_add(aa, fe_mul121665(e)));
  }
  fe_cswap(swap, x2, x3);
  fe_cswap(swap, z2, z3);

  Fe out = fe_mul(x2, fe_invert(z2));
  X25519Key result;
  fe_tobytes(result.data(), out);
  return result;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

Bytes x25519_shared(ByteView private_key, ByteView peer_public) {
  if (private_key.size() != kX25519KeySize ||
      peer_public.size() != kX25519KeySize) {
    throw std::invalid_argument("x25519_shared: keys must be 32 bytes");
  }
  X25519Key sk, pk;
  std::memcpy(sk.data(), private_key.data(), 32);
  std::memcpy(pk.data(), peer_public.data(), 32);
  X25519Key shared = x25519(sk, pk);
  return Bytes(shared.begin(), shared.end());
}

Bytes x25519_public(ByteView private_key) {
  if (private_key.size() != kX25519KeySize) {
    throw std::invalid_argument("x25519_public: key must be 32 bytes");
  }
  X25519Key sk;
  std::memcpy(sk.data(), private_key.data(), 32);
  X25519Key pk = x25519_base(sk);
  return Bytes(pk.begin(), pk.end());
}

}  // namespace sgxp2p::crypto
