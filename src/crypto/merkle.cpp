#include "crypto/merkle.hpp"

#include <stdexcept>

#include "common/serde.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"

namespace sgxp2p::crypto {

Bytes MerkleTree::hash_leaf(ByteView leaf) {
  Sha256 h;
  std::uint8_t tag = 0x00;
  h.update(ByteView(&tag, 1));
  h.update(leaf);
  Sha256Digest d = h.finalize();
  return Bytes(d.begin(), d.end());
}

Bytes MerkleTree::hash_node(ByteView left, ByteView right) {
  Sha256 h;
  std::uint8_t tag = 0x01;
  h.update(ByteView(&tag, 1));
  h.update(left);
  h.update(right);
  Sha256Digest d = h.finalize();
  return Bytes(d.begin(), d.end());
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves)
    : leaf_count_(leaves.size()) {
  std::vector<Bytes> level;
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Bytes> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < below.size(); i += 2) {
      above.push_back(hash_node(below[i], below[i + 1]));
    }
    if (below.size() % 2 == 1) above.push_back(below.back());
    levels_.push_back(std::move(above));
  }
  root_ = levels_.back().empty() ? Bytes(kSha256DigestSize, 0)
                                 : levels_.back().front();
}

std::vector<Bytes> MerkleTree::proof(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::proof: index out of range");
  }
  std::vector<Bytes> path;
  std::size_t i = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    std::size_t sibling = i ^ 1;
    if (sibling < level.size()) {
      path.push_back(level[sibling]);
    }
    // When i is the promoted last node of an odd level there is no sibling
    // and the node passes up unchanged; verification mirrors this.
    i /= 2;
  }
  return path;
}

bool MerkleTree::verify(ByteView root, ByteView leaf, std::size_t index,
                        std::size_t leaf_count,
                        const std::vector<Bytes>& proof) {
  if (leaf_count == 0 || index >= leaf_count) return false;
  Bytes node = hash_leaf(leaf);
  std::size_t i = index;
  std::size_t width = leaf_count;
  std::size_t used = 0;
  while (width > 1) {
    std::size_t sibling = i ^ 1;
    if (sibling < width) {
      if (used >= proof.size()) return false;
      const Bytes& sib = proof[used++];
      node = (i % 2 == 0) ? hash_node(node, sib) : hash_node(sib, node);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  return used == proof.size() && ct_equal(node, root);
}

MerkleSigner::MerkleSigner(ByteView seed, unsigned height)
    : seed_(seed.begin(), seed.end()),
      height_(height),
      leaf_total_(static_cast<std::size_t>(1) << height) {
  if (height > 16) {
    throw std::invalid_argument("MerkleSigner: height too large");
  }
  std::vector<Bytes> leaves;
  leaves.reserve(leaf_total_);
  wots_keys_.reserve(leaf_total_);
  for (std::size_t i = 0; i < leaf_total_; ++i) {
    WotsKeyPair kp = wots_keygen(seed_, i);
    leaves.push_back(kp.public_key);
    wots_keys_.push_back(std::move(kp));
  }
  tree_.emplace(leaves);
}

std::size_t merkle_sig_size(unsigned height) {
  // leaf index (8) + wots sig + path count (4) + height hashes.
  return 8 + kWotsSigSize + 4 + height * kSha256DigestSize;
}

Bytes MerkleSigner::sign(ByteView message) {
  if (next_leaf_ >= leaf_total_) {
    throw std::runtime_error("MerkleSigner: one-time keys exhausted");
  }
  std::size_t leaf = next_leaf_++;
  Bytes wots_sig = wots_sign(wots_keys_[leaf], leaf, message);
  std::vector<Bytes> path = tree_->proof(leaf);

  BinaryWriter w;
  w.u64(leaf);
  w.raw(wots_sig);
  w.u32(static_cast<std::uint32_t>(path.size()));
  for (const Bytes& node : path) w.raw(node);
  return w.take();
}

bool merkle_verify(ByteView public_key, ByteView message, ByteView signature) {
  BinaryReader r(signature);
  std::uint64_t leaf = r.u64();
  Bytes wots_sig = r.raw(kWotsSigSize);
  std::uint32_t path_len = r.u32();
  if (!r.ok() || path_len > 64) return false;
  std::vector<Bytes> path;
  path.reserve(path_len);
  for (std::uint32_t i = 0; i < path_len; ++i) {
    path.push_back(r.raw(kSha256DigestSize));
  }
  if (!r.done()) return false;

  auto wots_pk = wots_pk_from_sig(leaf, message, wots_sig);
  if (!wots_pk) return false;
  // The tree was built over full 2^height leaves; path length gives height.
  std::size_t leaf_count = static_cast<std::size_t>(1) << path_len;
  if (leaf >= leaf_count) return false;
  return MerkleTree::verify(public_key, *wots_pk, leaf, leaf_count, path);
}

}  // namespace sgxp2p::crypto
