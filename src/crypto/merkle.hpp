// Merkle trees and the WOTS+Merkle many-time signature scheme.
//
// MerkleTree is a generic binary hash tree with inclusion proofs (also used
// by the random-beacon example to commit to beacon history). MerkleSigner
// turns WOTS one-time keys into a many-time scheme (an XMSS-like design
// without the hypertree): the public key is the root over 2^height WOTS
// public keys; each signature reveals one leaf's WOTS signature plus its
// authentication path. Signing is stateful — each leaf index is used once.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "crypto/wots.hpp"

namespace sgxp2p::crypto {

/// Generic Merkle tree over arbitrary leaf payloads (hashed internally with
/// domain separation between leaves and interior nodes).
class MerkleTree {
 public:
  /// Builds a tree over `leaves`. A tree over zero leaves has a defined
  /// all-zero root. Odd levels duplicate-free: the last node is promoted.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  [[nodiscard]] const Bytes& root() const { return root_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Sibling path from leaf `index` to the root.
  [[nodiscard]] std::vector<Bytes> proof(std::size_t index) const;

  /// Verifies that `leaf` is at `index` in a tree with `root` of
  /// `leaf_count` leaves.
  static bool verify(ByteView root, ByteView leaf, std::size_t index,
                     std::size_t leaf_count, const std::vector<Bytes>& proof);

  static Bytes hash_leaf(ByteView leaf);
  static Bytes hash_node(ByteView left, ByteView right);

 private:
  // levels_[0] = hashed leaves, levels_.back() = {root}.
  std::vector<std::vector<Bytes>> levels_;
  Bytes root_;
  std::size_t leaf_count_;
};

/// Many-time hash-based signer. Deterministically derived from a seed.
class MerkleSigner {
 public:
  /// 2^height one-time keys (height 8 → 256 signatures, ample for the RBsig
  /// baseline runs).
  MerkleSigner(ByteView seed, unsigned height = 8);

  [[nodiscard]] const Bytes& public_key() const { return tree_->root(); }
  [[nodiscard]] std::size_t remaining() const {
    return leaf_total_ - next_leaf_;
  }

  /// Signs; consumes one leaf. Throws std::runtime_error when exhausted.
  Bytes sign(ByteView message);

 private:
  Bytes seed_;
  unsigned height_;
  std::size_t leaf_total_;
  std::size_t next_leaf_ = 0;
  std::vector<WotsKeyPair> wots_keys_;
  std::optional<MerkleTree> tree_;
};

/// Verifies a MerkleSigner signature against the signer's public key (root).
bool merkle_verify(ByteView public_key, ByteView message, ByteView signature);

/// Serialized signature size for a given tree height (fixed layout).
std::size_t merkle_sig_size(unsigned height);

}  // namespace sgxp2p::crypto
