// X25519 Diffie–Hellman (RFC 7748).
//
// The paper's setup phase has every pair of enclaves establish a secure
// channel "using Diffie-Hellman key exchange" after remote attestation. This
// is that primitive: Curve25519 scalar multiplication with the Montgomery
// ladder over GF(2^255 − 19), 51-bit limb arithmetic, constant-time
// conditional swaps. Verified against the RFC 7748 test vectors in
// tests/test_crypto.cpp.
#pragma once

#include <array>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kX25519KeySize = 32;
using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar · point. `scalar` is clamped per RFC 7748 before use.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// scalar · basepoint(9): derives the public key for a private scalar.
X25519Key x25519_base(const X25519Key& scalar);

/// Convenience wrappers over Bytes (sizes are checked).
Bytes x25519_shared(ByteView private_key, ByteView peer_public);
Bytes x25519_public(ByteView private_key);

}  // namespace sgxp2p::crypto
