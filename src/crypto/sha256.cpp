#include "crypto/sha256.hpp"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define SGXP2P_SHA256_SHANI 1
#include <immintrin.h>
#endif

namespace sgxp2p::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void compress_scalar(std::array<std::uint32_t, 8>& state,
                     const std::uint8_t* block, std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk, block += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
    for (int i = 16; i < 64; ++i) {
      std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      std::uint32_t ch = (e & f) ^ (~e & g);
      std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if SGXP2P_SHA256_SHANI

// Two-lane SHA-NI schedule: the hash state lives in the ABEF/CDGH register
// layout the sha256rnds2 instruction expects; each 16-round chunk interleaves
// message-schedule updates (sha256msg1/msg2) with the round computation.
__attribute__((target("sha,sse4.1")))
void compress_shani(std::array<std::uint32_t, 8>& state,
                    const std::uint8_t* data, std::size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // state = {a,b,c,d,e,f,g,h} → STATE0 = ABEF, STATE1 = CDGH.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  while (nblocks > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0–3
    msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg, kShuffle);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFLL, 0x71374491428A2F98LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4–7
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4LL, 0x59F111F13956C25BLL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8–11
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BELL, 0x12835B01D807AA98LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12–15
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF1749BDC06A7LL, 0x80DEB1FE72BE5D74LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16–19
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6LL, 0xEFBE4786E49B69C1LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20–23
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCLL, 0x4A7484AA2DE92C6FLL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24–27
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xBF597FC7B00327C8LL, 0xA831C66D983E5152LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28–31
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x1429296706CA6351LL, 0xD5A79147C6E00BF3LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32–35
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380D134D2C6DFCLL, 0x2E1B213827B70A85LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36–39
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722C8581C2C92ELL, 0x766A0ABB650A7354LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40–43
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xC76C51A3C24B8B70LL, 0xA81A664BA2BFE8A1LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44–47
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106AA070F40E3585LL, 0xD6990624D192E819LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48–51
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34B0BCB52748774CLL, 0x1E376C0819A4C116LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52–55
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FLL, 0x4ED8AA4A391C0CB3LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56–59
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814LL, 0x78A5636F748F82EELL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60–63
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7LL, 0xA4506CEB90BEFFFALL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    data += 64;
    --nblocks;
  }

  // ABEF/CDGH → {a,b,c,d} / {e,f,g,h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool cpu_has_shani() {
  static const bool has =
      __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
  return has;
}

#endif  // SGXP2P_SHA256_SHANI

}  // namespace

bool& sha256_force_scalar() {
  static bool force = false;
  return force;
}

const char* sha256_backend() {
#if SGXP2P_SHA256_SHANI
  if (cpu_has_shani()) return "sha-ni";
#endif
  return "scalar";
}

void Sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t nblocks) {
#if SGXP2P_SHA256_SHANI
  if (cpu_has_shani() && !sha256_force_scalar()) {
    compress_shani(state_, data, nblocks);
    return;
  }
#endif
  compress_scalar(state_, data, nblocks);
}

void Sha256::update(ByteView data) {
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_blocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  std::size_t whole = (data.size() - offset) / 64;
  if (whole > 0) {
    process_blocks(data.data() + offset, whole);
    offset += whole * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha256Digest Sha256::finalize() {
  // Padding: 0x80, zeros, then the 64-bit big-endian bit count.
  std::uint64_t bits = bit_count_;
  std::uint8_t pad[72];
  std::size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_)
                                           : (120 - buffer_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  update(ByteView(pad, pad_len));
  std::uint8_t len_be[8];
  store_be64(len_be, bits);
  update(ByteView(len_be, 8));

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Sha256Digest Sha256::hash(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Bytes Sha256::hash_bytes(ByteView data) {
  Sha256Digest d = hash(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace sgxp2p::crypto
