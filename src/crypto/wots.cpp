#include "crypto/wots.hpp"

#include <cstring>

#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"

namespace sgxp2p::crypto {

namespace {

// Splits H(message) into 64 message nibbles + 3 checksum nibbles.
std::array<std::uint8_t, kWotsChains> chunks_of(ByteView message) {
  Sha256Digest digest = Sha256::hash(message);
  std::array<std::uint8_t, kWotsChains> chunks{};
  unsigned checksum = 0;
  for (int i = 0; i < 32; ++i) {
    std::uint8_t hi = digest[i] >> 4;
    std::uint8_t lo = digest[i] & 0x0f;
    chunks[2 * i] = hi;
    chunks[2 * i + 1] = lo;
    checksum += (kWotsChainLen - 1 - hi) + (kWotsChainLen - 1 - lo);
  }
  // checksum ≤ 64·15 = 960 < 16^3.
  chunks[64] = static_cast<std::uint8_t>((checksum >> 8) & 0x0f);
  chunks[65] = static_cast<std::uint8_t>((checksum >> 4) & 0x0f);
  chunks[66] = static_cast<std::uint8_t>(checksum & 0x0f);
  return chunks;
}

// One chain step: value_j = H("wots" ‖ address ‖ chain ‖ step j ‖ value_{j−1}).
// Domain separation per (address, chain, step) prevents cross-chain and
// multi-target collisions.
Sha256Digest chain_step(std::uint64_t address, std::uint32_t chain,
                        std::uint32_t step, ByteView value) {
  Sha256 h;
  std::uint8_t hdr[4 + 8 + 4 + 4];
  std::memcpy(hdr, "wots", 4);
  store_le64(hdr + 4, address);
  store_le32(hdr + 12, chain);
  store_le32(hdr + 16, step);
  h.update(ByteView(hdr, sizeof hdr));
  h.update(value);
  return h.finalize();
}

// Applies steps (from, to] to a starting value.
Bytes chain_apply(std::uint64_t address, std::uint32_t chain,
                  std::uint32_t from, std::uint32_t to, ByteView start) {
  Bytes value(start.begin(), start.end());
  for (std::uint32_t j = from + 1; j <= to; ++j) {
    Sha256Digest d = chain_step(address, chain, j, value);
    value.assign(d.begin(), d.end());
  }
  return value;
}

Bytes chain_secret(ByteView seed, std::uint64_t address, std::uint32_t chain) {
  std::uint8_t info[8 + 4];
  store_le64(info, address);
  store_le32(info + 8, chain);
  return HmacSha256::mac_bytes(seed, ByteView(info, sizeof info));
}

}  // namespace

WotsKeyPair wots_keygen(ByteView seed, std::uint64_t address) {
  WotsKeyPair kp;
  kp.secret_seed.assign(seed.begin(), seed.end());
  Sha256 pk_hash;
  for (std::uint32_t c = 0; c < kWotsChains; ++c) {
    Bytes sk = chain_secret(seed, address, c);
    Bytes pk_c = chain_apply(address, c, 0, kWotsChainLen - 1, sk);
    pk_hash.update(pk_c);
  }
  Sha256Digest pk = pk_hash.finalize();
  kp.public_key.assign(pk.begin(), pk.end());
  return kp;
}

Bytes wots_sign(const WotsKeyPair& kp, std::uint64_t address,
                ByteView message) {
  auto chunks = chunks_of(message);
  Bytes sig;
  sig.reserve(kWotsSigSize);
  for (std::uint32_t c = 0; c < kWotsChains; ++c) {
    Bytes sk = chain_secret(kp.secret_seed, address, c);
    Bytes value = chain_apply(address, c, 0, chunks[c], sk);
    append(sig, value);
  }
  return sig;
}

std::optional<Bytes> wots_pk_from_sig(std::uint64_t address, ByteView message,
                                      ByteView signature) {
  if (signature.size() != kWotsSigSize) return std::nullopt;
  auto chunks = chunks_of(message);
  Sha256 pk_hash;
  for (std::uint32_t c = 0; c < kWotsChains; ++c) {
    ByteView part = signature.subspan(c * kSha256DigestSize, kSha256DigestSize);
    Bytes pk_c = chain_apply(address, c, chunks[c], kWotsChainLen - 1, part);
    pk_hash.update(pk_c);
  }
  Sha256Digest pk = pk_hash.finalize();
  return Bytes(pk.begin(), pk.end());
}

bool wots_verify(ByteView public_key, std::uint64_t address, ByteView message,
                 ByteView signature) {
  auto derived = wots_pk_from_sig(address, message, signature);
  return derived && ct_equal(*derived, public_key);
}

}  // namespace sgxp2p::crypto
