#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace sgxp2p::crypto {

namespace {

// GF(2^8) arithmetic modulo x^8 + x^4 + x^3 + x + 1.
inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

// The S-box is derived algorithmically (multiplicative inverse + affine map,
// FIPS 197 §5.1.1) rather than transcribed — no 256-entry table to mistype.
struct SboxTables {
  std::uint8_t sbox[256];

  SboxTables() {
    // Build inverses via gf_mul brute force (one-time cost).
    std::uint8_t inv[256] = {};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gf_mul(static_cast<std::uint8_t>(a),
                   static_cast<std::uint8_t>(b)) == 1) {
          inv[a] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    for (int x = 0; x < 256; ++x) {
      std::uint8_t b = inv[x];
      std::uint8_t s = 0;
      for (int i = 0; i < 8; ++i) {
        std::uint8_t bit =
            static_cast<std::uint8_t>(((b >> i) ^ (b >> ((i + 4) % 8)) ^
                                       (b >> ((i + 5) % 8)) ^
                                       (b >> ((i + 6) % 8)) ^
                                       (b >> ((i + 7) % 8)) ^ (0x63 >> i)) &
                                      1);
        s |= static_cast<std::uint8_t>(bit << i);
      }
      sbox[x] = s;
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

inline std::uint32_t sub_word(std::uint32_t w) {
  const auto& sb = tables().sbox;
  return (static_cast<std::uint32_t>(sb[(w >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(sb[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(sb[(w >> 8) & 0xff]) << 8) |
         static_cast<std::uint32_t>(sb[w & 0xff]);
}

inline std::uint32_t rot_word(std::uint32_t w) {
  return (w << 8) | (w >> 24);
}

}  // namespace

Aes::Aes(ByteView key) {
  const std::size_t nk = key.size() / 4;
  if (key.size() != 16 && key.size() != 32) {
    throw std::invalid_argument("Aes: key must be 16 or 32 bytes");
  }
  rounds_ = key.size() == 16 ? 10 : 14;
  const std::size_t total_words = 4 * (rounds_ + 1);

  for (std::size_t i = 0; i < nk; ++i) {
    round_keys_[i] = load_be32(key.data() + 4 * i);
  }
  std::uint8_t rcon = 0x01;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^
             (static_cast<std::uint32_t>(rcon) << 24);
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes::encrypt_block(const std::uint8_t in[kAesBlockSize],
                        std::uint8_t out[kAesBlockSize]) const {
  const auto& sb = tables().sbox;
  // State in FIPS order: s[4*c + r] = state[r][c]; input fills columns.
  std::uint8_t s[16];
  std::memcpy(s, in, 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      std::uint32_t w = round_keys_[4 * round + c];
      s[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
      s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
      s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
      s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
  };

  auto sub_bytes = [&] {
    for (auto& b : s) b = sb[b];
  };

  auto shift_rows = [&] {
    std::uint8_t t[16];
    std::memcpy(t, s, 16);
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        s[4 * c + r] = t[4 * ((c + r) % 4) + r];
      }
    }
  };

  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + 4 * c;
      std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
      col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
      col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
      col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(rounds_);
  std::memcpy(out, s, 16);
}

void aes_ctr_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                   std::uint8_t* data, std::size_t len) {
  if (nonce.size() != 12) {
    throw std::invalid_argument("aes_ctr_crypt: nonce must be 12 bytes");
  }
  Aes aes(key);
  std::uint8_t block[kAesBlockSize];
  std::uint8_t keystream[kAesBlockSize];
  std::memcpy(block, nonce.data(), 12);

  std::size_t offset = 0;
  while (offset < len) {
    store_be32(block + 12, counter++);
    aes.encrypt_block(block, keystream);
    std::size_t take = std::min<std::size_t>(kAesBlockSize, len - offset);
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= keystream[i];
    offset += take;
  }
}

Bytes aes_ctr_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                    ByteView data) {
  Bytes out(data.begin(), data.end());
  aes_ctr_crypt(key, nonce, counter, out.data(), out.size());
  return out;
}

}  // namespace sgxp2p::crypto
