// Winternitz one-time signatures (WOTS) over SHA-256, w = 16.
//
// Digital signatures appear in this repository only in the *baseline*
// reliable-broadcast protocol RBsig (Algorithm 4 / Appendix B), which the
// paper contrasts with ERB: ERB's blinded channel replaces signatures
// entirely. The paper's baseline would use ECDSA from a PKI; we substitute
// hash-based signatures — equally unforgeable under SHA-256, implementable
// from scratch without bignum pitfalls, and their cost profile (large
// signatures, cheap-ish verification) only sharpens the contrast the paper
// draws in Appendix B. Combined with a Merkle tree (crypto/merkle.hpp) for
// many-time use.
//
// Parameters: message digest 32 bytes → 64 base-16 chunks + 3 checksum
// chunks = 67 chains of length 16. Signature size = 67·32 = 2144 bytes.
#pragma once

#include <array>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kWotsChains = 67;
inline constexpr std::size_t kWotsChainLen = 16;  // w
inline constexpr std::size_t kWotsSigSize = kWotsChains * kSha256DigestSize;

struct WotsKeyPair {
  Bytes secret_seed;  // 32 bytes; chains derived via HMAC(seed, chain index)
  Bytes public_key;   // H(pk_0 ‖ … ‖ pk_66), 32 bytes
};

/// Derives a key pair from a 32-byte seed. Deterministic: the same seed and
/// address yield the same pair (the Merkle layer uses the address to derive
/// one pair per leaf).
WotsKeyPair wots_keygen(ByteView seed, std::uint64_t address);

/// Signs a message (hashed internally). One-time: signing two different
/// messages with the same key leaks enough chain values to forge.
Bytes wots_sign(const WotsKeyPair& kp, std::uint64_t address, ByteView message);

/// Recomputes the public key implied by (message, signature). The caller
/// compares it with the expected public key (directly, or via a Merkle leaf).
std::optional<Bytes> wots_pk_from_sig(std::uint64_t address, ByteView message,
                                      ByteView signature);

/// Full verification against a known public key.
bool wots_verify(ByteView public_key, std::uint64_t address, ByteView message,
                 ByteView signature);

}  // namespace sgxp2p::crypto
