#include "crypto/chacha20.hpp"

#include <cstring>
#include <stdexcept>

namespace sgxp2p::crypto {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}
}  // namespace

ChaCha20::ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter) {
  if (key.size() != kChaChaKeySize) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kChaChaNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::next_block() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    // Diagonal rounds.
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(block_.data() + 4 * i, x[i] + state_[i]);
  }
  state_[12] += 1;  // block counter
  block_pos_ = 0;
}

void ChaCha20::crypt(std::uint8_t* data, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (block_pos_ == 64) next_block();
    data[i] ^= block_[block_pos_++];
  }
}

Bytes ChaCha20::keystream(std::size_t len) {
  Bytes out(len, 0);
  crypt(out.data(), out.size());
  return out;
}

Bytes chacha20_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                     ByteView data) {
  Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, counter);
  cipher.crypt(out);
  return out;
}

}  // namespace sgxp2p::crypto
