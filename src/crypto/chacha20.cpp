#include "crypto/chacha20.hpp"

#include <cstring>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace sgxp2p::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

/// One 64-byte block for `state` with its current counter; does NOT advance
/// the counter (callers batch the advance).
void scalar_block(const std::array<std::uint32_t, 16>& state,
                  std::uint8_t* out) {
  std::array<std::uint32_t, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    // Diagonal rounds.
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out + 4 * i, x[i] + state[i]);
  }
}

void scalar_blocks(std::array<std::uint32_t, 16>& state, std::uint8_t* out,
                   std::size_t nblocks) {
  for (std::size_t b = 0; b < nblocks; ++b) {
    scalar_block(state, out + b * kChaChaBlockSize);
    state[12] += 1;  // block counter, wraps mod 2^32 per the RFC
  }
}

#if defined(__SSE2__) || defined(__AVX2__)

inline __m128i rotl128(__m128i v, int n) {
  return _mm_or_si128(_mm_slli_epi32(v, n), _mm_srli_epi32(v, 32 - n));
}

#define SGXP2P_QR128(a, b, c, d)          \
  a = _mm_add_epi32(a, b);                \
  d = rotl128(_mm_xor_si128(d, a), 16);   \
  c = _mm_add_epi32(c, d);                \
  b = rotl128(_mm_xor_si128(b, c), 12);   \
  a = _mm_add_epi32(a, b);                \
  d = rotl128(_mm_xor_si128(d, a), 8);    \
  c = _mm_add_epi32(c, d);                \
  b = rotl128(_mm_xor_si128(b, c), 7)

/// 4 blocks in vertical form: lane b of vector j is word j of block b.
void sse2_blocks4(std::array<std::uint32_t, 16>& state, std::uint8_t* out) {
  __m128i v[16];
  for (int j = 0; j < 16; ++j) {
    v[j] = _mm_set1_epi32(static_cast<int>(state[j]));
  }
  v[12] = _mm_add_epi32(v[12], _mm_set_epi32(3, 2, 1, 0));
  __m128i x[16];
  for (int j = 0; j < 16; ++j) x[j] = v[j];
  for (int round = 0; round < 10; ++round) {
    SGXP2P_QR128(x[0], x[4], x[8], x[12]);
    SGXP2P_QR128(x[1], x[5], x[9], x[13]);
    SGXP2P_QR128(x[2], x[6], x[10], x[14]);
    SGXP2P_QR128(x[3], x[7], x[11], x[15]);
    SGXP2P_QR128(x[0], x[5], x[10], x[15]);
    SGXP2P_QR128(x[1], x[6], x[11], x[12]);
    SGXP2P_QR128(x[2], x[7], x[8], x[13]);
    SGXP2P_QR128(x[3], x[4], x[9], x[14]);
  }
  for (int j = 0; j < 16; ++j) x[j] = _mm_add_epi32(x[j], v[j]);
  // Transpose 4×4 word groups so each block's 64 bytes land contiguously.
  for (int j = 0; j < 16; j += 4) {
    __m128i t0 = _mm_unpacklo_epi32(x[j + 0], x[j + 1]);
    __m128i t1 = _mm_unpackhi_epi32(x[j + 0], x[j + 1]);
    __m128i t2 = _mm_unpacklo_epi32(x[j + 2], x[j + 3]);
    __m128i t3 = _mm_unpackhi_epi32(x[j + 2], x[j + 3]);
    __m128i r0 = _mm_unpacklo_epi64(t0, t2);  // words j..j+3 of block 0
    __m128i r1 = _mm_unpackhi_epi64(t0, t2);
    __m128i r2 = _mm_unpacklo_epi64(t1, t3);
    __m128i r3 = _mm_unpackhi_epi64(t1, t3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 0 * 64 + 4 * j), r0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 1 * 64 + 4 * j), r1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * 64 + 4 * j), r2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 3 * 64 + 4 * j), r3);
  }
  state[12] += 4;
}

#endif  // __SSE2__ || __AVX2__

#if defined(__AVX2__)

inline __m256i rotl256_16(__m256i v) {
  const __m256i shuf = _mm256_set_epi8(
      13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
      13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  return _mm256_shuffle_epi8(v, shuf);
}
inline __m256i rotl256_8(__m256i v) {
  const __m256i shuf = _mm256_set_epi8(
      14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
      14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  return _mm256_shuffle_epi8(v, shuf);
}
inline __m256i rotl256(__m256i v, int n) {
  return _mm256_or_si256(_mm256_slli_epi32(v, n), _mm256_srli_epi32(v, 32 - n));
}

#define SGXP2P_QR256(a, b, c, d)            \
  a = _mm256_add_epi32(a, b);               \
  d = rotl256_16(_mm256_xor_si256(d, a));   \
  c = _mm256_add_epi32(c, d);               \
  b = rotl256(_mm256_xor_si256(b, c), 12);  \
  a = _mm256_add_epi32(a, b);               \
  d = rotl256_8(_mm256_xor_si256(d, a));    \
  c = _mm256_add_epi32(c, d);               \
  b = rotl256(_mm256_xor_si256(b, c), 7)

/// 8 blocks in vertical form: lane b of vector j is word j of block b.
void avx2_blocks8(std::array<std::uint32_t, 16>& state, std::uint8_t* out) {
  __m256i v[16];
  for (int j = 0; j < 16; ++j) {
    v[j] = _mm256_set1_epi32(static_cast<int>(state[j]));
  }
  v[12] = _mm256_add_epi32(v[12], _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0));
  __m256i x[16];
  for (int j = 0; j < 16; ++j) x[j] = v[j];
  for (int round = 0; round < 10; ++round) {
    SGXP2P_QR256(x[0], x[4], x[8], x[12]);
    SGXP2P_QR256(x[1], x[5], x[9], x[13]);
    SGXP2P_QR256(x[2], x[6], x[10], x[14]);
    SGXP2P_QR256(x[3], x[7], x[11], x[15]);
    SGXP2P_QR256(x[0], x[5], x[10], x[15]);
    SGXP2P_QR256(x[1], x[6], x[11], x[12]);
    SGXP2P_QR256(x[2], x[7], x[8], x[13]);
    SGXP2P_QR256(x[3], x[4], x[9], x[14]);
  }
  for (int j = 0; j < 16; ++j) x[j] = _mm256_add_epi32(x[j], v[j]);
  // Transpose two 8×8 word groups; row b of a group is words j..j+7 of
  // block b, stored at its contiguous offset within the block.
  for (int j = 0; j < 16; j += 8) {
    __m256i t0 = _mm256_unpacklo_epi32(x[j + 0], x[j + 1]);
    __m256i t1 = _mm256_unpackhi_epi32(x[j + 0], x[j + 1]);
    __m256i t2 = _mm256_unpacklo_epi32(x[j + 2], x[j + 3]);
    __m256i t3 = _mm256_unpackhi_epi32(x[j + 2], x[j + 3]);
    __m256i t4 = _mm256_unpacklo_epi32(x[j + 4], x[j + 5]);
    __m256i t5 = _mm256_unpackhi_epi32(x[j + 4], x[j + 5]);
    __m256i t6 = _mm256_unpacklo_epi32(x[j + 6], x[j + 7]);
    __m256i t7 = _mm256_unpackhi_epi32(x[j + 6], x[j + 7]);
    __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
    __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
    __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
    __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
    __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
    __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
    auto store = [&](int block, __m256i row) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + block * 64 + 4 * j), row);
    };
    store(0, _mm256_permute2x128_si256(u0, u4, 0x20));
    store(1, _mm256_permute2x128_si256(u1, u5, 0x20));
    store(2, _mm256_permute2x128_si256(u2, u6, 0x20));
    store(3, _mm256_permute2x128_si256(u3, u7, 0x20));
    store(4, _mm256_permute2x128_si256(u0, u4, 0x31));
    store(5, _mm256_permute2x128_si256(u1, u5, 0x31));
    store(6, _mm256_permute2x128_si256(u2, u6, 0x31));
    store(7, _mm256_permute2x128_si256(u3, u7, 0x31));
  }
  state[12] += 8;
}

#endif  // __AVX2__

}  // namespace

bool& chacha20_force_scalar() {
  static bool force = false;
  return force;
}

const char* chacha20_backend() {
#if defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__)
  return "sse2";
#else
  return "scalar";
#endif
}

namespace detail {

void chacha20_blocks(std::array<std::uint32_t, 16>& state, std::uint8_t* out,
                     std::size_t nblocks) {
  if (chacha20_force_scalar()) {
    scalar_blocks(state, out, nblocks);
    return;
  }
#if defined(__AVX2__)
  while (nblocks >= 8) {
    avx2_blocks8(state, out);
    out += 8 * kChaChaBlockSize;
    nblocks -= 8;
  }
#endif
#if defined(__SSE2__) || defined(__AVX2__)
  while (nblocks >= 4) {
    sse2_blocks4(state, out);
    out += 4 * kChaChaBlockSize;
    nblocks -= 4;
  }
#endif
  scalar_blocks(state, out, nblocks);
}

}  // namespace detail

ChaCha20::ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter) {
  if (key.size() != kChaChaKeySize) {
    throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  }
  if (nonce.size() != kChaChaNonceSize) {
    throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  }
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill(std::size_t want) {
  std::size_t nblocks = want < 1 ? 1 : want;
  if (nblocks > kChaChaBatchBlocks) nblocks = kChaChaBatchBlocks;
  detail::chacha20_blocks(state_, block_.data(), nblocks);
  block_pos_ = 0;
  block_len_ = nblocks * kChaChaBlockSize;
}

void ChaCha20::crypt(std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    if (block_pos_ == block_len_) {
      refill((len - done + kChaChaBlockSize - 1) / kChaChaBlockSize);
    }
    std::size_t take = std::min(len - done, block_len_ - block_pos_);
    const std::uint8_t* ks = block_.data() + block_pos_;
    std::uint8_t* p = data + done;
    std::size_t i = 0;
    // Word-wide XOR; memcpy keeps it alignment-safe and vectorizable.
    for (; i + 8 <= take; i += 8) {
      std::uint64_t d, k;
      std::memcpy(&d, p + i, 8);
      std::memcpy(&k, ks + i, 8);
      d ^= k;
      std::memcpy(p + i, &d, 8);
    }
    for (; i < take; ++i) p[i] ^= ks[i];
    block_pos_ += take;
    done += take;
  }
}

Bytes ChaCha20::keystream(std::size_t len) {
  Bytes out(len, 0);
  crypt(out.data(), out.size());
  return out;
}

Bytes chacha20_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                     ByteView data) {
  Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, counter);
  cipher.crypt(out);
  return out;
}

}  // namespace sgxp2p::crypto
