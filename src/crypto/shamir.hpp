// Shamir secret sharing over GF(2^8).
//
// Supports the Appendix H "Shared Key Generation" application: an ERNG
// output used as a group key can be split so that any k of n members
// reconstruct it while k−1 learn nothing — the threshold flavor of the
// distributed key generation the paper cites (Gennaro et al. [55, 56]).
// Each byte of the secret is shared independently with a random degree-k−1
// polynomial; share i is the evaluation at x = i (1-based, so x = 0 — the
// secret — is never a share).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"

namespace sgxp2p::crypto {

struct Share {
  std::uint8_t x = 0;  // evaluation point, 1..255
  Bytes y;             // one byte per secret byte
};

/// Splits `secret` into n shares with reconstruction threshold k
/// (2 ≤ k ≤ n ≤ 255). Randomness from `drbg` (enclave randomness in app
/// use). Throws std::invalid_argument on bad parameters.
std::vector<Share> shamir_split(ByteView secret, std::uint8_t n,
                                std::uint8_t k, Drbg& drbg);

/// Reconstructs the secret from ≥ k shares (only the first k distinct-x
/// shares are used). Returns nullopt when shares are malformed
/// (inconsistent lengths, duplicate or zero x).
std::optional<Bytes> shamir_reconstruct(const std::vector<Share>& shares,
                                        std::uint8_t k);

}  // namespace sgxp2p::crypto
