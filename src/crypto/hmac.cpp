#include "crypto/hmac.hpp"

#include <cstring>
#include <stdexcept>

namespace sgxp2p::crypto {

HmacKey::HmacKey(ByteView key) {
  std::array<std::uint8_t, 64> block_key{};
  if (key.size() > 64) {
    Sha256Digest d = Sha256::hash(key);
    std::memcpy(block_key.data(), d.data(), d.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> pad;
  for (int i = 0; i < 64; ++i) {
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
  }
  inner_.update(ByteView(pad.data(), pad.size()));
  for (int i = 0; i < 64; ++i) {
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }
  outer_.update(ByteView(pad.data(), pad.size()));
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

Sha256Digest HmacSha256::finalize() {
  Sha256Digest inner_digest = inner_.finalize();
  outer_.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer_.finalize();
}

Sha256Digest HmacSha256::mac(ByteView key, ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finalize();
}

Bytes HmacSha256::mac_bytes(ByteView key, ByteView data) {
  Sha256Digest d = mac(key, data);
  return Bytes(d.begin(), d.end());
}

Sha256Digest hkdf_extract(ByteView salt, ByteView ikm) {
  return HmacSha256::mac(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  // One key schedule for every T(i) block instead of one per iteration.
  HmacKey key(prk);
  Bytes out;
  out.reserve(length);
  Bytes previous;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 h(key);
    h.update(previous);
    h.update(info);
    h.update(ByteView(&counter, 1));
    Sha256Digest t = h.finalize();
    previous.assign(t.begin(), t.end());
    std::size_t take = std::min(length - out.size(), t.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  Sha256Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(ByteView(prk.data(), prk.size()), info, length);
}

}  // namespace sgxp2p::crypto
