// Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//
// This is the exact composition the paper's formal channel uses (Fig. 4:
// ct1 = SKE.Enc(key1, ·), ct2 = MAC.Auth(key2, ct1)), shown in [KL14] to
// yield a secure channel when SKE is CPA-secure and MAC is unforgeable.
// The MAC covers nonce ‖ associated data ‖ ciphertext so replaying a
// ciphertext under a different header fails authentication.
#pragma once

#include <optional>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kAeadKeySize = 64;  // 32 enc + 32 mac
inline constexpr std::size_t kAeadNonceSize = 12;
inline constexpr std::size_t kAeadTagSize = 32;
inline constexpr std::size_t kAeadOverhead = kAeadNonceSize + kAeadTagSize;

/// Seals `plaintext`. Layout: nonce ‖ ciphertext ‖ tag. `key` must be
/// kAeadKeySize bytes (first half encryption key, second half MAC key);
/// `nonce` must be unique per key (callers derive it from the message
/// sequence number).
Bytes aead_seal(ByteView key, ByteView nonce, ByteView associated_data,
                ByteView plaintext);

/// Opens a sealed buffer; returns nullopt if authentication fails (tampering,
/// truncation, wrong key, or wrong associated data).
std::optional<Bytes> aead_open(ByteView key, ByteView associated_data,
                               ByteView sealed);

}  // namespace sgxp2p::crypto
