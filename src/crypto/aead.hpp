// Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//
// This is the exact composition the paper's formal channel uses (Fig. 4:
// ct1 = SKE.Enc(key1, ·), ct2 = MAC.Auth(key2, ct1)), shown in [KL14] to
// yield a secure channel when SKE is CPA-secure and MAC is unforgeable.
// The MAC covers nonce ‖ associated data ‖ ciphertext so replaying a
// ciphertext under a different header fails authentication.
//
// Hot-path shape: AeadKey splits the 64-byte key once and precomputes the
// HMAC pad midstates; the AeadKey overloads of seal/open write into a single
// pre-sized output buffer and encrypt in place (the raw-key overloads derive
// a throwaway AeadKey and delegate, so both paths are byte-identical).
#pragma once

#include <array>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kAeadKeySize = 64;  // 32 enc + 32 mac
inline constexpr std::size_t kAeadNonceSize = 12;
inline constexpr std::size_t kAeadTagSize = 32;
inline constexpr std::size_t kAeadOverhead = kAeadNonceSize + kAeadTagSize;

/// Expanded AEAD key: the split encryption key plus the precomputed HMAC
/// key schedule. Build once per channel direction; every seal/open under it
/// then skips the per-message key expansion.
class AeadKey {
 public:
  AeadKey() = default;
  /// `key` must be kAeadKeySize bytes (first half encryption, second MAC).
  explicit AeadKey(ByteView key);

  [[nodiscard]] ByteView enc_key() const {
    return ByteView(enc_key_.data(), enc_key_.size());
  }
  [[nodiscard]] const HmacKey& mac_key() const { return mac_key_; }

 private:
  std::array<std::uint8_t, 32> enc_key_{};
  HmacKey mac_key_;
};

/// Seals `plaintext`. Layout: nonce ‖ ciphertext ‖ tag. `nonce` must be
/// unique per key (callers derive it from the message sequence number).
/// Allocates the output once and encrypts in place.
Bytes aead_seal(const AeadKey& key, ByteView nonce, ByteView associated_data,
                ByteView plaintext);

/// Opens a sealed buffer; returns nullopt if authentication fails (tampering,
/// truncation, wrong key, or wrong associated data).
std::optional<Bytes> aead_open(const AeadKey& key, ByteView associated_data,
                               ByteView sealed);

/// Raw-key convenience overloads: expand the key and delegate. `key` must be
/// kAeadKeySize bytes.
Bytes aead_seal(ByteView key, ByteView nonce, ByteView associated_data,
                ByteView plaintext);
std::optional<Bytes> aead_open(ByteView key, ByteView associated_data,
                               ByteView sealed);

}  // namespace sgxp2p::crypto
