#include "crypto/shamir.hpp"

#include <set>
#include <stdexcept>

namespace sgxp2p::crypto {

namespace {

// GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    std::uint8_t hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return result;
}

std::uint8_t gf_pow(std::uint8_t a, unsigned e) {
  std::uint8_t result = 1;
  while (e != 0) {
    if (e & 1) result = gf_mul(result, a);
    a = gf_mul(a, a);
    e >>= 1;
  }
  return result;
}

// a^{-1} = a^{254} in GF(2^8).
std::uint8_t gf_inv(std::uint8_t a) { return gf_pow(a, 254); }

}  // namespace

std::vector<Share> shamir_split(ByteView secret, std::uint8_t n,
                                std::uint8_t k, Drbg& drbg) {
  if (k < 2 || k > n) {
    throw std::invalid_argument("shamir_split: need 2 <= k <= n");
  }
  // Per secret byte: coefficients c1..c_{k-1} random, c0 = secret byte.
  std::vector<Share> shares(n);
  for (std::uint8_t i = 0; i < n; ++i) {
    shares[i].x = static_cast<std::uint8_t>(i + 1);
    shares[i].y.resize(secret.size());
  }
  Bytes coeffs(static_cast<std::size_t>(k) - 1);
  for (std::size_t byte = 0; byte < secret.size(); ++byte) {
    drbg.generate(coeffs.data(), coeffs.size());
    for (std::uint8_t i = 0; i < n; ++i) {
      std::uint8_t x = shares[i].x;
      // Horner: p(x) = ((c_{k-1}·x + c_{k-2})·x + …)·x + secret[byte].
      std::uint8_t acc = 0;
      for (std::size_t c = coeffs.size(); c-- > 0;) {
        acc = static_cast<std::uint8_t>(gf_mul(acc, x) ^ coeffs[c]);
      }
      acc = static_cast<std::uint8_t>(gf_mul(acc, x) ^ secret[byte]);
      shares[i].y[byte] = acc;
    }
  }
  return shares;
}

std::optional<Bytes> shamir_reconstruct(const std::vector<Share>& shares,
                                        std::uint8_t k) {
  if (k < 2 || shares.size() < k) return std::nullopt;
  // Pick the first k distinct evaluation points.
  std::vector<const Share*> used;
  std::set<std::uint8_t> xs;
  for (const Share& s : shares) {
    if (s.x == 0 || xs.contains(s.x)) continue;
    xs.insert(s.x);
    used.push_back(&s);
    if (used.size() == k) break;
  }
  if (used.size() < k) return std::nullopt;
  const std::size_t len = used.front()->y.size();
  for (const Share* s : used) {
    if (s->y.size() != len) return std::nullopt;
  }

  // Lagrange interpolation at x = 0: secret = Σ y_i · Π_{j≠i} x_j/(x_i⊕x_j).
  std::vector<std::uint8_t> weights(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::uint8_t num = 1, den = 1;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      num = gf_mul(num, used[j]->x);
      den = gf_mul(den, static_cast<std::uint8_t>(used[i]->x ^ used[j]->x));
    }
    weights[i] = gf_mul(num, gf_inv(den));
  }

  Bytes secret(len, 0);
  for (std::size_t byte = 0; byte < len; ++byte) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < k; ++i) {
      acc ^= gf_mul(weights[i], used[i]->y[byte]);
    }
    secret[byte] = acc;
  }
  return secret;
}

}  // namespace sgxp2p::crypto
