// SHA-256 (FIPS 180-4), implemented from the specification.
//
// Used everywhere a hash is needed: message digests in ACKs (the paper's
// H(val)), enclave measurements, HMAC, HKDF, the WOTS/Merkle signature
// scheme, and the DRBG reseed path. Streaming interface plus a one-shot
// helper.
//
// Hot-path shape: the compression function dispatches at runtime to the
// x86 SHA extensions (SHA-NI) when the CPU has them, falling back to the
// portable scalar rounds. Both produce identical digests; HMAC is the
// dominant cost of every sealed channel message, so this is where the
// channel's MB/s ceiling lives.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Testing/benchmark hook: while true, compression bypasses the SHA-NI
/// kernel and runs the portable scalar rounds. Output is identical either
/// way (asserted by the equality property tests).
bool& sha256_force_scalar();

/// "sha-ni" when this machine takes the accelerated path, else "scalar".
const char* sha256_backend();

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalizes and returns the digest. The object must be reset() before
  /// reuse.
  Sha256Digest finalize();

  /// One-shot convenience.
  static Sha256Digest hash(ByteView data);
  /// One-shot returning a Bytes (for APIs that traffic in Bytes).
  static Bytes hash_bytes(ByteView data);

 private:
  void process_blocks(const std::uint8_t* data, std::size_t nblocks);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
};

}  // namespace sgxp2p::crypto
