#include "crypto/drbg.hpp"

#include <cstring>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace sgxp2p::crypto {

Drbg::Drbg(ByteView seed) : pool_pos_(pool_.size()) {
  Sha256Digest d = Sha256::hash(seed);
  std::memcpy(key_.data(), d.data(), key_.size());
}

void Drbg::refill() {
  // Nonce = 96-bit little-endian request counter; each refill uses a fresh
  // nonce so (key, nonce) pairs never repeat even across reseeds.
  std::array<std::uint8_t, kChaChaNonceSize> nonce{};
  store_le64(nonce.data(), counter_++);
  ChaCha20 cipher(ByteView(key_.data(), key_.size()),
                  ByteView(nonce.data(), nonce.size()));
  // First 32 bytes of keystream become the next key (fast key erasure);
  // the rest is the output pool.
  std::array<std::uint8_t, 32 + sizeof(pool_)> stream{};
  cipher.crypt(stream.data(), stream.size());
  std::memcpy(key_.data(), stream.data(), 32);
  std::memcpy(pool_.data(), stream.data() + 32, pool_.size());
  pool_pos_ = 0;
}

void Drbg::generate(std::uint8_t* out, std::size_t len) {
  std::size_t produced = 0;
  while (produced < len) {
    if (pool_pos_ == pool_.size()) refill();
    std::size_t take = std::min(len - produced, pool_.size() - pool_pos_);
    std::memcpy(out + produced, pool_.data() + pool_pos_, take);
    pool_pos_ += take;
    produced += take;
  }
}

Bytes Drbg::generate(std::size_t len) {
  Bytes out(len, 0);
  generate(out.data(), out.size());
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t buf[8];
  generate(buf, sizeof buf);
  return load_le64(buf);
}

std::uint64_t Drbg::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

void Drbg::reseed(ByteView entropy) {
  HmacSha256 mix(ByteView(key_.data(), key_.size()));
  mix.update(entropy);
  Sha256Digest d = mix.finalize();
  std::memcpy(key_.data(), d.data(), key_.size());
  pool_pos_ = pool_.size();  // discard buffered output from the old key
}

}  // namespace sgxp2p::crypto
