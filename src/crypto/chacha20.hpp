// ChaCha20 stream cipher (RFC 8439 / RFC 7539 variant: 96-bit nonce,
// 32-bit block counter).
//
// This is the SKE.Enc of the blinded channel (Fig. 4) — the paper's
// prototype used AES from the SGX SDK's libcrypto; ChaCha20 is an equivalent
// IND-CPA stream cipher that is straightforward to implement correctly in
// portable C++ and is combined with HMAC-SHA256 in encrypt-then-MAC form by
// crypto/aead.hpp. It also powers the deterministic random bit generator
// (crypto/drbg.hpp) that models SGX's RDRAND.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

class ChaCha20 {
 public:
  /// Key must be 32 bytes, nonce 12 bytes; counter is the initial block
  /// counter (RFC 8439 uses 1 for AEAD payloads, 0 for keystream tests).
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void crypt(std::uint8_t* data, std::size_t len);
  void crypt(Bytes& data) { crypt(data.data(), data.size()); }

  /// Produces `len` raw keystream bytes.
  Bytes keystream(std::size_t len);

 private:
  void next_block();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // forces generation on first use
};

/// One-shot convenience: returns ciphertext (or plaintext) of `data`.
Bytes chacha20_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                     ByteView data);

}  // namespace sgxp2p::crypto
