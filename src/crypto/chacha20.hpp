// ChaCha20 stream cipher (RFC 8439 / RFC 7539 variant: 96-bit nonce,
// 32-bit block counter).
//
// This is the SKE.Enc of the blinded channel (Fig. 4) — the paper's
// prototype used AES from the SGX SDK's libcrypto; ChaCha20 is an equivalent
// IND-CPA stream cipher that is straightforward to implement correctly in
// portable C++ and is combined with HMAC-SHA256 in encrypt-then-MAC form by
// crypto/aead.hpp. It also powers the deterministic random bit generator
// (crypto/drbg.hpp) that models SGX's RDRAND.
//
// Hot-path shape: the keystream is produced in batches of up to
// kChaChaBatchBlocks blocks per refill. On x86 the batch kernel is selected
// at compile time — 8 blocks per step with AVX2, 4 with SSE2 — with a
// portable scalar kernel as the fallback (and the remainder path). All
// kernels produce byte-identical keystreams: a batch is simply the
// concatenation of consecutive single-block outputs.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;
inline constexpr std::size_t kChaChaBlockSize = 64;
inline constexpr std::size_t kChaChaBatchBlocks = 8;

/// Testing/benchmark hook: while true, keystream generation bypasses the
/// SIMD batch kernels and runs one scalar block at a time. The output is
/// identical either way (asserted by the scalar-vs-SIMD property tests).
bool& chacha20_force_scalar();

/// True when this binary carries a SIMD batch kernel (compile-time dispatch).
const char* chacha20_backend();

namespace detail {
/// Writes `nblocks` consecutive 64-byte keystream blocks for `state` into
/// `out` and advances the block counter state[12] by nblocks (mod 2^32, the
/// RFC's counter width). Dispatches to the widest compiled kernel.
void chacha20_blocks(std::array<std::uint32_t, 16>& state, std::uint8_t* out,
                     std::size_t nblocks);
}  // namespace detail

class ChaCha20 {
 public:
  /// Key must be 32 bytes, nonce 12 bytes; counter is the initial block
  /// counter (RFC 8439 uses 1 for AEAD payloads, 0 for keystream tests).
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void crypt(std::uint8_t* data, std::size_t len);
  void crypt(Bytes& data) { crypt(data.data(), data.size()); }

  /// Produces `len` raw keystream bytes.
  Bytes keystream(std::size_t len);

 private:
  /// Refills the keystream buffer with up to `want` blocks (≥ 1, clamped to
  /// the batch size), sized to the caller's remaining demand so short
  /// messages never pay for a full batch.
  void refill(std::size_t want);

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kChaChaBatchBlocks * kChaChaBlockSize> block_;
  std::size_t block_pos_ = 0;  // consumed bytes of block_
  std::size_t block_len_ = 0;  // valid bytes in block_ (0 → refill)
};

/// One-shot convenience: returns ciphertext (or plaintext) of `data`.
Bytes chacha20_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                     ByteView data);

}  // namespace sgxp2p::crypto
