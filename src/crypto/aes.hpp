// AES-128/256 block cipher + CTR mode (FIPS 197 / SP 800-38A).
//
// The paper's prototype encrypted channel traffic with AES from the SGX
// SDK's libcrypto; the default channel here uses ChaCha20 (constant-time in
// portable C++), but AES-CTR is provided as the drop-in alternative SKE so
// the composition of Fig. 4 can be instantiated exactly as the authors had
// it. Table-based implementation — fine for a simulator, not hardened
// against cache-timing (real deployments use AES-NI).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

/// Key-expanded AES context. Supports 128- and 256-bit keys.
class Aes {
 public:
  explicit Aes(ByteView key);  // key.size() ∈ {16, 32}

  /// Encrypts one 16-byte block (ECB primitive; used by CTR below).
  void encrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;

 private:
  std::array<std::uint32_t, 60> round_keys_{};
  int rounds_ = 0;
};

/// CTR keystream: XORs data with AES(counter_block) blocks. `nonce` is 12
/// bytes; the low 4 bytes of the counter block are a big-endian block index
/// starting at `counter` (the NIST/RFC 3686 layout). Encrypt == decrypt.
void aes_ctr_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                   std::uint8_t* data, std::size_t len);
Bytes aes_ctr_crypt(ByteView key, ByteView nonce, std::uint32_t counter,
                    ByteView data);

}  // namespace sgxp2p::crypto
