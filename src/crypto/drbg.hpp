// ChaCha20-based deterministic random bit generator.
//
// Models SGX's unbiased hardware randomness (feature F2, `sgx_read_rand` /
// RDRAND). Each enclave owns one Drbg seeded by the simulated hardware
// entropy root (sgx/platform.hpp); the untrusted host has no code path to
// the seed or state, which is what the blind-box computation property (P3)
// and the unbiasedness argument (Theorem 5.1) rely on.
//
// Construction: a 256-bit key K drives ChaCha20 keystream output; after each
// request the generator applies fast-key-erasure (the first 32 keystream
// bytes become the next K), providing forward secrecy if state is ever
// captured.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

class Drbg {
 public:
  /// Seeds from arbitrary entropy (hashed to 32 bytes internally).
  explicit Drbg(ByteView seed);

  /// Fills `out` with random bytes.
  void generate(std::uint8_t* out, std::size_t len);
  Bytes generate(std::size_t len);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) via rejection sampling — used by ERNG's cluster
  /// sampling where modulo bias would directly bias the protocol statistics.
  std::uint64_t next_below(std::uint64_t bound);

  /// Mixes fresh entropy into the state.
  void reseed(ByteView entropy);

 private:
  void refill();

  std::array<std::uint8_t, 32> key_;
  std::uint64_t counter_ = 0;  // used as the nonce block index
  std::array<std::uint8_t, 192> pool_{};
  std::size_t pool_pos_;
};

}  // namespace sgxp2p::crypto
