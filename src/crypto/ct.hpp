// Constant-time helpers.
//
// MAC tags and attestation quotes are compared in constant time so a host
// observing the enclave cannot turn verification into a timing oracle. (The
// paper scopes SGX side channels out; we still follow standard practice.)
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace sgxp2p::crypto {

/// Returns true iff a == b, examining every byte regardless of mismatches.
inline bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace sgxp2p::crypto
