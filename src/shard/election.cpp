#include "shard/election.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sgxp2p::shard {

namespace {

/// Peak in-flight simulated deliveries one wave may put on the wire; the
/// wave count scales the 100k-node bench's memory high-water instead of
/// letting all K committees' ECHO storms coexist.
constexpr double kInFlightBudget = 1.5e6;

std::uint32_t committee_count(std::uint32_t n, std::uint32_t c) {
  return std::max<std::uint32_t>(1, n / c);
}

/// Largest committee: the last one absorbs the n mod c remainder.
std::uint32_t max_committee_size(std::uint32_t n, std::uint32_t c) {
  const std::uint32_t k = committee_count(n, c);
  return k == 1 ? n : c + (n - k * c);
}

}  // namespace

std::uint32_t auto_committee_size(std::uint32_t n) {
  std::uint32_t lg = 0;
  while ((std::uint32_t{1} << lg) < n) ++lg;  // ⌈log₂ n⌉
  return std::min(n, std::clamp<std::uint32_t>(lg + 3, 4, 32));
}

std::uint32_t num_waves(std::uint32_t n, std::uint32_t c) {
  const std::uint32_t k = committee_count(n, c);
  if (k <= 1) return 1;
  // Peak round ≈ every committee's m instances multicasting ECHOs plus the
  // matching ACKs: K · m · c² · 2 deliveries if all waves ran at once.
  const double m = (static_cast<double>(c) + 1.0) / 2.0;
  const double peak = static_cast<double>(k) * m * c * c * 2.0;
  const auto waves =
      static_cast<std::uint32_t>((peak + kInFlightBudget - 1) / kInFlightBudget);
  return std::clamp<std::uint32_t>(waves, 1, k);
}

std::uint32_t wave_stride(std::uint32_t n, std::uint32_t c) {
  // One committee's ERB phase resolves at instance round t_max + 3 and the
  // CONFIRM exchange rides the same round; +2 slack between waves.
  return (max_committee_size(n, c) - 1) / 2 + 5;
}

std::uint32_t tree_depth(std::uint32_t committees) {
  std::uint32_t depth = 1;
  std::uint32_t level_first = 0;  // index of first committee on this level
  std::uint32_t level_size = 1;
  while (level_first + level_size < committees) {
    level_first += level_size;
    level_size *= kTreeFanout;
    ++depth;
  }
  return depth;
}

std::uint32_t epoch_round_budget(std::uint32_t n, std::uint32_t c) {
  const std::uint32_t k = committee_count(n, c);
  const std::uint32_t waves = num_waves(n, c);
  const std::uint32_t t_max = (max_committee_size(n, c) - 1) / 2;
  // Last wave's ERB+CONFIRM finishes (waves−1)·stride + t_max + 3 rounds in;
  // the RECORD climb and GLOBAL descent are event-driven Δ-hops, ≤ one round
  // per two tree levels each way; the rest is settling slack.
  return (waves - 1) * wave_stride(n, c) + t_max + tree_depth(k) + 10;
}

Election Election::compute(std::uint32_t n, std::uint32_t committee_size,
                           std::uint64_t epoch, ByteView seed,
                           std::uint32_t base_round) {
  CHECK_MSG(n >= 1, "Election: need at least one node");
  Election e;
  e.n_ = n;
  e.c_ = committee_size != 0 ? std::min(committee_size, n)
                             : auto_committee_size(n);
  e.epoch_ = epoch;
  e.base_round_ = base_round;

  // Derive the permutation stream from H(tag ‖ seed ‖ epoch): the seed is
  // beacon output (enclave randomness), so a host cannot grind assignments.
  BinaryWriter w;
  w.str("sgxp2p-shard-elect");
  w.bytes(seed);
  w.u64(epoch);
  const crypto::Sha256Digest digest = crypto::Sha256::hash(w.view());
  Rng rng(load_le64(digest.data()));

  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  // Explicit Fisher–Yates (std::shuffle is implementation-defined and would
  // break cross-platform byte-identity of committed baselines).
  for (std::uint32_t i = n - 1; i >= 1; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
    std::swap(perm[i], perm[j]);
  }

  const std::uint32_t k = committee_count(n, e.c_);
  const std::uint32_t waves = num_waves(n, e.c_);
  const std::uint32_t per_wave = (k + waves - 1) / waves;
  const std::uint32_t stride = wave_stride(n, e.c_);

  e.committees_.resize(k);
  e.committee_of_.assign(n, kNoCommittee);
  std::uint32_t next = 0;
  for (std::uint32_t ci = 0; ci < k; ++ci) {
    CommitteeInfo& info = e.committees_[ci];
    const std::uint32_t take =
        ci + 1 == k ? n - next : e.c_;  // last absorbs the remainder
    info.members.assign(perm.begin() + next, perm.begin() + next + take);
    next += take;
    std::sort(info.members.begin(), info.members.end());
    info.t_c = (take - 1) / 2;
    info.m_init = info.t_c + 1;
    info.start_round = base_round + (ci / per_wave) * stride;
    info.parent = ci == 0 ? kNoCommittee : (ci - 1) / kTreeFanout;
    for (std::uint32_t child = ci * kTreeFanout + 1;
         child <= ci * kTreeFanout + kTreeFanout && child < k; ++child) {
      info.children.push_back(child);
    }
    for (NodeId member : info.members) e.committee_of_[member] = ci;
  }
  // Subtree committee counts, leaves upward.
  for (std::uint32_t ci = k; ci-- > 1;) {
    e.committees_[(ci - 1) / kTreeFanout].subtree_count +=
        e.committees_[ci].subtree_count;
  }
  return e;
}

ShardView Election::make_view(NodeId id) const {
  ShardView view;
  make_view_into(id, view);
  return view;
}

void Election::make_view_into(NodeId id, ShardView& out) const {
  const std::uint32_t ci = committee_of(id);
  CHECK_MSG(ci != kNoCommittee, "make_view: node not assigned");
  const CommitteeInfo& info = committees_[ci];
  out.epoch = epoch_;
  out.committee = ci;
  out.members = info.members;  // copy-assign: reuses out's capacity
  out.t_c = info.t_c;
  out.m_init = info.m_init;
  out.start_round = info.start_round;
  out.reps.assign(info.members.begin(), info.members.begin() + info.m_init);
  out.is_rep =
      std::find(out.reps.begin(), out.reps.end(), id) != out.reps.end();
  out.parent = info.parent;
  out.parent_reps.clear();
  if (info.parent != kNoCommittee) {
    const CommitteeInfo& p = committees_[info.parent];
    out.parent_reps.assign(p.members.begin(),
                           p.members.begin() + p.m_init);
  }
  out.children.resize(info.children.size());
  for (std::size_t i = 0; i < info.children.size(); ++i) {
    const CommitteeInfo& ch = committees_[info.children[i]];
    ShardView::Child& child = out.children[i];
    child.committee = info.children[i];
    child.subtree_count = ch.subtree_count;
    child.reps.assign(ch.members.begin(), ch.members.begin() + ch.m_init);
  }
  out.subtree_count = info.subtree_count;
  out.total_committees = committees_.size();
}

}  // namespace sgxp2p::shard
