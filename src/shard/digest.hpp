// Digest schema for the shard layer, shared by ShardNode (computing inside
// the enclave), the ShardCoordinator (recomputing for the validity oracle),
// and bench_shard (cross-engine byte-identity checks).
//
//   committee digest  = H("…-committee" ‖ epoch ‖ k ‖ per-initiator outcome)
//   subtree digest(k) = H("…-subtree" ‖ committee digest(k) ‖ child subtree
//                         digests, ascending child order)
//   global digest     = subtree digest(root)
//
// An initiator outcome is the ERB instance's decision: 0x01 + the accepted
// value (length-prefixed) or 0x00 for ⊥ — so two enclaves agree on the
// digest iff they agree on every instance, which is exactly what committee
// ERB guarantees for honest members.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace sgxp2p::shard {

inline constexpr std::size_t kShardDigestSize = crypto::kSha256DigestSize;

/// `outcomes` holds the committee's m_init initiator decisions in ascending
/// initiator order; nullopt = ⊥. The _into variant serializes through the
/// caller's scratch writer and assigns into `out`, so a node recomputing
/// its digest every epoch reuses both buffers instead of reallocating.
inline void committee_digest_into(
    std::uint64_t epoch, std::uint32_t committee,
    const std::vector<std::optional<Bytes>>& outcomes, BinaryWriter& w,
    Bytes& out) {
  w.clear();
  w.str("sgxp2p-shard-committee");
  w.u64(epoch);
  w.u32(committee);
  for (const auto& outcome : outcomes) {
    if (outcome.has_value()) {
      w.u8(1);
      w.bytes(*outcome);
    } else {
      w.u8(0);
    }
  }
  const crypto::Sha256Digest digest = crypto::Sha256::hash(w.view());
  out.assign(digest.begin(), digest.end());
}

inline Bytes committee_digest(std::uint64_t epoch, std::uint32_t committee,
                              const std::vector<std::optional<Bytes>>& outcomes) {
  BinaryWriter w;
  Bytes out;
  committee_digest_into(epoch, committee, outcomes, w, out);
  return out;
}

/// `child_digests` in ascending child-committee order (possibly empty).
inline Bytes subtree_digest(ByteView own_committee_digest,
                            const std::vector<Bytes>& child_digests) {
  BinaryWriter w;
  w.str("sgxp2p-shard-subtree");
  w.raw(own_committee_digest);
  for (const Bytes& child : child_digests) w.raw(child);
  return crypto::Sha256::hash_bytes(w.view());
}

}  // namespace sgxp2p::shard
