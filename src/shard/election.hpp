// Committee election + epoch geometry for the sharded ERB/ERNG overlay.
//
// The clique protocols cost O(n²) messages; the shard layer breaks that by
// electing K ≈ n/c committees of size c = O(log n) from the previous
// epoch's ERNG beacon output, running the full ERB machinery only inside
// each committee, and stitching committee digests through a constant-fanout
// dissemination tree (shard/shard_node.hpp).
//
// Everything here is a pure deterministic function of public inputs
// (n, c, epoch, seed): every enclave — and every verifier — recomputes the
// identical assignment, so the election itself needs no messages. Bias
// resistance follows from the seed being enclave randomness no host could
// grind (paper P1/P3); the permutation is an explicit Fisher–Yates over a
// seeded xoshiro stream, NOT std::shuffle, so assignments are byte-identical
// across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "shard/view.hpp"

namespace sgxp2p::shard {

/// Dissemination-tree fanout: committee k's parent is (k−1)/kTreeFanout.
inline constexpr std::uint32_t kTreeFanout = 4;

/// Default committee size: c(n) = clamp(⌈log₂ n⌉ + 3, 4, 32), capped at n.
/// Logarithmic committees keep per-node message cost O(c²·m/c) = O(c·m)
/// while (c−1)/2 per-committee fault budgets still absorb a global t bound.
std::uint32_t auto_committee_size(std::uint32_t n);

/// Committees start their intra-committee ERB phase in staggered waves so
/// the peak number of in-flight simulated deliveries stays bounded (one
/// wave's ECHO storm, not all K committees at once). 1 at small n.
std::uint32_t num_waves(std::uint32_t n, std::uint32_t c);

/// Rounds between consecutive wave starts (covers one committee's ERB +
/// CONFIRM phase).
std::uint32_t wave_stride(std::uint32_t n, std::uint32_t c);

/// Levels of the kTreeFanout-ary dissemination tree over K committees.
std::uint32_t tree_depth(std::uint32_t committees);

/// Worst-case rounds one epoch needs: last wave's ERB + CONFIRM phase, the
/// RECORD climb, the GLOBAL descent, and slack. The coordinator budgets
/// epochs with this and the fuzz schedule validator requires max_rounds to
/// cover it, so both agree on epoch boundaries by construction.
std::uint32_t epoch_round_budget(std::uint32_t n, std::uint32_t c);

struct CommitteeInfo {
  std::vector<NodeId> members;  // sorted ascending
  std::uint32_t t_c = 0;        // (size − 1) / 2
  std::uint32_t m_init = 0;     // initiators/reps = first t_c + 1 members
  std::uint32_t start_round = 1;
  std::uint32_t parent = kNoCommittee;
  std::vector<std::uint32_t> children;  // ascending
  std::uint64_t subtree_count = 1;

  /// Reps (= initiators): the first m_init members of the sorted roster.
  [[nodiscard]] std::vector<NodeId> reps() const {
    return {members.begin(), members.begin() + m_init};
  }
};

class Election {
 public:
  /// Computes the full epoch-`epoch` assignment for `n` nodes from the
  /// beacon `seed`. committee_size 0 → auto_committee_size(n). `base_round`
  /// is the global round the epoch starts at (wave 0's start_round).
  static Election compute(std::uint32_t n, std::uint32_t committee_size,
                          std::uint64_t epoch, ByteView seed,
                          std::uint32_t base_round);

  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] std::uint32_t committee_size() const { return c_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint32_t base_round() const { return base_round_; }
  [[nodiscard]] const std::vector<CommitteeInfo>& committees() const {
    return committees_;
  }
  [[nodiscard]] std::uint32_t committee_of(NodeId id) const {
    return committee_of_.at(id);
  }
  /// Last round of the epoch (inclusive): base_round + budget − 1.
  [[nodiscard]] std::uint32_t end_round() const {
    return base_round_ + epoch_round_budget(n_, c_) - 1;
  }

  /// The per-node cut handed to ShardNode::begin_epoch.
  [[nodiscard]] ShardView make_view(NodeId id) const;
  /// Fills `out` in place, reusing its vectors' capacity. The coordinator
  /// threads one scratch view through all n begin_epoch calls per epoch, so
  /// installing views at n=10⁵ allocates O(1) instead of O(n) vectors.
  void make_view_into(NodeId id, ShardView& out) const;

 private:
  std::uint32_t n_ = 0;
  std::uint32_t c_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint32_t base_round_ = 1;
  std::vector<CommitteeInfo> committees_;
  std::vector<std::uint32_t> committee_of_;
};

}  // namespace sgxp2p::shard
