// ShardNode — one enclave's role in the committee-sharded epoch protocol.
//
// Per epoch, driven by the deterministic election (shard/election.hpp):
//
//   1. Committee ERB: the committee's first t_c + 1 members each initiate an
//      ErbInstance carrying fresh enclave randomness; all members run the
//      full Algorithm-2 machinery over the committee-scoped roster (P4/P5/P6
//      intact, t = t_c). Resolved by instance round t_c + 3.
//   2. CONFIRM: each member hashes the m initiator outcomes into the
//      committee digest and multicasts it intra-committee. A rep may act on
//      its digest only after collecting ≥ |committee| − t_c matching
//      CONFIRMs (own included). This is the soundness gate: enclaves never
//      forge digests (the enclave-honesty model — byzantine hosts can only
//      omit/delay/replay, and corruption fails AEAD), but a byzantine host
//      CAN starve its own enclave into a legitimately divergent view (⊥
//      where the committee accepted m). Such an enclave can gather at most
//      t_c + 1 < |committee| − t_c matching confirms, so it self-gates and
//      never represents the committee.
//   3. RECORD climb: a confirmed rep holding RECORDs from every child
//      committee sends its subtree digest + committee count to the parent's
//      reps. t_c + 1 reps per committee ⇒ at least one honest-hosted rep,
//      so every edge of the dissemination tree is crossed.
//   4. GLOBAL descent: root reps compute the global digest and flood it
//      down — to each child committee's reps and intra-committee — with
//      per-node fanout bounded by c + kTreeFanout·(t_c + 1) = O(log n).
//
// Per-node message cost is O(c·m) = O(log² n) versus the clique's O(n),
// which is the sublinearity bench_shard gates on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/serde.hpp"
#include "protocol/erb_instance.hpp"
#include "protocol/peer_enclave.hpp"
#include "shard/view.hpp"

namespace sgxp2p::shard {

class ShardNode final : public protocol::PeerEnclave {
 public:
  struct Result {
    bool done = false;
    std::uint64_t epoch = 0;
    Bytes global_digest;       // the epoch's agreed 32-byte digest
    Bytes committee_digest;    // own committee's contribution
    std::uint32_t round = 0;   // global round the node adopted the digest
    SimTime decided_at = 0;
    std::size_t value_count = 0;  // own committee initiators with non-⊥
  };

  ShardNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
            sgx::EnclaveHostIface& host, protocol::PeerConfig config,
            const sgx::SimIAS& ias);

  /// Installs the node's slice of epoch `view.epoch`. Called by the harness
  /// at the epoch's base round boundary; models the enclave recomputing the
  /// deterministic election from the public beacon output (trusted
  /// bootstrap, like the testbed's setup phase). Takes a reference so the
  /// coordinator can reuse one scratch view for all n installs, and the
  /// copy-assign into view_ reuses this node's vector capacity from the
  /// previous epoch instead of reallocating.
  void begin_epoch(const ShardView& view);

  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] const ShardView& view() const { return view_; }
  [[nodiscard]] static sgx::ProgramIdentity program() {
    return {"shard-node", "1.0"};
  }

 protected:
  void on_round_begin(std::uint32_t round) override;
  void on_val(NodeId from, const protocol::Val& val) override;

 private:
  void ensure_instances();
  void perform(const protocol::ErbInstance::Sends& sends);
  void compute_committee_digest(std::uint32_t round);
  void on_confirm(NodeId from, const protocol::Val& val);
  void on_record(NodeId from, const protocol::Val& val);
  void on_global(NodeId from, const protocol::Val& val);
  /// Fires whatever the gathered state now allows: the RECORD up (confirmed
  /// rep with a full child set) or, at the root, the GLOBAL descent.
  void try_advance();
  void forward_global(const Bytes& digest);
  void adopt_global(const Bytes& digest);
  [[nodiscard]] int member_rank(NodeId id) const;
  [[nodiscard]] bool is_initiator_member(NodeId id) const;

  ShardView view_;
  bool epoch_active_ = false;
  SimTime epoch_started_at_ = 0;

  std::map<NodeId, protocol::ErbInstance> instances_;  // keyed by initiator
  bool instances_created_ = false;
  bool digest_ready_ = false;
  Bytes committee_digest_;
  std::size_t value_count_ = 0;

  protocol::RankSet confirm_ranks_;  // members whose CONFIRM matched ours
  std::map<std::uint32_t, Bytes> child_records_;  // child committee → digest
  bool record_sent_ = false;
  bool global_forwarded_ = false;

  // Digest scratch, reused across epochs: the outcome list and the hash
  // input buffer would otherwise reallocate per node per epoch — at 10⁵
  // nodes that churn dominates the epoch-boundary allocation profile.
  std::vector<std::optional<Bytes>> outcomes_scratch_;
  BinaryWriter digest_scratch_;

  Result result_;
};

}  // namespace sgxp2p::shard
