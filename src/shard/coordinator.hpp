// ShardCoordinator — drives the epoch loop over a sim::Testbed of
// ShardNodes and stitches per-committee outputs into the global verdict.
//
// Per epoch: compute the deterministic election from the chained beacon
// seed (epoch e + 1 is seeded by epoch e's agreed global digest — the
// ERNG-as-election-beacon loop the paper motivates), install per-node views
// via ShardNode::begin_epoch (trusted bootstrap: every enclave could
// recompute the same assignment from public inputs), run rounds until every
// honest node adopts the global digest or the epoch budget is spent, then
// check the end-to-end oracles:
//
//   termination — every honest live node decided within the budget;
//   agreement   — all decided honest nodes hold one identical digest;
//   validity    — that digest equals the coordinator's independent
//                 bottom-up recomputation from the committee digests the
//                 honest members themselves hold (so the dissemination tree
//                 faithfully aggregated, nothing was dropped or substituted).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/testbed.hpp"
#include "shard/election.hpp"
#include "shard/shard_node.hpp"

namespace sgxp2p::shard {

struct ShardConfig {
  std::uint32_t committee_size = 0;  // 0 → auto_committee_size(n)
  std::uint64_t epochs = 1;
  Bytes genesis_seed;  // empty → derived from the testbed seed
  /// Which nodes the oracles quantify over. Default: non-byzantine hosts.
  /// The fuzz runner narrows this to its schedule's honest set.
  std::function<bool(NodeId)> is_honest;
};

struct EpochSummary {
  std::uint64_t epoch = 0;
  std::uint32_t budget_rounds = 0;
  std::uint32_t rounds_used = 0;
  Bytes global_digest;      // the agreed digest (empty if none decided)
  std::size_t honest = 0;   // oracle population
  std::size_t decided = 0;
  bool termination = false;
  bool agreement = false;
  bool validity = false;

  [[nodiscard]] bool ok() const { return termination && agreement && validity; }
};

class ShardCoordinator {
 public:
  ShardCoordinator(sim::Testbed& bed, ShardConfig config);

  /// Testbed factory constructing ShardNodes.
  [[nodiscard]] static sim::Testbed::EnclaveFactory make_factory();

  /// Runs the next epoch to completion (early-stops once every honest node
  /// decided) and returns its summary. The testbed must be started.
  EpochSummary run_epoch();
  /// Runs all configured epochs.
  std::vector<EpochSummary> run_all();

  [[nodiscard]] const Election& election() const { return election_; }
  [[nodiscard]] const std::vector<EpochSummary>& summaries() const {
    return summaries_;
  }
  [[nodiscard]] bool all_ok() const;
  [[nodiscard]] std::uint64_t epochs_run() const { return next_epoch_; }
  /// Rounds one epoch may need at the configured n and committee size.
  [[nodiscard]] std::uint32_t epoch_budget() const;
  /// The seed the next election will use (beacon chaining state).
  [[nodiscard]] const Bytes& next_seed() const { return seed_; }

 private:
  [[nodiscard]] bool honest(NodeId id) const;
  [[nodiscard]] std::vector<NodeId> oracle_nodes() const;
  EpochSummary harvest(std::uint32_t rounds_used);

  sim::Testbed& bed_;
  ShardConfig cfg_;
  std::uint64_t next_epoch_ = 0;
  Bytes seed_;
  Election election_;
  std::vector<EpochSummary> summaries_;
  // One view filled in place per node per epoch (make_view_into): installing
  // an epoch at n=10⁵ reuses these vectors instead of building n fresh ones.
  ShardView view_scratch_;
};

}  // namespace sgxp2p::shard
