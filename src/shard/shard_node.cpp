#include "shard/shard_node.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "shard/digest.hpp"

namespace sgxp2p::shard {

using protocol::ErbInstance;
using protocol::MsgType;
using protocol::Val;

namespace {
constexpr std::size_t kRandSize = 32;  // each initiator's contribution
}

ShardNode::ShardNode(sgx::SgxPlatform& platform, sgx::CpuId cpu,
                     sgx::EnclaveHostIface& host, protocol::PeerConfig config,
                     const sgx::SimIAS& ias)
    : PeerEnclave(platform, cpu, ShardNode::program(), host, config, ias) {}

void ShardNode::begin_epoch(const ShardView& view) {
  view_ = view;  // member-wise copy-assign reuses last epoch's capacity
  epoch_active_ = true;
  epoch_started_at_ = trusted_time();
  instances_.clear();
  instances_created_ = false;
  digest_ready_ = false;
  committee_digest_.clear();
  value_count_ = 0;
  confirm_ranks_ = protocol::RankSet(view_.members.size());
  child_records_.clear();
  record_sent_ = false;
  global_forwarded_ = false;
  result_ = {};
}

int ShardNode::member_rank(NodeId id) const {
  auto it = std::lower_bound(view_.members.begin(), view_.members.end(), id);
  if (it == view_.members.end() || *it != id) return -1;
  return static_cast<int>(it - view_.members.begin());
}

bool ShardNode::is_initiator_member(NodeId id) const {
  const int rank = member_rank(id);
  return rank >= 0 && static_cast<std::uint32_t>(rank) < view_.m_init;
}

void ShardNode::ensure_instances() {
  if (instances_created_) return;
  instances_created_ = true;
  for (std::uint32_t i = 0; i < view_.m_init; ++i) {
    const NodeId initiator = view_.members[i];
    protocol::ErbConfig cfg;
    cfg.self = config().self;
    cfg.instance = InstanceId{initiator, view_.epoch};
    cfg.participants = view_.members;
    cfg.t = view_.t_c;
    cfg.start_round = view_.start_round;
    cfg.is_initiator = initiator == config().self;
    if (cfg.is_initiator) cfg.init_payload = read_rand().generate(kRandSize);
    instances_.emplace(initiator, ErbInstance(std::move(cfg)));
  }
}

void ShardNode::perform(const ErbInstance::Sends& sends) {
  // Deferred batches (the scheduled ECHO) stay causally attached to last
  // round's delivery, as in the clique protocols.
  obs::TraceRecorder::Scope causal(sends.cause);
  for (const Val& v : sends.multicasts) broadcast_val(*sends.group, v);
  for (const auto& send : sends.unicasts) send_val(send.to, send.val);
}

void ShardNode::on_round_begin(std::uint32_t round) {
  if (!epoch_active_ || round < view_.start_round) return;
  if (digest_ready_) return;
  ensure_instances();
  for (auto& [initiator, inst] : instances_) {
    perform(inst.on_round_begin(round));
    if (inst.wants_halt()) {
      halt_self();
      return;
    }
  }
  // Instance round t_c + 3: every instance has resolved (the ⊥ deadline
  // fired in the tick above at the latest) — the committee digest is final.
  if (round == view_.start_round + view_.t_c + 2) {
    compute_committee_digest(round);
  }
}

void ShardNode::compute_committee_digest(std::uint32_t round) {
  outcomes_scratch_.clear();
  outcomes_scratch_.reserve(instances_.size());
  for (const auto& [initiator, inst] : instances_) {  // ascending initiator
    if (inst.has_value()) {
      outcomes_scratch_.emplace_back(inst.value());
      ++value_count_;
    } else {
      outcomes_scratch_.emplace_back(std::nullopt);
    }
  }
  committee_digest_into(view_.epoch, view_.committee, outcomes_scratch_,
                        digest_scratch_, committee_digest_);
  digest_ready_ = true;
  instances_.clear();  // bounds per-node memory to the active wave
  obs_event("digest", obs::fnum("round", round),
            obs::fnum("committee", view_.committee),
            obs::fnum("values", static_cast<std::int64_t>(value_count_)));
  Val confirm;
  confirm.type = MsgType::kConfirm;
  confirm.initiator = view_.committee;
  confirm.seq = view_.epoch;
  confirm.round = round;
  confirm.payload = committee_digest_;
  broadcast_val(view_.members, confirm);
  confirm_ranks_.insert(static_cast<std::size_t>(member_rank(config().self)));
  try_advance();
}

void ShardNode::on_val(NodeId from, const Val& val) {
  if (!epoch_active_) return;
  switch (val.type) {
    case MsgType::kInit:
    case MsgType::kEcho:
    case MsgType::kAck: {
      if (digest_ready_ || val.seq != view_.epoch) return;
      if (!is_initiator_member(val.initiator) || member_rank(from) < 0) return;
      if (!instances_created_ && current_round() < view_.start_round) return;
      ensure_instances();
      auto it = instances_.find(val.initiator);
      if (it == instances_.end()) return;
      perform(it->second.on_val(from, val, current_round()));
      if (it->second.wants_halt()) halt_self();
      return;
    }
    case MsgType::kConfirm:
      on_confirm(from, val);
      return;
    case MsgType::kRecord:
      on_record(from, val);
      return;
    case MsgType::kGlobal:
      on_global(from, val);
      return;
    default:
      return;
  }
}

void ShardNode::on_confirm(NodeId from, const Val& val) {
  // Same committee, same epoch, same round (P5: the CONFIRM exchange is one
  // lockstep round — a replayed or delayed confirm is an omission).
  if (!digest_ready_ || val.seq != view_.epoch) return;
  if (val.initiator != view_.committee || val.round != current_round()) return;
  const int rank = member_rank(from);
  if (rank < 0) return;
  if (val.payload != committee_digest_) {
    // A legitimately divergent enclave (omission-starved member) — its view
    // never gathers the threshold, so it cannot represent the committee.
    obs_counter("confirm_mismatch").inc();
    return;
  }
  confirm_ranks_.insert(static_cast<std::size_t>(rank));
  try_advance();
}

void ShardNode::on_record(NodeId from, const Val& val) {
  if (!view_.is_rep || val.seq != view_.epoch) return;
  const ShardView::Child* child = nullptr;
  for (const auto& c : view_.children) {
    if (c.committee == val.initiator) {
      child = &c;
      break;
    }
  }
  if (child == nullptr) return;
  if (std::find(child->reps.begin(), child->reps.end(), from) ==
      child->reps.end()) {
    return;
  }
  BinaryReader r(val.payload);
  const std::uint64_t count = r.u64();
  Bytes digest = r.raw(kShardDigestSize);
  if (!r.done() || count != child->subtree_count) return;
  auto it = child_records_.find(child->committee);
  if (it != child_records_.end()) {
    // Every RECORD for a committee is confirm-gated, so conflicting digests
    // would falsify the enclave-honesty model; count, keep the first.
    if (it->second != digest) obs_counter("record_conflict").inc();
    return;
  }
  child_records_.emplace(child->committee, std::move(digest));
  try_advance();
}

void ShardNode::try_advance() {
  if (!digest_ready_ || !view_.is_rep || record_sent_) return;
  if (confirm_ranks_.size() < view_.confirm_threshold()) return;
  if (child_records_.size() < view_.children.size()) return;
  std::vector<Bytes> child_digests;
  child_digests.reserve(child_records_.size());
  for (const auto& [committee, digest] : child_records_) {  // ascending
    child_digests.push_back(digest);
  }
  Bytes sub = subtree_digest(committee_digest_, child_digests);
  record_sent_ = true;
  if (view_.is_root()) {
    adopt_global(sub);
    forward_global(sub);
    return;
  }
  BinaryWriter w;
  w.u64(view_.subtree_count);
  w.raw(sub);
  Val record;
  record.type = MsgType::kRecord;
  record.initiator = view_.committee;
  record.seq = view_.epoch;
  record.round = current_round();
  record.payload = w.take();
  obs_counter("records_sent").inc();
  for (NodeId rep : view_.parent_reps) send_val(rep, record);
}

void ShardNode::on_global(NodeId from, const Val& val) {
  if (val.seq != view_.epoch || val.payload.size() != kShardDigestSize) return;
  const bool from_parent =
      val.initiator == view_.parent &&
      std::find(view_.parent_reps.begin(), view_.parent_reps.end(), from) !=
          view_.parent_reps.end();
  const bool from_committee =
      val.initiator == view_.committee &&
      std::find(view_.reps.begin(), view_.reps.end(), from) !=
          view_.reps.end();
  if (!from_parent && !from_committee) return;
  adopt_global(val.payload);
  if (from_parent) forward_global(val.payload);
}

void ShardNode::forward_global(const Bytes& digest) {
  if (!view_.is_rep || global_forwarded_) return;
  global_forwarded_ = true;
  Val global;
  global.type = MsgType::kGlobal;
  global.initiator = view_.committee;
  global.seq = view_.epoch;
  global.round = current_round();
  global.payload = digest;
  obs_counter("global_sent").inc();
  broadcast_val(view_.members, global);
  for (const auto& child : view_.children) {
    for (NodeId rep : child.reps) send_val(rep, global);
  }
}

void ShardNode::adopt_global(const Bytes& digest) {
  if (result_.done) return;
  result_.done = true;
  result_.epoch = view_.epoch;
  result_.global_digest = digest;
  result_.committee_digest = committee_digest_;
  result_.round = current_round();
  result_.decided_at = trusted_time();
  result_.value_count = value_count_;
  obs_counter("decides").inc();
  obs::MetricsRegistry::current()
      .histogram("shard.decide_latency_ms",
                 {1000, 2000, 4000, 8000, 16000, 60000, 300000, 1200000})
      .observe(result_.decided_at - epoch_started_at_);
  obs_event("decide", obs::fnum("round", result_.round),
            obs::fnum("committee", view_.committee),
            obs::fnum("epoch", static_cast<std::int64_t>(view_.epoch)));
}

}  // namespace sgxp2p::shard
