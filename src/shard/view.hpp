// ShardView — one node's slice of an epoch's committee election.
//
// The election itself (shard/election.hpp) is a deterministic function of
// (n, committee size, epoch, beacon seed), so every enclave can recompute
// the full assignment from public inputs; the view is the per-node cut the
// harness hands to a ShardNode at epoch start: its own committee roster and
// thresholds, plus the neighboring rep sets of the dissemination tree.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace sgxp2p::shard {

/// Sentinel committee index (the root has no parent).
inline constexpr std::uint32_t kNoCommittee = 0xffffffffu;

struct ShardView {
  std::uint64_t epoch = 0;
  std::uint32_t committee = kNoCommittee;  // own committee index
  std::vector<NodeId> members;             // sorted, self included
  std::uint32_t t_c = 0;                   // per-committee fault budget
  std::uint32_t m_init = 0;                // initiators = first m_init members
  std::uint32_t start_round = 1;           // global round of instance round 1
  bool is_rep = false;
  std::vector<NodeId> reps;         // own committee's reps (first t_c + 1)
  std::uint32_t parent = kNoCommittee;
  std::vector<NodeId> parent_reps;  // empty at the root

  struct Child {
    std::uint32_t committee = kNoCommittee;
    std::uint64_t subtree_count = 0;  // committees under it, itself included
    std::vector<NodeId> reps;
  };
  std::vector<Child> children;        // ascending committee index
  std::uint64_t subtree_count = 1;    // committees in own subtree, self incl.
  std::uint64_t total_committees = 1;

  [[nodiscard]] bool is_root() const { return parent == kNoCommittee; }
  /// Matching-CONFIRM threshold gating a rep's RECORD: with ≤ t_c byzantine
  /// hosts per committee, only the unique honest digest can gather it.
  [[nodiscard]] std::uint32_t confirm_threshold() const {
    return static_cast<std::uint32_t>(members.size()) - t_c;
  }
};

}  // namespace sgxp2p::shard
