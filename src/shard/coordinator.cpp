#include "shard/coordinator.hpp"

#include <memory>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"
#include "shard/digest.hpp"

namespace sgxp2p::shard {

ShardCoordinator::ShardCoordinator(sim::Testbed& bed, ShardConfig config)
    : bed_(bed), cfg_(std::move(config)) {
  CHECK_MSG(cfg_.epochs >= 1, "ShardCoordinator: need at least one epoch");
  if (cfg_.genesis_seed.empty()) {
    BinaryWriter w;
    w.str("sgxp2p-shard-genesis");
    w.u64(bed_.config().seed);
    seed_ = crypto::Sha256::hash_bytes(w.view());
  } else {
    seed_ = cfg_.genesis_seed;
  }
}

sim::Testbed::EnclaveFactory ShardCoordinator::make_factory() {
  return [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
            protocol::PeerConfig pc,
            const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<ShardNode>(platform, id, host, pc, ias);
  };
}

std::uint32_t ShardCoordinator::epoch_budget() const {
  const std::uint32_t n = bed_.config().n;
  const std::uint32_t c = cfg_.committee_size != 0
                              ? std::min(cfg_.committee_size, n)
                              : auto_committee_size(n);
  return epoch_round_budget(n, c);
}

bool ShardCoordinator::honest(NodeId id) const {
  if (!bed_.has_enclave(id) || !bed_.network().attached(id)) return false;
  if (cfg_.is_honest) return cfg_.is_honest(id);
  return !bed_.host(id).is_byzantine();
}

std::vector<NodeId> ShardCoordinator::oracle_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < bed_.config().n; ++id) {
    if (honest(id)) out.push_back(id);
  }
  return out;
}

EpochSummary ShardCoordinator::run_epoch() {
  CHECK_MSG(next_epoch_ < cfg_.epochs, "run_epoch: all epochs consumed");
  const std::uint64_t epoch = next_epoch_++;
  const std::uint32_t base = bed_.rounds_run() + 1;
  election_ = Election::compute(bed_.config().n, cfg_.committee_size, epoch,
                                seed_, base);
  for (NodeId id = 0; id < bed_.config().n; ++id) {
    if (!bed_.has_enclave(id)) continue;
    election_.make_view_into(id, view_scratch_);
    bed_.enclave_as<ShardNode>(id).begin_epoch(view_scratch_);
  }
  const std::uint32_t budget = epoch_round_budget(bed_.config().n,
                                                  election_.committee_size());
  const std::uint32_t used = bed_.run_rounds(budget, [&] {
    for (NodeId id = 0; id < bed_.config().n; ++id) {
      if (!honest(id)) continue;
      const auto& r = bed_.enclave_as<ShardNode>(id).result();
      if (!r.done || r.epoch != epoch) return false;
    }
    return true;
  });
  EpochSummary summary = harvest(used);
  summary.budget_rounds = budget;
  bed_.registry().counter("shard.epochs").inc();
  summaries_.push_back(summary);
  return summaries_.back();
}

EpochSummary ShardCoordinator::harvest(std::uint32_t rounds_used) {
  const std::uint64_t epoch = election_.epoch();
  EpochSummary summary;
  summary.epoch = epoch;
  summary.rounds_used = rounds_used;
  const std::vector<NodeId> honest_ids = oracle_nodes();
  summary.honest = honest_ids.size();

  // Termination + agreement over the honest population.
  summary.agreement = true;
  for (NodeId id : honest_ids) {
    const auto& r = bed_.enclave_as<ShardNode>(id).result();
    if (!r.done || r.epoch != epoch) continue;
    ++summary.decided;
    if (summary.global_digest.empty()) {
      summary.global_digest = r.global_digest;
    } else if (summary.global_digest != r.global_digest) {
      summary.agreement = false;
    }
  }
  summary.termination =
      summary.decided == summary.honest && summary.honest > 0;

  // Validity: recompute the global digest bottom-up from the committee
  // digests honest members themselves hold (checking intra-committee
  // agreement on the way) and compare against the adopted digest.
  const auto& committees = election_.committees();
  std::vector<Bytes> committee_digests(committees.size());
  bool complete = true;
  for (std::size_t k = 0; k < committees.size(); ++k) {
    for (NodeId id : committees[k].members) {
      if (!honest(id)) continue;
      const auto& r = bed_.enclave_as<ShardNode>(id).result();
      if (!r.done || r.epoch != epoch) continue;
      if (committee_digests[k].empty()) {
        committee_digests[k] = r.committee_digest;
      } else if (committee_digests[k] != r.committee_digest) {
        summary.agreement = false;  // intra-committee split
      }
    }
    if (committee_digests[k].empty()) complete = false;
  }
  if (complete && !summary.global_digest.empty()) {
    std::vector<Bytes> subtree(committees.size());
    for (std::size_t k = committees.size(); k-- > 0;) {
      std::vector<Bytes> child_digests;
      child_digests.reserve(committees[k].children.size());
      for (std::uint32_t child : committees[k].children) {
        child_digests.push_back(subtree[child]);
      }
      subtree[k] = subtree_digest(committee_digests[k], child_digests);
    }
    summary.validity = subtree[0] == summary.global_digest;
  } else {
    summary.validity = false;
  }

  // Beacon chaining: next epoch is seeded by this epoch's agreed digest
  // (lowest-id decided honest node); with no decision, advance the chain
  // deterministically so the run can still make progress.
  if (!summary.global_digest.empty()) {
    seed_ = summary.global_digest;
  } else {
    BinaryWriter w;
    w.str("sgxp2p-shard-advance");
    w.bytes(seed_);
    w.u64(epoch);
    seed_ = crypto::Sha256::hash_bytes(w.view());
  }
  return summary;
}

std::vector<EpochSummary> ShardCoordinator::run_all() {
  while (next_epoch_ < cfg_.epochs) run_epoch();
  return summaries_;
}

bool ShardCoordinator::all_ok() const {
  if (summaries_.empty()) return false;
  for (const auto& s : summaries_) {
    if (!s.ok()) return false;
  }
  return true;
}

}  // namespace sgxp2p::shard
