// Failing-case shrinking — delta debugging over the schedule structure.
//
// Given a schedule whose run violates at least one oracle, shrink() searches
// for a smaller schedule that fails the SAME way (identical sorted
// violated-oracle set — not merely "still fails", which would let the search
// wander to an unrelated defect). Three phases, each a fixpoint:
//
//   actions   ddmin over the action list: remove chunks of halving size,
//             re-run, keep any candidate with an equal violation set
//   rounds    binary-then-linear reduction of max_rounds (smaller budgets
//             both speed up replay and sharpen termination findings)
//   nodes     peel the highest node id while no action references it
//
// Every candidate must pass Schedule::validate before it is run, so the
// search can never leave the sound set (e.g. drop a recover action but keep
// its stale_seal) — soundness is structural, not re-derived here.
//
// The search is bounded by max_runs executions; the best schedule found so
// far is returned when the budget runs out, so shrinking is always safe to
// call from CI with a deadline.
#pragma once

#include "fuzz/oracles.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/schedule.hpp"

namespace sgxp2p::fuzz {

struct ShrinkResult {
  Schedule schedule;   // smallest equal-failure schedule found
  RunReport report;    // its run (violations + digest)
  std::uint32_t runs = 0;  // schedule executions spent
};

/// `failing` must violate at least one oracle under `options` (CHECKed).
[[nodiscard]] ShrinkResult shrink(const Schedule& failing,
                                  const RunOptions& options = {},
                                  std::uint32_t max_runs = 256);

}  // namespace sgxp2p::fuzz
