// Schedule — the serializable unit of adversarial search.
//
// A Schedule fixes everything one fuzz execution depends on: the protocol
// target, the deployment shape (n, t, testbed seed, round budget), and a
// list of per-(node, round) fault actions. Running the same schedule twice
// therefore produces byte-identical traces, metrics, and decisions — which
// is what makes oracle violations replayable (`sgxp2p-sim
// --replay-schedule`) and shrinkable (delta debugging re-runs candidate
// subsets and compares outcomes).
//
// The on-disk form is a line-oriented text format (docs/ROBUSTNESS.md):
//
//   sgxp2p-schedule-v1
//   target erb
//   n 6
//   t 2
//   seed 42
//   rounds 8
//   action drop 2 1 * 0
//   action partition 3 2 * 2
//   expect_violation erb.agreement
//   expect_digest 9f8a…
//   end
//
// `expect_*` lines are written when a failure is emitted; replay checks
// them. Unknown lines are rejected, not skipped — a corpus file that stops
// parsing is a bug worth hearing about.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace sgxp2p::fuzz {

/// Everything a schedule can do to the deployment. The first five map to
/// adversary::MsgFaultKind and run inside the victim node's host; the rest
/// are driven by the runner at round boundaries.
enum class ActionKind : std::uint8_t {
  kDrop,
  kDelay,
  kDuplicate,
  kCorrupt,
  kReorder,
  kPartition,  // isolate `node` from everyone for `param` rounds
  kCrash,      // kill the node's enclave at the `round` boundary
  kRecover,    // relaunch it (recovery target only)
  kStaleSeal,  // its host answers the restore with its oldest sealed blob
};

[[nodiscard]] const char* action_kind_name(ActionKind kind);
[[nodiscard]] std::optional<ActionKind> action_kind_from(
    const std::string& name);

struct FaultAction {
  ActionKind kind = ActionKind::kDrop;
  NodeId node = 0;
  std::uint32_t round = 1;
  NodeId peer = kNoNode;    // message-level kinds: target peer, kNoNode = all
  std::uint64_t param = 0;  // kind-specific (ms, rounds, corrupt seed)

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// The five protocol stacks the fuzzer exercises.
enum class FuzzTarget : std::uint8_t {
  kErb,
  kErngBasic,
  kErngOpt,
  kRecovery,
  kShard,
};

[[nodiscard]] const char* target_name(FuzzTarget target);
[[nodiscard]] std::optional<FuzzTarget> target_from(const std::string& name);

struct Schedule {
  FuzzTarget target = FuzzTarget::kErb;
  std::uint32_t n = 4;  // testbed size (recovery: roster + 1 fresh joiner)
  std::uint32_t t = 0;  // byzantine bound handed to the testbed
  std::uint64_t seed = 1;
  std::uint32_t max_rounds = 8;
  std::uint32_t checkpoint_every = 2;  // recovery target only
  std::uint32_t committee_size = 0;    // shard target only; 0 = auto c(n)
  std::vector<FaultAction> actions;

  // Replay expectations, filled when a failing case is emitted.
  std::vector<std::string> expect_violations;  // sorted oracle names
  std::string expect_digest;                   // hex sha256; empty = unchecked

  /// Nodes whose faults void the honest-node guarantees: any message-level
  /// or partition action, or a crash with no later recover. (A recovered
  /// crash victim and a stale-seal host are still expected to converge —
  /// that is exactly what the recovery oracles assert.)
  [[nodiscard]] std::vector<NodeId> faulted_nodes() const;

  /// Structural soundness: fields in range, every action's node < n, the
  /// faulted set within the byzantine budget t. Runner and corpus loading
  /// both gate on this, so the shrinker (which only removes) cannot leave
  /// the sound set.
  [[nodiscard]] bool validate(std::string* error) const;

  /// Smallest round budget under which the liveness/termination oracles are
  /// fair assertions (forced-⊥ timeouts and join windows have run to
  /// completion). validate() rejects schedules below this floor — otherwise
  /// the shrinker could "minimize" a liveness failure by starving the run of
  /// rounds until any schedule at all fails the same way.
  [[nodiscard]] std::uint32_t min_rounds() const;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static std::optional<Schedule> from_text(
      const std::string& text, std::string* error);

  [[nodiscard]] bool write_file(const std::string& path) const;
  [[nodiscard]] static std::optional<Schedule> load_file(
      const std::string& path, std::string* error);
};

/// Window geometry the recovery runner derives from a schedule: W = t + 2
/// membership rounds per window, the rejoin windows for a recovering victim,
/// and the window carrying the fresh join. Shared between the runner's join
/// plan and Schedule::min_rounds so the round floor cannot drift from what
/// the run actually schedules.
struct RecoveryWindows {
  std::uint32_t W = 0;
  std::size_t w_rejoin = 0;  // first rejoin window; meaningful iff recovers
  std::size_t w_extra = 0;   // window of the fresh join
  bool has_crash = false;
  bool recovers = false;
  NodeId victim = kNoNode;
  std::uint32_t crash_round = 0;
  std::uint32_t recover_round = 0;
};

[[nodiscard]] RecoveryWindows recovery_windows(const Schedule& s);

}  // namespace sgxp2p::fuzz
