#include "fuzz/runner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "adversary/schedule_strategy.hpp"
#include "common/check.hpp"
#include "crypto/sha256.hpp"
#include "net/testbed.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"
#include "protocol/erng_opt.hpp"
#include "recovery/coordinator.hpp"
#include "recovery/recoverable_node.hpp"
#include "shard/coordinator.hpp"

namespace sgxp2p::fuzz {

namespace {

constexpr const char* kErbPayload = "fuzz erb payload";

/// The schedule's actions, split by who executes them: message-level faults
/// run inside each node's ScheduleStrategy; partitions and crashes are
/// driven by the runner's round hook; the recovery pivots parameterize the
/// RecoveryCoordinator.
struct CompiledSchedule {
  std::vector<std::vector<adversary::MsgFault>> per_node;
  std::vector<bool> stale;
  // round → [(node, rounds isolated)]
  std::map<std::uint32_t, std::vector<std::pair<NodeId, std::uint32_t>>>
      partitions;
  // round → nodes killed there (non-recovery targets only)
  std::map<std::uint32_t, std::vector<NodeId>> crashes;
  // Recovery pivots (0 = absent).
  NodeId victim = kNoNode;
  std::uint32_t crash_round = 0;
  std::uint32_t recover_round = 0;
};

adversary::MsgFaultKind msg_kind(ActionKind kind) {
  switch (kind) {
    case ActionKind::kDrop:
      return adversary::MsgFaultKind::kDrop;
    case ActionKind::kDelay:
      return adversary::MsgFaultKind::kDelay;
    case ActionKind::kDuplicate:
      return adversary::MsgFaultKind::kDuplicate;
    case ActionKind::kCorrupt:
      return adversary::MsgFaultKind::kCorrupt;
    default:
      return adversary::MsgFaultKind::kReorder;
  }
}

CompiledSchedule compile(const Schedule& s) {
  CompiledSchedule c;
  c.per_node.resize(s.n);
  c.stale.resize(s.n, false);
  for (const FaultAction& a : s.actions) {
    switch (a.kind) {
      case ActionKind::kDrop:
      case ActionKind::kDelay:
      case ActionKind::kDuplicate:
      case ActionKind::kCorrupt:
      case ActionKind::kReorder:
        c.per_node[a.node].push_back(
            {msg_kind(a.kind), a.round, a.peer, a.param});
        break;
      case ActionKind::kPartition:
        c.partitions[a.round].emplace_back(
            a.node, static_cast<std::uint32_t>(a.param));
        break;
      case ActionKind::kCrash:
        if (s.target == FuzzTarget::kRecovery) {
          c.victim = a.node;
          c.crash_round = a.round;
        } else {
          c.crashes[a.round].push_back(a.node);
        }
        break;
      case ActionKind::kRecover:
        c.recover_round = a.round;
        break;
      case ActionKind::kStaleSeal:
        c.stale[a.node] = true;
        break;
    }
  }
  return c;
}

std::vector<NodeId> honest_set(const Schedule& s) {
  std::vector<NodeId> faulted = s.faulted_nodes();
  std::vector<NodeId> honest;
  for (NodeId id = 0; id < s.n; ++id) {
    if (!std::binary_search(faulted.begin(), faulted.end(), id)) {
      honest.push_back(id);
    }
  }
  return honest;
}

/// One shared driver: builds the testbed, wires strategies + round hook,
/// runs, and leaves target-specific outcome collection to the caller.
struct RunContext {
  sim::Testbed bed;
  std::shared_ptr<adversary::ScheduleClock> clock;
  CompiledSchedule compiled;
  // Pending partition heals: round → cut pairs to release.
  std::map<std::uint32_t, std::vector<std::pair<NodeId, NodeId>>> heal_at;

  RunContext(const Schedule& s, const RunOptions& opts,
             obs::MetricsRegistry& registry)
      : bed(make_config(s, opts, registry)),
        clock(std::make_shared<adversary::ScheduleClock>()),
        compiled(compile(s)) {
    // No round is "active" during the setup handshakes.
    clock->t0 = std::numeric_limits<SimTime>::max();
  }

  static sim::TestbedConfig make_config(const Schedule& s,
                                        const RunOptions& opts,
                                        obs::MetricsRegistry& registry) {
    sim::TestbedConfig cfg;
    cfg.n = s.n;
    cfg.t = s.t;
    cfg.seed = s.seed;
    cfg.net.base_delay = milliseconds(100);
    cfg.net.max_jitter = milliseconds(100);
    cfg.registry = &registry;
    cfg.engine = opts.engine;
    // Replay files stamp expect_digest against canonical-order execution;
    // jobs comes from RunOptions (default 1) rather than the ambient
    // SGXP2P_SIM_JOBS, so a schedule is byte-stable regardless of the
    // process environment. The parallel engine's canonical-order merge
    // makes any explicit jobs > 1 equally byte-stable.
    cfg.jobs = std::max(1u, opts.jobs);
    return cfg;
  }

  [[nodiscard]] sim::Testbed::StrategyFactory strategy_factory() {
    return [this](NodeId id) -> std::unique_ptr<adversary::Strategy> {
      if (compiled.per_node[id].empty() && !compiled.stale[id]) return nullptr;
      return std::make_unique<adversary::ScheduleStrategy>(
          compiled.per_node[id], clock, compiled.stale[id]);
    };
  }

  /// Installs the partition/crash driver. Call AFTER any coordinator
  /// install() (this chains; set_round_hook replaces).
  void install_fault_hook(std::uint32_t n) {
    bed.add_round_hook([this, n](std::uint32_t round) {
      if (auto it = heal_at.find(round); it != heal_at.end()) {
        for (auto [a, b] : it->second) bed.network().unblock_link(a, b);
        heal_at.erase(it);
      }
      if (auto it = compiled.partitions.find(round);
          it != compiled.partitions.end()) {
        for (auto [node, len] : it->second) {
          for (NodeId peer = 0; peer < n; ++peer) {
            if (peer == node) continue;
            bed.network().block_link(node, peer);
            heal_at[round + len].emplace_back(node, peer);
          }
        }
      }
      if (auto it = compiled.crashes.find(round);
          it != compiled.crashes.end()) {
        for (NodeId node : it->second) {
          if (bed.has_enclave(node)) bed.kill_enclave(node);
        }
      }
    });
  }

  /// start() + clock fix-up; the strategies' round arithmetic is live after
  /// this.
  void start() {
    bed.start();
    clock->t0 = bed.start_time();
    clock->round_ms = bed.config().effective_round();
  }
};

std::string hex8(const Bytes& b) {
  return hex_encode(ByteView(b.data(), std::min<std::size_t>(8, b.size())));
}

void check_metrics_conservation(const obs::MetricsSnapshot& snap,
                                RunReport& report) {
  auto value = [&snap](const char* name) -> std::uint64_t {
    const obs::CounterSample* c = snap.find_counter(name);
    return c != nullptr ? c->value : 0;
  };
  const std::uint64_t sends = value("net.sends");
  const std::uint64_t delivered = value("net.delivered");
  const std::uint64_t bytes = value("net.bytes");
  const std::uint64_t delivered_bytes = value("net.delivered_bytes");
  if (delivered > sends) {
    report.violations.push_back(
        {oracle::kMetricsConservation,
         "net.delivered " + std::to_string(delivered) + " > net.sends " +
             std::to_string(sends)});
  }
  if (delivered_bytes > bytes) {
    report.violations.push_back(
        {oracle::kMetricsConservation,
         "net.delivered_bytes " + std::to_string(delivered_bytes) +
             " > net.bytes " + std::to_string(bytes)});
  }
}

void finalize(const Schedule& schedule, const obs::MetricsRegistry& registry,
              RunReport& report) {
  obs::MetricsSnapshot snap = registry.snapshot();
  check_metrics_conservation(snap, report);
  std::string material = snap.to_json() + "\n" + report.outcome + "\n" +
                         std::to_string(report.rounds);
  report.digest = hex_encode(crypto::Sha256::hash_bytes(
      ByteView(reinterpret_cast<const std::uint8_t*>(material.data()),
               material.size())));
  // Every coverage input (snapshot, violations, outcome, rounds) is part of
  // — or derived the same way as — the digest material, so the map inherits
  // the digest's same-seed and cross-engine byte-identity.
  report.coverage = compute_coverage(schedule, report.violated_oracles(),
                                     report.outcome, report.rounds, snap);
}

// ----- ERB ---------------------------------------------------------------

RunReport run_erb(const Schedule& s, const RunOptions& opts,
                  obs::MetricsRegistry& registry) {
  RunContext ctx(s, opts, registry);
  const Bytes payload = to_bytes(kErbPayload);
  const NodeId initiator = 0;
  ctx.bed.build(
      [&payload, initiator](NodeId id, sgx::SgxPlatform& platform,
                            net::Host& host, protocol::PeerConfig pc,
                            const sgx::SimIAS& ias)
          -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, pc, ias, initiator,
            id == initiator ? payload : Bytes{});
      },
      ctx.strategy_factory());
  ctx.install_fault_hook(s.n);
  ctx.start();

  const std::vector<NodeId> honest = honest_set(s);
  RunReport report;
  report.rounds = ctx.bed.run_rounds(s.max_rounds, [&]() {
    for (NodeId id : honest) {
      if (!ctx.bed.has_enclave(id) ||
          !ctx.bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });

  std::ostringstream outcome;
  bool have_ref = false;
  std::optional<Bytes> ref;
  const bool initiator_honest =
      std::find(honest.begin(), honest.end(), initiator) != honest.end();
  for (NodeId id = 0; id < s.n; ++id) {
    const bool is_honest =
        std::find(honest.begin(), honest.end(), id) != honest.end();
    if (!ctx.bed.has_enclave(id)) {
      outcome << id << ":dead ";
      continue;
    }
    const auto& r = ctx.bed.enclave_as<protocol::ErbNode>(id).result();
    outcome << id << (r.decided ? (r.value ? ":m=" + hex8(*r.value) : ":bot")
                                : ":undecided")
            << " ";
    if (!is_honest) continue;
    if (!r.decided) {
      report.violations.push_back(
          {oracle::kErbTermination,
           "honest node " + std::to_string(id) + " undecided after " +
               std::to_string(report.rounds) + " rounds"});
      continue;
    }
    if (!have_ref) {
      ref = r.value;
      have_ref = true;
    } else if (r.value != ref) {
      report.violations.push_back(
          {oracle::kErbAgreement,
           "honest node " + std::to_string(id) + " disagrees with the first "
           "honest decision"});
    }
    if (initiator_honest && (!r.value || *r.value != payload)) {
      report.violations.push_back(
          {oracle::kErbValidity,
           "initiator honest but node " + std::to_string(id) +
               " did not decide m"});
    }
    if (opts.canary && !r.value) {
      report.violations.push_back(
          {oracle::kCanaryNoBottom,
           "node " + std::to_string(id) + " decided ⊥"});
    }
  }
  report.outcome = outcome.str();
  finalize(s, registry, report);
  return report;
}

// ----- ERNG (basic + opt share the oracle shape) -------------------------

template <typename NodeT>
RunReport run_erng(const Schedule& s, const RunOptions& opts,
                   obs::MetricsRegistry& registry,
                   const sim::Testbed::EnclaveFactory& factory) {
  RunContext ctx(s, opts, registry);
  ctx.bed.build(factory, ctx.strategy_factory());
  ctx.install_fault_hook(s.n);
  ctx.start();

  const std::vector<NodeId> honest = honest_set(s);
  RunReport report;
  report.rounds = ctx.bed.run_rounds(s.max_rounds, [&]() {
    for (NodeId id : honest) {
      if (!ctx.bed.has_enclave(id) ||
          !ctx.bed.enclave_as<NodeT>(id).result().done) {
        return false;
      }
    }
    return true;
  });

  std::ostringstream outcome;
  bool have_ref = false;
  bool ref_bottom = false;
  Bytes ref_value;
  for (NodeId id = 0; id < s.n; ++id) {
    const bool is_honest =
        std::find(honest.begin(), honest.end(), id) != honest.end();
    if (!ctx.bed.has_enclave(id)) {
      outcome << id << ":dead ";
      continue;
    }
    const auto& r = ctx.bed.enclave_as<NodeT>(id).result();
    outcome << id
            << (r.done ? (r.is_bottom ? ":bot" : ":r=" + hex8(r.value))
                       : ":pending")
            << " ";
    if (!is_honest) continue;
    if (!r.done) {
      report.violations.push_back(
          {oracle::kErngTermination,
           "honest node " + std::to_string(id) + " has no output after " +
               std::to_string(report.rounds) + " rounds"});
      continue;
    }
    if (!have_ref) {
      ref_bottom = r.is_bottom;
      ref_value = r.value;
      have_ref = true;
    } else if (r.is_bottom != ref_bottom ||
               (!r.is_bottom && r.value != ref_value)) {
      report.violations.push_back(
          {oracle::kErngAgreement,
           "honest node " + std::to_string(id) +
               " output differs from the first honest output"});
    }
  }
  report.outcome = outcome.str();
  finalize(s, registry, report);
  return report;
}

// ----- Recovery ----------------------------------------------------------

RunReport run_recovery(const Schedule& s, const RunOptions& opts,
                       obs::MetricsRegistry& registry) {
  RunContext ctx(s, opts, registry);
  const std::uint32_t roster_n = s.n - 1;
  const NodeId extra = s.n - 1;  // joins fresh — the liveness proof
  const bool recovers = ctx.compiled.recover_round != 0;

  // Join plan, derived purely from the schedule so replays are identical.
  // recovery_windows() is the same geometry Schedule::min_rounds uses, so a
  // validated schedule always has enough rounds for the last window here.
  const RecoveryWindows rw = recovery_windows(s);
  std::vector<protocol::JoinPlanEntry> join_plan(rw.w_extra + 1);
  if (recovers) {
    join_plan[rw.w_rejoin] = {ctx.compiled.victim, NodeId{0}, true};
    join_plan[rw.w_rejoin + 1] = {ctx.compiled.victim, NodeId{2}, true};
  }
  join_plan[rw.w_extra] = {extra, NodeId{0}, false};

  std::vector<NodeId> roster0;
  for (NodeId id = 0; id < roster_n; ++id) roster0.push_back(id);
  sim::Testbed::EnclaveFactory factory =
      [roster0, join_plan](NodeId id, sgx::SgxPlatform& platform,
                           net::Host& host, protocol::PeerConfig pc,
                           const sgx::SimIAS& ias)
      -> std::unique_ptr<protocol::PeerEnclave> {
    return std::make_unique<recovery::RecoverableNode>(platform, id, host, pc,
                                                       ias, roster0, join_plan);
  };
  ctx.bed.build(factory, ctx.strategy_factory());

  recovery::RecoveryPlan plan;
  plan.victim = ctx.compiled.victim;
  plan.crash_round = ctx.compiled.crash_round;
  plan.recover_round = ctx.compiled.recover_round;
  plan.checkpoint_interval = s.checkpoint_every;
  recovery::RecoveryCoordinator coord(ctx.bed, factory, plan);
  coord.install();                 // takes the primary round hook…
  ctx.install_fault_hook(s.n);     // …and the fault driver chains after it
  ctx.start();

  const std::vector<NodeId> honest = honest_set(s);
  auto converged = [&]() {
    if (recovers && !coord.rejoin_complete()) return false;
    for (NodeId id : honest) {
      if (!ctx.bed.has_enclave(id)) return false;
      auto& node = ctx.bed.enclave_as<recovery::RecoverableNode>(id);
      const auto& roster = node.roster();
      if (!node.is_member() ||
          std::find(roster.begin(), roster.end(), extra) == roster.end()) {
        return false;
      }
    }
    return true;
  };
  RunReport report;
  report.rounds = ctx.bed.run_rounds(s.max_rounds, converged);

  std::ostringstream outcome;
  for (NodeId id = 0; id < s.n; ++id) {
    if (!ctx.bed.has_enclave(id)) {
      outcome << id << ":dead ";
      continue;
    }
    auto& node = ctx.bed.enclave_as<recovery::RecoverableNode>(id);
    outcome << id << (node.is_member() ? ":member" : ":out") << "/r"
            << node.roster().size() << " ";
  }
  outcome << "rejoin=" << (coord.rejoin_complete() ? 1 : 0)
          << " fallback=" << (coord.used_fresh_fallback() ? 1 : 0);
  report.outcome = outcome.str();

  if (!converged()) {
    report.violations.push_back(
        {oracle::kRecoveryLiveness,
         "honest roster did not converge (rejoin/fresh join incomplete) "
         "after " + std::to_string(report.rounds) + " rounds"});
  }
  if (recovers) {
    // Checkpoints land at rounds k, 2k, … strictly before the crash, so the
    // store's depth at relaunch is a schedule constant — which makes the
    // restore outcome exactly predictable.
    const std::uint32_t depth =
        (ctx.compiled.crash_round - 1) / s.checkpoint_every;
    const bool stale = ctx.compiled.victim != kNoNode &&
                       ctx.compiled.stale[ctx.compiled.victim];
    if (depth == 0) {
      if (!coord.used_fresh_fallback()) {
        report.violations.push_back(
            {oracle::kRecoveryRestore,
             "no checkpoint existed yet the relaunch did not fall back"});
      }
    } else if (stale && depth >= 2) {
      if (coord.restore_outcome() != recovery::RestoreOutcome::kStale ||
          !coord.used_fresh_fallback()) {
        report.violations.push_back(
            {oracle::kRecoveryStaleDetect,
             "stale seal replay was not detected as a rollback"});
      }
    } else {  // honest host, or stale replay of a single (= newest) seal
      if (coord.restore_outcome() != recovery::RestoreOutcome::kRestored ||
          coord.used_fresh_fallback()) {
        report.violations.push_back(
            {oracle::kRecoveryRestore,
             "valid newest seal was not restored at relaunch"});
      }
    }
  }
  finalize(s, registry, report);
  return report;
}

// ----- Shard -------------------------------------------------------------

RunReport run_shard(const Schedule& s, const RunOptions& opts,
                    obs::MetricsRegistry& registry) {
  RunContext ctx(s, opts, registry);
  ctx.bed.build(shard::ShardCoordinator::make_factory(),
                ctx.strategy_factory());
  ctx.install_fault_hook(s.n);
  ctx.start();

  const std::vector<NodeId> honest = honest_set(s);
  shard::ShardConfig cfg;
  cfg.committee_size = s.committee_size;
  cfg.epochs = 2;  // two chained epochs exercise the beacon handoff
  cfg.is_honest = [honest](NodeId id) {
    return std::binary_search(honest.begin(), honest.end(), id);
  };
  shard::ShardCoordinator coord(ctx.bed, std::move(cfg));
  const std::vector<shard::EpochSummary> epochs = coord.run_all();

  RunReport report;
  report.rounds = ctx.bed.rounds_run();
  std::ostringstream outcome;
  for (const shard::EpochSummary& e : epochs) {
    outcome << "e" << e.epoch << ":" << hex8(e.global_digest) << "/"
            << e.decided << "of" << e.honest << " ";
    const std::string at = " (epoch " + std::to_string(e.epoch) + ")";
    if (!e.termination) {
      report.violations.push_back(
          {oracle::kShardTermination,
           std::to_string(e.honest - e.decided) +
               " honest node(s) undecided after " +
               std::to_string(e.rounds_used) + " rounds" + at});
    }
    if (!e.agreement) {
      report.violations.push_back(
          {oracle::kShardAgreement,
           "honest nodes hold divergent digests" + at});
    }
    if (!e.validity) {
      report.violations.push_back(
          {oracle::kShardValidity,
           "agreed digest does not match the bottom-up recomputation" + at});
    }
  }
  report.outcome = outcome.str();
  finalize(s, registry, report);
  return report;
}

}  // namespace

namespace {

/// Parses the just-recorded causal trace and turns every DAG defect into a
/// causal.conservation violation. Runs after finalize(): tracing never feeds
/// back into metrics, so the digest is identical with the oracle on or off.
void check_causal_conservation(const obs::TraceRecorder& tr,
                               RunReport& report) {
  std::string error;
  auto graph = obs::CausalGraph::parse(tr.to_jsonl(), &error);
  if (!graph) {
    report.violations.push_back(
        {oracle::kCausalConservation, "trace unparsable: " + error});
    return;
  }
  for (const std::string& defect : graph->check_conservation()) {
    report.violations.push_back({oracle::kCausalConservation, defect});
  }
}

}  // namespace

RunReport run_schedule(const Schedule& schedule, const RunOptions& options) {
  std::string error;
  CHECK_MSG(schedule.validate(&error), "run_schedule: invalid schedule");
  obs::MetricsRegistry registry;
  obs::MetricsRegistry::ScopedCurrent scoped(registry);
  obs::TraceRecorder& tr = obs::TraceRecorder::global();
  const bool was_tracing = tr.enabled();
  if (options.check_causal) {
    tr.enable();  // fresh spans — enable() resets the ring and counters
    tr.reset();
  }
  RunReport report;
  switch (schedule.target) {
    case FuzzTarget::kErb:
      report = run_erb(schedule, options, registry);
      break;
    case FuzzTarget::kErngBasic:
      report = run_erng<protocol::ErngBasicNode>(
          schedule, options, registry,
          [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
             protocol::PeerConfig pc, const sgx::SimIAS& ias)
              -> std::unique_ptr<protocol::PeerEnclave> {
            return std::make_unique<protocol::ErngBasicNode>(platform, id,
                                                             host, pc, ias);
          });
      break;
    case FuzzTarget::kErngOpt:
      report = run_erng<protocol::ErngOptNode>(
          schedule, options, registry,
          [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
             protocol::PeerConfig pc, const sgx::SimIAS& ias)
              -> std::unique_ptr<protocol::PeerEnclave> {
            return std::make_unique<protocol::ErngOptNode>(platform, id, host,
                                                           pc, ias);
          });
      break;
    case FuzzTarget::kRecovery:
      report = run_recovery(schedule, options, registry);
      break;
    case FuzzTarget::kShard:
      report = run_shard(schedule, options, registry);
      break;
    default:
      CHECK_MSG(false, "run_schedule: unknown target");
  }
  if (options.check_causal) {
    check_causal_conservation(tr, report);
    if (!was_tracing) tr.disable();
  }
  return report;
}

}  // namespace sgxp2p::fuzz
