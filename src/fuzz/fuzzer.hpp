// Campaign driver + replay — the fuzzer's two entry points.
//
// run_campaign executes `schedules` generated schedules per target (indices
// 0..schedules-1 through generate_schedule, so a campaign is reproducible
// from its seed). The first oracle violation per target is shrunk to a
// minimal reproducer, stamped with the violated-oracle set and the run
// digest, and written as a `.sched` replay file; CI uploads those as
// artifacts. A campaign stops early once `max_failures` distinct failures
// have been shrunk — nightly runs want the whole sweep (max_failures high),
// the canary test wants the first hit.
//
// replay_schedule_file re-executes a replay file and checks it against its
// own `expect_violation` / `expect_digest` stamps: same violated oracles,
// byte-identical digest. The canary oracle is armed automatically when the
// file expects a canary.* violation, so replaying a canary-found repro works
// without extra flags.
#pragma once

#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrinker.hpp"

namespace sgxp2p::fuzz {

struct CampaignOptions {
  std::vector<FuzzTarget> targets;  // empty → all four
  std::uint64_t seed = 1;
  std::uint32_t schedules = 500;  // generated schedules per target
  bool canary = false;            // arm the test-only canary oracle
  std::string out_dir;            // replay files land here ("" = cwd)
  std::uint32_t max_failures = 1;
  std::uint32_t shrink_budget = 256;  // runs the shrinker may spend
  /// Progress line every `progress_every` schedules (0 = silent).
  std::uint32_t progress_every = 0;
  /// Coverage-guided mode: schedules whose run lights new bits in the
  /// campaign's aggregate CoverageMap join a per-target corpus; subsequent
  /// indices mutate a corpus parent (best-of-K candidates scored by how
  /// many of their schedule-derived feature bits the aggregate map has not
  /// seen) instead of generating fresh-random, with every 4th index kept
  /// fresh so the search never inbreeds. Fully deterministic: the mutation
  /// stream is seeded from (seed, target) alone.
  bool coverage_guided = false;
  /// Persist every corpus-retained schedule here as
  /// corpus-<target>-seed<S>-<index>.sched ("" = keep the corpus in memory
  /// only). Feeds the nightly distillation pass (tools/sgxp2p-corpus).
  std::string corpus_dir;
};

struct CampaignFailure {
  FuzzTarget target = FuzzTarget::kErb;
  std::uint32_t index = 0;       // generate_schedule index that failed
  Schedule shrunk;               // minimal reproducer (with expect_* stamps)
  RunReport report;              // the shrunk schedule's run
  std::uint32_t shrink_runs = 0;
  std::string repro_path;        // written replay file ("" if write failed)
};

struct CampaignResult {
  std::uint64_t executed = 0;  // schedules run (not counting shrinking)
  std::vector<CampaignFailure> failures;
  /// Aggregate protocol-state coverage over every executed run (guided or
  /// not) — count() is the "coverage bits" number CI and the guided-vs-
  /// random test compare.
  CoverageMap coverage;
  /// Schedules retained as coverage-novel (0 unless coverage_guided).
  std::uint64_t corpus_size = 0;

  [[nodiscard]] bool clean() const { return failures.empty(); }
};

[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options);

struct ReplayResult {
  bool ok = false;      // ran, and every expect_* stamp matched
  RunReport report;
  std::string message;  // human-readable verdict / mismatch description
};

[[nodiscard]] ReplayResult replay_schedule_file(const std::string& path);

}  // namespace sgxp2p::fuzz
