// Exhaustive small-scope model checker (Guardian-style).
//
// Random fuzzing finds deep bugs; exhaustive small-scope search proves
// their absence where it is tractable. check_model walks EVERY
// host-controlled fault combination a tiny deployment admits — the same
// adversary surface Guardian explores on the enclave interface — and
// judges each one with the same oracles, runner, and shrinker the fuzzer
// uses, so a violation falls out as a replayable `.sched` reproducer.
//
// Search space: a quantized fault alphabet (each entry one FaultAction —
// kind × victim × round within the `rounds` horizon, message params pinned
// to one representative per param class) enumerated as subsets of size ≤
// `bound` via DFS in increasing alphabet order, on top of a fixed base
// deployment for the target at size n. Two prunes keep it honest AND
// cheap:
//
//  * Validity pruning. A subset failing Schedule::validate cuts its whole
//    subtree. Sound because the alphabet is ordered crash < recover <
//    stale_seal < message faults: DFS only ever extends a subset with
//    higher-indexed entries, and with recovers below everything that could
//    need them no invalid subset can become valid again by extension
//    (budget overruns only grow; a recover-without-crash can never gain
//    its crash later).
//
//  * Symmetry pruning. Interchangeable nodes (ERB non-initiators, the
//    whole ERNG-basic roster, erng_opt's cluster/non-cluster halves,
//    recovery's two plain members) induce schedule classes that exercise
//    the same protocol behavior. Each subset is canonicalized — minimum
//    over within-class node permutations of its sorted action list — and
//    only canonical-new states are run; the rest count as states_pruned.
//    Exhaustiveness is therefore modulo node symmetry: exact at the
//    protocol level, while per-link delivery jitter (an artifact of the
//    simulated network, not of the protocol) may differ between symmetric
//    twins.
//
// `rounds` bounds where fault actions may land (the adversary's horizon);
// the schedule's max_rounds stays at the target's liveness floor so the
// termination oracles remain fair assertions.
#pragma once

#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "fuzz/schedule.hpp"

namespace sgxp2p::fuzz {

struct ModelCheckOptions {
  FuzzTarget target = FuzzTarget::kErb;
  /// Deployment size. Targets with structural floors clamp upward:
  /// recovery needs n ≥ 5 (roster + joiner), shard n ≥ 4 (one committee).
  std::uint32_t n = 3;
  /// Fault-action horizon: alphabet entries land in rounds 1..rounds.
  std::uint32_t rounds = 2;
  /// Maximum simultaneous fault actions per explored schedule.
  std::uint32_t bound = 2;
  std::uint64_t seed = 1;  // testbed seed of the base deployment
  bool canary = false;     // arm the test-only canary.no_bottom oracle
  std::string out_dir;     // reproducers land here ("" = cwd)
  std::uint32_t shrink_budget = 256;
  /// Stop after this many DISTINCT violation sets have been shrunk and
  /// emitted (every hit still counts in violations_found).
  std::uint32_t max_emitted = 8;
  /// Safety valve: abort (exhausted=false) after this many runs; 0 = off.
  std::uint64_t max_states = 0;
};

struct ModelCheckViolation {
  Schedule shrunk;          // minimal reproducer (with expect_* stamps)
  RunReport report;         // the shrunk schedule's run
  std::uint32_t shrink_runs = 0;
  std::string repro_path;   // written replay file ("" if write failed)
};

struct ModelCheckResult {
  std::uint64_t states_explored = 0;  // canonical-new valid schedules run
  std::uint64_t states_pruned = 0;    // symmetry twins + invalid subtrees
  std::uint64_t violations_found = 0; // runs with ≥ 1 oracle violation
  std::vector<ModelCheckViolation> violations;  // one per distinct set
  CoverageMap coverage;               // aggregate over every explored run
  bool exhausted = true;              // false iff max_states tripped

  [[nodiscard]] bool clean() const { return violations_found == 0; }
};

[[nodiscard]] ModelCheckResult check_model(const ModelCheckOptions& options);

}  // namespace sgxp2p::fuzz
