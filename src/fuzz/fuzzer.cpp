#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::fuzz {

namespace {

std::string in_dir(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  std::string out = dir;
  if (out.back() != '/') out += '/';
  return out + name;
}

std::string repro_filename(const CampaignOptions& options, FuzzTarget target,
                           std::uint32_t index) {
  return in_dir(options.out_dir,
                "fuzz-" + std::string(target_name(target)) + "-seed" +
                    std::to_string(options.seed) + "-" +
                    std::to_string(index) + ".sched");
}

std::string corpus_filename(const CampaignOptions& options, FuzzTarget target,
                            std::uint32_t index) {
  return in_dir(options.corpus_dir,
                "corpus-" + std::string(target_name(target)) + "-seed" +
                    std::to_string(options.seed) + "-" +
                    std::to_string(index) + ".sched");
}

/// How many of `schedule`'s statically-known feature bits the campaign has
/// not observed yet — the guided mutator's pre-run score (running every
/// candidate to score it would triple the campaign cost).
std::size_t unseen_score(const Schedule& schedule, const CoverageMap& seen) {
  std::size_t score = 0;
  for (std::size_t bit : schedule_feature_bits(schedule)) {
    if (!seen.test(bit)) ++score;
  }
  return score;
}

/// Picks the next schedule for (target, index): fresh-random always in
/// plain mode, and in guided mode for every 4th index or while the corpus
/// is empty; otherwise best-of-4 mutants of a random corpus parent.
Schedule next_schedule(const CampaignOptions& options, FuzzTarget target,
                       std::uint32_t index,
                       const std::vector<Schedule>& corpus,
                       const CoverageMap& seen, Rng& mrng) {
  if (!options.coverage_guided || corpus.empty() || index % 4 == 0) {
    return generate_schedule(target, options.seed, index);
  }
  const Schedule& parent = corpus[mrng.next_below(corpus.size())];
  Schedule best = mutate_schedule(parent, mrng);
  std::size_t best_score = unseen_score(best, seen);
  for (int k = 1; k < 4; ++k) {
    Schedule candidate = mutate_schedule(parent, mrng);
    std::size_t score = unseen_score(candidate, seen);
    if (score > best_score) {
      best = std::move(candidate);
      best_score = score;
    }
  }
  return best;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  std::vector<FuzzTarget> targets = options.targets;
  if (targets.empty()) {
    targets = {FuzzTarget::kErb, FuzzTarget::kErngBasic, FuzzTarget::kErngOpt,
               FuzzTarget::kRecovery, FuzzTarget::kShard};
  }
  RunOptions run_options;
  run_options.canary = options.canary;

  // fuzz.* lives on the CAMPAIGN-level registry, captured here — each
  // run_schedule rebinds MetricsRegistry::current() to a fresh per-run
  // registry, so campaign bookkeeping must never be registered inside the
  // loop (it would leak into run digests and break replay stamps).
  obs::MetricsRegistry& campaign_reg = obs::MetricsRegistry::current();
  obs::Counter& c_schedules = campaign_reg.counter("fuzz.schedules");
  obs::Counter& c_violations = campaign_reg.counter("fuzz.violations");
  obs::Counter& c_failures = campaign_reg.counter("fuzz.failures");
  obs::Counter& c_shrink_runs = campaign_reg.counter("fuzz.shrink_runs");
  obs::Gauge& g_coverage_bits = campaign_reg.gauge("fuzz.coverage_bits");
  obs::Gauge& g_corpus_size = campaign_reg.gauge("fuzz.corpus_size");

  CampaignResult result;
  for (FuzzTarget target : targets) {
    // Per-target corpus + mutation stream; seeding from (seed, target) alone
    // keeps a guided campaign bit-for-bit reproducible.
    std::vector<Schedule> corpus;
    Rng mrng(options.seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee +
             static_cast<std::uint64_t>(target));
    for (std::uint32_t index = 0; index < options.schedules; ++index) {
      if (result.failures.size() >= options.max_failures) return result;
      Schedule schedule = next_schedule(options, target, index, corpus,
                                        result.coverage, mrng);
      RunReport report = run_schedule(schedule, run_options);
      ++result.executed;
      c_schedules.inc();
      c_violations.inc(report.violations.size());
      const std::size_t gained = result.coverage.merge(report.coverage);
      g_coverage_bits.set(static_cast<std::int64_t>(result.coverage.count()));
      if (options.coverage_guided && gained > 0) {
        corpus.push_back(schedule);
        ++result.corpus_size;
        g_corpus_size.set(static_cast<std::int64_t>(result.corpus_size));
        if (!options.corpus_dir.empty() &&
            !schedule.write_file(corpus_filename(options, target, index))) {
          LOG_ERROR("fuzz: cannot write corpus schedule to ",
                    corpus_filename(options, target, index));
        }
      }
      if (options.progress_every != 0 &&
          (index + 1) % options.progress_every == 0) {
        std::fprintf(stderr, "fuzz[%s] %u/%u schedules, %zu failure(s)\n",
                     target_name(target), index + 1, options.schedules,
                     result.failures.size());
      }
      if (report.passed()) continue;

      LOG_WARN("fuzz: ", target_name(target), " schedule ", index, " (seed ",
               options.seed, ") violated ", report.violations.size(),
               " oracle(s); shrinking");
      ShrinkResult shrunk =
          shrink(schedule, run_options, options.shrink_budget);
      c_failures.inc();
      c_shrink_runs.inc(shrunk.runs);

      CampaignFailure failure;
      failure.target = target;
      failure.index = index;
      failure.shrunk = shrunk.schedule;
      failure.report = shrunk.report;
      failure.shrink_runs = shrunk.runs;
      // Stamp the reproducer with what a replay must see.
      failure.shrunk.expect_violations = shrunk.report.violated_oracles();
      failure.shrunk.expect_digest = shrunk.report.digest;
      std::string path = repro_filename(options, target, index);
      failure.repro_path = failure.shrunk.write_file(path) ? path : "";
      if (failure.repro_path.empty()) {
        LOG_ERROR("fuzz: cannot write reproducer to ", path);
      }
      result.failures.push_back(std::move(failure));
    }
  }
  return result;
}

ReplayResult replay_schedule_file(const std::string& path) {
  ReplayResult out;
  std::string error;
  // Same campaign-vs-run registry split as run_campaign: the replay
  // bookkeeping must not end up in the replayed run's digest.
  obs::MetricsRegistry& campaign_reg = obs::MetricsRegistry::current();
  obs::Counter& c_replays = campaign_reg.counter("fuzz.replays");
  obs::Counter& c_verified = campaign_reg.counter("fuzz.replays_verified");
  c_replays.inc();
  std::optional<Schedule> schedule = Schedule::load_file(path, &error);
  if (!schedule) {
    out.message = "cannot load schedule: " + error;
    return out;
  }
  RunOptions options;
  for (const std::string& expected : schedule->expect_violations) {
    if (expected.rfind("canary.", 0) == 0) options.canary = true;
  }
  out.report = run_schedule(*schedule, options);

  const std::vector<std::string> got = out.report.violated_oracles();
  if (!schedule->expect_violations.empty()) {
    std::vector<std::string> want = schedule->expect_violations;
    std::sort(want.begin(), want.end());
    if (got != want) {
      out.message = "violation set mismatch: replay saw [";
      for (const std::string& g : got) out.message += g + " ";
      out.message += "] but the file expects [";
      for (const std::string& w : want) out.message += w + " ";
      out.message += "]";
      return out;
    }
  }
  if (!schedule->expect_digest.empty() &&
      out.report.digest != schedule->expect_digest) {
    out.message = "digest mismatch: replay produced " + out.report.digest +
                  " but the file expects " + schedule->expect_digest;
    return out;
  }
  out.ok = true;
  c_verified.inc();
  out.message =
      got.empty()
          ? "replay clean: no oracle violations"
          : "replay reproduced the expected violation(s) byte-identically";
  return out;
}

}  // namespace sgxp2p::fuzz
