#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::fuzz {

namespace {

std::string repro_filename(const CampaignOptions& options, FuzzTarget target,
                           std::uint32_t index) {
  std::string name = "fuzz-" + std::string(target_name(target)) + "-seed" +
                     std::to_string(options.seed) + "-" +
                     std::to_string(index) + ".sched";
  if (options.out_dir.empty()) return name;
  std::string dir = options.out_dir;
  if (dir.back() != '/') dir += '/';
  return dir + name;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  std::vector<FuzzTarget> targets = options.targets;
  if (targets.empty()) {
    targets = {FuzzTarget::kErb, FuzzTarget::kErngBasic, FuzzTarget::kErngOpt,
               FuzzTarget::kRecovery, FuzzTarget::kShard};
  }
  RunOptions run_options;
  run_options.canary = options.canary;

  // fuzz.* lives on the CAMPAIGN-level registry, captured here — each
  // run_schedule rebinds MetricsRegistry::current() to a fresh per-run
  // registry, so campaign bookkeeping must never be registered inside the
  // loop (it would leak into run digests and break replay stamps).
  obs::MetricsRegistry& campaign_reg = obs::MetricsRegistry::current();
  obs::Counter& c_schedules = campaign_reg.counter("fuzz.schedules");
  obs::Counter& c_violations = campaign_reg.counter("fuzz.violations");
  obs::Counter& c_failures = campaign_reg.counter("fuzz.failures");
  obs::Counter& c_shrink_runs = campaign_reg.counter("fuzz.shrink_runs");

  CampaignResult result;
  for (FuzzTarget target : targets) {
    for (std::uint32_t index = 0; index < options.schedules; ++index) {
      if (result.failures.size() >= options.max_failures) return result;
      Schedule schedule = generate_schedule(target, options.seed, index);
      RunReport report = run_schedule(schedule, run_options);
      ++result.executed;
      c_schedules.inc();
      c_violations.inc(report.violations.size());
      if (options.progress_every != 0 &&
          (index + 1) % options.progress_every == 0) {
        std::fprintf(stderr, "fuzz[%s] %u/%u schedules, %zu failure(s)\n",
                     target_name(target), index + 1, options.schedules,
                     result.failures.size());
      }
      if (report.passed()) continue;

      LOG_WARN("fuzz: ", target_name(target), " schedule ", index, " (seed ",
               options.seed, ") violated ", report.violations.size(),
               " oracle(s); shrinking");
      ShrinkResult shrunk =
          shrink(schedule, run_options, options.shrink_budget);
      c_failures.inc();
      c_shrink_runs.inc(shrunk.runs);

      CampaignFailure failure;
      failure.target = target;
      failure.index = index;
      failure.shrunk = shrunk.schedule;
      failure.report = shrunk.report;
      failure.shrink_runs = shrunk.runs;
      // Stamp the reproducer with what a replay must see.
      failure.shrunk.expect_violations = shrunk.report.violated_oracles();
      failure.shrunk.expect_digest = shrunk.report.digest;
      std::string path = repro_filename(options, target, index);
      failure.repro_path = failure.shrunk.write_file(path) ? path : "";
      if (failure.repro_path.empty()) {
        LOG_ERROR("fuzz: cannot write reproducer to ", path);
      }
      result.failures.push_back(std::move(failure));
    }
  }
  return result;
}

ReplayResult replay_schedule_file(const std::string& path) {
  ReplayResult out;
  std::string error;
  // Same campaign-vs-run registry split as run_campaign: the replay
  // bookkeeping must not end up in the replayed run's digest.
  obs::MetricsRegistry& campaign_reg = obs::MetricsRegistry::current();
  obs::Counter& c_replays = campaign_reg.counter("fuzz.replays");
  obs::Counter& c_verified = campaign_reg.counter("fuzz.replays_verified");
  c_replays.inc();
  std::optional<Schedule> schedule = Schedule::load_file(path, &error);
  if (!schedule) {
    out.message = "cannot load schedule: " + error;
    return out;
  }
  RunOptions options;
  for (const std::string& expected : schedule->expect_violations) {
    if (expected.rfind("canary.", 0) == 0) options.canary = true;
  }
  out.report = run_schedule(*schedule, options);

  const std::vector<std::string> got = out.report.violated_oracles();
  if (!schedule->expect_violations.empty()) {
    std::vector<std::string> want = schedule->expect_violations;
    std::sort(want.begin(), want.end());
    if (got != want) {
      out.message = "violation set mismatch: replay saw [";
      for (const std::string& g : got) out.message += g + " ";
      out.message += "] but the file expects [";
      for (const std::string& w : want) out.message += w + " ";
      out.message += "]";
      return out;
    }
  }
  if (!schedule->expect_digest.empty() &&
      out.report.digest != schedule->expect_digest) {
    out.message = "digest mismatch: replay produced " + out.report.digest +
                  " but the file expects " + schedule->expect_digest;
    return out;
  }
  out.ok = true;
  c_verified.inc();
  out.message =
      got.empty()
          ? "replay clean: no oracle violations"
          : "replay reproduced the expected violation(s) byte-identically";
  return out;
}

}  // namespace sgxp2p::fuzz
