// TCP fuzz runner — executes fuzz::Schedules over genuine localhost sockets.
//
// The simulator runner (fuzz/runner.hpp) owns determinism: byte-identical
// digests over metrics + outcomes. Real sockets cannot promise that for
// timing-dependent quantities, so the TCP runner narrows the claim to what
// the paper's theorems actually quantify over: the digest covers only the
// HONEST nodes' protocol outcomes (decisions/values), which must be
// byte-stable across runs of the same schedule — faulted nodes' states and
// all wall-clock metrics are reported but excluded. Schedules whose actions
// have no socket-level expression (crash / recover / stale_seal) are
// rejected up front by tcp_supported(); everything else — drop, delay,
// duplicate, corrupt, reorder, partition — is applied by TcpFaultShim on
// real frames, exercising framing, partial reads, backpressure, and
// reconnect paths the simulator never sees.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/schedule.hpp"

namespace sgxp2p::fuzz {

struct TcpRunOptions {
  /// Wall-clock round length. Must comfortably exceed localhost RTT plus
  /// the largest scheduled delay a frame should survive within its round.
  SimDuration round_ms = 200;
};

/// True iff the schedule can run over real sockets: an ERB or basic-ERNG
/// target with only message-level and partition actions. `why` (optional)
/// receives the reason for a false verdict.
[[nodiscard]] bool tcp_supported(const Schedule& schedule,
                                 std::string* why = nullptr);

/// Runs one schedule over a real TcpBus mesh with the fault shim installed.
/// CHECK-fails on invalid or unsupported schedules (gate with validate() +
/// tcp_supported()). The report's digest is sha256 over the honest-node
/// outcome string only — compare digests across runs to assert byte
/// stability.
[[nodiscard]] RunReport run_tcp_schedule(const Schedule& schedule,
                                         const TcpRunOptions& options = {});

struct TcpCampaignOptions {
  std::vector<FuzzTarget> targets;  // empty → {erb, erng_basic}
  std::uint64_t seed = 1;
  std::uint32_t schedules = 20;  // generated schedules per target
  std::string out_dir;           // failing replay files land here ("" = cwd)
  std::uint32_t max_failures = 1;
  SimDuration round_ms = 200;
  std::uint32_t progress_every = 0;
};

struct TcpCampaignResult {
  std::uint64_t executed = 0;
  std::uint64_t skipped = 0;  // generated schedules not TCP-expressible
  std::vector<CampaignFailure> failures;  // repro stamped, never shrunk

  [[nodiscard]] bool clean() const { return failures.empty(); }
};

/// Campaign over generated schedules, filtered to the TCP-expressible
/// subset. Failing schedules are stamped with their violated-oracle set and
/// written as replay files (no shrinking — every TCP run costs wall-clock
/// seconds, and the simulator shrinker covers the same action space).
[[nodiscard]] TcpCampaignResult run_tcp_campaign(
    const TcpCampaignOptions& options);

}  // namespace sgxp2p::fuzz
