// TcpFaultShim — applies a fuzz::Schedule's adversarial actions to real
// socket traffic.
//
// The deterministic simulator injects faults inside each node's host
// (adversary::ScheduleStrategy); over genuine TCP there is no such seam, so
// the shim interposes on TcpTestbed's outbound path instead: build() wires
// every enclave's transfer() through the testbed, and the shim's send hook
// decides per frame whether it passes, is dropped, delayed (a worker thread
// re-injects it after the scheduled latency), duplicated, or corrupted.
// Partition actions blackhole every frame to or from the victim for the
// action's round window. Only the schedule's faulted set (≤ t nodes, by
// Schedule::validate) is ever touched, so the honest-node oracles remain
// fair assertions over real sockets.
//
// Crash/recover/stale-seal actions have no message-level expression here —
// tcp_supported() (fuzz/tcp_runner.hpp) rejects schedules that use them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "fuzz/schedule.hpp"
#include "net/tcp_testbed.hpp"

namespace sgxp2p::fuzz {

class TcpFaultShim {
 public:
  struct Stats {
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t partition_dropped = 0;
  };

  /// Compiles the schedule's message-level and partition actions. The shim
  /// must outlive the testbed's traffic; call install() before bed.build().
  TcpFaultShim(net::TcpTestbed& bed, const Schedule& schedule);
  ~TcpFaultShim();

  TcpFaultShim(const TcpFaultShim&) = delete;
  TcpFaultShim& operator=(const TcpFaultShim&) = delete;

  /// Registers the send hook on the testbed.
  void install();

  [[nodiscard]] Stats stats() const;

 private:
  struct Rule {
    ActionKind kind = ActionKind::kDrop;
    std::uint32_t round = 1;
    NodeId peer = kNoNode;  // kNoNode = every destination
    std::uint64_t param = 0;
  };
  struct Window {  // partition rounds [begin, end)
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  bool on_send(NodeId from, NodeId to, ByteView blob, std::uint32_t round);
  [[nodiscard]] bool partitioned(NodeId node, std::uint32_t round) const;
  void schedule_delivery(NodeId from, NodeId to, Bytes blob,
                         std::uint64_t delay_ms);
  void worker();

  net::TcpTestbed* bed_;
  std::vector<std::vector<Rule>> rules_;      // indexed by sender
  std::vector<std::vector<Window>> windows_;  // partition windows per node

  struct Delivery {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    Bytes blob;
  };
  std::mutex mu_;
  std::condition_variable cv_;
  std::multimap<std::chrono::steady_clock::time_point, Delivery> queue_;
  bool stopping_ = false;
  std::thread worker_;

  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> partition_dropped_{0};
};

}  // namespace sgxp2p::fuzz
