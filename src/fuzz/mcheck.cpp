#include "fuzz/mcheck.hpp"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

#include "common/check.hpp"
#include "common/log.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrinker.hpp"
#include "obs/metrics.hpp"

namespace sgxp2p::fuzz {

namespace {

// ----- Base deployment ---------------------------------------------------

/// Roster members a recovery schedule may fault: everyone except the
/// sponsors (0 and 2) and the fresh joiner (n − 1).
std::vector<NodeId> recovery_victims(std::uint32_t n) {
  std::vector<NodeId> out;
  for (NodeId id = 1; id + 1 < n; ++id) {
    if (id != 2) out.push_back(id);
  }
  return out;
}

/// Largest liveness floor any alphabet combination can demand. Only the
/// recovery target's floor depends on the actions (the rejoin window moves
/// with the recover round), so probe every (crash, recover) pair inside the
/// horizon; the base schedule's max_rounds must cover the worst one or
/// validate would prune those combinations as "rounds below the horizon".
std::uint32_t recovery_round_budget(const Schedule& base,
                                    std::uint32_t horizon) {
  std::uint32_t best = base.min_rounds();
  const NodeId victim = 1;  // min_rounds only reads the rounds, not the node
  for (std::uint32_t crash = 1; crash <= horizon; ++crash) {
    Schedule s = base;
    s.actions = {{ActionKind::kCrash, victim, crash, kNoNode, 0}};
    best = std::max(best, s.min_rounds());
    for (std::uint32_t rec = crash + 1; rec <= horizon; ++rec) {
      Schedule s2 = base;
      s2.actions = {{ActionKind::kCrash, victim, crash, kNoNode, 0},
                    {ActionKind::kRecover, victim, rec, kNoNode, 0}};
      best = std::max(best, s2.min_rounds());
    }
  }
  return best;
}

Schedule base_schedule(const ModelCheckOptions& opt) {
  Schedule s;
  s.target = opt.target;
  s.seed = opt.seed;
  switch (opt.target) {
    case FuzzTarget::kErb:
    case FuzzTarget::kErngBasic:
      s.n = std::max(opt.n, 3u);
      s.t = (s.n - 1) / 2;
      break;
    case FuzzTarget::kErngOpt:
      s.n = std::max(opt.n, 3u);
      s.t = std::max(1u, s.n / 3);
      if (2 * s.t >= s.n) s.t = (s.n - 1) / 2;
      break;
    case FuzzTarget::kRecovery:
      s.n = std::max(opt.n, 5u);  // roster + fresh joiner
      s.t = (s.n - 2) / 2;
      s.checkpoint_every = 2;
      break;
    case FuzzTarget::kShard:
      s.n = std::max(opt.n, 4u);
      s.committee_size = 4;
      s.t = std::min((s.committee_size - 1) / 2, (s.n - 1) / 2);
      break;
  }
  s.max_rounds = opt.target == FuzzTarget::kRecovery
                     ? recovery_round_budget(s, opt.rounds)
                     : std::max(s.min_rounds(), opt.rounds);
  std::string error;
  CHECK_MSG(s.validate(&error), "mcheck base schedule unsound");
  return s;
}

// ----- Fault alphabet ----------------------------------------------------

/// The quantized alphabet, in the pruning-critical order crash < recover <
/// stale_seal < message faults (see mcheck.hpp): DFS extends subsets with
/// higher indices only, so with recovers below everything else an invalid
/// subset (e.g. a recover with no crash) can never become valid again by
/// extension — validity pruning stays sound.
std::vector<FaultAction> build_alphabet(const Schedule& base,
                                        const ModelCheckOptions& opt) {
  std::vector<FaultAction> out;
  std::vector<NodeId> nodes;
  if (base.target == FuzzTarget::kRecovery) {
    nodes = recovery_victims(base.n);
  } else {
    for (NodeId id = 0; id < base.n; ++id) nodes.push_back(id);
  }
  const std::uint32_t horizon = std::min(opt.rounds, base.max_rounds);

  for (NodeId node : nodes) {
    for (std::uint32_t round = 1; round <= horizon; ++round) {
      out.push_back({ActionKind::kCrash, node, round, kNoNode, 0});
    }
  }
  if (base.target == FuzzTarget::kRecovery) {
    for (NodeId node : nodes) {
      for (std::uint32_t round = 2; round <= horizon; ++round) {
        out.push_back({ActionKind::kRecover, node, round, kNoNode, 0});
      }
    }
    for (NodeId node : nodes) {
      out.push_back({ActionKind::kStaleSeal, node, 1, kNoNode, 0});
    }
  }
  // One representative per message-fault param class; peers stay kNoNode
  // (the broadcast flavor dominates the selective one at these sizes, and
  // per-peer entries would square the alphabet).
  struct MsgKind {
    ActionKind kind;
    std::uint64_t param;
  };
  constexpr MsgKind kMenu[] = {
      {ActionKind::kDrop, 0},          {ActionKind::kDelay, 600},
      {ActionKind::kDuplicate, 100},   {ActionKind::kCorrupt, 0x5eed5eed},
      {ActionKind::kReorder, 0},       {ActionKind::kPartition, 1},
  };
  for (const MsgKind& m : kMenu) {
    for (NodeId node : nodes) {
      for (std::uint32_t round = 1; round <= horizon; ++round) {
        out.push_back({m.kind, node, round, kNoNode, m.param});
      }
    }
  }
  return out;
}

// ----- Symmetry canonicalization -----------------------------------------

/// Node classes whose members the target treats interchangeably. Shard gets
/// none: committee placement is a seed-dependent election, so distinct ids
/// genuinely land in distinct committees.
std::vector<std::vector<NodeId>> symmetry_classes(const Schedule& base) {
  std::vector<std::vector<NodeId>> classes;
  switch (base.target) {
    case FuzzTarget::kErb: {  // initiator 0 is pinned; the rest echo alike
      std::vector<NodeId> rest;
      for (NodeId id = 1; id < base.n; ++id) rest.push_back(id);
      if (rest.size() > 1) classes.push_back(std::move(rest));
      break;
    }
    case FuzzTarget::kErngBasic: {  // fully symmetric roster
      std::vector<NodeId> all;
      for (NodeId id = 0; id < base.n; ++id) all.push_back(id);
      classes.push_back(std::move(all));
      break;
    }
    case FuzzTarget::kErngOpt: {  // fallback cluster vs the rest
      const NodeId n_c = static_cast<NodeId>((2 * base.n + 2) / 3);
      std::vector<NodeId> cluster, rest;
      for (NodeId id = 0; id < base.n; ++id) {
        (id < n_c ? cluster : rest).push_back(id);
      }
      if (cluster.size() > 1) classes.push_back(std::move(cluster));
      if (rest.size() > 1) classes.push_back(std::move(rest));
      break;
    }
    case FuzzTarget::kRecovery: {  // the plain (non-sponsor) members
      std::vector<NodeId> plain = recovery_victims(base.n);
      if (plain.size() > 1) classes.push_back(std::move(plain));
      break;
    }
    case FuzzTarget::kShard:
      break;
  }
  return classes;
}

std::string serialize_actions(std::vector<FaultAction> actions) {
  std::sort(actions.begin(), actions.end(),
            [](const FaultAction& a, const FaultAction& b) {
              return std::tie(a.kind, a.node, a.round, a.peer, a.param) <
                     std::tie(b.kind, b.node, b.round, b.peer, b.param);
            });
  std::string out;
  for (const FaultAction& a : actions) {
    out += std::to_string(static_cast<int>(a.kind)) + ":" +
           std::to_string(a.node) + ":" + std::to_string(a.round) + ":" +
           std::to_string(a.peer) + ":" + std::to_string(a.param) + ";";
  }
  return out;
}

/// Canonical key: lexicographic minimum, over every product of within-class
/// node permutations, of the permuted-and-sorted action list. Two subsets
/// share a key iff one is a class-respecting relabeling of the other.
class Canonicalizer {
 public:
  Canonicalizer(const Schedule& base)
      : n_(base.n), classes_(symmetry_classes(base)) {}

  [[nodiscard]] std::string key(const std::vector<FaultAction>& actions) {
    std::vector<NodeId> perm(n_);
    for (NodeId id = 0; id < n_; ++id) perm[id] = id;
    best_.clear();
    apply_class(actions, perm, 0);
    return best_;
  }

 private:
  void apply_class(const std::vector<FaultAction>& actions,
                   std::vector<NodeId>& perm, std::size_t ci) {
    if (ci == classes_.size()) {
      std::vector<FaultAction> mapped = actions;
      for (FaultAction& a : mapped) {
        a.node = perm[a.node];
        if (a.peer != kNoNode) a.peer = perm[a.peer];
      }
      std::string s = serialize_actions(std::move(mapped));
      if (best_.empty() || s < best_) best_ = std::move(s);
      return;
    }
    const std::vector<NodeId>& members = classes_[ci];
    std::vector<NodeId> image = members;  // ascending = first permutation
    do {
      for (std::size_t i = 0; i < members.size(); ++i) {
        perm[members[i]] = image[i];
      }
      apply_class(actions, perm, ci + 1);
    } while (std::next_permutation(image.begin(), image.end()));
    for (NodeId id : members) perm[id] = id;
  }

  NodeId n_;
  std::vector<std::vector<NodeId>> classes_;
  std::string best_;
};

// ----- The search --------------------------------------------------------

std::string repro_filename(const ModelCheckOptions& opt, std::size_t k) {
  std::string name = "mcheck-" + std::string(target_name(opt.target)) + "-n" +
                     std::to_string(opt.n) + "-r" + std::to_string(opt.rounds) +
                     "-" + std::to_string(k) + ".sched";
  if (opt.out_dir.empty()) return name;
  std::string dir = opt.out_dir;
  if (dir.back() != '/') dir += '/';
  return dir + name;
}

struct Search {
  const ModelCheckOptions& opt;
  Schedule base;
  std::vector<FaultAction> alphabet;
  Canonicalizer canon;
  RunOptions run_options;
  ModelCheckResult result;
  std::unordered_set<std::string> seen;
  std::set<std::vector<std::string>> emitted;  // distinct violation sets
  bool stopped = false;

  // mcheck.* bookkeeping lives on the ambient (campaign-level) registry,
  // captured once here — run_schedule rebinds current() per run, so these
  // handles must never be resolved inside the loop (same discipline as
  // run_campaign).
  obs::Counter& c_explored =
      obs::MetricsRegistry::current().counter("mcheck.states_explored");
  obs::Counter& c_pruned =
      obs::MetricsRegistry::current().counter("mcheck.states_pruned");
  obs::Counter& c_violations =
      obs::MetricsRegistry::current().counter("mcheck.violations");

  explicit Search(const ModelCheckOptions& options)
      : opt(options), base(base_schedule(options)),
        alphabet(build_alphabet(base, options)), canon(base) {
    run_options.canary = options.canary;
  }

  Schedule make(const std::vector<FaultAction>& chosen) const {
    Schedule s = base;
    s.actions = chosen;
    return s;
  }

  void prune(std::uint64_t count = 1) {
    result.states_pruned += count;
    c_pruned.inc(count);
  }

  void run(const std::vector<FaultAction>& chosen) {
    if (opt.max_states != 0 && result.states_explored >= opt.max_states) {
      result.exhausted = false;
      stopped = true;
      return;
    }
    Schedule s = make(chosen);
    RunReport report = run_schedule(s, run_options);
    ++result.states_explored;
    c_explored.inc();
    result.coverage.merge(report.coverage);
    if (report.passed()) return;
    ++result.violations_found;
    c_violations.inc();
    std::vector<std::string> set = report.violated_oracles();
    if (!emitted.insert(set).second ||
        result.violations.size() >= opt.max_emitted) {
      return;
    }
    LOG_WARN("mcheck: ", target_name(opt.target), " state ",
             result.states_explored, " violated ", report.violations.size(),
             " oracle(s); shrinking");
    ShrinkResult shrunk = shrink(s, run_options, opt.shrink_budget);
    ModelCheckViolation v;
    v.shrunk = shrunk.schedule;
    v.report = shrunk.report;
    v.shrink_runs = shrunk.runs;
    v.shrunk.expect_violations = shrunk.report.violated_oracles();
    v.shrunk.expect_digest = shrunk.report.digest;
    std::string path = repro_filename(opt, result.violations.size());
    v.repro_path = v.shrunk.write_file(path) ? path : "";
    if (v.repro_path.empty()) {
      LOG_ERROR("mcheck: cannot write reproducer to ", path);
    }
    result.violations.push_back(std::move(v));
  }

  /// Enumerates every subset extending `chosen` with alphabet indices ≥
  /// `next`, running each canonical-new valid one. Invalid extensions cut
  /// their subtree (sound: see the ordering argument in mcheck.hpp);
  /// symmetry twins skip only the run, never the recursion, so every
  /// subset is still enumerated exactly once.
  void visit(std::vector<FaultAction>& chosen, std::size_t next) {
    if (stopped) return;
    if (seen.insert(canon.key(chosen)).second) {
      run(chosen);
    } else {
      prune();
    }
    if (chosen.size() >= opt.bound) return;
    for (std::size_t i = next; i < alphabet.size() && !stopped; ++i) {
      chosen.push_back(alphabet[i]);
      if (make(chosen).validate(nullptr)) {
        visit(chosen, i + 1);
      } else {
        prune(subtree_size(chosen.size(), i + 1));
      }
      chosen.pop_back();
    }
  }

  /// Number of subsets an invalid branch cuts (itself plus every extension
  /// within the bound) — keeps states_pruned an honest account of the
  /// space NOT run rather than a count of cut points (Stress-SGX's lesson:
  /// keep explored-state accounting honest).
  [[nodiscard]] std::uint64_t subtree_size(std::size_t depth,
                                           std::size_t next) const {
    const std::uint64_t remaining = alphabet.size() - next;
    std::uint64_t total = 1;  // the invalid subset itself
    std::uint64_t term = 1;
    const std::size_t extra = opt.bound > depth ? opt.bound - depth : 0;
    for (std::size_t k = 1; k <= extra; ++k) {
      term = term * (remaining - (k - 1)) / k;  // C(remaining, k)
      total += term;
    }
    return total;
  }
};

}  // namespace

ModelCheckResult check_model(const ModelCheckOptions& options) {
  Search search(options);
  std::vector<FaultAction> chosen;
  search.visit(chosen, 0);
  return std::move(search.result);
}

}  // namespace sgxp2p::fuzz
