// Property oracles — the machine-readable pass/fail judgments of one run.
//
// Each oracle is a named predicate over the post-run state of a testbed,
// derived from the paper's theorem statements (quantified over HONEST nodes
// only — the schedule's faulted set is excluded, which Schedule::validate
// keeps within the byzantine budget t):
//
//   erb.termination      every honest node decided within the round budget
//   erb.agreement        all honest decisions carry the same value (or all ⊥)
//   erb.validity         honest initiator ⇒ every honest node decided m
//   erng.termination     every honest node produced an output
//   erng.agreement       all honest outputs are byte-identical (incl. ⊥-ness)
//   recovery.liveness    victim rejoined and every honest roster converged
//                        on admitting the fresh joiner
//   shard.termination    every honest node adopted a global digest in every
//                        epoch, within the epoch round budget
//   shard.agreement      all honest global digests per epoch are identical
//                        (and intra-committee digests match)
//   shard.validity       the agreed global digest equals an independent
//                        bottom-up recomputation from honest members'
//                        committee digests
//   recovery.restore     clean seal ⇒ the checkpoint restore succeeded
//   recovery.stale_detect stale-seal replay ⇒ detected, fresh re-admission
//   metrics.conservation delivered ≤ sends and delivered_bytes ≤ bytes
//   causal.conservation  (opt-in via RunOptions.check_causal) the causal
//                        trace DAG is well-formed: spans contiguous, every
//                        cause precedes its effect, every delivery's cause
//                        is the matching recorded send
//   canary.no_bottom     (test-only, opt-in) no honest ERB node decides ⊥ —
//                        deliberately FALSE under omission faults; exists so
//                        tests can prove the fuzzer finds and shrinks real
//                        violations without planting a bug in protocol code
//
// A Violation records which oracle fired and a human-readable detail line;
// the shrinker compares sorted oracle-name sets, so two runs "fail the same
// way" iff violated_oracles() match.
#pragma once

#include <string>
#include <vector>

#include "fuzz/coverage.hpp"
#include "fuzz/schedule.hpp"

namespace sgxp2p::fuzz {

namespace oracle {
inline constexpr const char* kErbTermination = "erb.termination";
inline constexpr const char* kErbAgreement = "erb.agreement";
inline constexpr const char* kErbValidity = "erb.validity";
inline constexpr const char* kErngTermination = "erng.termination";
inline constexpr const char* kErngAgreement = "erng.agreement";
inline constexpr const char* kRecoveryLiveness = "recovery.liveness";
inline constexpr const char* kRecoveryRestore = "recovery.restore";
inline constexpr const char* kRecoveryStaleDetect = "recovery.stale_detect";
inline constexpr const char* kShardTermination = "shard.termination";
inline constexpr const char* kShardAgreement = "shard.agreement";
inline constexpr const char* kShardValidity = "shard.validity";
inline constexpr const char* kMetricsConservation = "metrics.conservation";
inline constexpr const char* kCausalConservation = "causal.conservation";
inline constexpr const char* kCanaryNoBottom = "canary.no_bottom";
}  // namespace oracle

struct Violation {
  std::string oracle;  // one of the oracle:: names
  std::string detail;  // human-readable evidence ("node 3 decided ⊥, …")
};

/// Everything one schedule execution produced.
struct RunReport {
  std::uint32_t rounds = 0;      // rounds actually executed
  std::vector<Violation> violations;
  std::string outcome;           // per-node outcome summary (digest input)
  std::string digest;            // sha256 hex over (metrics, outcome, rounds)
  CoverageMap coverage;          // protocol-state feature bitmap of this run

  [[nodiscard]] bool passed() const { return violations.empty(); }

  /// Sorted, deduplicated oracle names — the shrinker's equivalence key.
  [[nodiscard]] std::vector<std::string> violated_oracles() const;
};

/// True iff both runs violated exactly the same oracle set (the shrinker's
/// acceptance test: a smaller schedule still "fails the same way").
[[nodiscard]] bool same_violations(const RunReport& a, const RunReport& b);

}  // namespace sgxp2p::fuzz
