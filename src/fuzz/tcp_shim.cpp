#include "fuzz/tcp_shim.hpp"

#include <chrono>

namespace sgxp2p::fuzz {

namespace {
// Fallback latencies when an action carries no param: a delay long enough to
// slip a frame past its round boundary at bench round lengths, and a short
// duplicate offset so the copy lands in the same round.
constexpr std::uint64_t kDefaultDelayMs = 150;
constexpr std::uint64_t kDefaultDuplicateMs = 20;
}  // namespace

TcpFaultShim::TcpFaultShim(net::TcpTestbed& bed, const Schedule& schedule)
    : bed_(&bed),
      rules_(schedule.n),
      windows_(schedule.n) {
  for (const FaultAction& a : schedule.actions) {
    switch (a.kind) {
      case ActionKind::kDrop:
      case ActionKind::kDelay:
      case ActionKind::kDuplicate:
      case ActionKind::kCorrupt:
      case ActionKind::kReorder:
        rules_[a.node].push_back({a.kind, a.round, a.peer, a.param});
        break;
      case ActionKind::kPartition:
        windows_[a.node].push_back(
            {a.round, a.round + static_cast<std::uint32_t>(a.param)});
        break;
      default:
        break;  // crash/recover/stale_seal: rejected by tcp_supported()
    }
  }
  worker_ = std::thread([this] { worker(); });
}

TcpFaultShim::~TcpFaultShim() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void TcpFaultShim::install() {
  bed_->set_send_hook(
      [this](NodeId from, NodeId to, ByteView blob, std::uint32_t round) {
        return on_send(from, to, blob, round);
      });
}

TcpFaultShim::Stats TcpFaultShim::stats() const {
  return {dropped_.load(), delayed_.load(), duplicated_.load(),
          corrupted_.load(), partition_dropped_.load()};
}

bool TcpFaultShim::partitioned(NodeId node, std::uint32_t round) const {
  for (const Window& w : windows_[node]) {
    if (round >= w.begin && round < w.end) return true;
  }
  return false;
}

bool TcpFaultShim::on_send(NodeId from, NodeId to, ByteView blob,
                           std::uint32_t round) {
  if (from >= rules_.size() || to >= rules_.size()) return true;
  // Partitions isolate the victim in both directions for the window.
  if (partitioned(from, round) || partitioned(to, round)) {
    partition_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  for (const Rule& r : rules_[from]) {
    if (r.round != round || (r.peer != kNoNode && r.peer != to)) continue;
    switch (r.kind) {
      case ActionKind::kDrop:
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      case ActionKind::kDelay:
      case ActionKind::kReorder: {
        delayed_.fetch_add(1, std::memory_order_relaxed);
        schedule_delivery(from, to, Bytes(blob.begin(), blob.end()),
                          r.param != 0 ? r.param : kDefaultDelayMs);
        return false;
      }
      case ActionKind::kDuplicate: {
        duplicated_.fetch_add(1, std::memory_order_relaxed);
        schedule_delivery(from, to, Bytes(blob.begin(), blob.end()),
                          r.param != 0 ? r.param : kDefaultDuplicateMs);
        return true;  // the original still goes out
      }
      case ActionKind::kCorrupt: {
        corrupted_.fetch_add(1, std::memory_order_relaxed);
        Bytes bad(blob.begin(), blob.end());
        if (!bad.empty()) {
          // Deterministic bit damage keyed by the action's param; any flip
          // breaks the AEAD tag, so the receiver must reject the frame.
          for (std::size_t i = 0; i < 8; ++i) {
            bad[(r.param + i * 7) % bad.size()] ^=
                static_cast<std::uint8_t>(0xA5 + i);
          }
        }
        (void)bed_->bus_send_raw(from, to, std::move(bad));
        return false;  // the intact original is replaced
      }
      default:
        break;
    }
  }
  return true;
}

void TcpFaultShim::schedule_delivery(NodeId from, NodeId to, Bytes blob,
                                     std::uint64_t delay_ms) {
  const auto due = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(delay_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.emplace(due, Delivery{from, to, std::move(blob)});
  }
  cv_.notify_all();
}

void TcpFaultShim::worker() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const auto due = queue_.begin()->first;
    if (std::chrono::steady_clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    Delivery d = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    lock.unlock();
    // Late frames still pass the raw path (not the hook): a delayed message
    // must not be re-faulted, mirroring the simulator's one-shot semantics.
    (void)bed_->bus_send_raw(d.from, d.to, std::move(d.blob));
    lock.lock();
  }
}

}  // namespace sgxp2p::fuzz
