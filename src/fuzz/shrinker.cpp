#include "fuzz/shrinker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sgxp2p::fuzz {

namespace {

/// Runs `candidate` if structurally sound and within budget; adopts it as
/// the new current best iff it fails identically to the baseline.
class Search {
 public:
  Search(Schedule best, RunReport best_report, const RunOptions& options,
         std::uint32_t max_runs)
      : best_(std::move(best)),
        best_report_(std::move(best_report)),
        options_(options),
        max_runs_(max_runs) {}

  bool try_adopt(const Schedule& candidate) {
    if (runs_ >= max_runs_) return false;
    std::string err;
    if (!candidate.validate(&err)) return false;
    ++runs_;
    RunReport report = run_schedule(candidate, options_);
    if (!same_violations(report, best_report_)) return false;
    best_ = candidate;
    best_report_ = std::move(report);
    return true;
  }

  [[nodiscard]] bool exhausted() const { return runs_ >= max_runs_; }
  [[nodiscard]] const Schedule& best() const { return best_; }
  [[nodiscard]] const RunReport& best_report() const { return best_report_; }
  [[nodiscard]] std::uint32_t runs() const { return runs_; }

 private:
  Schedule best_;
  RunReport best_report_;
  RunOptions options_;
  std::uint32_t max_runs_;
  std::uint32_t runs_ = 0;
};

/// ddmin over the action list: chunks of halving size, restarting the scan
/// whenever a removal sticks.
void shrink_actions(Search& search) {
  std::size_t chunk = std::max<std::size_t>(1, search.best().actions.size() / 2);
  while (chunk >= 1 && !search.exhausted()) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < search.best().actions.size() && !search.exhausted()) {
      Schedule candidate = search.best();
      const std::size_t end =
          std::min(start + chunk, candidate.actions.size());
      candidate.actions.erase(candidate.actions.begin() + start,
                              candidate.actions.begin() + end);
      if (search.try_adopt(candidate)) {
        removed_any = true;  // indices shifted; rescan from the same start
      } else {
        start += chunk;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk /= 2;
    }
  }
}

/// Smallest round budget that still reproduces: binary search down, then a
/// linear tail for off-by-ones.
void shrink_rounds(Search& search) {
  while (search.best().max_rounds > 1 && !search.exhausted()) {
    Schedule candidate = search.best();
    candidate.max_rounds /= 2;
    if (!search.try_adopt(candidate)) break;
  }
  while (search.best().max_rounds > 1 && !search.exhausted()) {
    Schedule candidate = search.best();
    candidate.max_rounds -= 1;
    if (!search.try_adopt(candidate)) break;
  }
}

/// Peels unreferenced high node ids off the deployment. t is re-clamped to
/// the new n; the run decides whether the smaller deployment still fails
/// identically.
void shrink_nodes(Search& search) {
  while (search.best().n > 2 && !search.exhausted()) {
    Schedule candidate = search.best();
    const NodeId doomed = candidate.n - 1;
    bool referenced = false;
    for (const FaultAction& a : candidate.actions) {
      if (a.node == doomed || a.peer == doomed) {
        referenced = true;
        break;
      }
    }
    if (referenced) break;
    candidate.n -= 1;
    candidate.t = std::min(candidate.t, (candidate.n - 1) / 2);
    if (!search.try_adopt(candidate)) break;
  }
}

}  // namespace

ShrinkResult shrink(const Schedule& failing, const RunOptions& options,
                    std::uint32_t max_runs) {
  RunReport baseline = run_schedule(failing, options);
  CHECK_MSG(!baseline.violations.empty(),
            "shrink: the input schedule does not violate any oracle");
  Search search(failing, std::move(baseline), options, max_runs);
  // Re-run the phase stack until a full pass removes nothing: a rounds or
  // nodes reduction can unlock further action removals.
  for (;;) {
    const std::size_t actions_before = search.best().actions.size();
    const std::uint32_t rounds_before = search.best().max_rounds;
    const std::uint32_t n_before = search.best().n;
    shrink_actions(search);
    shrink_rounds(search);
    shrink_nodes(search);
    if (search.exhausted() ||
        (search.best().actions.size() == actions_before &&
         search.best().max_rounds == rounds_before &&
         search.best().n == n_before)) {
      break;
    }
  }
  return {search.best(), search.best_report(), search.runs() + 1};
}

}  // namespace sgxp2p::fuzz
