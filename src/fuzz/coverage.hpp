// CoverageMap — deterministic protocol-state coverage of one schedule run.
//
// Coverage here is NOT line coverage (the CI `coverage` lane measures that
// with gcov); it is a protocol-level feature bitmap. Every run derives a
// fixed set of feature strings from things the paper's properties talk
// about — which oracle branches were reached, which per-target protocol
// states each node ended in (ERB m/⊥/undecided/halted phases, recovery
// restore-vs-fallback paths, shard per-epoch decide counts), which
// bucketed instrument values the run produced, and which fault-interaction
// pairs (action kind × round phase, kind × kind) the schedule exercised —
// and hashes each feature into a fixed kBits-wide bitmap.
//
// Everything a feature is derived from (metrics snapshot, outcome string,
// violated-oracle set, the schedule itself) is already byte-identical
// across same-seed runs and across the kWheel/kHeap/kParallel engines, so
// the bitmap inherits that determinism — CI compares maps exactly, and the
// corpus-distillation pass (tools/sgxp2p-corpus) can reproduce a
// campaign's aggregate map from its schedules alone.
//
// The on-disk form is a tiny text file (docs/ROBUSTNESS.md):
//
//   sgxp2p-coverage-v1
//   bits <kWords little-endian 16-hex-digit words>
//   end
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/schedule.hpp"

namespace sgxp2p::obs {
struct MetricsSnapshot;
}  // namespace sgxp2p::obs

namespace sgxp2p::fuzz {

class CoverageMap {
 public:
  /// Bitmap width. 4096 bits is ~6× the distinct features a full mixed
  /// campaign produces today, keeping the collision rate low while the map
  /// stays one cache-friendly 512-byte block.
  static constexpr std::size_t kBits = 4096;
  static constexpr std::size_t kWords = kBits / 64;

  /// Stable feature→bit mapping (FNV-1a 64 over the feature string, mod
  /// kBits). Exposed so schedule-only features can be scored without a run.
  [[nodiscard]] static std::size_t feature_bit(std::string_view feature);

  void hit(std::string_view feature) { set(feature_bit(feature)); }
  void set(std::size_t bit) { words_[bit >> 6] |= 1ULL << (bit & 63); }
  [[nodiscard]] bool test(std::size_t bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1;
  }

  /// Population count — the "coverage bits" every campaign reports.
  [[nodiscard]] std::size_t count() const;

  /// ORs `other` in; returns how many bits were newly set (0 = `other` was
  /// already covered — the corpus novelty test).
  std::size_t merge(const CoverageMap& other);

  /// Bits set in `other` but not here, without mutating either.
  [[nodiscard]] std::size_t novel_bits(const CoverageMap& other) const;

  /// True iff every bit of `other` is already set here (superset test used
  /// by distillation to prove the minimal set preserves the campaign map).
  [[nodiscard]] bool covers(const CoverageMap& other) const;

  [[nodiscard]] bool empty() const { return count() == 0; }
  void clear() { words_.fill(0); }

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static std::optional<CoverageMap> from_text(
      const std::string& text, std::string* error);
  [[nodiscard]] bool write_file(const std::string& path) const;
  [[nodiscard]] static std::optional<CoverageMap> load_file(
      const std::string& path, std::string* error);

  friend bool operator==(const CoverageMap&, const CoverageMap&) = default;

 private:
  std::array<std::uint64_t, kWords> words_{};
};

/// The full feature extraction: oracle branches (violated and clean), the
/// normalized per-node outcome states, bucketed counter values, the round
/// count, and the schedule's fault-interaction features. All inputs are
/// deterministic products of the run, so two same-seed runs (on any engine)
/// produce byte-identical maps.
[[nodiscard]] CoverageMap compute_coverage(
    const Schedule& schedule, const std::vector<std::string>& violated_oracles,
    const std::string& outcome, std::uint32_t rounds,
    const obs::MetricsSnapshot& snapshot);

/// Just the schedule-derived fault-interaction bits (action kind × round
/// phase, kind pairs, victim roles, param classes) — computable WITHOUT
/// running the schedule. The guided mutator scores candidate mutants by how
/// many of these bits a campaign's aggregate map has not seen yet.
[[nodiscard]] std::vector<std::size_t> schedule_feature_bits(
    const Schedule& schedule);

}  // namespace sgxp2p::fuzz
