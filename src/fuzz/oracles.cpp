#include "fuzz/oracles.hpp"

#include <algorithm>

namespace sgxp2p::fuzz {

std::vector<std::string> RunReport::violated_oracles() const {
  std::vector<std::string> names;
  names.reserve(violations.size());
  for (const Violation& v : violations) names.push_back(v.oracle);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

bool same_violations(const RunReport& a, const RunReport& b) {
  return a.violated_oracles() == b.violated_oracles();
}

}  // namespace sgxp2p::fuzz
