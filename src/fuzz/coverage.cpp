#include "fuzz/coverage.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace sgxp2p::fuzz {

namespace {

constexpr const char* kMagic = "sgxp2p-coverage-v1";

/// Every oracle the runner can judge, used to emit the clean branch of each
/// target-applicable oracle (a run that PASSES erb.agreement reaches a
/// different oracle branch than a run where the oracle never applied).
const char* const kOraclesByTarget[][5] = {
    // kErb
    {"erb.termination", "erb.agreement", "erb.validity",
     "metrics.conservation", nullptr},
    // kErngBasic
    {"erng.termination", "erng.agreement", "metrics.conservation", nullptr,
     nullptr},
    // kErngOpt
    {"erng.termination", "erng.agreement", "metrics.conservation", nullptr,
     nullptr},
    // kRecovery
    {"recovery.liveness", "recovery.restore", "recovery.stale_detect",
     "metrics.conservation", nullptr},
    // kShard
    {"shard.termination", "shard.agreement", "shard.validity",
     "metrics.conservation", nullptr},
};

bool is_hex_digit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

/// Collapses every run of 5+ hex digits to '#': outcome tokens embed value
/// digests ("3:m=9f8a11bc…") that vary with the payload, but the protocol
/// STATE ("decided some m") is the coverage-relevant part. Short digit runs
/// (roster sizes, decide counts) survive — they are states, not values.
std::string normalize_state(std::string_view state) {
  std::string out;
  std::size_t i = 0;
  while (i < state.size()) {
    std::size_t j = i;
    while (j < state.size() && is_hex_digit(state[j])) ++j;
    if (j - i >= 5) {
      out += '#';
    } else {
      out.append(state.substr(i, j - i));
    }
    if (j < state.size()) out += state[j];
    i = j + 1;
  }
  return out;
}

/// log2-style magnitude bucket: 0, 1, 2, … ~64. Counter values are exact
/// and deterministic, but hashing them raw would make every run "novel";
/// the bucket keeps order-of-magnitude protocol activity as the feature.
unsigned bucket(std::uint64_t v) {
  return static_cast<unsigned>(std::bit_width(v));
}

/// Round phase 1/2/3 (early/mid/late) relative to the schedule's budget —
/// the "round phase" axis of the fault-interaction pairs.
unsigned round_phase(std::uint32_t round, std::uint32_t max_rounds) {
  if (max_rounds <= 1) return 1;
  return 1 + std::min<std::uint32_t>(2, (round - 1) * 3 / max_rounds);
}

/// Coarse class of a fault parameter: the interesting boundaries are
/// zero / small / beyond-a-round (delay), not individual values.
unsigned param_class(ActionKind kind, std::uint64_t param) {
  switch (kind) {
    case ActionKind::kDelay:
      return param < 200 ? 0 : param < 500 ? 1 : 2;
    case ActionKind::kPartition:
      return param <= 1 ? 0 : param <= 2 ? 1 : 2;
    case ActionKind::kDuplicate:
      return param == 0 ? 0 : param < 200 ? 1 : 2;
    default:
      return 0;
  }
}

void append_feature_bits(const Schedule& s, std::vector<std::size_t>& bits) {
  auto hit = [&bits](const std::string& feature) {
    bits.push_back(CoverageMap::feature_bit(feature));
  };
  const std::string t = std::string("t=") + target_name(s.target) + ":";
  std::vector<const char*> kinds_present;
  for (const FaultAction& a : s.actions) {
    const char* kind = action_kind_name(a.kind);
    const unsigned phase = round_phase(a.round, s.max_rounds);
    hit(t + "fault:" + kind + ":phase" + std::to_string(phase));
    hit(t + "fault:" + kind + ":peer=" + (a.peer == kNoNode ? "all" : "one"));
    hit(t + "fault:" + kind +
        ":victim=" + (a.node == 0 ? "initiator" : "other"));
    hit(t + "fault:" + kind + ":param" +
        std::to_string(param_class(a.kind, a.param)));
    kinds_present.push_back(kind);
  }
  if (s.actions.empty()) hit(t + "fault:none");
  std::sort(kinds_present.begin(), kinds_present.end(),
            [](const char* a, const char* b) { return std::strcmp(a, b) < 0; });
  kinds_present.erase(std::unique(kinds_present.begin(), kinds_present.end(),
                                  [](const char* a, const char* b) {
                                    return std::strcmp(a, b) == 0;
                                  }),
                      kinds_present.end());
  for (std::size_t i = 0; i < kinds_present.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds_present.size(); ++j) {
      hit(t + "faultpair:" + kinds_present[i] + ":" + kinds_present[j]);
    }
  }
  hit(t + "faulted=" + std::to_string(s.faulted_nodes().size()));
}

}  // namespace

std::size_t CoverageMap::feature_bit(std::string_view feature) {
  // FNV-1a 64: stable across platforms and standard-library versions (the
  // map is committed to baselines, so std::hash's ABI freedom is not OK).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : feature) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h % kBits);
}

std::size_t CoverageMap::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

std::size_t CoverageMap::merge(const CoverageMap& other) {
  std::size_t gained = 0;
  for (std::size_t i = 0; i < kWords; ++i) {
    gained += std::popcount(other.words_[i] & ~words_[i]);
    words_[i] |= other.words_[i];
  }
  return gained;
}

std::size_t CoverageMap::novel_bits(const CoverageMap& other) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kWords; ++i) {
    n += std::popcount(other.words_[i] & ~words_[i]);
  }
  return n;
}

bool CoverageMap::covers(const CoverageMap& other) const {
  for (std::size_t i = 0; i < kWords; ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

std::string CoverageMap::to_text() const {
  std::ostringstream out;
  out << kMagic << "\nbits";
  char buf[17];
  for (std::uint64_t w : words_) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(w));
    out << ' ' << buf;
  }
  out << "\nend\n";
  return out.str();
}

std::optional<CoverageMap> CoverageMap::from_text(const std::string& text,
                                                  std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return fail("missing sgxp2p-coverage-v1 header");
  }
  CoverageMap map;
  bool saw_bits = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key != "bits") return fail("unknown line '" + line + "'");
    for (std::size_t i = 0; i < kWords; ++i) {
      std::string word;
      if (!(ls >> word) || word.size() != 16) {
        return fail("bits line needs " + std::to_string(kWords) +
                    " 16-hex-digit words");
      }
      map.words_[i] = std::strtoull(word.c_str(), nullptr, 16);
    }
    saw_bits = true;
  }
  if (!saw_bits) return fail("missing bits line");
  if (!saw_end) return fail("missing 'end' terminator");
  return map;
}

bool CoverageMap::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_text();
  return static_cast<bool>(out);
}

std::optional<CoverageMap> CoverageMap::load_file(const std::string& path,
                                                  std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str(), error);
}

CoverageMap compute_coverage(const Schedule& schedule,
                             const std::vector<std::string>& violated_oracles,
                             const std::string& outcome, std::uint32_t rounds,
                             const obs::MetricsSnapshot& snapshot) {
  CoverageMap map;
  const std::string t = std::string("t=") + target_name(schedule.target) + ":";

  // Oracle branches: the fired branch of every violated oracle plus the
  // clean branch of every target-applicable one that held.
  for (const std::string& oracle : violated_oracles) {
    map.hit(t + "oracle:" + oracle + ":fail");
  }
  const auto& applicable =
      kOraclesByTarget[static_cast<std::size_t>(schedule.target)];
  for (const char* const* o = applicable; *o != nullptr; ++o) {
    if (std::find(violated_oracles.begin(), violated_oracles.end(), *o) ==
        violated_oracles.end()) {
      map.hit(t + "oracle:" + *o + ":ok");
    }
  }

  // Per-node protocol end states, from the runner's outcome summary. Tokens
  // are "<node>:<state>" (ERB: m=…/bot/undecided/dead; recovery:
  // member/r<k> vs out/r<k> plus the rejoin=/fallback= flags; shard:
  // e<epoch>:<digest>/<decided>of<honest>). Value digests are collapsed so
  // the state, not the payload, is the feature.
  std::istringstream tokens(outcome);
  std::string token;
  while (tokens >> token) {
    const std::size_t colon = token.find(':');
    std::string node = colon == std::string::npos ? std::string("-")
                                                  : token.substr(0, colon);
    std::string state = normalize_state(
        colon == std::string::npos ? token : token.substr(colon + 1));
    map.hit(t + "state:" + node + ":" + state);
    map.hit(t + "state:*:" + state);  // node-independent aggregate
  }
  map.hit(t + "rounds=" + std::to_string(rounds));

  // Bucketed instruments: which counters exist and their order of
  // magnitude. This is where the per-phase protocol activity lives —
  // erb.send{ECHO}, recovery restore counters, shard confirm/record/global
  // traffic — without making every distinct count a fresh feature.
  for (const obs::CounterSample& c : snapshot.counters) {
    map.hit(t + "metric:" + c.name + ":" + std::to_string(bucket(c.value)));
  }

  // Fault-interaction features, shared with schedule_feature_bits so the
  // mutator's pre-run scoring agrees with the post-run map.
  std::vector<std::size_t> bits;
  append_feature_bits(schedule, bits);
  for (std::size_t bit : bits) map.set(bit);
  return map;
}

std::vector<std::size_t> schedule_feature_bits(const Schedule& schedule) {
  std::vector<std::size_t> bits;
  append_feature_bits(schedule, bits);
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  return bits;
}

}  // namespace sgxp2p::fuzz
