#include "fuzz/generator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace sgxp2p::fuzz {

namespace {

// Message-level + partition fault menu with rough paper-attack weights
// (omission is the historically fruitful family, so it dominates).
ActionKind sample_message_kind(Rng& rng, bool allow_crash) {
  std::uint64_t roll = rng.next_below(100);
  if (roll < 30) return ActionKind::kDrop;
  if (roll < 45) return ActionKind::kDelay;
  if (roll < 55) return ActionKind::kDuplicate;
  if (roll < 70) return ActionKind::kCorrupt;
  if (roll < 80) return ActionKind::kReorder;
  if (roll < 92 || !allow_crash) return ActionKind::kPartition;
  return ActionKind::kCrash;
}

FaultAction sample_action(Rng& rng, NodeId node, std::uint32_t n,
                          std::uint32_t hot_rounds, bool allow_crash) {
  FaultAction a;
  a.kind = sample_message_kind(rng, allow_crash);
  a.node = node;
  a.round = 1 + static_cast<std::uint32_t>(rng.next_below(hot_rounds));
  a.peer = kNoNode;
  switch (a.kind) {
    case ActionKind::kDrop:
    case ActionKind::kCorrupt:
      // 30%: target one victim peer instead of everyone (selective flavor).
      if (rng.chance(0.3)) {
        NodeId peer = static_cast<NodeId>(rng.next_below(n));
        if (peer != node) a.peer = peer;
      }
      if (a.kind == ActionKind::kCorrupt) a.param = rng.next_u64();
      break;
    case ActionKind::kDelay:
      // 100 ms (harmless jitter) … 1000 ms (beyond the round ⇒ P5 rejects).
      a.param = 100 + rng.next_below(901);
      break;
    case ActionKind::kDuplicate:
      a.param = rng.next_below(301);
      break;
    case ActionKind::kReorder:
      break;
    case ActionKind::kPartition:
      a.param = 1 + rng.next_below(2);  // isolate for 1–2 rounds
      break;
    case ActionKind::kCrash:
      break;
    case ActionKind::kRecover:
    case ActionKind::kStaleSeal:
      break;  // never sampled here
  }
  return a;
}

/// Picks `want` distinct faulted nodes from `pool` (shuffled), honoring an
/// optional cap on how many may come from ids < cluster_limit.
std::vector<NodeId> pick_faulted(Rng& rng, std::vector<NodeId> pool,
                                 std::size_t want, NodeId cluster_limit,
                                 std::size_t cluster_cap) {
  std::shuffle(pool.begin(), pool.end(), rng);
  std::vector<NodeId> out;
  std::size_t in_cluster = 0;
  for (NodeId id : pool) {
    if (out.size() == want) break;
    if (id < cluster_limit) {
      if (in_cluster == cluster_cap) continue;
      ++in_cluster;
    }
    out.push_back(id);
  }
  return out;
}

void add_faulted_actions(Rng& rng, Schedule& s,
                         const std::vector<NodeId>& faulted,
                         std::uint32_t hot_rounds, bool allow_crash) {
  for (NodeId node : faulted) {
    std::uint32_t count = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t i = 0; i < count; ++i) {
      s.actions.push_back(
          sample_action(rng, node, s.n, hot_rounds, allow_crash));
    }
  }
}

}  // namespace

Schedule generate_schedule(FuzzTarget target, std::uint64_t campaign_seed,
                           std::uint32_t index) {
  // One independent stream per (seed, index, target) cell.
  Rng rng(campaign_seed * 0x9e3779b97f4a7c15ULL + index * 2654435761ULL +
          static_cast<std::uint64_t>(target));
  Schedule s;
  s.target = target;
  s.seed = 1 + rng.next_below(1u << 20);

  switch (target) {
    case FuzzTarget::kErb: {
      s.n = 4 + static_cast<std::uint32_t>(rng.next_below(5));  // 4–8
      s.t = (s.n - 1) / 2;
      s.max_rounds = s.t + 4;
      std::vector<NodeId> pool;
      for (NodeId id = 0; id < s.n; ++id) pool.push_back(id);
      std::size_t want = 1 + rng.next_below(s.t);
      add_faulted_actions(rng, s, pick_faulted(rng, pool, want, 0, 0),
                          s.t + 2, /*allow_crash=*/true);
      break;
    }
    case FuzzTarget::kErngBasic: {
      s.n = 4 + static_cast<std::uint32_t>(rng.next_below(4));  // 4–7
      s.t = (s.n - 1) / 2;
      s.max_rounds = s.t + 4;
      std::vector<NodeId> pool;
      for (NodeId id = 0; id < s.n; ++id) pool.push_back(id);
      std::size_t want = 1 + rng.next_below(s.t);
      add_faulted_actions(rng, s, pick_faulted(rng, pool, want, 0, 0),
                          s.t + 2, /*allow_crash=*/true);
      break;
    }
    case FuzzTarget::kErngOpt: {
      s.n = 6 + static_cast<std::uint32_t>(rng.next_below(7));  // 6–12
      s.t = std::max(1u, s.n / 3);
      if (2 * s.t >= s.n) s.t = (s.n - 1) / 2;
      s.max_rounds = s.n + 8;
      // Fallback cluster = ids < ⌈2n/3⌉; leave the FINAL quorum reachable.
      const NodeId n_c = (2 * s.n + 2) / 3;
      const std::size_t cap = n_c - (n_c / 2 + 1);
      std::vector<NodeId> pool;
      for (NodeId id = 0; id < s.n; ++id) pool.push_back(id);
      std::size_t want = 1 + rng.next_below(s.t);
      add_faulted_actions(rng, s, pick_faulted(rng, pool, want, n_c, cap),
                          std::min(s.max_rounds, s.t + 4),
                          /*allow_crash=*/true);
      break;
    }
    case FuzzTarget::kRecovery: {
      const std::uint32_t roster = 4 + static_cast<std::uint32_t>(
                                           rng.next_below(3));  // 4–6
      s.n = roster + 1;  // one fresh joiner rides along (liveness proof)
      s.t = (roster - 1) / 2;
      s.checkpoint_every = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      const std::uint32_t W = s.t + 2;

      // Victim: any roster member except the sponsors (0 and 2).
      std::vector<NodeId> victims;
      for (NodeId id = 1; id < roster; ++id) {
        if (id != 2) victims.push_back(id);
      }
      const NodeId victim = victims[rng.next_below(victims.size())];
      const std::uint32_t crash_at =
          2 + static_cast<std::uint32_t>(rng.next_below(4));  // 2–5
      const bool recovers = rng.chance(0.85);
      const std::uint32_t recover_at =
          crash_at + 2 + static_cast<std::uint32_t>(rng.next_below(3));
      const std::uint32_t w_rejoin =
          recovers ? (recover_at - 1 + W - 1) / W : 2;
      s.max_rounds = (w_rejoin + 4) * W;

      s.actions.push_back({ActionKind::kCrash, victim, crash_at, kNoNode, 0});
      if (recovers) {
        s.actions.push_back(
            {ActionKind::kRecover, victim, recover_at, kNoNode, 0});
        if (rng.chance(0.3)) {
          s.actions.push_back(
              {ActionKind::kStaleSeal, victim, 1, kNoNode, 0});
        }
      }

      // Remaining byzantine budget goes to scripted message faults on nodes
      // that are neither scenario pivots nor sponsors. The victim occupies
      // one slot either way: permanently when it never recovers, and as a
      // crash-fault during its outage when it does (see Schedule::validate).
      std::size_t budget = s.t - 1;
      std::vector<NodeId> pool;
      for (NodeId id = 1; id < roster; ++id) {
        if (id != 2 && id != victim) pool.push_back(id);
      }
      if (budget > 0 && !pool.empty() && rng.chance(0.6)) {
        std::size_t want = 1 + rng.next_below(budget);
        add_faulted_actions(rng, s, pick_faulted(rng, pool, want, 0, 0),
                            std::min(s.max_rounds, crash_at + W),
                            /*allow_crash=*/false);
      }
      break;
    }
    case FuzzTarget::kShard: {
      // Small multi-committee topologies: enough nodes for 2–4 committees,
      // committees small enough that t ≤ (c−1)/2 leaves room for faults.
      s.n = 10 + static_cast<std::uint32_t>(rng.next_below(15));  // 10–24
      s.committee_size = 5 + static_cast<std::uint32_t>(rng.next_below(3));
      const std::uint32_t t_c = (s.committee_size - 1) / 2;
      s.t = 1 + static_cast<std::uint32_t>(rng.next_below(t_c));
      s.max_rounds = s.min_rounds();
      std::vector<NodeId> pool;
      for (NodeId id = 0; id < s.n; ++id) pool.push_back(id);
      std::size_t want = 1 + rng.next_below(s.t);
      add_faulted_actions(rng, s, pick_faulted(rng, pool, want, 0, 0),
                          s.max_rounds, /*allow_crash=*/true);
      break;
    }
  }

  std::string error;
  CHECK_MSG(s.validate(&error), "generator produced unsound schedule");
  return s;
}

namespace {

bool is_message_kind(ActionKind k) {
  switch (k) {
    case ActionKind::kDrop:
    case ActionKind::kDelay:
    case ActionKind::kDuplicate:
    case ActionKind::kCorrupt:
    case ActionKind::kReorder:
    case ActionKind::kPartition:
      return true;
    default:
      return false;
  }
}

/// Indices of parent actions a generic mutation may touch. The recovery
/// pivots (crash/recover/stale_seal) are excluded: they must stay mutually
/// consistent (same victim, ordered rounds), so blind per-field edits on
/// them mostly burn retry attempts.
std::vector<std::size_t> mutable_actions(const Schedule& s) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < s.actions.size(); ++i) {
    if (s.target != FuzzTarget::kRecovery || is_message_kind(s.actions[i].kind)) {
      out.push_back(i);
    }
  }
  return out;
}

void reset_param_for_kind(FaultAction& a, Rng& rng) {
  switch (a.kind) {
    case ActionKind::kCorrupt:
      a.param = rng.next_u64();
      break;
    case ActionKind::kDelay:
      a.param = 50 + rng.next_below(1451);  // wider than the generator's menu
      break;
    case ActionKind::kDuplicate:
      a.param = rng.next_below(301);
      break;
    case ActionKind::kPartition:
      a.param = 1 + rng.next_below(3);  // generator never isolates 3 rounds
      break;
    default:
      a.param = 0;
      break;
  }
}

/// Applies one mutation operator in place; returns false when the operator
/// has nothing to act on (empty action list, no mutable action, …) so the
/// caller rolls another.
bool apply_mutation(Schedule& s, Rng& rng) {
  const std::vector<std::size_t> idx = mutable_actions(s);
  switch (rng.next_below(7)) {
    case 0: {  // testbed reseed — same faults, different delivery jitter
      s.seed = 1 + rng.next_below(1u << 20);
      return true;
    }
    case 1: {  // round shift, over the FULL budget (not just the hot window)
      if (idx.empty()) return false;
      FaultAction& a = s.actions[idx[rng.next_below(idx.size())]];
      a.round = 1 + static_cast<std::uint32_t>(rng.next_below(s.max_rounds));
      return true;
    }
    case 2: {  // victim swap
      if (idx.empty()) return false;
      FaultAction& a = s.actions[idx[rng.next_below(idx.size())]];
      a.node = static_cast<NodeId>(rng.next_below(s.n));
      return true;
    }
    case 3: {  // fault-type flip (message-level kinds only)
      if (idx.empty()) return false;
      FaultAction& a = s.actions[idx[rng.next_below(idx.size())]];
      if (!is_message_kind(a.kind)) return false;
      constexpr ActionKind kMenu[] = {
          ActionKind::kDrop,      ActionKind::kDelay,
          ActionKind::kDuplicate, ActionKind::kCorrupt,
          ActionKind::kReorder,   ActionKind::kPartition,
      };
      ActionKind next = kMenu[rng.next_below(std::size(kMenu))];
      if (next == a.kind) return false;
      a.kind = next;
      if (a.kind == ActionKind::kPartition) a.peer = kNoNode;
      reset_param_for_kind(a, rng);
      return true;
    }
    case 4: {  // action splice: extra fault on an ALREADY-faulted node, so
               // the byzantine budget is unchanged
      std::vector<NodeId> faulted = s.faulted_nodes();
      if (faulted.empty() || s.actions.size() >= 256) return false;
      NodeId node = faulted[rng.next_below(faulted.size())];
      s.actions.push_back(sample_action(rng, node, s.n, s.max_rounds,
                                        /*allow_crash=*/false));
      return true;
    }
    case 5: {  // peer flip: broadcast fault ↔ selective single-peer fault
      if (idx.empty()) return false;
      FaultAction& a = s.actions[idx[rng.next_below(idx.size())]];
      if (a.kind != ActionKind::kDrop && a.kind != ActionKind::kCorrupt) {
        return false;
      }
      if (a.peer == kNoNode) {
        NodeId peer = static_cast<NodeId>(rng.next_below(s.n));
        if (peer == a.node) return false;
        a.peer = peer;
      } else {
        a.peer = kNoNode;
      }
      return true;
    }
    default: {  // param widen / re-roll
      if (idx.empty()) return false;
      FaultAction& a = s.actions[idx[rng.next_below(idx.size())]];
      reset_param_for_kind(a, rng);
      return true;
    }
  }
}

}  // namespace

Schedule mutate_schedule(const Schedule& parent, Rng& rng) {
  for (int attempt = 0; attempt < 24; ++attempt) {
    Schedule s = parent;
    s.expect_violations.clear();  // mutants carry no replay stamps
    s.expect_digest.clear();
    if (!apply_mutation(s, rng)) continue;
    if (s.validate(nullptr)) return s;
  }
  // Every operator kept failing (e.g. a pivot-only recovery schedule at the
  // edge of its budget): fall back to a reseed, valid whenever parent is.
  Schedule s = parent;
  s.expect_violations.clear();
  s.expect_digest.clear();
  s.seed = 1 + rng.next_below(1u << 20);
  std::string error;
  CHECK_MSG(s.validate(&error), "mutate_schedule fallback unsound");
  return s;
}

}  // namespace sgxp2p::fuzz
