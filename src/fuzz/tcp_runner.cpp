#include "fuzz/tcp_runner.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "crypto/sha256.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/tcp_shim.hpp"
#include "net/tcp_testbed.hpp"
#include "obs/metrics.hpp"
#include "protocol/erb_node.hpp"
#include "protocol/erng_basic.hpp"

namespace sgxp2p::fuzz {

namespace {

constexpr const char* kErbPayload = "fuzz erb payload";

std::vector<NodeId> honest_set(const Schedule& s) {
  std::vector<NodeId> faulted = s.faulted_nodes();
  std::vector<NodeId> honest;
  for (NodeId id = 0; id < s.n; ++id) {
    if (!std::binary_search(faulted.begin(), faulted.end(), id)) {
      honest.push_back(id);
    }
  }
  return honest;
}

std::string hex8(const Bytes& b) {
  return hex_encode(ByteView(b.data(), std::min<std::size_t>(8, b.size())));
}

bool is_honest(const std::vector<NodeId>& honest, NodeId id) {
  return std::find(honest.begin(), honest.end(), id) != honest.end();
}

/// Wall-clock metric values are timing-dependent, so the TCP digest covers
/// only the honest outcome string — the quantity the paper's theorems pin.
/// Conservation over the transport counters is still a fair oracle: the bus
/// can lose frames at teardown but never invent them.
void finalize_tcp(const obs::MetricsRegistry& registry, RunReport& report) {
  obs::MetricsSnapshot snap = registry.snapshot();
  auto value = [&snap](const char* name) -> std::uint64_t {
    const obs::CounterSample* c = snap.find_counter(name);
    return c != nullptr ? c->value : 0;
  };
  if (value("net.tcp.received") > value("net.tcp.sends")) {
    report.violations.push_back(
        {oracle::kMetricsConservation,
         "net.tcp.received " + std::to_string(value("net.tcp.received")) +
             " > net.tcp.sends " + std::to_string(value("net.tcp.sends"))});
  }
  report.digest = hex_encode(crypto::Sha256::hash_bytes(
      ByteView(reinterpret_cast<const std::uint8_t*>(report.outcome.data()),
               report.outcome.size())));
}

RunReport run_tcp_erb(const Schedule& s, net::TcpTestbed& bed,
                      const obs::MetricsRegistry& registry) {
  const Bytes payload = to_bytes(kErbPayload);
  const NodeId initiator = 0;
  CHECK_MSG(
      bed.build([&payload, initiator](
                    NodeId id, sgx::SgxPlatform& platform,
                    sgx::EnclaveHostIface& host, protocol::PeerConfig pc,
                    const sgx::SimIAS& ias)
                    -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErbNode>(
            platform, id, host, pc, ias, initiator,
            id == initiator ? payload : Bytes{});
      }),
      "run_tcp_schedule: socket mesh failed");
  bed.start();

  const std::vector<NodeId> honest = honest_set(s);
  RunReport report;
  report.rounds = bed.run_rounds(s.max_rounds, [&]() {
    for (NodeId id : honest) {
      if (!bed.enclave_as<protocol::ErbNode>(id).result().decided) {
        return false;
      }
    }
    return true;
  });

  std::ostringstream outcome;
  const bool initiator_honest = is_honest(honest, initiator);
  bed.locked([&] {
    bool have_ref = false;
    std::optional<Bytes> ref;
    for (NodeId id = 0; id < s.n; ++id) {
      if (!is_honest(honest, id)) {
        // Faulted nodes' states are timing-dependent over real sockets;
        // they carry no oracle weight and stay out of the digest input.
        outcome << id << ":faulted ";
        continue;
      }
      const auto& r = bed.enclave_as<protocol::ErbNode>(id).result();
      outcome << id
              << (r.decided ? (r.value ? ":m=" + hex8(*r.value) : ":bot")
                            : ":undecided")
              << " ";
      if (!r.decided) {
        report.violations.push_back(
            {oracle::kErbTermination,
             "honest node " + std::to_string(id) + " undecided after " +
                 std::to_string(report.rounds) + " rounds"});
        continue;
      }
      if (!have_ref) {
        ref = r.value;
        have_ref = true;
      } else if (r.value != ref) {
        report.violations.push_back(
            {oracle::kErbAgreement,
             "honest node " + std::to_string(id) +
                 " disagrees with the first honest decision"});
      }
      if (initiator_honest && (!r.value || *r.value != payload)) {
        report.violations.push_back(
            {oracle::kErbValidity, "initiator honest but node " +
                                       std::to_string(id) +
                                       " did not decide m"});
      }
    }
  });
  report.outcome = outcome.str();
  finalize_tcp(registry, report);
  return report;
}

RunReport run_tcp_erng(const Schedule& s, net::TcpTestbed& bed,
                       const obs::MetricsRegistry& registry) {
  CHECK_MSG(
      bed.build([](NodeId id, sgx::SgxPlatform& platform,
                   sgx::EnclaveHostIface& host, protocol::PeerConfig pc,
                   const sgx::SimIAS& ias)
                    -> std::unique_ptr<protocol::PeerEnclave> {
        return std::make_unique<protocol::ErngBasicNode>(platform, id, host,
                                                         pc, ias);
      }),
      "run_tcp_schedule: socket mesh failed");
  bed.start();

  const std::vector<NodeId> honest = honest_set(s);
  RunReport report;
  report.rounds = bed.run_rounds(s.max_rounds, [&]() {
    for (NodeId id : honest) {
      if (!bed.enclave_as<protocol::ErngBasicNode>(id).result().done) {
        return false;
      }
    }
    return true;
  });

  std::ostringstream outcome;
  bed.locked([&] {
    bool have_ref = false;
    bool ref_bottom = false;
    Bytes ref_value;
    for (NodeId id = 0; id < s.n; ++id) {
      if (!is_honest(honest, id)) {
        outcome << id << ":faulted ";
        continue;
      }
      const auto& r = bed.enclave_as<protocol::ErngBasicNode>(id).result();
      outcome << id
              << (r.done ? (r.is_bottom ? ":bot" : ":r=" + hex8(r.value))
                         : ":pending")
              << " ";
      if (!r.done) {
        report.violations.push_back(
            {oracle::kErngTermination,
             "honest node " + std::to_string(id) + " has no output after " +
                 std::to_string(report.rounds) + " rounds"});
        continue;
      }
      if (!have_ref) {
        ref_bottom = r.is_bottom;
        ref_value = r.value;
        have_ref = true;
      } else if (r.is_bottom != ref_bottom ||
                 (!r.is_bottom && r.value != ref_value)) {
        report.violations.push_back(
            {oracle::kErngAgreement,
             "honest node " + std::to_string(id) +
                 " output differs from the first honest output"});
      }
    }
  });
  report.outcome = outcome.str();
  finalize_tcp(registry, report);
  return report;
}

}  // namespace

bool tcp_supported(const Schedule& schedule, std::string* why) {
  if (schedule.target != FuzzTarget::kErb &&
      schedule.target != FuzzTarget::kErngBasic) {
    if (why) *why = std::string("target ") + target_name(schedule.target) +
                    " has no TCP runner";
    return false;
  }
  for (const FaultAction& a : schedule.actions) {
    if (a.kind == ActionKind::kCrash || a.kind == ActionKind::kRecover ||
        a.kind == ActionKind::kStaleSeal) {
      if (why) *why = std::string("action ") + action_kind_name(a.kind) +
                      " has no socket-level expression";
      return false;
    }
  }
  return true;
}

RunReport run_tcp_schedule(const Schedule& schedule,
                           const TcpRunOptions& options) {
  std::string error;
  CHECK_MSG(schedule.validate(&error), "run_tcp_schedule: invalid schedule");
  CHECK_MSG(tcp_supported(schedule, &error),
            "run_tcp_schedule: unsupported schedule");

  // Fresh registry per run: the bus resolves its net.tcp.* handles from
  // current() at construction (inside bed.build), so each run's counters
  // start at zero regardless of what ran before on this thread.
  obs::MetricsRegistry registry;
  obs::MetricsRegistry::ScopedCurrent scoped(registry);

  net::TcpTestbedConfig cfg;
  cfg.n = schedule.n;
  cfg.t = schedule.t;
  cfg.round_ms = options.round_ms;
  cfg.seed = schedule.seed;
  net::TcpTestbed bed(cfg);
  TcpFaultShim shim(bed, schedule);
  shim.install();

  RunReport report = schedule.target == FuzzTarget::kErb
                         ? run_tcp_erb(schedule, bed, registry)
                         : run_tcp_erng(schedule, bed, registry);
  const TcpFaultShim::Stats st = shim.stats();
  LOG_DEBUG("tcp fuzz: dropped=", st.dropped, " delayed=", st.delayed,
            " duplicated=", st.duplicated, " corrupted=", st.corrupted,
            " partition_dropped=", st.partition_dropped);
  return report;
}

TcpCampaignResult run_tcp_campaign(const TcpCampaignOptions& options) {
  TcpCampaignResult result;
  std::vector<FuzzTarget> targets = options.targets;
  if (targets.empty()) {
    targets = {FuzzTarget::kErb, FuzzTarget::kErngBasic};
  }
  TcpRunOptions run_opts;
  run_opts.round_ms = options.round_ms;
  for (FuzzTarget target : targets) {
    for (std::uint32_t i = 0; i < options.schedules; ++i) {
      if (result.failures.size() >= options.max_failures) return result;
      Schedule s = generate_schedule(target, options.seed, i);
      std::string why;
      if (!tcp_supported(s, &why)) {
        ++result.skipped;
        continue;
      }
      RunReport report = run_tcp_schedule(s, run_opts);
      ++result.executed;
      if (options.progress_every != 0 &&
          (i + 1) % options.progress_every == 0) {
        LOG_INFO("tcp fuzz: ", target_name(target), " ", i + 1, "/",
                 options.schedules, " run, ", result.skipped, " skipped, ",
                 result.failures.size(), " failure(s)");
      }
      if (report.passed()) continue;
      CampaignFailure failure;
      failure.target = target;
      failure.index = i;
      failure.shrunk = s;  // stamped as-is; TCP runs are too slow to shrink
      failure.shrunk.expect_violations = report.violated_oracles();
      failure.report = report;
      std::string path = options.out_dir.empty()
                             ? std::string()
                             : options.out_dir + "/";
      path += std::string("tcp-") + target_name(target) + "-" +
              std::to_string(i) + ".sched";
      failure.repro_path = failure.shrunk.write_file(path) ? path : "";
      result.failures.push_back(std::move(failure));
    }
  }
  return result;
}

}  // namespace sgxp2p::fuzz
