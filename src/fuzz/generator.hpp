// Seeded schedule generator.
//
// generate_schedule(target, campaign_seed, index) is a pure function: the
// same triple always yields the same Schedule (asserted byte-for-byte by
// test_fuzz.cpp), so a campaign is reproducible from its seed alone and a
// CI failure names the exact schedule that produced it.
//
// Generated schedules are always sound by construction (Schedule::validate
// passes): fault actions land only on a "faulted" node set whose size stays
// within the byzantine budget the target's proofs quantify over, sponsors
// and scenario pivots stay clean, and per-target n/t shapes track what the
// protocols require (t < N/2, erng_opt in the fallback-cluster regime).
#pragma once

#include "fuzz/schedule.hpp"

namespace sgxp2p::fuzz {

[[nodiscard]] Schedule generate_schedule(FuzzTarget target,
                                         std::uint64_t campaign_seed,
                                         std::uint32_t index);

}  // namespace sgxp2p::fuzz
