// Seeded schedule generator.
//
// generate_schedule(target, campaign_seed, index) is a pure function: the
// same triple always yields the same Schedule (asserted byte-for-byte by
// test_fuzz.cpp), so a campaign is reproducible from its seed alone and a
// CI failure names the exact schedule that produced it.
//
// Generated schedules are always sound by construction (Schedule::validate
// passes): fault actions land only on a "faulted" node set whose size stays
// within the byzantine budget the target's proofs quantify over, sponsors
// and scenario pivots stay clean, and per-target n/t shapes track what the
// protocols require (t < N/2, erng_opt in the fallback-cluster regime).
#pragma once

#include "common/rng.hpp"
#include "fuzz/schedule.hpp"

namespace sgxp2p::fuzz {

[[nodiscard]] Schedule generate_schedule(FuzzTarget target,
                                         std::uint64_t campaign_seed,
                                         std::uint32_t index);

/// One mutation step for the coverage-guided loop: copies `parent`, applies
/// a single randomly chosen operator — action splice, round shift, victim
/// swap, fault-type flip, peer flip, param widen, action drop, or testbed
/// reseed — and returns the first candidate that passes Schedule::validate
/// (falling back to a pure reseed, which is valid whenever the parent is).
/// Deliberately reaches regions generate_schedule never samples: rounds in
/// the cold (t+2, max_rounds] tail, partition lengths of 3, and fault-kind
/// pairs the per-node sampler cannot co-locate — that surplus is what makes
/// a guided campaign strictly out-cover a fresh-random one at equal budget
/// (test_coverage.cpp asserts this).
[[nodiscard]] Schedule mutate_schedule(const Schedule& parent, Rng& rng);

}  // namespace sgxp2p::fuzz
