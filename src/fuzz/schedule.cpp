#include "fuzz/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "shard/election.hpp"

namespace sgxp2p::fuzz {

namespace {

constexpr const char* kMagic = "sgxp2p-schedule-v1";

struct KindName {
  ActionKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ActionKind::kDrop, "drop"},           {ActionKind::kDelay, "delay"},
    {ActionKind::kDuplicate, "duplicate"}, {ActionKind::kCorrupt, "corrupt"},
    {ActionKind::kReorder, "reorder"},     {ActionKind::kPartition, "partition"},
    {ActionKind::kCrash, "crash"},         {ActionKind::kRecover, "recover"},
    {ActionKind::kStaleSeal, "stale_seal"},
};

constexpr const char* kTargetNames[] = {"erb", "erng_basic", "erng_opt",
                                        "recovery", "shard"};

}  // namespace

const char* action_kind_name(ActionKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "?";
}

std::optional<ActionKind> action_kind_from(const std::string& name) {
  for (const auto& [k, n] : kKindNames) {
    if (name == n) return k;
  }
  return std::nullopt;
}

const char* target_name(FuzzTarget target) {
  return kTargetNames[static_cast<std::size_t>(target)];
}

std::optional<FuzzTarget> target_from(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kTargetNames); ++i) {
    if (name == kTargetNames[i]) return static_cast<FuzzTarget>(i);
  }
  return std::nullopt;
}

std::vector<NodeId> Schedule::faulted_nodes() const {
  std::vector<NodeId> out;
  for (const FaultAction& a : actions) {
    bool faulting = false;
    switch (a.kind) {
      case ActionKind::kDrop:
      case ActionKind::kDelay:
      case ActionKind::kDuplicate:
      case ActionKind::kCorrupt:
      case ActionKind::kReorder:
      case ActionKind::kPartition:
        faulting = true;
        break;
      case ActionKind::kCrash:
        // Permanent crash only; a later recover restores the liveness
        // obligation (the recovery oracles then assert it).
        faulting = std::none_of(actions.begin(), actions.end(),
                                [&a](const FaultAction& b) {
                                  return b.kind == ActionKind::kRecover &&
                                         b.node == a.node && b.round > a.round;
                                });
        break;
      case ActionKind::kRecover:
      case ActionKind::kStaleSeal:
        break;
    }
    if (faulting) out.push_back(a.node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

RecoveryWindows recovery_windows(const Schedule& s) {
  RecoveryWindows w;
  w.W = s.t + 2;
  for (const FaultAction& a : s.actions) {
    if (a.kind == ActionKind::kCrash) {
      w.has_crash = true;
      w.victim = a.node;
      w.crash_round = a.round;
    } else if (a.kind == ActionKind::kRecover) {
      w.recovers = true;
      w.recover_round = a.round;
    }
  }
  if (w.recovers) {
    w.w_rejoin = (w.recover_round - 1 + w.W - 1) / w.W;
    w.w_extra = w.w_rejoin + 2;
  } else {
    w.w_extra = w.has_crash ? w.crash_round / w.W + 1 : 1;
  }
  return w;
}

std::uint32_t Schedule::min_rounds() const {
  switch (target) {
    case FuzzTarget::kErb:
    case FuzzTarget::kErngBasic:
      // Every honest node force-accepts (value or ⊥) by instance round t+3.
      return t + 3;
    case FuzzTarget::kErngOpt: {
      // Forced ⊥ lands at final_round_ + 2 = (n_c − 1)/2 + 6 in the
      // deterministic-fallback regime validate() pins the fuzzer to.
      const std::uint32_t n_c = (2 * n + 2) / 3;
      return (n_c - 1) / 2 + 6;
    }
    case FuzzTarget::kRecovery: {
      // The fresh join's window closes (and its WELCOME goes out) in the
      // first round of the next window; +1 slack for the delivery.
      const RecoveryWindows w = recovery_windows(*this);
      return (static_cast<std::uint32_t>(w.w_extra) + 1) * w.W + 2;
    }
    case FuzzTarget::kShard: {
      // The shard runner drives two chained epochs (so the beacon handoff is
      // exercised); each needs the full epoch budget at this geometry.
      const std::uint32_t c =
          committee_size != 0 ? committee_size : shard::auto_committee_size(n);
      return 2 * shard::epoch_round_budget(n, c);
    }
  }
  return 1;
}

bool Schedule::validate(std::string* error) const {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (n < 2 || n > 256) return fail("n out of range [2, 256]");
  if (2 * t >= n) return fail("t must satisfy 2t < n");
  if (max_rounds == 0 || max_rounds > 512) {
    return fail("rounds out of range [1, 512]");
  }
  if (actions.size() > 256) return fail("more than 256 actions");
  if (target == FuzzTarget::kRecovery &&
      (checkpoint_every == 0 || checkpoint_every > max_rounds)) {
    return fail("checkpoint_every out of range");
  }
  if (target == FuzzTarget::kShard) {
    if (committee_size != 0 && (committee_size < 4 || committee_size > n)) {
      return fail("shard: committee_size must be 0 (auto) or in [4, n]");
    }
    // Election placement is seed-dependent, so the budget must hold even if
    // every faulted node lands in one committee: t ≤ (c − 1) / 2, the
    // smallest per-committee byzantine bound any committee can have.
    const std::uint32_t c =
        committee_size != 0 ? committee_size : shard::auto_committee_size(n);
    if (t > (c - 1) / 2) {
      return fail("shard: t exceeds the per-committee budget (c-1)/2");
    }
  } else if (committee_size != 0) {
    return fail("committee_size only valid for the shard target");
  }
  for (const FaultAction& a : actions) {
    if (a.node >= n) return fail("action node out of range");
    if (a.round == 0 || a.round > max_rounds) {
      return fail("action round out of range");
    }
    if (a.peer != kNoNode && a.peer >= n) {
      return fail("action peer out of range");
    }
    if ((a.kind == ActionKind::kRecover || a.kind == ActionKind::kStaleSeal) &&
        target != FuzzTarget::kRecovery) {
      return fail("recover/stale_seal only valid for the recovery target");
    }
  }
  // The honest-node oracles quantify over non-faulted nodes, so a schedule
  // that faults more than t hosts asserts nothing the protocol promises.
  std::vector<NodeId> faulted = faulted_nodes();
  if (faulted.size() > t) {
    return fail("faulted nodes exceed the byzantine budget t");
  }
  if (target == FuzzTarget::kErngOpt) {
    // Keep fuzzing inside the deterministic 2N/3 fallback-cluster regime
    // (N < 4γ with γ ≥ 4) so cluster membership is a function of n alone,
    // and leave the FINAL quorum ⌊n_c/2⌋+1 reachable by honest members.
    if (n > 15) return fail("erng_opt schedules support n <= 15");
    const std::uint32_t n_c = (2 * n + 2) / 3;
    const std::uint32_t cap = n_c - (n_c / 2 + 1);
    std::uint32_t in_cluster = 0;
    for (NodeId f : faulted) in_cluster += f < n_c ? 1 : 0;
    if (in_cluster > cap) {
      return fail("erng_opt: faulted cluster members exceed quorum slack");
    }
  }
  if (target == FuzzTarget::kRecovery) {
    // The scenario is single-victim: node `crash.node` crashes and (maybe)
    // recovers; sponsors 0 and 2 plus the fresh joiner n−1 must stay clean
    // or the liveness oracle would assert an unreachable rejoin.
    const FaultAction* crash = nullptr;
    const FaultAction* recover = nullptr;
    for (const FaultAction& a : actions) {
      if (a.kind == ActionKind::kCrash) {
        if (crash != nullptr) return fail("recovery: more than one crash");
        crash = &a;
      }
      if (a.kind == ActionKind::kRecover) {
        if (recover != nullptr) return fail("recovery: more than one recover");
        recover = &a;
      }
    }
    if (n < 5) return fail("recovery schedules need n >= 5 (roster + joiner)");
    for (const FaultAction& a : actions) {
      if (a.kind == ActionKind::kRecover || a.kind == ActionKind::kStaleSeal) {
        if (crash == nullptr || a.node != crash->node) {
          return fail("recovery: recover/stale_seal must match the victim");
        }
      }
    }
    if (recover != nullptr &&
        (crash == nullptr || recover->round <= crash->round)) {
      return fail("recovery: recover must come after the crash");
    }
    if (crash != nullptr && (crash->node == 0 || crash->node == 2 ||
                             crash->node == n - 1)) {
      return fail("recovery: victim collides with a sponsor or the joiner");
    }
    for (NodeId f : faulted) {
      if (f == 0 || f == 2 || f == n - 1) {
        return fail("recovery: sponsors and the fresh joiner must stay clean");
      }
    }
    // A recovering victim is silent from its crash until the rejoin WELCOME
    // lands, so the join-window ERBs run with it as a crash-fault: it
    // occupies one byzantine slot even though faulted_nodes() exempts it.
    // Without this, t message-faulting extras plus the mute victim exceed
    // the 2t < n bound inside a window and an honest sponsor may P4-halt —
    // permitted protocol behavior the liveness oracle must not call a bug.
    if (crash != nullptr && recover != nullptr && faulted.size() + 1 > t) {
      return fail(
          "recovery: recovering victim consumes a byzantine slot; message "
          "faults must fit in t-1");
    }
  }
  if (max_rounds < min_rounds()) {
    return fail("rounds below the target's liveness horizon (min " +
                std::to_string(min_rounds()) + ")");
  }
  return true;
}

std::string Schedule::to_text() const {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "target " << target_name(target) << '\n';
  out << "n " << n << '\n';
  out << "t " << t << '\n';
  out << "seed " << seed << '\n';
  out << "rounds " << max_rounds << '\n';
  if (target == FuzzTarget::kRecovery) {
    out << "checkpoint_every " << checkpoint_every << '\n';
  }
  if (target == FuzzTarget::kShard && committee_size != 0) {
    out << "committee_size " << committee_size << '\n';
  }
  for (const FaultAction& a : actions) {
    out << "action " << action_kind_name(a.kind) << ' ' << a.node << ' '
        << a.round << ' ';
    if (a.peer == kNoNode) {
      out << '*';
    } else {
      out << a.peer;
    }
    out << ' ' << a.param << '\n';
  }
  for (const std::string& v : expect_violations) {
    out << "expect_violation " << v << '\n';
  }
  if (!expect_digest.empty()) out << "expect_digest " << expect_digest << '\n';
  out << "end\n";
  return out.str();
}

std::optional<Schedule> Schedule::from_text(const std::string& text,
                                            std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return fail("missing sgxp2p-schedule-v1 header");
  }
  Schedule s;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "target") {
      std::string name;
      ls >> name;
      auto t = target_from(name);
      if (!t) return fail("unknown target '" + name + "'");
      s.target = *t;
    } else if (key == "n") {
      ls >> s.n;
    } else if (key == "t") {
      ls >> s.t;
    } else if (key == "seed") {
      ls >> s.seed;
    } else if (key == "rounds") {
      ls >> s.max_rounds;
    } else if (key == "checkpoint_every") {
      ls >> s.checkpoint_every;
    } else if (key == "committee_size") {
      ls >> s.committee_size;
    } else if (key == "action") {
      std::string kind_name, peer_str;
      FaultAction a;
      ls >> kind_name >> a.node >> a.round >> peer_str >> a.param;
      auto kind = action_kind_from(kind_name);
      if (!kind) return fail("unknown action kind '" + kind_name + "'");
      a.kind = *kind;
      if (peer_str == "*") {
        a.peer = kNoNode;
      } else {
        a.peer = static_cast<NodeId>(std::strtoul(peer_str.c_str(), nullptr, 10));
      }
      s.actions.push_back(a);
    } else if (key == "expect_violation") {
      std::string v;
      ls >> v;
      s.expect_violations.push_back(v);
    } else if (key == "expect_digest") {
      ls >> s.expect_digest;
    } else {
      return fail("unknown line '" + line + "'");
    }
    if (ls.fail()) return fail("malformed line '" + line + "'");
  }
  if (!saw_end) return fail("missing 'end' terminator");
  if (!s.validate(error)) return std::nullopt;
  return s;
}

bool Schedule::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_text();
  return static_cast<bool>(out);
}

std::optional<Schedule> Schedule::load_file(const std::string& path,
                                            std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str(), error);
}

}  // namespace sgxp2p::fuzz
