// Schedule runner — executes one Schedule on a fresh deterministic testbed
// and judges the outcome against the property oracles.
//
// Each run gets its own MetricsRegistry (rebound via ScopedCurrent), so runs
// are hermetic: the digest covers exactly this run's metrics, and campaigns
// never bleed counters into each other or into the global registry.
//
// Determinism contract: everything the run observes is a pure function of
// the Schedule — testbed seed, fault script, partition windows, crash and
// relaunch rounds, join plan. run_schedule on the same Schedule therefore
// returns byte-identical RunReports (including the digest); the replay and
// shrinking machinery is built on this.
#pragma once

#include "fuzz/oracles.hpp"
#include "fuzz/schedule.hpp"
#include "net/simulator.hpp"

namespace sgxp2p::fuzz {

struct RunOptions {
  /// Arms the test-only canary.no_bottom oracle (deliberately too strong —
  /// see oracles.hpp). Used by tests and --fuzz-canary to prove the
  /// find-shrink-replay loop works end to end.
  bool canary = false;
  /// Records a causal trace of the run and checks the span DAG against the
  /// conservation oracle (causal.conservation). Off by default: tracing
  /// does not touch metrics, so digests are unaffected either way, but the
  /// ring costs memory on big campaigns.
  bool check_causal = false;
  /// Event engine driving the run. kDefault keeps the testbed's resolution
  /// (SGXP2P_SIM_ENGINE env, else the wheel) — safe because digests and
  /// coverage maps are engine-identical; tests pin kWheel/kHeap/kParallel
  /// explicitly to prove exactly that.
  sim::SimEngine engine = sim::SimEngine::kDefault;
  /// Worker count for kParallel (ignored by the serial engines). >1 is
  /// safe: the parallel engine replays side effects in canonical order, so
  /// reports stay byte-identical (test_coverage.cpp enforces this).
  std::uint32_t jobs = 1;
};

[[nodiscard]] RunReport run_schedule(const Schedule& schedule,
                                     const RunOptions& options = {});

}  // namespace sgxp2p::fuzz
