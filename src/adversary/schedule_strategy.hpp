// ScheduleStrategy — a byzantine host driven by a precomputed fault script.
//
// Where the hand-written strategies in strategies.hpp each realize ONE
// attack family with fixed parameters, ScheduleStrategy executes an
// arbitrary per-round composition of them: the fuzzer (src/fuzz/) compiles
// a serialized Schedule into per-node MsgFault lists and the strategy
// replays those faults against the same HostContext hooks the hand-written
// strategies use. Because the script is data, the same schedule always
// produces the same byte stream — this is what makes fuzzer failures
// replayable and shrinkable.
//
// Only message-level faults live here (drop, delay, duplicate, corrupt,
// reorder, stale-seal restore). Partition, crash, and recover actions need
// testbed/network capabilities a host does not have; the fuzz runner drives
// those from the round hook.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "adversary/strategy.hpp"

namespace sgxp2p::adversary {

/// Message-level fault kinds a schedule can pin to a (node, round) cell.
enum class MsgFaultKind : std::uint8_t {
  kDrop,       // swallow the blob
  kDelay,      // forward after `param` virtual ms (≥ round ⇒ P5 rejects)
  kDuplicate,  // forward, then forward a copy after `param` ms (A5 shape)
  kCorrupt,    // flip one byte before forwarding (A2 shape, MAC must trip)
  kReorder,    // buffer the round's blobs, release them in reverse at its end
};

struct MsgFault {
  MsgFaultKind kind = MsgFaultKind::kDrop;
  std::uint32_t round = 1;  // 1-based protocol round the fault is armed in
  NodeId peer = kNoNode;    // restrict to this destination; kNoNode = all
  std::uint64_t param = 0;  // kind-specific (delay ms, corrupt byte seed)
};

/// Round geometry, shared by every ScheduleStrategy of one run. The testbed
/// only fixes T0 at start(), after strategies are constructed, so the
/// runner fills this in between build() and the round loop.
struct ScheduleClock {
  SimTime t0 = 0;
  SimDuration round_ms = 1;

  [[nodiscard]] std::uint32_t round_at(SimTime now) const {
    if (now < t0 || round_ms == 0) return 0;
    return static_cast<std::uint32_t>((now - t0) / round_ms) + 1;
  }
  /// Last instant still inside `round` (reorder releases land here).
  [[nodiscard]] SimTime round_end(std::uint32_t round) const {
    return t0 + static_cast<SimTime>(round) * round_ms - 1;
  }
};

class ScheduleStrategy final : public Strategy {
 public:
  ScheduleStrategy(std::vector<MsgFault> faults,
                   std::shared_ptr<const ScheduleClock> clock,
                   bool stale_seal = false)
      : faults_(std::move(faults)),
        clock_(std::move(clock)),
        stale_seal_(stale_seal) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    const std::uint32_t round = clock_->round_at(ctx.now());
    bool drop = false;
    bool reorder = false;
    std::uint64_t delay = 0;        // 0 = no delay fault
    std::uint64_t dup_after = ~0ULL;  // ~0 = no duplicate fault
    for (const MsgFault& f : faults_) {
      if (f.round != round) continue;
      if (f.peer != kNoNode && f.peer != to) continue;
      switch (f.kind) {
        case MsgFaultKind::kDrop:
          drop = true;
          break;
        case MsgFaultKind::kDelay:
          delay = std::max<std::uint64_t>(delay, f.param);
          break;
        case MsgFaultKind::kDuplicate:
          dup_after = std::min<std::uint64_t>(dup_after, f.param);
          break;
        case MsgFaultKind::kCorrupt:
          if (!blob.empty()) {
            std::size_t at = static_cast<std::size_t>(f.param) % blob.size();
            blob[at] ^= static_cast<std::uint8_t>(((f.param >> 8) & 0xff) | 1);
          }
          break;
        case MsgFaultKind::kReorder:
          reorder = true;
          break;
      }
    }
    if (drop) return;
    if (dup_after != ~0ULL) {
      Bytes copy = blob;
      ctx.schedule_in(static_cast<SimDuration>(dup_after),
                      [&ctx, to, copy = std::move(copy)]() mutable {
                        ctx.forward(to, std::move(copy));
                      });
    }
    if (reorder) {
      buffer_for_reorder(ctx, round, to, std::move(blob));
      return;
    }
    if (delay > 0) {
      ctx.schedule_in(static_cast<SimDuration>(delay),
                      [&ctx, to, blob = std::move(blob)]() mutable {
                        ctx.forward(to, std::move(blob));
                      });
      return;
    }
    ctx.forward(to, std::move(blob));
  }

  std::optional<Bytes> on_restore(const std::vector<Bytes>& history) override {
    if (history.empty()) return std::nullopt;
    // Stale-seal replay (rollback attempt): answer with the OLDEST blob.
    return stale_seal_ ? history.front() : history.back();
  }

  /// A scripted host is byzantine exactly when the script makes it deviate.
  [[nodiscard]] bool is_byzantine() const override {
    return !faults_.empty() || stale_seal_;
  }

 private:
  void buffer_for_reorder(HostContext& ctx, std::uint32_t round, NodeId to,
                          Bytes blob) {
    if (reorder_round_ != round) {
      // First buffered blob of this round: arm one flush at the round's end
      // that releases everything buffered by then in REVERSE send order.
      reorder_round_ = round;
      reorder_buf_.clear();
      SimTime end = clock_->round_end(round);
      SimDuration wait = end > ctx.now() ? end - ctx.now() : 0;
      ctx.schedule_in(wait, [this, &ctx, round]() {
        if (reorder_round_ != round) return;
        for (auto it = reorder_buf_.rbegin(); it != reorder_buf_.rend();
             ++it) {
          ctx.forward(it->first, std::move(it->second));
        }
        reorder_buf_.clear();
        reorder_round_ = 0;
      });
    }
    reorder_buf_.emplace_back(to, std::move(blob));
  }

  std::vector<MsgFault> faults_;
  std::shared_ptr<const ScheduleClock> clock_;
  bool stale_seal_;
  std::uint32_t reorder_round_ = 0;
  std::vector<std::pair<NodeId, Bytes>> reorder_buf_;
};

}  // namespace sgxp2p::adversary
