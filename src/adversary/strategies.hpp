// Concrete byzantine host strategies.
//
// Each class realizes one of the paper's attack families (Section 2.3) at
// the only surface left to the adversary after the SGX reduction — the
// opaque-blob transfer layer:
//   A2 (forgery)            → CorruptStrategy (must be absorbed by P2)
//   A3 (selective omission) → SelectiveOmission / RandomOmission / Crash /
//                             CiphertextSelective (shows P3 blinds content)
//   A4 (delay)              → DelayStrategy (must be rejected by P5)
//   A5 (replay)             → ReplayStrategy (must be rejected by P6)
//   §6.3 worst case         → ChainStrategy (colluding chain that maximizes
//                             rounds while P4 eliminates each link)
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "adversary/strategy.hpp"

namespace sgxp2p::adversary {

/// Stops all communication (both directions) permanently from construction.
/// The classic crash fault; also models a node whose enclave was killed.
class CrashStrategy final : public Strategy {
 public:
  void on_send(HostContext&, NodeId, Bytes) override {}
  void on_receive(HostContext&, NodeId, Bytes) override {}
};

/// Drops each outbound / inbound blob independently with fixed probability.
class RandomOmissionStrategy final : public Strategy {
 public:
  RandomOmissionStrategy(double drop_send, double drop_recv)
      : drop_send_(drop_send), drop_recv_(drop_recv) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    if (!ctx.rng().chance(drop_send_)) ctx.forward(to, std::move(blob));
  }
  void on_receive(HostContext& ctx, NodeId from, Bytes blob) override {
    if (!ctx.rng().chance(drop_recv_)) ctx.deliver(from, std::move(blob));
  }

 private:
  double drop_send_;
  double drop_recv_;
};

/// Identity-based selective omission (attack A3, second type): drops all
/// traffic to/from the victim set, faithful to everyone else.
class SelectiveOmissionStrategy final : public Strategy {
 public:
  explicit SelectiveOmissionStrategy(std::set<NodeId> victims,
                                     bool drop_inbound = false)
      : victims_(std::move(victims)), drop_inbound_(drop_inbound) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    if (!victims_.contains(to)) ctx.forward(to, std::move(blob));
  }
  void on_receive(HostContext& ctx, NodeId from, Bytes blob) override {
    if (!(drop_inbound_ && victims_.contains(from))) {
      ctx.deliver(from, std::move(blob));
    }
  }

 private:
  std::set<NodeId> victims_;
  bool drop_inbound_;
};

/// Content-based selective omission attempted against ciphertext (attack
/// A3, first type): drops outbound blobs whose first payload byte matches a
/// predicate. Against the blinded channel this can only implement an
/// content-independent coin flip — the bias tests verify exactly that.
class CiphertextSelectiveStrategy final : public Strategy {
 public:
  /// Drops when (first byte of the sealed blob) < threshold.
  explicit CiphertextSelectiveStrategy(std::uint8_t threshold)
      : threshold_(threshold) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    if (blob.empty() || blob[0] >= threshold_) ctx.forward(to, std::move(blob));
  }

 private:
  std::uint8_t threshold_;
};

/// Delay attack (A4): holds every outbound blob for `delay` before
/// forwarding. With delay ≥ one round the receiver's P5 check rejects it.
class DelayStrategy final : public Strategy {
 public:
  explicit DelayStrategy(SimDuration delay) : delay_(delay) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    ctx.schedule_in(delay_, [&ctx, to, blob = std::move(blob)]() mutable {
      ctx.forward(to, std::move(blob));
    });
  }

 private:
  SimDuration delay_;
};

/// Replay attack (A5): forwards faithfully, then re-sends a copy of every
/// outbound blob after `replay_after`, and re-delivers inbound blobs to its
/// own enclave. P6 (wire sequence window) must reject every duplicate.
class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(SimDuration replay_after)
      : replay_after_(replay_after) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    Bytes copy = blob;
    ctx.forward(to, std::move(blob));
    ctx.schedule_in(replay_after_, [&ctx, to, copy = std::move(copy)]() mutable {
      ctx.forward(to, std::move(copy));
    });
  }
  void on_receive(HostContext& ctx, NodeId from, Bytes blob) override {
    Bytes copy = blob;
    ctx.deliver(from, std::move(blob));
    ctx.schedule_in(replay_after_,
                    [&ctx, from, copy = std::move(copy)]() mutable {
                      ctx.deliver(from, copy);
                    });
  }

 private:
  SimDuration replay_after_;
};

/// Forgery attack (A2): flips a bit in each outbound blob with probability
/// `p_corrupt`, and additionally injects fabricated blobs toward random
/// peers. Every corrupted/injected blob must fail the channel MAC.
class CorruptStrategy final : public Strategy {
 public:
  CorruptStrategy(double p_corrupt, std::uint32_t n_nodes, bool inject = true)
      : p_corrupt_(p_corrupt), n_(n_nodes), inject_(inject) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    if (!blob.empty() && ctx.rng().chance(p_corrupt_)) {
      std::size_t at = ctx.rng().next_below(blob.size());
      blob[at] ^= static_cast<std::uint8_t>(1 + ctx.rng().next_below(255));
    }
    ctx.forward(to, std::move(blob));
    if (inject_ && ctx.rng().chance(p_corrupt_)) {
      Bytes junk(64 + ctx.rng().next_below(64));
      for (auto& b : junk) b = static_cast<std::uint8_t>(ctx.rng().next_u64());
      ctx.forward(static_cast<NodeId>(ctx.rng().next_below(n_)),
                  std::move(junk));
    }
  }

 private:
  double p_corrupt_;
  std::uint32_t n_;
  bool inject_;
};

/// Rollback attack against recovery: the host stores checkpoints faithfully
/// but answers the relaunched enclave's restore request with the OLDEST
/// sealed blob it holds. The blob decrypts fine (the sealing key is stable
/// across relaunches), so only the monotonic-counter check can expose the
/// rollback — which is exactly what the recovery tests assert.
class StaleSealReplayStrategy final : public Strategy {
 public:
  std::optional<Bytes> on_restore(const std::vector<Bytes>& history) override {
    if (history.empty()) return std::nullopt;
    return history.front();
  }
};

/// Crash-restart fault: communication is dead (both directions) inside
/// [down_from, down_until), faithful outside it. Models the OS-level view of
/// a crash that recovery later repairs — useful on nodes whose enclave the
/// harness kills and relaunches at those same times.
class CrashRestartStrategy final : public Strategy {
 public:
  CrashRestartStrategy(SimTime down_from, SimTime down_until)
      : down_from_(down_from), down_until_(down_until) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    if (!down(ctx)) ctx.forward(to, std::move(blob));
  }
  void on_receive(HostContext& ctx, NodeId from, Bytes blob) override {
    if (!down(ctx)) ctx.deliver(from, std::move(blob));
  }
  [[nodiscard]] bool is_byzantine() const override { return false; }

 private:
  [[nodiscard]] bool down(const HostContext& ctx) const {
    return ctx.now() >= down_from_ && ctx.now() < down_until_;
  }
  SimTime down_from_;
  SimTime down_until_;
};

/// Shared plan for the colluding chain of Section 6.3: byzantine node k
/// relays the broadcast only to byzantine node k+1 each round (then P4
/// eliminates k); the final link releases the message — to one designated
/// honest node (worst case: honest nodes then need two more rounds) or to
/// nobody (honest nodes decide ⊥ at t+2).
struct ChainPlan {
  std::vector<NodeId> order;  // byzantine nodes, relay order
  enum class Release { kSingleHonest, kAllHonest, kNobody };
  Release release = Release::kSingleHonest;
  NodeId honest_target = kNoNode;  // used with kSingleHonest
};

class ChainStrategy final : public Strategy {
 public:
  explicit ChainStrategy(std::shared_ptr<const ChainPlan> plan)
      : plan_(std::move(plan)) {}

  void on_send(HostContext& ctx, NodeId to, Bytes blob) override {
    const auto& order = plan_->order;
    std::size_t k = 0;
    while (k < order.size() && order[k] != ctx.self()) ++k;
    if (k + 1 < order.size()) {
      // Interior link: relay only down the chain.
      if (to == order[k + 1]) ctx.forward(to, std::move(blob));
      return;
    }
    // Final link: release per plan.
    switch (plan_->release) {
      case ChainPlan::Release::kAllHonest:
        ctx.forward(to, std::move(blob));
        break;
      case ChainPlan::Release::kSingleHonest:
        if (to == plan_->honest_target) ctx.forward(to, std::move(blob));
        break;
      case ChainPlan::Release::kNobody:
        break;
    }
  }

 private:
  std::shared_ptr<const ChainPlan> plan_;
};

}  // namespace sgxp2p::adversary
