// Byzantine host strategies.
//
// A Strategy is what a byzantine operating system does with the opaque blobs
// its enclave asks it to transfer, and with the blobs arriving off the wire.
// This is exactly the adversary's surface after the reduction of Theorem
// A.2: it can forward, drop, delay, duplicate, replay, or corrupt bytes —
// but it cannot read or mint valid ones. Concrete strategies (honest, crash,
// random/selective omission, delay, replay, forge, chain-delay, …) live in
// strategies.hpp; protocol code never sees them.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace sgxp2p::adversary {

/// Capabilities a strategy may exercise. Implemented by net::Host.
class HostContext {
 public:
  virtual ~HostContext() = default;

  [[nodiscard]] virtual NodeId self() const = 0;
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Puts a blob on the wire toward `to`.
  virtual void forward(NodeId to, Bytes blob) = 0;
  /// Hands an inbound blob to the local enclave, claiming sender `from`.
  virtual void deliver(NodeId from, Bytes blob) = 0;
  /// Schedules adversarial future work (delays, replays).
  virtual void schedule_in(SimDuration delay, std::function<void()> fn) = 0;

  /// The colluding byzantine set (includes self for byzantine nodes).
  [[nodiscard]] virtual const std::vector<NodeId>& colluders() const = 0;
  /// Adversary-controlled randomness (distinct from enclave randomness).
  virtual Rng& rng() = 0;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Outbound: enclave asked for `blob` → `to`. Default: faithful transfer.
  virtual void on_send(HostContext& ctx, NodeId to, Bytes blob) {
    ctx.forward(to, std::move(blob));
  }

  /// Inbound: `blob` arrived from `from`. Default: faithful delivery.
  virtual void on_receive(HostContext& ctx, NodeId from, Bytes blob) {
    ctx.deliver(from, std::move(blob));
  }

  /// Recovery: the relaunched enclave asks its host for the sealed
  /// checkpoint. `history` is every sealed blob the host ever stored, oldest
  /// first. An honest host returns the latest; a byzantine host may return a
  /// stale one (rollback attempt, defeated by the monotonic counter), garbage,
  /// or nothing. The blob is sealed — the host cannot read or forge it.
  virtual std::optional<Bytes> on_restore(const std::vector<Bytes>& history) {
    if (history.empty()) return std::nullopt;
    return history.back();
  }

  [[nodiscard]] virtual bool is_byzantine() const { return true; }
};

/// The honest OS: transfers everything faithfully.
class HonestStrategy final : public Strategy {
 public:
  [[nodiscard]] bool is_byzantine() const override { return false; }
};

}  // namespace sgxp2p::adversary
