#include "apps/random_walk.hpp"

#include <algorithm>
#include <deque>

#include "common/serde.hpp"
#include "crypto/drbg.hpp"

namespace sgxp2p::apps {

Overlay::Overlay(std::uint32_t n, std::uint32_t chords) : n_(n) {
  adjacency_.resize(n);
  auto link = [&](NodeId a, NodeId b) {
    if (a == b) return;
    if (std::find(adjacency_[a].begin(), adjacency_[a].end(), b) ==
        adjacency_[a].end()) {
      adjacency_[a].push_back(b);
      adjacency_[b].push_back(a);
    }
  };
  for (NodeId i = 0; i < n; ++i) {
    link(i, (i + 1) % n);
    for (std::uint32_t j = 1; j <= chords; ++j) {
      std::uint32_t span = 1u << j;
      if (span >= n) break;
      link(i, (i + span) % n);
    }
  }
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
}

std::uint32_t Overlay::eccentricity(NodeId from) const {
  std::vector<std::uint32_t> dist(n_, ~0u);
  std::deque<NodeId> queue{from};
  dist[from] = 0;
  std::uint32_t max_dist = 0;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] == ~0u) {
        dist[v] = dist[u] + 1;
        max_dist = std::max(max_dist, dist[v]);
        queue.push_back(v);
      }
    }
  }
  return max_dist;
}

WalkResult common_coin_walk(const Overlay& overlay, NodeId start,
                            std::uint32_t steps, ByteView beacon_value,
                            std::uint64_t walk_tag) {
  BinaryWriter seed;
  seed.str("sgxp2p-walk");
  seed.bytes(beacon_value);
  seed.u64(walk_tag);
  crypto::Drbg drbg(seed.view());

  WalkResult result;
  NodeId current = start;
  result.path.push_back(current);
  for (std::uint32_t s = 0; s < steps; ++s) {
    const auto& neighbors = overlay.neighbors(current);
    current = neighbors[drbg.next_below(neighbors.size())];
    result.path.push_back(current);
  }
  return result;
}

std::vector<std::uint32_t> endpoint_histogram(const Overlay& overlay,
                                              NodeId start,
                                              std::uint32_t steps,
                                              ByteView beacon_value,
                                              std::uint32_t walks) {
  std::vector<std::uint32_t> histogram(overlay.size(), 0);
  for (std::uint32_t w = 0; w < walks; ++w) {
    auto result = common_coin_walk(overlay, start, steps, beacon_value, w);
    ++histogram[result.path.back()];
  }
  return histogram;
}

}  // namespace sgxp2p::apps
