// Shared key generation (Appendix H, "Shared Key Generation").
//
// An ERNG output is a 256-bit value every honest node holds and no host
// observed in the clear — directly usable as group-key material. We derive
// labeled keys with HKDF (so one beacon value can key several independent
// purposes) and provide group-sealed messaging over the derived key.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace sgxp2p::apps {

/// Derives a purpose-labeled group key from a common random value.
Bytes derive_group_key(ByteView common_random, ByteView label);

/// AEAD-seals `plaintext` for the group; `message_index` must be unique per
/// key (it feeds the nonce).
Bytes group_seal(ByteView group_key, std::uint64_t message_index,
                 ByteView plaintext);

/// Opens a group-sealed message; nullopt when the key is wrong or the
/// ciphertext was tampered with.
std::optional<Bytes> group_open(ByteView group_key, ByteView sealed);

}  // namespace sgxp2p::apps
