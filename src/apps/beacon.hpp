// Random beacon service (Appendix H, "Random Beacons").
//
// A beacon emits a public, unpredictable, unbiased random value per epoch.
// Each epoch runs one ERNG execution over a (fresh) simulated deployment;
// the emitted values are chained into a log whose entries commit to their
// predecessor (hash chain) and which carries a Merkle root over all entries,
// so a light client can verify any single beacon with a log-position proof —
// the shape of NIST-style beacon services [10], but with the trust rooted in
// the SGX-backed protocol instead of a single operator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/merkle.hpp"

namespace sgxp2p::apps {

struct BeaconEntry {
  std::uint64_t epoch = 0;
  Bytes value;       // the ERNG output (32 bytes)
  Bytes prev_hash;   // hash of the previous entry (chain link)
  std::size_t contributors = 0;  // |S_final| of that execution

  /// Canonical serialization (what gets hashed / proven).
  [[nodiscard]] Bytes serialize() const;
};

class BeaconLog {
 public:
  /// Appends an epoch value; returns the entry (with its chain link).
  const BeaconEntry& append(Bytes value, std::size_t contributors);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const BeaconEntry& entry(std::size_t i) const {
    return entries_.at(i);
  }

  /// Merkle root over all entries (recomputed on demand).
  [[nodiscard]] Bytes root() const;
  /// Inclusion proof for entry `i` against root().
  [[nodiscard]] std::vector<Bytes> proof(std::size_t i) const;
  /// Light-client check: entry `i` of a log with `size` entries and `root`.
  static bool verify(ByteView root, const BeaconEntry& entry, std::size_t i,
                     std::size_t size, const std::vector<Bytes>& proof);

  /// Full-chain audit: every prev_hash link matches.
  [[nodiscard]] bool audit_chain() const;

 private:
  [[nodiscard]] std::vector<Bytes> leaves() const;
  std::vector<BeaconEntry> entries_;
};

/// Runs `epochs` ERNG executions over an N-node simulated deployment with
/// `byzantine_omitters` random-omission nodes, appending each epoch's output
/// to a log. Returns the log. (Each epoch is an independent deployment —
/// the simulation harness is single-execution; a production beacon would
/// reuse the session with bumped sequence numbers.)
BeaconLog run_beacon(std::uint32_t n, std::uint32_t epochs,
                     std::uint32_t byzantine_omitters, std::uint64_t seed);

}  // namespace sgxp2p::apps
