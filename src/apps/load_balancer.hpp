// Random load balancing by common coin (Appendix H, "Random Load
// Balancing").
//
// Instead of a central dispatcher (a single point of failure/compromise),
// every decider derives task placements from the epoch's common random value
// with a PRF: placement(task) = HMAC(beacon, task) mod workers. Any majority
// of deciders independently computes identical placements, so a worker can
// act once it has matching assignments from half the deciders — the scheme
// keeps working when up to half of them crash or lie.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace sgxp2p::apps {

class LoadBalancer {
 public:
  LoadBalancer(ByteView beacon_value, std::uint32_t workers);

  /// The worker a task lands on — deterministic in (beacon, task).
  [[nodiscard]] std::uint32_t assign(std::uint64_t task_id) const;

  /// Per-worker counts for tasks [0, tasks) (balance statistics).
  [[nodiscard]] std::vector<std::uint32_t> histogram(std::uint64_t tasks) const;

 private:
  Bytes key_;
  std::uint32_t workers_;
};

/// A worker-side quorum check: accepts a task once ≥ quorum deciders sent
/// the same placement. Tolerates deciders that crash (never vote) or lie
/// (vote differently).
class PlacementQuorum {
 public:
  PlacementQuorum(std::uint32_t quorum) : quorum_(quorum) {}

  /// Records decider `decider`'s claim that `task` belongs to `worker`.
  /// Returns the confirmed worker once a quorum of identical claims exists.
  std::optional<std::uint32_t> vote(std::uint32_t decider, std::uint64_t task,
                                    std::uint32_t worker);

 private:
  std::uint32_t quorum_;
  // task → (worker → distinct deciders that claimed it)
  std::map<std::uint64_t, std::map<std::uint32_t, std::vector<std::uint32_t>>>
      votes_;
};

}  // namespace sgxp2p::apps
