// Byzantine-robust random walks over a sparse overlay (Appendix H,
// "Random Walks", after Guerraoui et al. [58]).
//
// A structured P2P overlay must place nodes uniformly to stay an expander;
// the placement walks must take steps byzantine nodes can neither predict
// nor bias. Here the overlay is a ring with deterministic chord links
// (degree 2k, diameter O(log N)), and each walk draws every next-hop index
// from a DRBG keyed by a common ERNG/beacon value — every honest node can
// recompute the identical walk (agreement), while no node could have
// predicted it before the beacon epoch closed (unbiasedness).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace sgxp2p::apps {

/// Ring + chord overlay: node i links to i±1 and i ± 2^j for j < chords.
class Overlay {
 public:
  Overlay(std::uint32_t n, std::uint32_t chords);

  [[nodiscard]] std::uint32_t size() const { return n_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_.at(id);
  }
  /// Graph diameter via BFS from `from` (for expander sanity checks).
  [[nodiscard]] std::uint32_t eccentricity(NodeId from) const;

 private:
  std::uint32_t n_;
  std::vector<std::vector<NodeId>> adjacency_;
};

struct WalkResult {
  std::vector<NodeId> path;  // path.front() = start, path.back() = endpoint
};

/// Deterministic walk of `steps` hops from `start`, with each hop index
/// drawn from a DRBG seeded by (beacon_value, walk_tag). Two honest nodes
/// with the same beacon value compute the same walk.
WalkResult common_coin_walk(const Overlay& overlay, NodeId start,
                            std::uint32_t steps, ByteView beacon_value,
                            std::uint64_t walk_tag);

/// Endpoint distribution check: runs `walks` walks with distinct tags and
/// returns the per-node visit count of endpoints (used to verify near-
/// uniform placement in tests).
std::vector<std::uint32_t> endpoint_histogram(const Overlay& overlay,
                                              NodeId start,
                                              std::uint32_t steps,
                                              ByteView beacon_value,
                                              std::uint32_t walks);

}  // namespace sgxp2p::apps
