#include "apps/load_balancer.hpp"

#include <algorithm>

#include "crypto/hmac.hpp"

namespace sgxp2p::apps {

LoadBalancer::LoadBalancer(ByteView beacon_value, std::uint32_t workers)
    : key_(crypto::hkdf(to_bytes("sgxp2p-load-balancer"), beacon_value, {},
                        32)),
      workers_(std::max(1u, workers)) {}

std::uint32_t LoadBalancer::assign(std::uint64_t task_id) const {
  std::uint8_t msg[8];
  store_le64(msg, task_id);
  auto mac = crypto::HmacSha256::mac(key_, ByteView(msg, sizeof msg));
  // 64 bits of PRF output mod workers: bias ≤ workers/2^64, negligible.
  return static_cast<std::uint32_t>(load_le64(mac.data()) % workers_);
}

std::vector<std::uint32_t> LoadBalancer::histogram(std::uint64_t tasks) const {
  std::vector<std::uint32_t> counts(workers_, 0);
  for (std::uint64_t task = 0; task < tasks; ++task) ++counts[assign(task)];
  return counts;
}

std::optional<std::uint32_t> PlacementQuorum::vote(std::uint32_t decider,
                                                   std::uint64_t task,
                                                   std::uint32_t worker) {
  auto& deciders = votes_[task][worker];
  if (std::find(deciders.begin(), deciders.end(), decider) == deciders.end()) {
    deciders.push_back(decider);
  }
  if (deciders.size() >= quorum_) return worker;
  return std::nullopt;
}

}  // namespace sgxp2p::apps
