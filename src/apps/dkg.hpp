// Distributed key generation with verifiable shares (Appendix H, "Shared
// Key Generation", after Gennaro et al. [55, 56] in spirit).
//
// Every participant acts as a dealer: it Shamir-shares a random secret and
// publishes a Merkle commitment over the share vector (dealt shares travel
// over the blinded channel in a deployment; here the dealing itself is the
// library surface). Because Shamir over GF(2^8) is linear and addition is
// XOR, participants combine dealers' contributions locally:
//
//   final_secret   = ⊕_d secret_d
//   final_share_i  = ⊕_d share_{d,i}      (same evaluation point x = i+1)
//
// so any k participants reconstruct the group secret even though no single
// party — dealer included — ever saw it. The Merkle commitments make each
// dealt share verifiable against a 32-byte public root, so a byzantine
// dealer handing inconsistent shares is caught at dealing time (the
// complaint phase of a full DKG; here surfaced as verify_share = false).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/shamir.hpp"

namespace sgxp2p::apps {

struct DealtShare {
  crypto::Share share;          // evaluation point + bytes
  std::vector<Bytes> proof;     // Merkle inclusion proof against the root
};

struct DealerPackage {
  Bytes commitment;                 // Merkle root over all n shares (public)
  std::vector<DealtShare> shares;   // shares[i] goes privately to node i
  std::uint8_t n = 0;
  std::uint8_t k = 0;
};

/// Deals a fresh random `secret_len`-byte secret into n shares, threshold k.
/// The dealer's secret itself is recoverable from any k shares; callers
/// normally discard it (it is XOR-folded into the group secret).
DealerPackage dkg_deal(std::uint8_t n, std::uint8_t k, std::size_t secret_len,
                       crypto::Drbg& drbg);

/// Verifies that a dealt share matches the dealer's public commitment.
bool dkg_verify_share(const Bytes& commitment, const DealtShare& share,
                      std::uint8_t n);

/// Participant-side combination: XOR-folds the verified shares received
/// from every dealer into this participant's final share. All inputs must
/// carry the same evaluation point. Returns nullopt on mismatch.
std::optional<crypto::Share> dkg_combine_shares(
    const std::vector<crypto::Share>& dealt_to_me);

/// Reconstructs the group secret from ≥ k combined shares.
std::optional<Bytes> dkg_reconstruct(const std::vector<crypto::Share>& shares,
                                     std::uint8_t k);

}  // namespace sgxp2p::apps
