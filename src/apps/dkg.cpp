#include "apps/dkg.hpp"

#include "common/serde.hpp"
#include "crypto/merkle.hpp"

namespace sgxp2p::apps {

namespace {
Bytes share_leaf(const crypto::Share& share) {
  BinaryWriter w;
  w.u8(share.x);
  w.bytes(share.y);
  return w.take();
}
}  // namespace

DealerPackage dkg_deal(std::uint8_t n, std::uint8_t k, std::size_t secret_len,
                       crypto::Drbg& drbg) {
  DealerPackage pkg;
  pkg.n = n;
  pkg.k = k;
  Bytes secret = drbg.generate(secret_len);
  auto shares = crypto::shamir_split(secret, n, k, drbg);

  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (const auto& share : shares) leaves.push_back(share_leaf(share));
  crypto::MerkleTree tree(leaves);
  pkg.commitment = tree.root();
  pkg.shares.resize(n);
  for (std::uint8_t i = 0; i < n; ++i) {
    pkg.shares[i].share = std::move(shares[i]);
    pkg.shares[i].proof = tree.proof(i);
  }
  return pkg;
}

bool dkg_verify_share(const Bytes& commitment, const DealtShare& share,
                      std::uint8_t n) {
  if (share.share.x == 0 || share.share.x > n) return false;
  std::size_t index = static_cast<std::size_t>(share.share.x) - 1;
  return crypto::MerkleTree::verify(commitment, share_leaf(share.share),
                                    index, n, share.proof);
}

std::optional<crypto::Share> dkg_combine_shares(
    const std::vector<crypto::Share>& dealt_to_me) {
  if (dealt_to_me.empty()) return std::nullopt;
  crypto::Share combined;
  combined.x = dealt_to_me.front().x;
  combined.y = dealt_to_me.front().y;
  for (std::size_t d = 1; d < dealt_to_me.size(); ++d) {
    const auto& s = dealt_to_me[d];
    if (s.x != combined.x || s.y.size() != combined.y.size()) {
      return std::nullopt;
    }
    xor_into(combined.y, s.y);  // GF(2^8) addition: polynomials add
  }
  return combined;
}

std::optional<Bytes> dkg_reconstruct(const std::vector<crypto::Share>& shares,
                                     std::uint8_t k) {
  return crypto::shamir_reconstruct(shares, k);
}

}  // namespace sgxp2p::apps
