#include "apps/beacon.hpp"

#include <memory>

#include "adversary/strategies.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"
#include "net/testbed.hpp"
#include "protocol/erng_basic.hpp"

namespace sgxp2p::apps {

Bytes BeaconEntry::serialize() const {
  BinaryWriter w;
  w.u64(epoch);
  w.bytes(value);
  w.bytes(prev_hash);
  w.u64(contributors);
  return w.take();
}

const BeaconEntry& BeaconLog::append(Bytes value, std::size_t contributors) {
  BeaconEntry entry;
  entry.epoch = entries_.size();
  entry.value = std::move(value);
  entry.prev_hash = entries_.empty()
                        ? Bytes(crypto::kSha256DigestSize, 0)
                        : crypto::Sha256::hash_bytes(entries_.back().serialize());
  entry.contributors = contributors;
  entries_.push_back(std::move(entry));
  return entries_.back();
}

std::vector<Bytes> BeaconLog::leaves() const {
  std::vector<Bytes> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.serialize());
  return out;
}

Bytes BeaconLog::root() const { return crypto::MerkleTree(leaves()).root(); }

std::vector<Bytes> BeaconLog::proof(std::size_t i) const {
  return crypto::MerkleTree(leaves()).proof(i);
}

bool BeaconLog::verify(ByteView root, const BeaconEntry& entry, std::size_t i,
                       std::size_t size, const std::vector<Bytes>& proof) {
  return crypto::MerkleTree::verify(root, entry.serialize(), i, size, proof);
}

bool BeaconLog::audit_chain() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    Bytes expected = crypto::Sha256::hash_bytes(entries_[i - 1].serialize());
    if (entries_[i].prev_hash != expected) return false;
  }
  return true;
}

BeaconLog run_beacon(std::uint32_t n, std::uint32_t epochs,
                     std::uint32_t byzantine_omitters, std::uint64_t seed) {
  BeaconLog log;
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    sim::TestbedConfig cfg;
    cfg.n = n;
    cfg.seed = seed * 1000 + epoch;
    cfg.net.base_delay = milliseconds(100);
    cfg.net.max_jitter = milliseconds(100);
    sim::Testbed bed(cfg);
    bed.build(
        [](NodeId id, sgx::SgxPlatform& platform, net::Host& host,
           protocol::PeerConfig pc,
           const sgx::SimIAS& ias) -> std::unique_ptr<protocol::PeerEnclave> {
          return std::make_unique<protocol::ErngBasicNode>(platform, id, host,
                                                           pc, ias);
        },
        [&](NodeId id) -> std::unique_ptr<adversary::Strategy> {
          if (id >= n - byzantine_omitters) {
            return std::make_unique<adversary::RandomOmissionStrategy>(0.5,
                                                                       0.2);
          }
          return nullptr;
        });
    bed.start();
    bed.run_rounds(bed.config().effective_t() + 4, [&]() {
      for (NodeId id : bed.honest_nodes()) {
        if (!bed.enclave_as<protocol::ErngBasicNode>(id).result().done) {
          return false;
        }
      }
      return true;
    });
    const auto& r =
        bed.enclave_as<protocol::ErngBasicNode>(bed.honest_nodes().front())
            .result();
    log.append(r.value, r.set_size);
  }
  return log;
}

}  // namespace sgxp2p::apps
