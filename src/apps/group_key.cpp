#include "apps/group_key.hpp"

#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"

namespace sgxp2p::apps {

Bytes derive_group_key(ByteView common_random, ByteView label) {
  return crypto::hkdf(to_bytes("sgxp2p-group-key"), common_random, label,
                      crypto::kAeadKeySize);
}

Bytes group_seal(ByteView group_key, std::uint64_t message_index,
                 ByteView plaintext) {
  std::uint8_t nonce[crypto::kAeadNonceSize] = {};
  store_le64(nonce, message_index);
  return crypto::aead_seal(group_key, ByteView(nonce, sizeof nonce),
                           to_bytes("group"), plaintext);
}

std::optional<Bytes> group_open(ByteView group_key, ByteView sealed) {
  return crypto::aead_open(group_key, to_bytes("group"), sealed);
}

}  // namespace sgxp2p::apps
